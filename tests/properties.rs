//! Property-based tests (proptest) over the substrates and the runtime.

use proptest::prelude::*;
use relaxing_safely::gc::{Collector, GcConfig};
use relaxing_safely::tso::{Machine, MemoryModel, ThreadId};
use relaxing_safely::types::{AbstractHeap, Ref, Tricolor};

// ---------------------------------------------------------------------
// TSO machine laws
// ---------------------------------------------------------------------

/// A scripted machine operation.
#[derive(Debug, Clone, Copy)]
enum Op {
    Write(u8, u8, u8), // thread, addr, value
    Commit(u8),
    Read(u8, u8),
    Fence(u8),
}

fn op_strategy(threads: u8, addrs: u8) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..threads, 0..addrs, any::<u8>()).prop_map(|(t, a, v)| Op::Write(t, a, v)),
        (0..threads).prop_map(Op::Commit),
        (0..threads, 0..addrs).prop_map(|(t, a)| Op::Read(t, a)),
        (0..threads).prop_map(Op::Fence),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Reads by the issuing thread always see its own newest pending write
    /// (store-buffer forwarding), whatever else happened.
    #[test]
    fn tso_reads_forward_own_newest_write(ops in proptest::collection::vec(op_strategy(3, 4), 1..60)) {
        let mut m: Machine<u8, u8> = Machine::new(3, MemoryModel::Tso);
        for a in 0..4 {
            m.initialize(a, 0);
        }
        // Shadow: per (thread, addr) the newest pending value; and the
        // committed memory.
        let mut pending: std::collections::HashMap<(u8, u8), u8> = Default::default();
        let mut queue: Vec<(u8, u8, u8)> = Vec::new(); // FIFO of (t, a, v)
        let mut memory: std::collections::HashMap<u8, u8> = (0..4).map(|a| (a, 0)).collect();
        for op in ops {
            match op {
                Op::Write(t, a, v) => {
                    m.write(ThreadId::new(t as usize), a, v).unwrap();
                    pending.insert((t, a), v);
                    queue.push((t, a, v));
                }
                Op::Commit(t) => {
                    let pos = queue.iter().position(|&(qt, _, _)| qt == t);
                    match m.commit(ThreadId::new(t as usize)) {
                        Ok((a, v)) => {
                            let (qt, qa, qv) = queue.remove(pos.unwrap());
                            prop_assert_eq!((qt, qa, qv), (t, a, v), "FIFO order");
                            memory.insert(a, v);
                            // Is this still the newest pending for (t, a)?
                            if !queue.iter().any(|&(qt2, qa2, _)| qt2 == t && qa2 == a) {
                                pending.remove(&(t, a));
                            }
                        }
                        Err(_) => prop_assert!(pos.is_none(), "commit only fails on empty buffer"),
                    }
                }
                Op::Read(t, a) => {
                    let got = m.read(ThreadId::new(t as usize), &a).unwrap();
                    let want = pending
                        .get(&(t, a))
                        .copied()
                        .or_else(|| memory.get(&a).copied());
                    prop_assert_eq!(got, want);
                }
                Op::Fence(t) => {
                    let ok = m.mfence(ThreadId::new(t as usize)).is_ok();
                    let empty = !queue.iter().any(|&(qt, _, _)| qt == t);
                    prop_assert_eq!(ok, empty, "fence enabled iff buffer empty");
                }
            }
        }
    }

    /// Under SC the machine behaves like a plain map: every read sees the
    /// latest write, buffers stay empty.
    #[test]
    fn sc_machine_is_a_plain_map(ops in proptest::collection::vec(op_strategy(2, 4), 1..40)) {
        let mut m: Machine<u8, u8> = Machine::new(2, MemoryModel::Sc);
        let mut shadow: std::collections::HashMap<u8, u8> = Default::default();
        for op in ops {
            match op {
                Op::Write(t, a, v) => {
                    m.write(ThreadId::new(t as usize), a, v).unwrap();
                    shadow.insert(a, v);
                }
                Op::Read(t, a) => {
                    prop_assert_eq!(m.read(ThreadId::new(t as usize), &a).unwrap(), shadow.get(&a).copied());
                }
                Op::Fence(t) => prop_assert!(m.can_mfence(ThreadId::new(t as usize))),
                Op::Commit(_) => {} // never enabled under SC
            }
        }
    }
}

// ---------------------------------------------------------------------
// Heap / tricolor laws
// ---------------------------------------------------------------------

fn arb_heap() -> impl Strategy<Value = AbstractHeap> {
    // Up to 8 objects, 2 fields, random flags and edges.
    (1usize..8, proptest::collection::vec((any::<bool>(), 0u8..8, 0u8..8), 0..16)).prop_map(
        |(n, edits)| {
            let mut h = AbstractHeap::new(8, 2);
            for _ in 0..n {
                h.alloc(false);
            }
            for (flag, src, dst) in edits {
                let src = Ref::new(src % n as u8);
                let dst = Ref::new(dst % n as u8);
                h.set_flag(src, flag);
                h.set_field(src, (dst.index() % 2) as usize, Some(dst));
            }
            h
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Reachability is monotone in the root set and closed under edges.
    #[test]
    fn reachability_laws(h in arb_heap(), r1 in 0u8..8, r2 in 0u8..8) {
        let a = Ref::new(r1 % h.capacity() as u8);
        let b = Ref::new(r2 % h.capacity() as u8);
        let from_a = h.reachable([a]);
        let from_ab = h.reachable([a, b]);
        prop_assert!(from_a.is_subset(&from_ab), "monotone in roots");
        // Closure: every allocated reachable object's children are reachable.
        for &r in &from_ab {
            if let Some(obj) = h.get(r) {
                for c in obj.children() {
                    prop_assert!(from_ab.contains(&c), "closed under edges");
                }
            }
        }
    }

    /// Strong tricolor invariant implies the weak one (§2.1).
    #[test]
    fn strong_implies_weak(h in arb_heap(), greys in proptest::collection::vec(0u8..8, 0..4)) {
        let greys: Vec<Ref> = greys
            .into_iter()
            .map(Ref::new)
            .filter(|r| h.contains(*r))
            .collect();
        let tri = Tricolor::new(&h, true, greys);
        if tri.strong_invariant() {
            prop_assert!(tri.weak_invariant());
        }
    }

    /// Color partition: black and white are disjoint; flipping the sense
    /// swaps them.
    #[test]
    fn color_partition(h in arb_heap()) {
        let t1 = Tricolor::new(&h, true, std::iter::empty());
        let t2 = Tricolor::new(&h, false, std::iter::empty());
        for r in h.refs() {
            prop_assert!(t1.is_black(r) ^ t1.is_white(r));
            prop_assert_eq!(t1.is_black(r), t2.is_white(r));
        }
    }
}

// ---------------------------------------------------------------------
// Runtime: random single-mutator programs with interleaved collections
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
enum GcOp {
    Alloc(u8),          // field count 0..=2
    Load(u8, u8),       // root index (mod #roots), field
    Store(u8, u8, u8),  // src, field, dst (indices into roots)
    Discard(u8),
    Collect,
}

fn gc_op_strategy() -> impl Strategy<Value = GcOp> {
    prop_oneof![
        (0u8..3).prop_map(GcOp::Alloc),
        (any::<u8>(), 0u8..2).prop_map(|(r, f)| GcOp::Load(r, f)),
        (any::<u8>(), 0u8..2, any::<u8>()).prop_map(|(s, f, d)| GcOp::Store(s, f, d)),
        any::<u8>().prop_map(GcOp::Discard),
        Just(GcOp::Collect),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the op sequence, validation never trips: every rooted
    /// object survives every collection, and full collections after
    /// dropping all roots empty the heap.
    #[test]
    fn random_programs_never_observe_dangling(ops in proptest::collection::vec(gc_op_strategy(), 1..60)) {
        let collector = Collector::new(GcConfig::new(128, 2));
        let mut m = collector.register_mutator();
        let run_cycle = |m: &mut relaxing_safely::gc::Mutator| {
            let done = std::sync::atomic::AtomicBool::new(false);
            std::thread::scope(|s| {
                s.spawn(|| {
                    collector.collect();
                    done.store(true, std::sync::atomic::Ordering::Release);
                });
                while !done.load(std::sync::atomic::Ordering::Acquire) {
                    m.safepoint();
                    std::thread::yield_now();
                }
            });
        };
        for op in ops {
            let roots: Vec<_> = m.roots().collect();
            let pick = |i: u8| roots.get(i as usize % roots.len().max(1)).copied();
            match op {
                GcOp::Alloc(f) => {
                    if m.alloc(f as usize).is_err() {
                        run_cycle(&mut m); // reclaim, then retry once
                        let _ = m.alloc(f as usize);
                    }
                }
                GcOp::Load(r, f) => {
                    if let Some(src) = pick(r) {
                        if (f as usize) < m.field_count(src) {
                            let _ = m.load(src, f as usize);
                        }
                    }
                }
                GcOp::Store(s, f, d) => {
                    if let (Some(src), Some(dst)) = (pick(s), pick(d)) {
                        if (f as usize) < m.field_count(src) {
                            m.store(src, f as usize, Some(dst));
                        }
                    }
                }
                GcOp::Discard(r) => {
                    if let Some(g) = pick(r) {
                        m.discard(g);
                    }
                }
                GcOp::Collect => run_cycle(&mut m),
            }
        }
        // Teardown: drop all roots; two cycles must empty the heap.
        let roots: Vec<_> = m.roots().collect();
        for g in roots {
            m.discard(g);
        }
        run_cycle(&mut m);
        run_cycle(&mut m);
        prop_assert_eq!(collector.live_objects(), 0);
    }
}
