//! Randomized property tests over the substrates and the runtime: seeded
//! in-repo generation (SplitMix64) instead of an external property-testing
//! framework, so every failure reports a seed that replays it exactly.

use relaxing_safely::gc::{Collector, GcConfig};
use relaxing_safely::tso::{Machine, MemoryModel, ThreadId};
use relaxing_safely::types::{AbstractHeap, Ref, Tricolor};

/// The SplitMix64 stream used for all generation below.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1))
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n` (n > 0).
    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    fn u8(&mut self) -> u8 {
        self.next_u64() as u8
    }
}

// ---------------------------------------------------------------------
// TSO machine laws
// ---------------------------------------------------------------------

/// A scripted machine operation.
#[derive(Debug, Clone, Copy)]
enum Op {
    Write(u8, u8, u8), // thread, addr, value
    Commit(u8),
    Read(u8, u8),
    Fence(u8),
}

fn gen_op(rng: &mut Rng, threads: u8, addrs: u8) -> Op {
    match rng.below(4) {
        0 => Op::Write(
            rng.below(threads as u64) as u8,
            rng.below(addrs as u64) as u8,
            rng.u8(),
        ),
        1 => Op::Commit(rng.below(threads as u64) as u8),
        2 => Op::Read(
            rng.below(threads as u64) as u8,
            rng.below(addrs as u64) as u8,
        ),
        _ => Op::Fence(rng.below(threads as u64) as u8),
    }
}

fn gen_ops(rng: &mut Rng, threads: u8, addrs: u8, max_len: u64) -> Vec<Op> {
    let len = 1 + rng.below(max_len);
    (0..len).map(|_| gen_op(rng, threads, addrs)).collect()
}

/// Reads by the issuing thread always see its own newest pending write
/// (store-buffer forwarding), whatever else happened.
#[test]
fn tso_reads_forward_own_newest_write() {
    for seed in 0..64u64 {
        let mut rng = Rng::new(seed);
        let ops = gen_ops(&mut rng, 3, 4, 59);
        let mut m: Machine<u8, u8> = Machine::new(3, MemoryModel::Tso);
        for a in 0..4 {
            m.initialize(a, 0);
        }
        // Shadow: per (thread, addr) the newest pending value; and the
        // committed memory.
        let mut pending: std::collections::HashMap<(u8, u8), u8> = Default::default();
        let mut queue: Vec<(u8, u8, u8)> = Vec::new(); // FIFO of (t, a, v)
        let mut memory: std::collections::HashMap<u8, u8> = (0..4).map(|a| (a, 0)).collect();
        for op in ops {
            match op {
                Op::Write(t, a, v) => {
                    m.write(ThreadId::new(t as usize), a, v).unwrap();
                    pending.insert((t, a), v);
                    queue.push((t, a, v));
                }
                Op::Commit(t) => {
                    let pos = queue.iter().position(|&(qt, _, _)| qt == t);
                    match m.commit(ThreadId::new(t as usize)) {
                        Ok((a, v)) => {
                            let (qt, qa, qv) = queue.remove(pos.unwrap());
                            assert_eq!((qt, qa, qv), (t, a, v), "seed {seed}: FIFO order");
                            memory.insert(a, v);
                            // Is this still the newest pending for (t, a)?
                            if !queue.iter().any(|&(qt2, qa2, _)| qt2 == t && qa2 == a) {
                                pending.remove(&(t, a));
                            }
                        }
                        Err(_) => assert!(
                            pos.is_none(),
                            "seed {seed}: commit only fails on empty buffer"
                        ),
                    }
                }
                Op::Read(t, a) => {
                    let got = m.read(ThreadId::new(t as usize), &a).unwrap();
                    let want = pending
                        .get(&(t, a))
                        .copied()
                        .or_else(|| memory.get(&a).copied());
                    assert_eq!(got, want, "seed {seed}");
                }
                Op::Fence(t) => {
                    let ok = m.mfence(ThreadId::new(t as usize)).is_ok();
                    let empty = !queue.iter().any(|&(qt, _, _)| qt == t);
                    assert_eq!(ok, empty, "seed {seed}: fence enabled iff buffer empty");
                }
            }
        }
    }
}

/// Under SC the machine behaves like a plain map: every read sees the
/// latest write, buffers stay empty.
#[test]
fn sc_machine_is_a_plain_map() {
    for seed in 0..64u64 {
        let mut rng = Rng::new(seed.wrapping_add(1 << 32));
        let ops = gen_ops(&mut rng, 2, 4, 39);
        let mut m: Machine<u8, u8> = Machine::new(2, MemoryModel::Sc);
        let mut shadow: std::collections::HashMap<u8, u8> = Default::default();
        for op in ops {
            match op {
                Op::Write(t, a, v) => {
                    m.write(ThreadId::new(t as usize), a, v).unwrap();
                    shadow.insert(a, v);
                }
                Op::Read(t, a) => {
                    assert_eq!(
                        m.read(ThreadId::new(t as usize), &a).unwrap(),
                        shadow.get(&a).copied(),
                        "seed {seed}"
                    );
                }
                Op::Fence(t) => assert!(m.can_mfence(ThreadId::new(t as usize)), "seed {seed}"),
                Op::Commit(_) => {} // never enabled under SC
            }
        }
    }
}

// ---------------------------------------------------------------------
// Heap / tricolor laws
// ---------------------------------------------------------------------

fn gen_heap(rng: &mut Rng) -> AbstractHeap {
    // Up to 8 objects, 2 fields, random flags and edges.
    let n = 1 + rng.below(7) as usize;
    let mut h = AbstractHeap::new(8, 2);
    for _ in 0..n {
        h.alloc(false);
    }
    let edits = rng.below(16);
    for _ in 0..edits {
        let flag = rng.below(2) == 1;
        let src = Ref::new((rng.below(8) % n as u64) as u8);
        let dst = Ref::new((rng.below(8) % n as u64) as u8);
        h.set_flag(src, flag);
        h.set_field(src, dst.index() % 2, Some(dst));
    }
    h
}

/// Reachability is monotone in the root set and closed under edges.
#[test]
fn reachability_laws() {
    for seed in 0..128u64 {
        let mut rng = Rng::new(seed.wrapping_add(2 << 32));
        let h = gen_heap(&mut rng);
        let a = Ref::new(rng.below(h.capacity() as u64) as u8);
        let b = Ref::new(rng.below(h.capacity() as u64) as u8);
        let from_a = h.reachable([a]);
        let from_ab = h.reachable([a, b]);
        assert!(from_a.is_subset(&from_ab), "seed {seed}: monotone in roots");
        // Closure: every allocated reachable object's children are reachable.
        for &r in &from_ab {
            if let Some(obj) = h.get(r) {
                for c in obj.children() {
                    assert!(from_ab.contains(&c), "seed {seed}: closed under edges");
                }
            }
        }
    }
}

/// Strong tricolor invariant implies the weak one (§2.1).
#[test]
fn strong_implies_weak() {
    for seed in 0..128u64 {
        let mut rng = Rng::new(seed.wrapping_add(3 << 32));
        let h = gen_heap(&mut rng);
        let greys: Vec<Ref> = (0..rng.below(4))
            .map(|_| Ref::new(rng.below(8) as u8))
            .filter(|r| h.contains(*r))
            .collect();
        let tri = Tricolor::new(&h, true, greys);
        if tri.strong_invariant() {
            assert!(tri.weak_invariant(), "seed {seed}");
        }
    }
}

/// Color partition: black and white are disjoint; flipping the sense
/// swaps them.
#[test]
fn color_partition() {
    for seed in 0..128u64 {
        let mut rng = Rng::new(seed.wrapping_add(4 << 32));
        let h = gen_heap(&mut rng);
        let t1 = Tricolor::new(&h, true, std::iter::empty());
        let t2 = Tricolor::new(&h, false, std::iter::empty());
        for r in h.refs() {
            assert!(t1.is_black(r) ^ t1.is_white(r), "seed {seed}");
            assert_eq!(t1.is_black(r), t2.is_white(r), "seed {seed}");
        }
    }
}

// ---------------------------------------------------------------------
// Runtime: random single-mutator programs with interleaved collections
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
enum GcOp {
    Alloc(u8),         // field count 0..=2
    Load(u8, u8),      // root index (mod #roots), field
    Store(u8, u8, u8), // src, field, dst (indices into roots)
    Discard(u8),
    Collect,
}

fn gen_gc_op(rng: &mut Rng) -> GcOp {
    match rng.below(5) {
        0 => GcOp::Alloc(rng.below(3) as u8),
        1 => GcOp::Load(rng.u8(), rng.below(2) as u8),
        2 => GcOp::Store(rng.u8(), rng.below(2) as u8, rng.u8()),
        3 => GcOp::Discard(rng.u8()),
        _ => GcOp::Collect,
    }
}

/// Whatever the op sequence, validation never trips: every rooted
/// object survives every collection, and full collections after
/// dropping all roots empty the heap.
#[test]
fn random_programs_never_observe_dangling() {
    for seed in 0..24u64 {
        let mut rng = Rng::new(seed.wrapping_add(5 << 32));
        let len = 1 + rng.below(59);
        let ops: Vec<GcOp> = (0..len).map(|_| gen_gc_op(&mut rng)).collect();
        let collector = Collector::new(GcConfig::builder().capacity(128).max_fields(2).build());
        let mut m = collector.register_mutator();
        let run_cycle = |m: &mut relaxing_safely::gc::Mutator| {
            let done = std::sync::atomic::AtomicBool::new(false);
            std::thread::scope(|s| {
                s.spawn(|| {
                    collector.collect();
                    done.store(true, std::sync::atomic::Ordering::Release);
                });
                while !done.load(std::sync::atomic::Ordering::Acquire) {
                    m.safepoint();
                    std::thread::yield_now();
                }
            });
        };
        for op in ops {
            let roots: Vec<_> = m.roots().collect();
            let pick = |i: u8| roots.get(i as usize % roots.len().max(1)).copied();
            match op {
                GcOp::Alloc(f) => {
                    if m.alloc(f as usize).is_err() {
                        run_cycle(&mut m); // reclaim, then retry once
                        let _ = m.alloc(f as usize);
                    }
                }
                GcOp::Load(r, f) => {
                    if let Some(src) = pick(r) {
                        if (f as usize) < m.field_count(src) {
                            let _ = m.load(src, f as usize);
                        }
                    }
                }
                GcOp::Store(s, f, d) => {
                    if let (Some(src), Some(dst)) = (pick(s), pick(d)) {
                        if (f as usize) < m.field_count(src) {
                            m.store(src, f as usize, Some(dst));
                        }
                    }
                }
                GcOp::Discard(r) => {
                    if let Some(g) = pick(r) {
                        m.discard(g);
                    }
                }
                GcOp::Collect => run_cycle(&mut m),
            }
        }
        // Teardown: drop all roots; two cycles must empty the heap.
        let roots: Vec<_> = m.roots().collect();
        for g in roots {
            m.discard(g);
        }
        run_cycle(&mut m);
        run_cycle(&mut m);
        assert_eq!(collector.live_objects(), 0, "seed {seed}");
    }
}
