//! Integration tests for the observability stack (`gc-trace`, DESIGN.md
//! §2.10): the instrumented collector feeding the tracer, the Chrome
//! trace-event exporter round-trip, the runtime-disable fast path, and the
//! metrics registry fed from real collector counters.

use std::sync::Mutex;

use relaxing_safely::gc::{Collector, GcConfig, HeapLayout};
use relaxing_safely::trace::chrome::{chrome_trace, jsonl, validate_chrome_trace};
use relaxing_safely::trace::{EventKind, Json, Registry, Tracer};

/// The tracer is process-global; tests that enable/drain it must not
/// interleave.
static TRACER: Mutex<()> = Mutex::new(());

/// Runs a small collector workload (one mutator churning a list) for at
/// least `cycles` completed cycles.
fn run_collector_with(cycles: u64, layout: HeapLayout) -> Collector {
    let collector = Collector::new(
        GcConfig::builder()
            .capacity(256)
            .max_fields(2)
            .layout(layout)
            .build(),
    );
    let mut m = collector.register_mutator();
    let anchor = m.alloc(2).expect("fresh heap has room");
    collector.start();
    let target = collector.stats().cycles() + cycles;
    let mut op = 0usize;
    while collector.stats().cycles() < target {
        m.safepoint();
        if let Ok(node) = m.alloc(2) {
            let old = m.load(anchor, 0);
            m.store(node, 0, old);
            m.store(anchor, 0, Some(node));
            if let Some(o) = old {
                m.discard(o);
            }
            m.discard(node);
        }
        if op.is_multiple_of(32) {
            m.store(anchor, 0, None);
        }
        op += 1;
    }
    drop(m);
    collector.stop();
    collector
}

fn run_collector(cycles: u64) -> Collector {
    run_collector_with(cycles, HeapLayout::Slab)
}

#[test]
fn disabled_tracer_records_nothing() {
    let _guard = TRACER.lock().unwrap();
    relaxing_safely::trace::disable();
    let _ = Tracer::global().drain(); // flush anything left behind
    for i in 0..1_000u64 {
        relaxing_safely::trace::emit(EventKind::Instant { id: 9, value: i });
    }
    let events: usize = Tracer::global()
        .drain()
        .iter()
        .map(|d| d.events.len())
        .sum();
    assert_eq!(events, 0, "runtime-disabled emit must record nothing");
}

#[test]
fn collector_events_export_as_nested_chrome_spans() {
    let _guard = TRACER.lock().unwrap();
    let _ = Tracer::global().drain();
    relaxing_safely::trace::enable();
    let collector = run_collector(3);
    relaxing_safely::trace::disable();
    let dumps = Tracer::global().drain();

    // The raw stream carries the typed runtime vocabulary.
    let kinds: Vec<&'static str> = dumps
        .iter()
        .flat_map(|d| d.events.iter().map(|e| e.kind.name()))
        .collect();
    for expected in [
        "cycle_begin",
        "cycle_end",
        "phase_enter",
        "handshake_begin",
        "handshake_end",
        "barrier_hit",
        "alloc_color",
    ] {
        assert!(
            kinds.contains(&expected),
            "instrumented run must emit {expected}; got kinds {:?}",
            {
                let mut uniq = kinds.clone();
                uniq.sort_unstable();
                uniq.dedup();
                uniq
            }
        );
    }

    // The Chrome export validates and nests phases under cycle spans.
    let doc = chrome_trace(&dumps);
    let summary = validate_chrome_trace(&doc).expect("generated trace must validate");
    assert!(summary.spans > 0, "cycles must export as spans");
    assert!(summary.tracks >= 2, "collector + mutator tracks");
    let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
    let names: Vec<&str> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("B"))
        .filter_map(|e| e.get("name").and_then(Json::as_str))
        .collect();
    assert!(
        names.iter().any(|n| n.starts_with("cycle ")),
        "span names: {names:?}"
    );
    for phase in ["mark", "sweep"] {
        assert!(
            names.contains(&phase),
            "phase `{phase}` must open a nested span; got {names:?}"
        );
    }
    let cycle_pos = names.iter().position(|n| n.starts_with("cycle ")).unwrap();
    let mark_pos = names.iter().position(|n| *n == "mark").unwrap();
    assert!(
        cycle_pos < mark_pos,
        "the first cycle span must open before the first mark span"
    );

    // The JSONL export carries one valid JSON object per line.
    let lines = jsonl(&dumps);
    for line in lines.lines().take(50) {
        let row = Json::parse(line).expect("each JSONL line parses");
        assert!(row.get("event").is_some(), "line missing `event`: {line}");
    }

    // And the run itself was a real collection workload.
    assert!(collector.stats().cycles() >= 3);
    assert!(collector.stats().freed() > 0);
}

#[test]
fn segmented_layout_emits_the_allocation_event_vocabulary() {
    let _guard = TRACER.lock().unwrap();
    let _ = Tracer::global().drain();
    relaxing_safely::trace::enable();
    let collector = run_collector_with(
        3,
        HeapLayout::Segmented {
            segment_slots: 32,
            tlab_slots: 8,
        },
    );
    relaxing_safely::trace::disable();
    let dumps = Tracer::global().drain();
    let kinds: Vec<&'static str> = dumps
        .iter()
        .flat_map(|d| d.events.iter().map(|e| e.kind.name()))
        .collect();
    for expected in ["tlab_refill", "segment_claimed", "lazy_sweep_segment"] {
        assert!(
            kinds.contains(&expected),
            "segmented run must emit {expected}; got kinds {:?}",
            {
                let mut uniq = kinds.clone();
                uniq.sort_unstable();
                uniq.dedup();
                uniq
            }
        );
    }
    // The stats agree with the trace: refills and lazy sweeps happened.
    assert!(collector.stats().tlab_refills() > 0);
    assert!(collector.stats().lazy_sweep_segments() > 0);
    // And the Chrome export still validates with the new instants.
    let doc = chrome_trace(&dumps);
    validate_chrome_trace(&doc).expect("segmented trace must validate");
}

#[test]
fn metrics_registry_reflects_collector_counters() {
    // Serialized too: this test's collector has instrumented sites that
    // would emit into the global tracer if a concurrent test had tracing
    // enabled, breaking the other tests' drain expectations.
    let _guard = TRACER.lock().unwrap();
    let collector = run_collector(2);
    let s = collector.stats();

    let registry = Registry::new();
    registry.counter("gc_cycles").add(s.cycles());
    registry.counter("gc_allocated").add(s.allocated());
    registry.counter("gc_freed").add(s.freed());
    registry
        .gauge("gc_live_objects")
        .set(collector.live_objects() as i64);
    let h = registry.histogram("gc_cycle_duration_ns");
    for c in s.history() {
        h.record(c.duration_ns);
    }

    let text = registry.render_text();
    assert!(text.contains("# TYPE gc_cycles counter"));
    assert!(text.contains("# TYPE gc_live_objects gauge"));
    assert!(text.contains("gc_cycle_duration_ns{quantile=\"0.50\"}"));

    let snap = registry.snapshot();
    let cycles = snap
        .get("counters")
        .and_then(|c| c.get("gc_cycles"))
        .and_then(Json::as_f64)
        .expect("snapshot carries gc_cycles");
    assert_eq!(cycles as u64, s.cycles());

    // The GcStats JSON view round-trips through the gc-trace parser — the
    // contract the bench records rely on.
    let parsed = Json::parse(&s.to_json()).expect("GcStats::to_json is valid JSON");
    assert_eq!(
        parsed
            .get("cycles")
            .and_then(Json::as_f64)
            .map(|v| v as u64),
        Some(s.cycles())
    );
    let last = s.history().last().copied().unwrap();
    let parsed = Json::parse(&last.to_json()).expect("CycleStats::to_json is valid JSON");
    assert!(parsed.get("chaos_ns").is_some());
    assert!(last.timing_consistent(), "completed cycle timings compose");
}
