//! Chaos-under-serve integration tests: the full serving stack (admission
//! control, deadline-aware allocation, adaptive pacing, the session
//! keeper) survives a bounded fault storm and recovers.
//!
//! The storm plan combines every runtime fault site that matters under
//! load — handshake-delay yield storms, mutator silence (arming the
//! handshake watchdog), mark delays, TLAB-refill and lazy-sweep
//! perturbation on the segmented layout, injected mid-barrier mutator
//! panics, and the serve harness's own worker panics at request
//! boundaries. Injection is suppressed outside the middle third of the
//! request stream, so the oracle gets a clean warm-up and a fair recovery
//! window to measure against the SLO.

use relaxing_safely::gc::{FaultPlan, HeapLayout};
use relaxing_safely::serve::{run_serve, ServeConfig};
use relaxing_safely::trace::Registry;

/// The layout under test, honouring the `GC_TEST_LAYOUT` environment
/// variable exactly like the runtime suite (`slab` when unset,
/// `segmented` in the CI layout matrix).
fn test_layout(capacity: usize) -> HeapLayout {
    match std::env::var("GC_TEST_LAYOUT").as_deref() {
        Ok("segmented") => HeapLayout::segmented_default(capacity),
        _ => HeapLayout::Slab,
    }
}

/// A storm hitting every fault site the serve loop can reach. Rates are
/// per-10,000 draws; the worker-panic site draws once per serve-loop
/// iteration, so a 30% rate kills workers several times during the storm
/// even while admission control is shedding most of the load.
fn storm_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with_handshake_delay(3_000)
        .with_silence(500, 2)
        .with_mark_delay(1_500)
        .with_tlab_refill(1_000)
        .with_lazy_sweep(1_000)
        .with_mutator_panic(30)
        .with_worker_panic(3_000)
}

#[test]
fn serve_survives_a_chaos_storm_and_recovers() {
    // The worker-panic site only draws on requests a worker actually
    // processes inside the storm window; on a slow (debug, loaded) box
    // admission control can shed nearly the whole window and the storm
    // never reaches a worker. The oracle must hold on *every* run, but
    // the panic-reaches-the-loop half is allowed a few re-rolls — each
    // attempt is a full serve run asserted healthy.
    let mut report = None;
    for attempt in 0u64..5 {
        let mut cfg =
            ServeConfig::quick(test_layout(256)).with_storm(storm_plan(0xc4a05 + attempt));
        // The storm aborts cycles through the handshake watchdog, so a
        // recovery-window request can still absorb one ~100ms stall tail;
        // keep the SLO meaningful (below the 250ms deadline) but with
        // margin against a loaded CI runner.
        cfg.slo = std::time::Duration::from_millis(200);
        let registry = Registry::new();
        let r = run_serve(&cfg, &registry);

        // The recovery oracle: no lost sessions, no use-after-free, every
        // request accounted for, post-storm p99 back under the SLO.
        assert!(
            r.is_healthy(),
            "oracle violations under storm: {:?}\nfull report: {r:?}",
            r.violations
        );
        let hit = r.worker_panics >= 1;
        report = Some(r);
        if hit {
            break;
        }
    }
    let report = report.expect("at least one serve run");
    assert!(
        report.worker_panics >= 1,
        "the storm never killed a worker in 5 attempts — injection did not reach the serve loop: {report:?}"
    );
    assert!(report.ok > 0, "nothing was served: {report:?}");
    assert_eq!(report.lost_sessions, 0);
    assert!(!report.uaf_detected);
    assert_eq!(
        report.sessions_live, report.sessions_created,
        "sessions must survive worker deaths via the keeper handoff"
    );
    assert!(
        report.post_storm_p99_ns.is_some(),
        "recovery window must have completions: {report:?}"
    );
    // Progress despite the storm: the paced collector kept cycling.
    assert!(report.cycles > 0, "collector made no progress: {report:?}");
}

#[test]
fn storm_runs_are_deterministic_in_their_fault_stream() {
    // Two runs under the same seeds draw identical chaos decisions and
    // identical load; scheduling still differs, so only the *seeded*
    // quantities are compared.
    let cfg = ServeConfig::quick(test_layout(256)).with_storm(storm_plan(7));
    let a = run_serve(&cfg, &Registry::new());
    let b = run_serve(&cfg, &Registry::new());
    assert_eq!(a.requests, b.requests);
    assert!(
        a.is_healthy() && b.is_healthy(),
        "{:?} / {:?}",
        a.violations,
        b.violations
    );
}
