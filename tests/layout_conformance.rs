//! Layout conformance: the slab and segmented heaps must be
//! observationally identical through the allocation API.
//!
//! Every test here runs the *same seeded workload* once per
//! [`HeapLayout`] and demands identical liveness verdicts — the
//! barriers, mark CAS, and handshake protocol are shared, so any
//! divergence is a bug in the layout-specific allocation, bitmap, or
//! lazy-sweep code. `debug_verify_integrity` runs after every workload
//! as the structural oracle, and validation mode (on by default) turns
//! any freed-while-reachable access into an immediate panic.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use relaxing_safely::gc::{ChaosSite, Collector, FaultPlan, Gc, GcConfig, HeapLayout, Mutator};

/// The layouts under comparison. Geometry is picked per-test so that
/// capacity is always an exact multiple of `segment_slots`.
fn layouts(segment_slots: usize, tlab_slots: usize) -> [HeapLayout; 2] {
    [
        HeapLayout::Slab,
        HeapLayout::Segmented {
            segment_slots,
            tlab_slots,
        },
    ]
}

/// Deterministic SplitMix64 so both layouts replay the same op stream.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Runs one full collection cycle while `m` answers handshakes, so the
/// workload stays single-mutator-deterministic: no allocation or store
/// races the cycle, only safepoint acks.
fn quiescent_collect(collector: &Collector, m: &mut Mutator) {
    let done = AtomicBool::new(false);
    std::thread::scope(|s| {
        s.spawn(|| {
            assert!(collector.collect().is_completed());
            done.store(true, Ordering::Release);
        });
        while !done.load(Ordering::Acquire) {
            m.safepoint();
            std::thread::yield_now();
        }
    });
}

/// The verdict a workload produces under one layout: live counts after
/// every quiescent cycle plus per-cycle freed counts. Two layouts agree
/// iff they reclaim exactly the same objects at the same cycles.
#[derive(Debug, PartialEq, Eq)]
struct Verdict {
    live_after_each_cycle: Vec<usize>,
    freed_per_cycle: Vec<u64>,
    final_live: usize,
}

/// A seeded single-mutator graph-churn workload: allocate, link,
/// unlink, drop roots, and collect at deterministic points. The heap is
/// sized so allocation never fails — the emergency path is exercised
/// elsewhere — keeping the op stream identical across layouts.
fn run_workload(layout: HeapLayout, seed: u64) -> Verdict {
    let cfg = GcConfig::builder()
        .capacity(512)
        .max_fields(2)
        .layout(layout)
        .build();
    let collector = Collector::new(cfg);
    let mut m = collector.register_mutator();
    let mut rng = Rng(seed);
    let mut roots: Vec<Gc> = Vec::new();
    let mut verdict = Verdict {
        live_after_each_cycle: Vec::new(),
        freed_per_cycle: Vec::new(),
        final_live: 0,
    };

    for op in 0..600 {
        match rng.below(100) {
            // Allocate a fresh root, sometimes linking it to an old one.
            0..=44 => {
                let g = m.alloc(2).expect("heap sized to never fill");
                if !roots.is_empty() && rng.below(2) == 0 {
                    let parent = roots[rng.below(roots.len())];
                    m.store(parent, rng.below(2), Some(g));
                }
                roots.push(g);
            }
            // Re-link two survivors (exercises both barriers).
            45..=69 if roots.len() >= 2 => {
                let a = roots[rng.below(roots.len())];
                let b = roots[rng.below(roots.len())];
                m.store(a, rng.below(2), Some(b));
            }
            // Sever an edge.
            70..=79 if !roots.is_empty() => {
                let a = roots[rng.below(roots.len())];
                m.store(a, rng.below(2), None);
            }
            // Drop a root: the object may survive via another's field.
            _ if !roots.is_empty() => {
                let victim = roots.swap_remove(rng.below(roots.len()));
                m.discard(victim);
            }
            _ => {}
        }
        // Collect at fixed op counts so cycle boundaries line up.
        if op % 150 == 149 {
            let freed_before = collector.stats().freed();
            quiescent_collect(&collector, &mut m);
            verdict.live_after_each_cycle.push(collector.live_objects());
            verdict
                .freed_per_cycle
                .push(collector.stats().freed() - freed_before);
        }
    }

    // Drain every root and collect twice: everything must go. Two
    // cycles, not one, because the segmented layout publishes the final
    // sweep verdict lazily and `live_objects` is only obliged to agree
    // once the following cycle's mop-up lands.
    for g in roots.drain(..) {
        m.discard(g);
    }
    quiescent_collect(&collector, &mut m);
    quiescent_collect(&collector, &mut m);
    verdict.final_live = collector.live_objects();
    collector
        .debug_verify_integrity()
        .expect("heap coherent after workload");
    verdict
}

#[test]
fn seeded_workloads_produce_identical_verdicts() {
    for seed in [1, 0xBEEF, 0x5EED_5EED, 42_424_242] {
        let [slab, seg] = layouts(64, 16);
        let v_slab = run_workload(slab, seed);
        let v_seg = run_workload(seg, seed);
        assert_eq!(
            v_slab, v_seg,
            "layouts diverged on seed {seed:#x}: slab={v_slab:?} segmented={v_seg:?}"
        );
        assert_eq!(v_slab.final_live, 0, "full drain reclaims everything");
    }
}

#[test]
fn odd_segment_geometry_conforms_too() {
    // Segments much smaller than the heap and a TLAB smaller than a
    // segment: refill must span several segments per request.
    let [slab, seg] = layouts(8, 3);
    let v_slab = run_workload(slab, 7);
    let v_seg = run_workload(seg, 7);
    assert_eq!(v_slab, v_seg);
}

/// Multi-threaded churn under chaos storms aimed at the two new
/// segmented-only sites, run under *both* layouts (on the slab the
/// sites simply never fire, proving the plan is layout-agnostic).
fn torture(layout: HeapLayout) -> Collector {
    let plan = FaultPlan::new(0xD15EA5E)
        .with_handshake_delay(1_500)
        .with_tlab_refill(4_000)
        .with_lazy_sweep(4_000);
    let cfg = GcConfig::builder()
        .capacity(1024)
        .max_fields(2)
        .layout(layout)
        .chaos(plan)
        .build();
    let collector = Collector::new(cfg);
    let mut m0 = collector.register_mutator();
    let anchor = m0.alloc(2).unwrap();
    collector.start();
    let finished = AtomicUsize::new(0);
    const MUTS: usize = 3;
    const OPS: usize = 4_000;
    std::thread::scope(|s| {
        for _ in 0..MUTS {
            let mut m = collector.register_mutator();
            m.adopt(anchor);
            let finished = &finished;
            s.spawn(move || {
                for op in 0..OPS {
                    m.safepoint();
                    if let Ok(node) = m.alloc(2) {
                        let old = m.load(anchor, 0);
                        m.store(node, 0, old);
                        m.store(anchor, 0, Some(node));
                        if let Some(o) = old {
                            m.discard(o);
                        }
                        m.discard(node);
                    } else {
                        std::thread::yield_now();
                    }
                    if op % 128 == 0 {
                        m.store(anchor, 0, None);
                    }
                }
                finished.fetch_add(1, Ordering::Release);
            });
        }
        let finished = &finished;
        s.spawn(move || {
            while finished.load(Ordering::Acquire) < MUTS {
                m0.safepoint();
                std::thread::yield_now();
            }
            drop(m0);
        });
    });
    collector.stop();
    collector
        .debug_verify_integrity()
        .expect("heap coherent after torture");
    collector
}

#[test]
fn torture_with_chaos_on_the_segmented_sites() {
    let collector = torture(HeapLayout::Segmented {
        segment_slots: 64,
        tlab_slots: 16,
    });
    assert!(collector.stats().cycles() > 0);
    assert!(collector.stats().freed() > 0);
    assert!(
        collector.stats().tlab_refills() > 0,
        "segmented torture must exercise the refill path"
    );
    assert!(
        collector.stats().chaos_fired(ChaosSite::TlabRefill) > 0,
        "chaos fired on TLAB refill"
    );
}

#[test]
fn torture_with_the_same_plan_on_the_slab() {
    let collector = torture(HeapLayout::Slab);
    assert!(collector.stats().cycles() > 0);
    assert!(collector.stats().freed() > 0);
    // The segmented-only sites never fire on the slab; the plan is
    // still valid and everything else injects as usual.
    assert_eq!(collector.stats().chaos_fired(ChaosSite::TlabRefill), 0);
    assert_eq!(collector.stats().chaos_fired(ChaosSite::LazySweep), 0);
}

#[test]
fn emergency_allocation_recovers_under_both_layouts() {
    for layout in layouts(8, 4) {
        let cfg = GcConfig::builder()
            .capacity(32)
            .max_fields(1)
            .layout(layout)
            .emergency_retries(4)
            .build();
        let collector = Collector::new(cfg);
        let mut m = collector.register_mutator();
        let mut held = Vec::new();
        // Fill the heap completely, drop everything, then allocate
        // again: the emergency cycle must reclaim and satisfy it even
        // though no background collector thread is running.
        while let Ok(g) = m.alloc(1) {
            held.push(g);
        }
        assert!(
            held.len() >= 24,
            "near-full fill (TLAB reservation may hold back a few slots): got {}",
            held.len()
        );
        for g in held.drain(..) {
            m.discard(g);
        }
        let g = m.alloc(1).expect("emergency collection recovers");
        m.discard(g);
        collector
            .debug_verify_integrity()
            .expect("heap coherent after emergency path");
    }
}
