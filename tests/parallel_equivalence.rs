//! The tentpole guarantee of the parallel checker: for any thread count,
//! `Strategy::Bfs` visits the same states, reports the same verdict, and —
//! on violated runs — returns the same shortest counterexample as the
//! sequential search.

use relaxing_safely::mc::{Checker, CheckerConfig, Outcome, Strategy};
use relaxing_safely::model::invariants::{combined_property, safety_property};
use relaxing_safely::model::{GcModel, InitialHeap, ModelConfig};

fn run(
    cfg: &ModelConfig,
    threads: usize,
    full_suite: bool,
    hash_compact: bool,
) -> Outcome<GcModel> {
    let prop = if full_suite {
        combined_property(cfg)
    } else {
        safety_property(cfg)
    };
    Checker::with_config(CheckerConfig {
        max_states: 2_000_000,
        hash_compact,
        ..CheckerConfig::default()
    })
    .strategy(Strategy::Bfs { threads })
    .property(prop)
    .run(&GcModel::new(cfg.clone()))
}

/// A trimmed headline-safety configuration (the `model_safety.rs` faithful
/// instance): every thread count explores the identical state space and
/// verifies.
#[test]
fn thread_counts_agree_on_the_headline_config() {
    let mut cfg = ModelConfig::small(1, 2);
    cfg.ops.alloc = false;
    cfg.ops.load = false;
    for hash_compact in [false, true] {
        let base = run(&cfg, 1, true, hash_compact);
        assert!(base.is_verified(), "got {:?}", base.stats());
        assert!(base.stats().states > 5_000);
        for threads in [2, 4] {
            let out = run(&cfg, threads, true, hash_compact);
            assert!(out.is_verified());
            assert_eq!(
                out.stats(),
                base.stats(),
                "threads={threads} hash_compact={hash_compact}"
            );
        }
    }
}

/// A seeded violation (ablated deletion barrier, the Figure 1 chain): the
/// parallel search reports the same property, the same statistics, and a
/// byte-identical shortest counterexample.
#[test]
fn thread_counts_agree_on_a_seeded_violation() {
    let mut cfg = ModelConfig::small(1, 3);
    cfg.deletion_barrier = false;
    cfg.initial = InitialHeap::chain(1, 2, 1);
    cfg.ops.alloc = false;
    let base = run(&cfg, 1, true, true);
    assert_eq!(
        base.violated_property(),
        Some("mutator_phase_inv (marked_deletions)")
    );
    let base_trace = base.trace().expect("violation has a trace");
    for threads in [2, 4] {
        let out = run(&cfg, threads, true, true);
        assert_eq!(out.violated_property(), base.violated_property());
        assert_eq!(out.stats(), base.stats(), "threads={threads}");
        let trace = out.trace().expect("violation has a trace");
        assert_eq!(
            trace.actions.len(),
            base_trace.actions.len(),
            "threads={threads}: counterexample must stay shortest"
        );
        assert_eq!(trace.actions, base_trace.actions, "threads={threads}");
        assert_eq!(trace.state, base_trace.state);
    }
}
