//! The tentpole guarantee of the parallel checker: for any thread count,
//! `Strategy::Bfs` visits the same states, reports the same verdict, and —
//! on violated runs — returns the same shortest counterexample as the
//! sequential search.

use std::time::Duration;

use relaxing_safely::mc::{Bound, Checker, CheckerConfig, Outcome, Strategy};
use relaxing_safely::model::invariants::{combined_property, safety_property};
use relaxing_safely::model::{GcModel, InitialHeap, ModelConfig};

fn run(
    cfg: &ModelConfig,
    threads: usize,
    full_suite: bool,
    hash_compact: bool,
) -> Outcome<GcModel> {
    let prop = if full_suite {
        combined_property(cfg)
    } else {
        safety_property(cfg)
    };
    Checker::with_config(CheckerConfig {
        max_states: 2_000_000,
        hash_compact,
        ..CheckerConfig::default()
    })
    .strategy(Strategy::Bfs { threads })
    .property(prop)
    .run(&GcModel::new(cfg.clone()))
}

/// A trimmed headline-safety configuration (the `model_safety.rs` faithful
/// instance): every thread count explores the identical state space and
/// verifies.
#[test]
fn thread_counts_agree_on_the_headline_config() {
    let mut cfg = ModelConfig::small(1, 2);
    cfg.ops.alloc = false;
    cfg.ops.load = false;
    for hash_compact in [false, true] {
        let base = run(&cfg, 1, true, hash_compact);
        assert!(base.is_verified(), "got {:?}", base.stats());
        assert!(base.stats().states > 5_000);
        for threads in [2, 4] {
            let out = run(&cfg, threads, true, hash_compact);
            assert!(out.is_verified());
            assert_eq!(
                out.stats(),
                base.stats(),
                "threads={threads} hash_compact={hash_compact}"
            );
        }
    }
}

/// A seeded violation (ablated deletion barrier, the Figure 1 chain): the
/// parallel search reports the same property, the same statistics, and a
/// byte-identical shortest counterexample.
#[test]
fn thread_counts_agree_on_a_seeded_violation() {
    let mut cfg = ModelConfig::small(1, 3);
    cfg.deletion_barrier = false;
    cfg.initial = InitialHeap::chain(1, 2, 1);
    cfg.ops.alloc = false;
    let base = run(&cfg, 1, true, true);
    assert_eq!(
        base.violated_property(),
        Some("mutator_phase_inv (marked_deletions)")
    );
    let base_trace = base.trace().expect("violation has a trace");
    for threads in [2, 4] {
        let out = run(&cfg, threads, true, true);
        assert_eq!(out.violated_property(), base.violated_property());
        assert_eq!(out.stats(), base.stats(), "threads={threads}");
        let trace = out.trace().expect("violation has a trace");
        assert_eq!(
            trace.actions.len(),
            base_trace.actions.len(),
            "threads={threads}: counterexample must stay shortest"
        );
        assert_eq!(trace.actions, base_trace.actions, "threads={threads}");
        assert_eq!(trace.state, base_trace.state);
    }
}

fn run_bounded(cfg: &ModelConfig, threads: usize, checker_cfg: CheckerConfig) -> Outcome<GcModel> {
    Checker::with_config(checker_cfg)
        .strategy(Strategy::Bfs { threads })
        .property(safety_property(cfg))
        .run(&GcModel::new(cfg.clone()))
}

/// Hitting `max_states` is not an escape hatch from determinism: every
/// thread count reports `BoundReached` with the identical partial
/// statistics, because the bound is enforced in the sequential-order drain.
#[test]
fn state_bound_is_deterministic_across_thread_counts() {
    let mut cfg = ModelConfig::small(1, 2);
    cfg.ops.alloc = false;
    cfg.ops.load = false;
    let bounded = |threads: usize| {
        run_bounded(
            &cfg,
            threads,
            CheckerConfig {
                max_states: 2_000,
                ..CheckerConfig::default()
            },
        )
    };
    let base = bounded(1);
    let Outcome::BoundReached { bound, stats } = &base else {
        panic!("expected BoundReached, got {base:?}");
    };
    assert_eq!(*bound, Bound::States(2_000));
    assert_eq!(stats.states, 2_000, "cut exactly at the bound");
    assert!(stats.transitions > 0, "partial stats stay coherent");
    assert!(stats.depth > 0);
    for threads in [2, 4] {
        let out = bounded(threads);
        let Outcome::BoundReached { bound: b, stats: s } = &out else {
            panic!("threads={threads}: expected BoundReached, got {out:?}");
        };
        assert_eq!(b, bound, "threads={threads}");
        assert_eq!(s, stats, "threads={threads}");
    }
}

/// An expired `time_limit` likewise degrades deterministically: a
/// zero-duration budget stops every worker before it expands anything, so
/// all thread counts agree on the (initial-states-only) partial statistics.
#[test]
fn expired_time_limit_is_deterministic_across_thread_counts() {
    let mut cfg = ModelConfig::small(1, 2);
    cfg.ops.alloc = false;
    cfg.ops.load = false;
    let bounded = |threads: usize| {
        run_bounded(
            &cfg,
            threads,
            CheckerConfig {
                time_limit: Some(Duration::ZERO),
                ..CheckerConfig::default()
            },
        )
    };
    let base = bounded(1);
    let Outcome::BoundReached { bound, stats } = &base else {
        panic!("expected BoundReached, got {base:?}");
    };
    assert_eq!(*bound, Bound::Time(Duration::ZERO));
    assert_eq!(stats.transitions, 0, "nothing expanded under a zero budget");
    assert_eq!(stats.depth, 0);
    assert!(stats.states > 0, "initial states are still counted");
    for threads in [2, 4] {
        let out = bounded(threads);
        let Outcome::BoundReached { bound: b, stats: s } = &out else {
            panic!("threads={threads}: expected BoundReached, got {out:?}");
        };
        assert_eq!(b, bound, "threads={threads}");
        assert_eq!(s, stats, "threads={threads}");
    }
}
