//! End-to-end tests for the `gc-trace diff` regression gate (DESIGN.md
//! §2.14), driving the real binary over really-recorded traces: two
//! recordings of the same seeded workload diff clean under the CI
//! thresholds, a seeded latency perturbation trips the default
//! thresholds, and corrupt input produces a structured nonzero failure
//! rather than a panic.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use relaxing_safely::trace::Json;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_gc-trace")
}

/// A scratch directory unique to this test process.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gc-trace-diff-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Runs the demo workload into `out`, returning the recorded JSONL path.
fn record_demo(out: &Path) -> PathBuf {
    let status = Command::new(bin())
        .args([
            "--out",
            out.to_str().unwrap(),
            "--mutators",
            "2",
            "--ops",
            "1500",
        ])
        .status()
        .expect("run gc-trace demo");
    assert!(status.success(), "demo run failed: {status}");
    let path = out.join("trace.jsonl");
    assert!(path.exists(), "demo produced no trace.jsonl");
    path
}

fn diff(args: &[&str]) -> Output {
    Command::new(bin())
        .arg("diff")
        .args(args)
        .output()
        .expect("run gc-trace diff")
}

#[test]
fn same_workload_twice_diffs_clean_under_ci_thresholds() {
    let dir = scratch("tworuns");
    let a = record_demo(&dir.join("a"));
    let b = record_demo(&dir.join("b"));
    // The CI gate's thresholds: shape must persist — every event family
    // the baseline recorded must still appear, with volumes in the same
    // order of magnitude. Wall-clock latencies are machine noise across
    // runs, cycle counts scale with wall time under background
    // collection, and alloc-color mixes flip with cycle phase on short
    // runs, so those gates are opened wide here; their precise
    // sensitivity (the +20% handshake test below, the unit suite in
    // `gc_trace::diff`) is asserted on controlled inputs instead.
    let verdict_path = dir.join("verdict.json");
    let out = diff(&[
        a.to_str().unwrap(),
        b.to_str().unwrap(),
        "--shape-only",
        "--count-rel",
        "30.0",
        "--mix-abs",
        "1.0",
        "--json",
        verdict_path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "two runs of the same workload regressed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let verdict = Json::parse(&std::fs::read_to_string(&verdict_path).expect("verdict written"))
        .expect("verdict parses");
    assert_eq!(
        verdict.get("verdict").and_then(Json::as_str),
        Some("clean"),
        "verdict: {verdict}"
    );
    assert_eq!(
        verdict.get("schema").and_then(Json::as_str),
        Some("gc-trace-diff/v1")
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn seeded_latency_perturbation_trips_the_default_thresholds() {
    let dir = scratch("perturb");
    let base = record_demo(&dir);

    // Scale every timestamp by 1.2: every recorded span — handshakes
    // included — gets 20% slower while all counts and mixes stay
    // byte-identical, exactly the regression the latency gate exists for.
    let text = std::fs::read_to_string(&base).expect("read base trace");
    let mut perturbed = String::new();
    for line in text.lines() {
        let mut record = Json::parse(line).expect("trace line parses");
        if let Json::Obj(entries) = &mut record {
            for (key, value) in entries.iter_mut() {
                if key == "ts_ns" {
                    if let Json::Num(ts) = value {
                        *ts *= 1.2;
                    }
                }
            }
        }
        perturbed.push_str(&format!("{record}\n"));
    }
    let slow = dir.join("trace_slow.jsonl");
    std::fs::write(&slow, perturbed).expect("write perturbed trace");

    let verdict_path = dir.join("verdict.json");
    let out = diff(&[
        base.to_str().unwrap(),
        slow.to_str().unwrap(),
        "--json",
        verdict_path.to_str().unwrap(),
    ]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "a +20% slowdown must regress at default thresholds:\nstdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let verdict = Json::parse(&std::fs::read_to_string(&verdict_path).expect("verdict written"))
        .expect("verdict parses");
    assert_eq!(
        verdict.get("verdict").and_then(Json::as_str),
        Some("regressed")
    );
    let findings = verdict
        .get("findings")
        .and_then(Json::as_arr)
        .expect("findings array");
    assert!(
        findings.iter().any(|f| {
            matches!(f.get("regressed"), Some(Json::Bool(true)))
                && f.get("metric")
                    .and_then(Json::as_str)
                    .is_some_and(|m| m.contains("latency") || m.contains("_ns"))
        }),
        "no latency finding regressed: {verdict}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_input_is_a_structured_failure() {
    let dir = scratch("corrupt");
    let good = dir.join("good.jsonl");
    let bad = dir.join("bad.jsonl");
    std::fs::write(
        &good,
        "{\"ts_ns\":1,\"track\":0,\"track_name\":\"t\",\"event\":\"cycle_begin\",\"cycle\":1}\n\
         {\"ts_ns\":9,\"track\":0,\"track_name\":\"t\",\"event\":\"cycle_end\",\"cycle\":1,\"freed\":0,\"traced\":1}\n",
    )
    .unwrap();
    // Truncated mid-record on line 2.
    std::fs::write(
        &bad,
        "{\"ts_ns\":1,\"track\":0,\"track_name\":\"t\",\"event\":\"cycle_begin\",\"cycle\":1}\n\
         {\"ts_ns\":9,\"track\":0,\"tr",
    )
    .unwrap();
    let out = diff(&[good.to_str().unwrap(), bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "corrupt input must exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("line 2"),
        "error should name the corrupt line, got: {stderr}"
    );

    let out = diff(&[
        good.to_str().unwrap(),
        dir.join("missing.jsonl").to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2), "missing input must exit 2");
    let _ = std::fs::remove_dir_all(&dir);
}
