//! Integration tests: the model checker re-establishes the paper's results
//! end to end — the faithful configurations verify, every ablation fails
//! in the predicted way.
//!
//! Instances here are trimmed so the whole file runs in seconds; the
//! experiment binaries in `gc-bench` run the full-size versions recorded
//! in EXPERIMENTS.md.

use relaxing_safely::mc::{Checker, CheckerConfig, Outcome};
use relaxing_safely::model::invariants::{combined_property, safety_property};
use relaxing_safely::model::{GcModel, InitialHeap, ModelConfig};

fn compact(max_states: usize) -> CheckerConfig {
    CheckerConfig {
        max_states,
        hash_compact: true,
        ..CheckerConfig::default()
    }
}

fn run_full(cfg: &ModelConfig, max_states: usize) -> Outcome<GcModel> {
    Checker::with_config(compact(max_states))
        .property(combined_property(cfg))
        .run(&GcModel::new(cfg.clone()))
}

fn run_safety(cfg: &ModelConfig, max_states: usize) -> Outcome<GcModel> {
    Checker::with_config(compact(max_states))
        .property(safety_property(cfg))
        .run(&GcModel::new(cfg.clone()))
}

/// A trimmed faithful instance explores completely and satisfies the full
/// §3.2 suite (store + discard exercises both barriers and the handshake
/// raggedness).
#[test]
fn faithful_trimmed_instance_verifies() {
    let mut cfg = ModelConfig::small(1, 2);
    cfg.ops.alloc = false;
    cfg.ops.load = false;
    let out = run_full(&cfg, 2_000_000);
    assert!(out.is_verified(), "got {:?}", out.stats());
    // The store+discard instance is small but non-trivial (≈8.1k states:
    // full barrier machinery, handshakes and TSO buffers all exercised).
    assert!(
        out.stats().states > 5_000,
        "the instance must be non-trivial"
    );
}

/// Sequential consistency: the same instance verifies with a much smaller
/// state space (the TSO buffers are the state multiplier).
#[test]
fn sc_instance_verifies_smaller() {
    let mut cfg = ModelConfig::small(1, 2);
    cfg.ops.alloc = false;
    cfg.ops.load = false;
    let tso_states = run_full(&cfg, 2_000_000).stats().states;
    cfg.memory_model = relaxing_safely::tso::MemoryModel::Sc;
    let out = run_full(&cfg, 2_000_000);
    assert!(out.is_verified());
    assert!(
        out.stats().states < tso_states,
        "SC ({}) must be smaller than TSO ({})",
        out.stats().states,
        tso_states
    );
}

/// Removing the insertion barrier breaks the on-the-fly snapshot (§2).
#[test]
fn no_insertion_barrier_is_unsound() {
    let mut cfg = ModelConfig::small(1, 3);
    cfg.insertion_barrier = false;
    let out = run_full(&cfg, 3_000_000);
    assert!(out.is_violated(), "got {:?}", out.stats());
}

/// Removing the deletion barrier loses the Figure 1 chain.
#[test]
fn no_deletion_barrier_is_unsound() {
    let mut cfg = ModelConfig::small(1, 3);
    cfg.deletion_barrier = false;
    cfg.initial = InitialHeap::chain(1, 2, 1);
    cfg.ops.alloc = false;
    let out = run_full(&cfg, 1_000_000);
    assert!(out.is_violated(), "got {:?}", out.stats());
    // The first broken invariant is the deletion-barrier obligation.
    assert_eq!(
        out.violated_property(),
        Some("mutator_phase_inv (marked_deletions)")
    );
}

/// Setting `f_A := f_M` before the barriers are known to be installed
/// (§3.2 hp_InitMark's warning) breaks the phase invariants.
#[test]
fn premature_black_allocation_is_unsound() {
    let mut cfg = ModelConfig::small(1, 3);
    cfg.premature_alloc_black = true;
    let out = run_full(&cfg, 500_000);
    assert!(out.is_violated());
}

/// An unsynchronised (non-CAS) mark lets two racers both win, breaking
/// work-list disjointness (`valid_W_inv`).
#[test]
fn racy_mark_breaks_valid_w() {
    let mut cfg = ModelConfig::small(1, 3);
    cfg.mark_cas = false;
    let out = run_full(&cfg, 500_000);
    assert!(out.is_violated());
    assert_eq!(out.violated_property(), Some("valid_W_inv"));
}

/// Without the handshake fences, TSO breaks *safety* itself: the
/// uncommitted `f_A` write lets a post-snapshot allocation come out white
/// and be swept while rooted.
#[test]
fn missing_fences_break_safety_on_tso() {
    let mut cfg = ModelConfig::small(1, 2);
    cfg.handshake_fences = false;
    let out = run_safety(&cfg, 2_000_000);
    assert!(out.is_violated());
    assert_eq!(out.violated_property(), Some("valid_refs_inv"));
}

/// ... and the identical fence-free protocol is safe under SC.
#[test]
fn missing_fences_are_fine_under_sc() {
    let mut cfg = ModelConfig::small(1, 2);
    cfg.handshake_fences = false;
    cfg.memory_model = relaxing_safely::tso::MemoryModel::Sc;
    let out = run_safety(&cfg, 4_000_000);
    assert!(out.is_verified(), "got {:?}", out.stats());
}

/// §4's observation: the two initialization noop handshakes are redundant
/// on x86-TSO — bounded evidence (trimmed instance, safety property).
#[test]
fn skipping_init_noops_preserves_safety() {
    let mut cfg = ModelConfig::small(1, 2);
    cfg.skip_noop2 = true;
    cfg.skip_noop3 = true;
    cfg.ops.load = false;
    let out = run_safety(&cfg, 6_000_000);
    assert!(out.is_verified(), "got {:?}", out.stats());
}

/// Counterexample traces replay: the reported action sequence must be an
/// actual path of the model ending in a state violating the reported
/// property.
#[test]
fn counterexample_traces_replay() {
    use relaxing_safely::mc::TransitionSystem;

    let mut cfg = ModelConfig::small(1, 3);
    cfg.insertion_barrier = false;
    let model = GcModel::new(cfg.clone());
    let out = Checker::with_config(compact(3_000_000))
        .property(combined_property(&cfg))
        .run(&model);
    let trace = out.trace().expect("violation expected");

    let mut state = model.initial_states().remove(0);
    for action in &trace.actions {
        let succs = model.successors(&state);
        let (_, next) = succs
            .into_iter()
            .find(|(a, _)| a == action)
            .expect("every trace action is enabled in order");
        state = next;
    }
    assert_eq!(
        &state, &trace.state,
        "trace must land on the reported state"
    );
    let prop = combined_property(&cfg);
    assert!(!prop.holds(&state));
}
