//! Integration tests for the runtime collector (`otf-gc`): end-to-end
//! cycles with concurrent mutators, reclamation precision, floating
//! garbage, and mutator lifecycle.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use relaxing_safely::gc::{Collector, GcConfig, Mutator};

/// Run `f(mutator)` while the collector executes exactly `cycles` cycles.
fn with_running_collector(
    cfg: GcConfig,
    setup: impl FnOnce(&mut Mutator),
    cycles: u64,
) -> (Collector, Mutator) {
    let collector = Collector::new(cfg);
    let mut m = collector.register_mutator();
    setup(&mut m);
    collector.start();
    let target = collector.stats().cycles() + cycles;
    while collector.stats().cycles() < target {
        m.safepoint();
        std::thread::yield_now();
    }
    collector.stop();
    (collector, m)
}

#[test]
fn garbage_is_collected_live_data_survives() {
    let (collector, mut m) = with_running_collector(
        GcConfig::new(128, 2),
        |m| {
            // live: a -> b; garbage: c -> d (both discarded)
            let a = m.alloc(2).unwrap();
            let b = m.alloc(2).unwrap();
            m.store(a, 0, Some(b));
            m.discard(b);
            let c = m.alloc(2).unwrap();
            let d = m.alloc(2).unwrap();
            m.store(c, 0, Some(d));
            m.discard(d);
            m.discard(c);
        },
        3,
    );
    assert_eq!(collector.live_objects(), 2);
    // The surviving pair is intact and loadable.
    let a = m.roots().next().expect("a still rooted");
    let b = m.load(a, 0).expect("b survived");
    assert!(m.is_rooted(b));
}

#[test]
fn cyclic_garbage_is_collected() {
    let (collector, _m) = with_running_collector(
        GcConfig::new(64, 1),
        |m| {
            let a = m.alloc(1).unwrap();
            let b = m.alloc(1).unwrap();
            m.store(a, 0, Some(b));
            m.store(b, 0, Some(a)); // cycle
            m.discard(a);
            m.discard(b);
        },
        3,
    );
    // Tracing collectors reclaim cycles (unlike reference counting).
    assert_eq!(collector.live_objects(), 0);
}

#[test]
fn floating_garbage_reclaimed_within_two_cycles() {
    let collector = Collector::new(GcConfig::new(64, 1));
    let mut m = collector.register_mutator();
    let a = m.alloc(1).unwrap();
    let b = m.alloc(1).unwrap();
    m.store(a, 0, Some(b));
    m.discard(b);
    collector.start();
    while collector.stats().cycles() < 1 {
        m.safepoint();
    }
    // Cut b loose mid-stream: depending on where the cycle is, b floats
    // through it, but two full cycles later it must be gone.
    m.store(a, 0, None);
    let at = collector.stats().cycles();
    while collector.stats().cycles() < at + 2 {
        m.safepoint();
    }
    collector.stop();
    assert_eq!(collector.live_objects(), 1, "only `a` remains");
}

#[test]
fn heap_fills_and_recovers_after_collection() {
    let collector = Collector::new(GcConfig::new(8, 0));
    let mut m = collector.register_mutator();
    let mut held = Vec::new();
    for _ in 0..8 {
        held.push(m.alloc(0).unwrap());
    }
    assert!(m.alloc(0).is_err(), "heap is full");
    for g in held.drain(..) {
        m.discard(g);
    }
    // One cycle driven from another thread frees everything.
    let done = AtomicBool::new(false);
    std::thread::scope(|s| {
        s.spawn(|| {
            collector.collect();
            done.store(true, Ordering::Release);
        });
        while !done.load(Ordering::Acquire) {
            m.safepoint();
            std::thread::yield_now();
        }
    });
    assert_eq!(collector.live_objects(), 0);
    assert!(m.alloc(0).is_ok(), "allocation works again");
}

#[test]
fn many_mutators_churn_without_use_after_free() {
    const MUTS: usize = 4;
    const OPS: usize = 5_000;
    let collector = Collector::new(GcConfig::new(2048, 2));
    let mut m0 = collector.register_mutator();
    let anchor = m0.alloc(2).unwrap();
    collector.start();
    let finished = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..MUTS {
            let mut m = collector.register_mutator();
            m.adopt(anchor);
            let finished = &finished;
            s.spawn(move || {
                for op in 0..OPS {
                    m.safepoint();
                    if let Ok(node) = m.alloc(2) {
                        let old = m.load(anchor, 0);
                        m.store(node, 0, old);
                        m.store(anchor, 0, Some(node));
                        if let Some(o) = old {
                            m.discard(o);
                        }
                        m.discard(node);
                    } else {
                        std::thread::yield_now();
                    }
                    if op % 100 == 0 {
                        m.store(anchor, 0, None);
                    }
                }
                finished.fetch_add(1, Ordering::Release);
            });
        }
        let finished = &finished;
        s.spawn(move || {
            while finished.load(Ordering::Acquire) < MUTS {
                m0.safepoint();
                std::thread::yield_now();
            }
            drop(m0);
        });
    });
    collector.stop();
    // Validation mode would have panicked on any freed-while-reachable
    // access; reaching here with plausible counters is the assertion.
    assert!(collector.stats().cycles() > 0);
    assert!(collector.stats().freed() > 0);
}

#[test]
fn mutators_can_come_and_go_mid_collection() {
    let collector = Collector::new(GcConfig::new(256, 1));
    collector.start();
    for _ in 0..10 {
        let mut m = collector.register_mutator();
        let a = m.alloc(1).unwrap();
        m.safepoint();
        m.discard(a);
        drop(m); // deregisters cleanly even if a handshake is pending
    }
    collector.stop();
    // Everything those transient mutators made is garbage...
    let collector2 = collector; // keep alive for final count
    assert!(collector2.stats().cycles() > 0);
}

#[test]
fn stats_track_the_fast_path() {
    let collector = Collector::new(GcConfig::new(512, 1));
    let mut m = collector.register_mutator();
    let a = m.alloc(1).unwrap();
    let b = m.alloc(1).unwrap();
    // Idle: barriers run but exit on the flag check; no CAS.
    for _ in 0..100 {
        m.store(a, 0, Some(b));
    }
    let s = collector.stats();
    assert!(s.barrier_checks() >= 100);
    assert_eq!(s.barrier_cas_won() + s.barrier_cas_lost(), 0);
}
