//! Integration tests for the runtime collector (`otf-gc`): end-to-end
//! cycles with concurrent mutators, reclamation precision, floating
//! garbage, and mutator lifecycle.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Duration;

use relaxing_safely::gc::{
    ChaosSite, Collector, CycleOutcome, FaultPlan, GcConfig, HeapLayout, Mutator,
};

/// Builds the test configuration, honouring the `GC_TEST_LAYOUT`
/// environment variable (`slab` when unset, `segmented` in the CI layout
/// matrix) so this whole suite runs under both heap layouts without
/// duplicating a single test.
fn cfg(capacity: usize, max_fields: usize) -> GcConfig {
    let layout = match std::env::var("GC_TEST_LAYOUT").as_deref() {
        Ok("segmented") => HeapLayout::segmented_default(capacity),
        _ => HeapLayout::Slab,
    };
    GcConfig::builder()
        .capacity(capacity)
        .max_fields(max_fields)
        .layout(layout)
        .build()
}

/// Run `f(mutator)` while the collector executes exactly `cycles` cycles.
fn with_running_collector(
    cfg: GcConfig,
    setup: impl FnOnce(&mut Mutator),
    cycles: u64,
) -> (Collector, Mutator) {
    let collector = Collector::new(cfg);
    let mut m = collector.register_mutator();
    setup(&mut m);
    collector.start();
    let target = collector.stats().cycles() + cycles;
    while collector.stats().cycles() < target {
        m.safepoint();
        std::thread::yield_now();
    }
    collector.stop();
    (collector, m)
}

#[test]
fn garbage_is_collected_live_data_survives() {
    let (collector, mut m) = with_running_collector(
        cfg(128, 2),
        |m| {
            // live: a -> b; garbage: c -> d (both discarded)
            let a = m.alloc(2).unwrap();
            let b = m.alloc(2).unwrap();
            m.store(a, 0, Some(b));
            m.discard(b);
            let c = m.alloc(2).unwrap();
            let d = m.alloc(2).unwrap();
            m.store(c, 0, Some(d));
            m.discard(d);
            m.discard(c);
        },
        3,
    );
    assert_eq!(collector.live_objects(), 2);
    // The surviving pair is intact and loadable.
    let a = m.roots().next().expect("a still rooted");
    let b = m.load(a, 0).expect("b survived");
    assert!(m.is_rooted(b));
}

#[test]
fn cyclic_garbage_is_collected() {
    let (collector, _m) = with_running_collector(
        cfg(64, 1),
        |m| {
            let a = m.alloc(1).unwrap();
            let b = m.alloc(1).unwrap();
            m.store(a, 0, Some(b));
            m.store(b, 0, Some(a)); // cycle
            m.discard(a);
            m.discard(b);
        },
        3,
    );
    // Tracing collectors reclaim cycles (unlike reference counting).
    assert_eq!(collector.live_objects(), 0);
}

#[test]
fn floating_garbage_reclaimed_within_two_cycles() {
    let collector = Collector::new(cfg(64, 1));
    let mut m = collector.register_mutator();
    let a = m.alloc(1).unwrap();
    let b = m.alloc(1).unwrap();
    m.store(a, 0, Some(b));
    m.discard(b);
    collector.start();
    while collector.stats().cycles() < 1 {
        m.safepoint();
    }
    // Cut b loose mid-stream: depending on where the cycle is, b floats
    // through it, but two full cycles later it must be gone.
    m.store(a, 0, None);
    let at = collector.stats().cycles();
    while collector.stats().cycles() < at + 2 {
        m.safepoint();
    }
    collector.stop();
    assert_eq!(collector.live_objects(), 1, "only `a` remains");
}

#[test]
fn heap_fills_and_recovers_after_collection() {
    let collector = Collector::new(cfg(8, 0));
    let mut m = collector.register_mutator();
    let mut held = Vec::new();
    for _ in 0..8 {
        held.push(m.alloc(0).unwrap());
    }
    assert!(m.alloc(0).is_err(), "heap is full");
    for g in held.drain(..) {
        m.discard(g);
    }
    // One cycle driven from another thread frees everything.
    let done = AtomicBool::new(false);
    std::thread::scope(|s| {
        s.spawn(|| {
            collector.collect();
            done.store(true, Ordering::Release);
        });
        while !done.load(Ordering::Acquire) {
            m.safepoint();
            std::thread::yield_now();
        }
    });
    assert_eq!(collector.live_objects(), 0);
    assert!(m.alloc(0).is_ok(), "allocation works again");
}

#[test]
fn many_mutators_churn_without_use_after_free() {
    const MUTS: usize = 4;
    const OPS: usize = 5_000;
    let collector = Collector::new(cfg(2048, 2));
    let mut m0 = collector.register_mutator();
    let anchor = m0.alloc(2).unwrap();
    collector.start();
    let finished = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..MUTS {
            let mut m = collector.register_mutator();
            m.adopt(anchor);
            let finished = &finished;
            s.spawn(move || {
                for op in 0..OPS {
                    m.safepoint();
                    if let Ok(node) = m.alloc(2) {
                        let old = m.load(anchor, 0);
                        m.store(node, 0, old);
                        m.store(anchor, 0, Some(node));
                        if let Some(o) = old {
                            m.discard(o);
                        }
                        m.discard(node);
                    } else {
                        std::thread::yield_now();
                    }
                    if op % 100 == 0 {
                        m.store(anchor, 0, None);
                    }
                }
                finished.fetch_add(1, Ordering::Release);
            });
        }
        let finished = &finished;
        s.spawn(move || {
            while finished.load(Ordering::Acquire) < MUTS {
                m0.safepoint();
                std::thread::yield_now();
            }
            drop(m0);
        });
    });
    collector.stop();
    // Validation mode would have panicked on any freed-while-reachable
    // access; reaching here with plausible counters is the assertion.
    assert!(collector.stats().cycles() > 0);
    assert!(collector.stats().freed() > 0);
}

#[test]
fn mutators_can_come_and_go_mid_collection() {
    let collector = Collector::new(cfg(256, 1));
    collector.start();
    // Keep registering/deregistering transient mutators until at least one
    // cycle has completed around them — on a loaded single-core box a fixed
    // iteration count can finish before the collector thread is ever
    // scheduled, which is not the scenario under test.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while collector.stats().cycles() == 0 && std::time::Instant::now() < deadline {
        let mut m = collector.register_mutator();
        if let Ok(a) = m.alloc(1) {
            m.safepoint();
            m.discard(a);
        }
        drop(m); // deregisters cleanly even if a handshake is pending
        std::thread::yield_now();
    }
    collector.stop();
    // Everything those transient mutators made is garbage...
    let collector2 = collector; // keep alive for final count
    assert!(collector2.stats().cycles() > 0);
}

#[test]
fn chaos_storms_leave_the_heap_coherent() {
    // Aggressive delay + CAS-loss + slow-transfer injection: cycles get
    // slower and noisier but the collector must stay precise. The
    // use-after-free oracle (validation on) and the integrity check are
    // the assertions.
    let plan = FaultPlan::new(0xC0FFEE)
        .with_handshake_delay(2_000)
        .with_cas_lost(2_000)
        .with_slow_transfer(2_000);
    let collector = Collector::new(cfg(128, 2).with_chaos(plan));
    let mut m = collector.register_mutator();
    let anchor = m.alloc(2).unwrap();
    collector.start();
    let mut spine = anchor;
    for i in 0..400 {
        m.safepoint();
        if let Ok(node) = m.alloc(2) {
            m.store(spine, 0, Some(node));
            if spine != anchor {
                m.discard(spine);
            }
            spine = node;
        }
        if i % 64 == 0 {
            // Cut the chain loose and restart from the anchor.
            m.store(anchor, 0, None);
            if spine != anchor {
                m.discard(spine);
                spine = anchor;
            }
        }
    }
    collector.stop();
    assert!(
        collector.stats().chaos_fired_total() > 0,
        "the plan actually injected faults"
    );
    collector.debug_verify_integrity().expect("heap coherent");
}

#[test]
fn mutator_silent_for_three_generations_never_hangs_collection() {
    // The acceptance scenario: one mutator goes injected-silent for 3
    // handshake generations. The watchdog must carry every cycle to an
    // outcome — TimedOut aborts while the silence lasts (the mutator keeps
    // beating, so it is never evicted), Completed once it lifts.
    let plan = FaultPlan::new(7).with_silence(10_000, 3); // every generation re-silences
    let config = cfg(32, 1)
        .with_handshake_timeout(Duration::from_millis(30))
        .with_chaos(plan);
    let collector = Collector::new(config);
    let mut m = collector.register_mutator();
    let a = m.alloc(1).unwrap();
    let id = m.id();
    let stop = AtomicBool::new(false);
    let started = AtomicBool::new(false);
    let outcomes: Vec<CycleOutcome> = std::thread::scope(|s| {
        s.spawn(|| {
            while !stop.load(Ordering::Acquire) {
                m.safepoint(); // beats every iteration; silenced from acking
                started.store(true, Ordering::Release);
                std::thread::yield_now();
            }
        });
        // Don't start collecting until the spinner has provably beaten
        // once, or the first watchdog window could see a still-unscheduled
        // thread as beat-less and evict it.
        while !started.load(Ordering::Acquire) {
            std::thread::yield_now();
        }
        let outs: Vec<CycleOutcome> = (0..4).map(|_| collector.collect()).collect();
        stop.store(true, Ordering::Release);
        outs
    });
    // Reaching here at all proves no hang. Under total silence every cycle
    // is watchdog-aborted, naming the silent mutator.
    for out in &outcomes {
        match out {
            CycleOutcome::TimedOut { stalled, .. } => assert_eq!(stalled, &vec![id]),
            other => panic!("expected TimedOut under total silence, got {other:?}"),
        }
    }
    assert_eq!(
        collector.stats().evictions(),
        0,
        "a beating mutator is never evicted"
    );
    assert!(collector.stats().chaos_fired(ChaosSite::Silence) > 0);
    // The rooted object survived every aborted cycle, and once the silent
    // mutator leaves (a clean exit answers regardless of injected silence),
    // the very next completed cycle reclaims it: aborts free nothing, but
    // they flag the heap for a mark repaint so the following cycle starts
    // from a clean slate instead of a stale-mark no-op sweep.
    let _ = m.load(a, 0);
    drop(m);
    assert!(collector.collect().is_completed());
    assert_eq!(collector.live_objects(), 0);
    collector.debug_verify_integrity().expect("heap coherent");
}

#[test]
fn stats_track_the_fast_path() {
    let collector = Collector::new(cfg(512, 1));
    let mut m = collector.register_mutator();
    let a = m.alloc(1).unwrap();
    let b = m.alloc(1).unwrap();
    // Idle: barriers run but exit on the flag check; no CAS.
    for _ in 0..100 {
        m.store(a, 0, Some(b));
    }
    let s = collector.stats();
    assert!(s.barrier_checks() >= 100);
    assert_eq!(s.barrier_cas_won() + s.barrier_cas_lost(), 0);
}
