//! End-to-end tests for the live scrape endpoint (DESIGN.md §2.14): a
//! real serve workload publishes into a shared registry while a
//! [`MetricsServer`] serves it over TCP, and a plain HTTP client (what a
//! Prometheus scraper amounts to) reads well-formed text exposition and a
//! `200` `/healthz` while collection cycles keep completing.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use relaxing_safely::gc::HeapLayout;
use relaxing_safely::serve::{run_serve, ServeConfig};
use relaxing_safely::trace::{Liveness, MetricsServer, Registry, METRICS_CONTENT_TYPE};

/// Raw one-shot GET; returns (status line, headers, body).
fn get(addr: SocketAddr, path: &str) -> (String, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect scrape server");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("read response");
    let (head, body) = text.split_once("\r\n\r\n").expect("header terminator");
    let (status, headers) = head.split_once("\r\n").unwrap_or((head, ""));
    (status.to_owned(), headers.to_owned(), body.to_owned())
}

/// Asserts `body` is well-formed Prometheus text exposition: every line
/// is a comment or a `name[{labels}] value` sample with a parseable
/// value, and no family has more than one `# TYPE` / `# HELP` line.
fn assert_well_formed_exposition(body: &str) {
    let mut type_lines = std::collections::HashMap::new();
    let mut help_lines = std::collections::HashMap::new();
    for line in body.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let fam = rest.split_whitespace().next().expect("TYPE family");
            *type_lines.entry(fam.to_owned()).or_insert(0u32) += 1;
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let fam = rest.split_whitespace().next().expect("HELP family");
            *help_lines.entry(fam.to_owned()).or_insert(0u32) += 1;
            continue;
        }
        assert!(!line.starts_with('#'), "unknown comment form: {line}");
        // `name value` or `name{labels} value`; label values may contain
        // escaped spaces but never raw newlines, so splitting the final
        // space off is sound.
        let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("sample line has no value: {line:?}");
        });
        let name = series.split('{').next().unwrap_or(series);
        assert!(
            !name.is_empty()
                && name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad metric name in line: {line:?}"
        );
        assert!(
            value.parse::<f64>().is_ok(),
            "unparseable sample value in line: {line:?}"
        );
    }
    for (fam, n) in type_lines {
        assert_eq!(n, 1, "family {fam} has {n} TYPE lines");
    }
    for (fam, n) in help_lines {
        assert_eq!(n, 1, "family {fam} has {n} HELP lines");
    }
}

/// The acceptance test: scrape a live serve run. The keeper thread
/// publishes `gc_cycles_completed` every lap, so `/healthz` (watching
/// that gauge) answers `200` while the run is in flight, and `/metrics`
/// exposes the serve families as they fill in.
#[test]
fn live_scrape_during_a_serve_run() {
    let registry = Arc::new(Registry::new());
    let liveness = Liveness::watch(
        Arc::clone(&registry),
        "gc_cycles_completed",
        // Generous: a loaded debug runner may take a while between cycle
        // completions, and the startup grace covers the warm-up.
        Duration::from_secs(30),
    );
    let server = MetricsServer::spawn("127.0.0.1:0", Arc::clone(&registry), Some(liveness))
        .expect("bind scrape server");
    let addr = server.local_addr();

    let cfg = ServeConfig::quick(HeapLayout::Slab);
    let run_registry = Arc::clone(&registry);
    let worker = std::thread::spawn(move || run_serve(&cfg, &run_registry));

    // Poll the endpoint while the run is in flight until the keeper has
    // published at least one completed cycle; every poll must already be
    // well-formed exposition with the right media type.
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut saw_live_cycles = false;
    while Instant::now() < deadline && !saw_live_cycles {
        let (status, headers, body) = get(addr, "/metrics");
        assert!(status.contains("200"), "status: {status}");
        assert!(
            headers.contains(&format!("Content-Type: {METRICS_CONTENT_TYPE}")),
            "headers: {headers}"
        );
        assert_well_formed_exposition(&body);
        if body
            .lines()
            .any(|l| l.starts_with("gc_cycles_completed ") && !l.ends_with(" 0"))
        {
            let (status, _, hbody) = get(addr, "/healthz");
            assert!(
                status.contains("200"),
                "healthz while cycles complete: {status}, body: {hbody}"
            );
            assert!(hbody.contains("\"watched\":\"gc_cycles_completed\""));
            saw_live_cycles = true;
        } else {
            std::thread::sleep(Duration::from_millis(20));
        }
    }
    assert!(
        saw_live_cycles,
        "never observed a completed cycle through the scrape endpoint"
    );

    let report = worker.join().expect("serve run");
    assert!(report.is_healthy(), "violations: {:?}", report.violations);

    // Post-run: the full serve families are present exactly once each.
    let (status, _, body) = get(addr, "/metrics");
    assert!(status.contains("200"));
    assert_well_formed_exposition(&body);
    for family in ["serve_shed_total", "serve_requests_total"] {
        assert!(
            body.lines().any(|l| l.starts_with(family)),
            "family {family} missing from exposition:\n{body}"
        );
    }
    // The JSON snapshot serves the same registry.
    let (status, headers, body) = get(addr, "/metrics.json");
    assert!(status.contains("200"));
    assert!(headers.contains("application/json"), "headers: {headers}");
    let snap = relaxing_safely::trace::Json::parse(&body).expect("snapshot parses");
    assert!(snap.get("gauges").is_some(), "snapshot: {snap}");
    assert!(server.shutdown() >= 2);
}

/// Exposition conformance under hostile label values: backslashes,
/// quotes and newlines must come out escaped, on one line, with a single
/// TYPE line for the labelled family.
#[test]
fn exposition_escapes_label_values() {
    let registry = Arc::new(Registry::new());
    registry
        .counter_with(
            "chaos_sites_total",
            &[("site", "mark\\sweep \"fast\"\npath")],
        )
        .add(7);
    registry
        .counter_with("chaos_sites_total", &[("site", "plain")])
        .inc();
    let server =
        MetricsServer::spawn("127.0.0.1:0", Arc::clone(&registry), None).expect("bind server");
    let (status, _, body) = get(server.local_addr(), "/metrics");
    assert!(status.contains("200"));
    assert_well_formed_exposition(&body);
    assert!(
        body.contains(r#"chaos_sites_total{site="mark\\sweep \"fast\"\npath"} 7"#),
        "escaped series missing:\n{body}"
    );
    assert_eq!(
        body.lines()
            .filter(|l| l.starts_with("# TYPE chaos_sites_total"))
            .count(),
        1
    );
    server.shutdown();
}

/// `/healthz` flips to `503` once the watched metric stops moving — a
/// stalled collector stops looking alive even though the scrape thread
/// itself is healthy.
#[test]
fn healthz_goes_stale_when_progress_stops() {
    let registry = Arc::new(Registry::new());
    let progress = registry.gauge("gc_cycles_completed");
    progress.set(1);
    let liveness = Liveness::watch(
        Arc::clone(&registry),
        "gc_cycles_completed",
        Duration::from_millis(100),
    );
    let server = MetricsServer::spawn("127.0.0.1:0", Arc::clone(&registry), Some(liveness))
        .expect("bind server");
    let addr = server.local_addr();
    let (status, _, _) = get(addr, "/healthz");
    assert!(status.contains("200"), "startup grace: {status}");
    std::thread::sleep(Duration::from_millis(250));
    let (status, _, body) = get(addr, "/healthz");
    assert!(status.contains("503"), "status: {status}, body: {body}");
    progress.set(2);
    let (status, _, _) = get(addr, "/healthz");
    assert!(status.contains("200"), "recovery: {status}");
    server.shutdown();
}
