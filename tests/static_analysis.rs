//! Integration tests for the `gc-analysis` static analyzer: the
//! litmus-suite oracle agreement, the GC-model regression (zero
//! diagnostics on the faithful model), and the `static_precheck` wiring
//! into the model checker.

use gc_analysis::diag::{A003, A005};
use gc_analysis::{analyze_litmus, analyze_model, precheck, tso_relaxes};
use gc_model::invariants::safety_property;
use gc_model::{GcModel, ModelConfig};
use mc::{Checker, CheckerConfig};
use tso_model::litmus;

/// The analyzer must agree with the exhaustive TSO explorer on every named
/// litmus test: flag it iff TSO admits a register valuation SC forbids.
/// Asymmetric disagreement in either direction is a failure.
#[test]
fn analyzer_agrees_with_exhaustive_oracle_on_every_litmus_test() {
    for test in litmus::suite() {
        let diags = analyze_litmus(&test);
        let relaxed = tso_relaxes(&test);
        assert_eq!(
            !diags.is_empty(),
            relaxed,
            "`{}`: static analyzer says {:?}, exhaustive oracle says {}",
            test.name(),
            diags,
            if relaxed { "relaxed" } else { "sc-equal" },
        );
    }
}

/// `sb()` must be flagged with a concrete, correctly-placed fence
/// suggestion, and the fenced variant plus `mp()` must be accepted.
#[test]
fn sb_flagged_with_fence_suggestion_fenced_and_mp_accepted() {
    let diags = analyze_litmus(&litmus::sb());
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].code, A005);
    assert!(
        diags[0]
            .message
            .contains("suggest an mfence immediately before"),
        "fence suggestion missing: {}",
        diags[0].message
    );
    assert!(
        diags[0].message.contains("read-y-r0") || diags[0].message.contains("read-x-r0"),
        "suggestion should name a concrete load label: {}",
        diags[0].message
    );
    assert!(analyze_litmus(&litmus::sb_fenced()).is_empty());
    assert!(analyze_litmus(&litmus::mp()).is_empty());
}

/// Regression: the faithful GC model produces zero `A00x` diagnostics.
/// A new unannotated atomic command, a barrier regression, or a fence
/// regression in the model shows up here before any exploration runs.
#[test]
fn faithful_gc_model_has_zero_diagnostics() {
    for cfg in [ModelConfig::default(), ModelConfig::small(2, 3)] {
        let diags = analyze_model(&cfg);
        assert!(
            diags.is_empty(),
            "faithful model must be clean, got: {diags:#?}"
        );
    }
}

/// The paper's negative results, statically: each ablation that the
/// exhaustive checker refutes with a trace is already rejected by the
/// analyzer, with the expected code.
#[test]
fn ablations_are_rejected_with_expected_codes() {
    let cases: Vec<(&str, ModelConfig, &str)> = vec![
        (
            "no handshake fences",
            ModelConfig {
                handshake_fences: false,
                ..ModelConfig::default()
            },
            A005,
        ),
        (
            "no mark CAS",
            ModelConfig {
                mark_cas: false,
                ..ModelConfig::default()
            },
            A005,
        ),
        (
            "no deletion barrier",
            ModelConfig {
                deletion_barrier: false,
                ..ModelConfig::default()
            },
            A003,
        ),
        (
            "no insertion barrier",
            ModelConfig {
                insertion_barrier: false,
                ..ModelConfig::default()
            },
            A003,
        ),
    ];
    for (name, cfg, code) in cases {
        let diags = analyze_model(&cfg);
        assert!(
            diags.iter().any(|d| d.code == code),
            "{name}: expected a {code} diagnostic, got {diags:#?}"
        );
    }
}

/// Wiring a failing precheck into the checker short-circuits exploration:
/// zero states, `PrecheckFailed`, diagnostics preserved.
#[test]
fn checker_precheck_short_circuits_on_flagged_model() {
    let mut cfg = ModelConfig::small(1, 2);
    cfg.mark_cas = false;
    let outcome = Checker::with_config(CheckerConfig {
        static_precheck: Some(precheck(cfg.clone(), Vec::new())),
        ..CheckerConfig::default()
    })
    .property(safety_property(&cfg))
    .run(&GcModel::new(cfg));
    let diags = outcome
        .precheck_diagnostics()
        .expect("precheck must have fired");
    assert!(diags.iter().any(|d| d.code == A005));
    assert_eq!(outcome.stats().states, 0);
    assert!(!outcome.is_violated());
}

/// A clean precheck is invisible: the checker explores normally and the
/// faithful small configuration still verifies.
#[test]
fn checker_precheck_passes_through_on_clean_model() {
    let mut cfg = ModelConfig::small(1, 2);
    cfg.ops.alloc = false;
    cfg.ops.load = false;
    let outcome = Checker::with_config(CheckerConfig {
        max_states: 200_000,
        static_precheck: Some(precheck(cfg.clone(), Vec::new())),
        ..CheckerConfig::default()
    })
    .property(safety_property(&cfg))
    .run(&GcModel::new(cfg));
    assert!(outcome.precheck_diagnostics().is_none());
    assert!(!outcome.is_violated());
    assert!(outcome.stats().states > 0);
}
