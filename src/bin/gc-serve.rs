//! `gc-serve`: the request-serving robustness demo and chaos gate
//! (DESIGN.md §2.12).
//!
//! Default mode runs two arms of the serve harness against the same
//! seeded load and writes into `--out` (default `experiments_output/`):
//!
//! * the **robust** arm — admission control, deadline-aware allocation
//!   and adaptive pacing all on, under a chaos storm (handshake-delay
//!   storms, mutator silence, mark delays, TLAB/lazy-sweep faults,
//!   injected worker panics) bounded to the middle third of the run; the
//!   recovery oracle must come back clean (no lost sessions, no UAF,
//!   every request accounted for, post-storm p99 under the SLO);
//! * the **ablation** arm — same load, shedding and pacing off, expected
//!   to degrade into deadline blowups or fatal `Exhausted` verdicts.
//!
//! Outputs:
//!
//! * `BENCH_serve.json` — a `gc-bench/v1` record with both arms' reports
//!   and handshake p50/p95/p99 distilled from the trace stream;
//! * `metrics.prom` — the robust arm's registry (throughput, shed/reject/
//!   timeout counters, allocation-stall and handshake histograms) as
//!   Prometheus text exposition;
//! * `serve_trace.json` — a validated Chrome trace-event document of the
//!   robust arm (occupancy and queue-depth counter tracks included).
//!
//! `--stream-trace` additionally streams events to `serve_trace.jsonl`
//! *while serving* via the background sink; since draining is
//! destructive, the in-process Chrome trace and handshake histograms then
//! cover only the post-stream tail — use the default mode for the BENCH
//! record, the streaming mode to watch a run live.
//!
//! `--metrics-addr ADDR` (e.g. `127.0.0.1:9464`) serves the robust arm's
//! registry over HTTP *while the run is in flight* — `/metrics`
//! (Prometheus text exposition), `/metrics.json` (snapshot) and
//! `/healthz` (200 while collection cycles keep completing, 503 once
//! `gc_cycles_completed` goes stale) — so a real Prometheus can scrape a
//! storm run live.
//!
//! Exits nonzero when the robust arm reports any oracle violation or the
//! generated trace fails validation — the CI `serve-smoke` gate.
//!
//! Usage: `gc-serve [--out DIR] [--layout slab|segmented] [--requests N]
//! [--seed S] [--chaos-seed S] [--slo-ms MS] [--no-storm]
//! [--skip-ablation] [--stream-trace] [--metrics-addr ADDR]`

use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use gc_serve::{run_serve, ServeConfig, ServeReport};
use gc_trace::chrome::{chrome_trace, validate_chrome_trace};
use gc_trace::{EventKind, Json, Liveness, MetricsServer, Registry, TraceSink, Tracer, TrackDump};
use otf_gc::{FaultPlan, HeapLayout};

struct Args {
    out: PathBuf,
    layout: HeapLayout,
    requests: Option<u64>,
    seed: Option<u64>,
    chaos_seed: u64,
    slo_ms: Option<u64>,
    storm: bool,
    ablation: bool,
    stream_trace: bool,
    metrics_addr: Option<String>,
}

fn parse_args() -> Args {
    let mut out = PathBuf::from("experiments_output");
    let mut layout = HeapLayout::Slab;
    let mut requests = None;
    let mut seed = None;
    let mut chaos_seed = 0xc4a05_u64;
    let mut slo_ms = None;
    let mut storm = true;
    let mut ablation = true;
    let mut stream_trace = false;
    let mut metrics_addr = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let need = |i: usize| {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("{} needs a value", args[i]))
        };
        match args[i].as_str() {
            "--out" => {
                out = PathBuf::from(need(i));
                i += 2;
            }
            "--layout" => {
                layout = match need(i).as_str() {
                    "slab" => HeapLayout::Slab,
                    "segmented" => HeapLayout::segmented_default(256),
                    other => panic!("unknown layout: {other} (slab|segmented)"),
                };
                i += 2;
            }
            "--requests" => {
                requests = Some(need(i).parse().expect("requests must be a u64"));
                i += 2;
            }
            "--seed" => {
                seed = Some(need(i).parse().expect("seed must be a u64"));
                i += 2;
            }
            "--chaos-seed" => {
                chaos_seed = need(i).parse().expect("chaos-seed must be a u64");
                i += 2;
            }
            "--slo-ms" => {
                slo_ms = Some(need(i).parse().expect("slo-ms must be a u64"));
                i += 2;
            }
            "--no-storm" => {
                storm = false;
                i += 1;
            }
            "--skip-ablation" => {
                ablation = false;
                i += 1;
            }
            "--stream-trace" => {
                stream_trace = true;
                i += 1;
            }
            "--metrics-addr" => {
                metrics_addr = Some(need(i).clone());
                i += 2;
            }
            other => panic!("unknown argument: {other} (see the module docs for usage)"),
        }
    }
    Args {
        out,
        layout,
        requests,
        seed,
        chaos_seed,
        slo_ms,
        storm,
        ablation,
        stream_trace,
        metrics_addr,
    }
}

/// The storm plan the chaos gate runs: every runtime fault site the serve
/// loop can reach, plus the harness's own worker-panic site. Rates are
/// per-10,000 draws (mirrors `tests/serve_robustness.rs`).
fn storm_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with_handshake_delay(3_000)
        .with_silence(500, 2)
        .with_mark_delay(1_500)
        .with_tlab_refill(1_000)
        .with_lazy_sweep(1_000)
        .with_mutator_panic(30)
        .with_worker_panic(3_000)
}

/// The robust arm's configuration for these CLI arguments.
fn robust_config(args: &Args) -> ServeConfig {
    let mut cfg = ServeConfig::quick(args.layout);
    if let Some(r) = args.requests {
        cfg.requests = r;
    }
    if let Some(s) = args.seed {
        cfg.seed = s;
    }
    if args.storm {
        cfg = cfg.with_storm(storm_plan(args.chaos_seed));
        // The storm aborts cycles through the handshake watchdog; give the
        // recovery window margin for one ~100ms stall tail on a loaded
        // runner (still below the 250ms request deadline).
        cfg.slo = Duration::from_millis(200);
    }
    if let Some(ms) = args.slo_ms {
        cfg.slo = Duration::from_millis(ms);
    }
    cfg
}

/// Distils handshake latencies and cycle durations out of the drained
/// event stream into `registry` — the serve analogue of the `gc-trace`
/// demo's metrics pass, feeding the handshake quantiles the BENCH record
/// reports next to the allocation-stall quantiles `run_serve` recorded.
fn populate_handshake_metrics(registry: &Registry, dumps: &[TrackDump]) {
    let hs_latency = registry.histogram("gc_handshake_latency_ns");
    let cycle_span = registry.histogram("gc_cycle_duration_ns");
    let events = registry.counter("trace_events_drained");
    let dropped = registry.counter("trace_events_dropped");
    for dump in dumps {
        dropped.add(dump.dropped);
        events.add(dump.events.len() as u64);
        let mut hs_open: HashMap<u32, u64> = HashMap::new();
        let mut cycle_open: HashMap<u64, u64> = HashMap::new();
        for e in &dump.events {
            match e.kind {
                EventKind::HandshakeBegin { generation, .. } => {
                    hs_open.insert(generation, e.ts_ns);
                }
                EventKind::HandshakeEnd { generation, .. } => {
                    if let Some(t0) = hs_open.remove(&generation) {
                        hs_latency.record(e.ts_ns.saturating_sub(t0));
                    }
                }
                EventKind::CycleBegin { cycle } => {
                    cycle_open.insert(cycle, e.ts_ns);
                }
                EventKind::CycleEnd { cycle, .. } => {
                    if let Some(t0) = cycle_open.remove(&cycle) {
                        cycle_span.record(e.ts_ns.saturating_sub(t0));
                    }
                }
                _ => {}
            }
        }
    }
}

/// One arm's headline numbers on a line.
fn print_arm(name: &str, r: &ServeReport) {
    println!(
        "{name}: {} ok / {} shed / {} rejected / {} timeout / {} error \
         ({} exhausted, {} worker panics) — {:.0} req/s, p99 {:.1}ms",
        r.ok,
        r.shed,
        r.rejected,
        r.timeouts,
        r.errors,
        r.exhausted,
        r.worker_panics,
        r.throughput_rps,
        r.latency_p99_ns as f64 / 1e6,
    );
}

fn main() -> ExitCode {
    // Injected worker and mutator panics are part of the storm: keep them
    // off stderr (they are caught, counted and reported through the
    // oracle). Genuine panics still print through the default hook.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .map(|s| s.contains("chaos"))
            .or_else(|| {
                info.payload()
                    .downcast_ref::<String>()
                    .map(|s| s.contains("chaos"))
            })
            .unwrap_or(false);
        if !injected {
            default_hook(info);
        }
    }));

    let args = parse_args();
    let cfg = robust_config(&args);
    println!(
        "== gc-serve: {} workers x {} requests on the {} layout ({}) ==",
        cfg.workers,
        cfg.requests,
        cfg.layout.name(),
        if args.storm {
            "chaos storm"
        } else {
            "no storm"
        },
    );

    if let Err(e) = std::fs::create_dir_all(&args.out) {
        eprintln!("gc-serve: cannot create {}: {e}", args.out.display());
        return ExitCode::from(2);
    }

    gc_trace::enable();
    gc_trace::set_track_name("serve-main");
    let sink = if args.stream_trace {
        let path = args.out.join("serve_trace.jsonl");
        match TraceSink::spawn_drain(&path, Duration::from_millis(50)) {
            Ok(s) => {
                println!("streaming events to {}", path.display());
                Some(s)
            }
            Err(e) => {
                eprintln!("gc-serve: cannot open {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
    } else {
        None
    };

    // The robust arm: the registry that becomes metrics.prom. The live
    // scrape endpoint (when requested) serves this registry while the run
    // is in flight, with /healthz tracking cycle-completion recency
    // through the gc_cycles_completed gauge the keeper publishes.
    let registry = Arc::new(Registry::new());
    let server = match &args.metrics_addr {
        Some(addr) => {
            let live = Liveness::watch(
                Arc::clone(&registry),
                "gc_cycles_completed",
                Duration::from_secs(5),
            );
            match MetricsServer::spawn(addr, Arc::clone(&registry), Some(live)) {
                Ok(s) => {
                    println!("metrics: http://{}/metrics", s.local_addr());
                    Some(s)
                }
                Err(e) => {
                    eprintln!("gc-serve: cannot bind {addr}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        None => None,
    };
    let report = run_serve(&cfg, &registry);
    print_arm("robust", &report);
    if let Some(p99) = report.post_storm_p99_ns {
        println!(
            "post-storm p99 {:.1}ms against a {:.0}ms SLO, {} sessions live of {} created",
            p99 as f64 / 1e6,
            report.slo_ns as f64 / 1e6,
            report.sessions_live,
            report.sessions_created,
        );
    }

    // The ablation arm: identical seeded load, shedding and pacing off.
    // Expected to degrade; its numbers go into the BENCH record but its
    // registry is scratch (metrics.prom describes the robust arm).
    let ablation = if args.ablation {
        let abl_cfg = {
            let mut c = ServeConfig::quick(args.layout);
            if let Some(r) = args.requests {
                c.requests = r;
            }
            if let Some(s) = args.seed {
                c.seed = s;
            }
            c.ablation()
        };
        let abl = run_serve(&abl_cfg, &Registry::new());
        print_arm("ablation", &abl);
        let degraded = abl.exhausted > 0 || abl.timeouts > 0;
        println!(
            "ablation {}",
            if degraded {
                "degraded as expected (the robustness layer earns its keep)"
            } else {
                "did NOT degrade — load too light for the comparison to bite"
            }
        );
        Some((abl, degraded))
    } else {
        None
    };

    gc_trace::disable();
    if let Some(sink) = sink {
        match sink.finish() {
            Ok(s) => println!(
                "sink: {} events streamed, {} dropped, {} drain passes",
                s.events, s.dropped, s.drains
            ),
            Err(e) => eprintln!("gc-serve: trace sink failed: {e}"),
        }
    }
    let dumps = Tracer::global().drain();
    populate_handshake_metrics(&registry, &dumps);

    let doc = chrome_trace(&dumps);
    let summary = match validate_chrome_trace(&doc) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("gc-serve: generated trace failed validation: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "trace: {} events ({} spans, {} instants) on {} track(s)",
        summary.events, summary.spans, summary.instants, summary.tracks
    );

    let hs = registry.histogram("gc_handshake_latency_ns");
    let record = gc_trace::bench_record(
        "serve",
        &[
            ("layout", Json::from(cfg.layout.name())),
            ("capacity", Json::from(cfg.capacity)),
            ("workers", Json::from(cfg.workers)),
            ("requests", Json::from(cfg.requests)),
            ("seed", Json::from(cfg.seed)),
            ("queue_capacity", Json::from(cfg.queue_capacity)),
            (
                "shed_permille",
                cfg.shed_permille.map(Json::from).unwrap_or(Json::Null),
            ),
            ("storm", Json::from(args.storm)),
            ("chaos_seed", Json::from(args.chaos_seed)),
            ("slo_ms", Json::from(cfg.slo.as_millis() as u64)),
        ],
        &[
            ("healthy", Json::from(report.is_healthy())),
            ("robust", report.to_json()),
            (
                "ablation",
                ablation
                    .as_ref()
                    .map(|(r, _)| r.to_json())
                    .unwrap_or(Json::Null),
            ),
            (
                "ablation_degraded",
                ablation
                    .as_ref()
                    .map(|&(_, d)| Json::from(d))
                    .unwrap_or(Json::Null),
            ),
            ("handshake_p50_ns", Json::from(hs.quantile(0.50))),
            ("handshake_p95_ns", Json::from(hs.quantile(0.95))),
            ("handshake_p99_ns", Json::from(hs.quantile(0.99))),
            ("handshakes_measured", Json::from(hs.count())),
        ],
        Some(&registry),
    );

    let outputs: [(&str, String); 2] = [
        ("serve_trace.json", format!("{doc}\n")),
        ("metrics.prom", registry.render_text()),
    ];
    for (name, contents) in outputs {
        let path = args.out.join(name);
        if let Err(e) = std::fs::write(&path, contents) {
            eprintln!("gc-serve: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("wrote {}", path.display());
    }
    match gc_trace::write_bench_record_at(&args.out, "serve", &record) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("gc-serve: cannot write BENCH_serve.json: {e}");
            return ExitCode::from(2);
        }
    }

    if let Some(server) = server {
        server.shutdown();
    }

    if report.is_healthy() {
        println!("oracle: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("gc-serve: oracle violations:");
        for v in &report.violations {
            eprintln!("  - {v}");
        }
        ExitCode::FAILURE
    }
}
