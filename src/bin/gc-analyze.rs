//! `gc-analyze`: static analysis of the CIMP GC model and litmus suite.
//!
//! Thin wrapper over [`gc_analysis::cli::run`]; see `--help` for modes,
//! options and exit codes.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = String::new();
    let code = gc_analysis::cli::run(&args, &mut out);
    print!("{out}");
    ExitCode::from(u8::try_from(code).unwrap_or(2))
}
