//! `gc-trace`: the observability demo and trace validator (DESIGN.md
//! §2.10).
//!
//! Default mode runs a short instrumented workload — the on-the-fly
//! collector under a few churning mutators, then a bounded model-checker
//! run — with tracing enabled, and writes into `--out` (default
//! `experiments_output/`):
//!
//! * `trace.json` — a validated Chrome trace-event document: load it in
//!   Perfetto or `chrome://tracing` to see collection cycles as spans with
//!   handshake/mark/sweep nested under them, one track per thread;
//! * `trace.jsonl` — the same events as flat JSON lines (one per event);
//! * `metrics.prom` — the metrics registry as Prometheus text exposition;
//! * `metrics.json` — the same registry as a JSON snapshot;
//! * `BENCH_trace_demo.json` — a `gc-bench/v1`-schema record of the run.
//!
//! `--check <file>` parses and validates an existing Chrome trace document
//! (required fields, begin/end balance per track) and exits nonzero on
//! failure — the CI `trace-smoke` job runs the demo and then this mode on
//! its own output.
//!
//! Usage: `gc-trace [--out DIR] [--mutators K] [--ops N] [--check FILE]`

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use gc_model::invariants::combined_property;
use gc_model::{GcModel, ModelConfig};
use gc_trace::chrome::{chrome_trace, jsonl, validate_chrome_trace};
use gc_trace::{EventKind, Json, Registry, Tracer, TrackDump};
use mc::{Checker, CheckerConfig, Strategy};
use otf_gc::{Collector, GcConfig, HeapLayout};

struct Args {
    out: PathBuf,
    mutators: usize,
    ops: usize,
    check: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut out = PathBuf::from("experiments_output");
    let mut mutators = 3usize;
    let mut ops = 12_000usize;
    let mut check = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let need = |i: usize| {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("{} needs a value", args[i]))
        };
        match args[i].as_str() {
            "--out" => {
                out = PathBuf::from(need(i));
                i += 2;
            }
            "--mutators" => {
                mutators = need(i).parse().expect("mutators must be a usize");
                i += 2;
            }
            "--ops" => {
                ops = need(i).parse().expect("ops must be a usize");
                i += 2;
            }
            "--check" => {
                check = Some(PathBuf::from(need(i)));
                i += 2;
            }
            other => panic!("unknown argument: {other} (see the module docs for usage)"),
        }
    }
    Args {
        out,
        mutators,
        ops,
        check,
    }
}

/// `--check` mode: parse + validate an existing Chrome trace document.
fn check_file(path: &Path) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("gc-trace: cannot read {}: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("gc-trace: {} is not valid JSON: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    match validate_chrome_trace(&doc) {
        Ok(summary) => {
            println!(
                "{}: valid Chrome trace — {} events ({} spans, {} instants) on {} track(s)",
                path.display(),
                summary.events,
                summary.spans,
                summary.instants,
                summary.tracks
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("gc-trace: {} failed validation: {e}", path.display());
            ExitCode::FAILURE
        }
    }
}

/// The instrumented runtime workload: `mutators` threads churn a shared
/// list (the stress/torture access pattern) while the collector runs
/// on-the-fly, every thread writing to its own trace track.
fn run_gc_workload(mutators: usize, ops: usize) -> (u64, usize) {
    // The segmented layout so the trace shows the full event vocabulary:
    // TLAB refills, segment claims and lazy sweeps alongside the cycles.
    let cfg = GcConfig::builder()
        .capacity(2048)
        .max_fields(2)
        .layout(HeapLayout::Segmented {
            segment_slots: 128,
            tlab_slots: 32,
        })
        .build();
    let collector = Collector::new(cfg);
    collector.start();
    let mut m0 = collector.register_mutator();
    let anchor = m0.alloc(2).expect("fresh heap has room");
    let done = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|s| {
        for i in 0..mutators {
            let mut m = collector.register_mutator();
            m.adopt(anchor);
            let done = &done;
            s.spawn(move || {
                gc_trace::set_track_name(&format!("mutator-{i}"));
                for op in 0..ops {
                    m.safepoint();
                    match m.alloc(2) {
                        Ok(node) => {
                            let old = m.load(anchor, 0);
                            m.store(node, 0, old);
                            m.store(anchor, 0, Some(node));
                            if let Some(o) = old {
                                m.discard(o);
                            }
                            m.discard(node);
                        }
                        Err(_) => std::thread::yield_now(),
                    }
                    if op % 64 == 0 {
                        m.store(anchor, 0, None);
                    }
                }
                done.fetch_add(1, std::sync::atomic::Ordering::Release);
            });
        }
        let done = &done;
        s.spawn(move || {
            gc_trace::set_track_name("driver");
            while done.load(std::sync::atomic::Ordering::Acquire) < mutators {
                m0.safepoint();
                std::thread::yield_now();
            }
            drop(m0);
        });
    });
    collector.stop();
    let cycles = collector.stats().cycles();
    let live = collector.live_objects();
    (cycles, live)
}

/// The instrumented checker workload: a bounded BFS over the fig3
/// configuration, small enough to finish in well under a second.
fn run_checker_workload() -> (String, usize, usize) {
    let cfg = ModelConfig::small(1, 2);
    let model = GcModel::new(cfg.clone());
    let checker = Checker::with_config(CheckerConfig {
        max_states: 30_000,
        hash_compact: true,
        ..CheckerConfig::default()
    })
    .strategy(Strategy::Bfs { threads: 2 })
    .property(combined_property(&cfg));
    let outcome = checker.run(&model);
    let stats = outcome.stats();
    (outcome.verdict(), stats.states, stats.depth)
}

/// Distils handshake latencies and cycle shapes out of the drained event
/// stream into `registry` — the demo of the metrics pillar feeding off the
/// tracing pillar.
fn populate_metrics(registry: &Registry, dumps: &[TrackDump]) {
    let hs_latency = registry.histogram("gc_handshake_latency_ns");
    let cycle_span = registry.histogram("gc_cycle_duration_ns");
    let events = registry.counter("trace_events_drained");
    let dropped = registry.counter("trace_events_dropped");
    for dump in dumps {
        dropped.add(dump.dropped);
        events.add(dump.events.len() as u64);
        let mut hs_open: HashMap<u32, u64> = HashMap::new();
        let mut cycle_open: HashMap<u64, u64> = HashMap::new();
        for e in &dump.events {
            match e.kind {
                EventKind::HandshakeBegin { generation, .. } => {
                    hs_open.insert(generation, e.ts_ns);
                }
                EventKind::HandshakeEnd { generation, .. } => {
                    if let Some(t0) = hs_open.remove(&generation) {
                        hs_latency.record(e.ts_ns.saturating_sub(t0));
                    }
                }
                EventKind::CycleBegin { cycle } => {
                    cycle_open.insert(cycle, e.ts_ns);
                }
                EventKind::CycleEnd { cycle, .. } => {
                    if let Some(t0) = cycle_open.remove(&cycle) {
                        cycle_span.record(e.ts_ns.saturating_sub(t0));
                    }
                }
                EventKind::MarkCas { won } => {
                    if won {
                        registry.counter("gc_mark_cas_won").inc();
                    } else {
                        registry.counter("gc_mark_cas_lost").inc();
                    }
                }
                EventKind::BarrierHit { deletion } => {
                    if deletion {
                        registry.counter("gc_deletion_barrier_hits").inc();
                    } else {
                        registry.counter("gc_insertion_barrier_hits").inc();
                    }
                }
                _ => {}
            }
        }
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    if let Some(path) = &args.check {
        return check_file(path);
    }

    println!(
        "== gc-trace demo: {} mutators x {} ops + bounded model check ==",
        args.mutators, args.ops
    );
    gc_trace::enable();
    gc_trace::set_track_name("main");

    let (cycles, live) = run_gc_workload(args.mutators, args.ops);
    println!("runtime workload: {cycles} collection cycles, {live} live objects at exit");

    let (verdict, states, depth) = run_checker_workload();
    println!("checker workload: {verdict} ({states} states, depth {depth})");

    gc_trace::disable();
    let dumps = Tracer::global().drain();

    let registry = Registry::new();
    populate_metrics(&registry, &dumps);
    registry.gauge("gc_live_objects").set(live as i64);
    registry.counter("gc_cycles").add(cycles);

    let doc = chrome_trace(&dumps);
    let summary = match validate_chrome_trace(&doc) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("gc-trace: generated trace failed validation: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "trace: {} events ({} spans, {} instants) on {} track(s)",
        summary.events, summary.spans, summary.instants, summary.tracks
    );

    let record = gc_trace::bench_record(
        "trace_demo",
        &[
            ("mutators", Json::from(args.mutators)),
            ("ops", Json::from(args.ops)),
        ],
        &[
            ("gc_cycles", Json::from(cycles)),
            ("live_objects", Json::from(live)),
            ("checker_verdict", Json::from(verdict.as_str())),
            ("checker_states", Json::from(states)),
            ("trace_events", Json::from(summary.events)),
            ("trace_tracks", Json::from(summary.tracks)),
        ],
        Some(&registry),
    );

    if let Err(e) = std::fs::create_dir_all(&args.out) {
        eprintln!("gc-trace: cannot create {}: {e}", args.out.display());
        return ExitCode::from(2);
    }
    let outputs: [(&str, String); 5] = [
        ("trace.json", format!("{doc}\n")),
        ("trace.jsonl", jsonl(&dumps)),
        ("metrics.prom", registry.render_text()),
        ("metrics.json", format!("{}\n", registry.snapshot())),
        ("BENCH_trace_demo.json", format!("{record}\n")),
    ];
    for (name, contents) in outputs {
        let path = args.out.join(name);
        if let Err(e) = std::fs::write(&path, contents) {
            eprintln!("gc-trace: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("wrote {}", path.display());
    }
    println!("load trace.json in Perfetto (ui.perfetto.dev) or chrome://tracing");
    ExitCode::SUCCESS
}
