//! `gc-trace`: the observability demo, trace validator, trace differ and
//! bench-record checker (DESIGN.md §2.10, §2.14).
//!
//! Default mode runs a short instrumented workload — the on-the-fly
//! collector under a few churning mutators, then a bounded model-checker
//! run — with tracing enabled, and writes into `--out` (default
//! `experiments_output/`):
//!
//! * `trace.json` — a validated Chrome trace-event document: load it in
//!   Perfetto or `chrome://tracing` to see collection cycles as spans with
//!   handshake/mark/sweep nested under them, one track per thread;
//! * `trace.jsonl` — the same events as flat JSON lines (one per event);
//! * `metrics.prom` — the metrics registry as Prometheus text exposition;
//! * `metrics.json` — the same registry as a JSON snapshot;
//! * `BENCH_trace_demo.json` — a `gc-bench/v1`-schema record of the run.
//!
//! With `--metrics-addr ADDR` the demo also serves the live registry over
//! HTTP while the workload runs (`/metrics`, `/metrics.json`, `/healthz`;
//! see `gc_trace::scrape`), with `/healthz` watching collection-cycle
//! recency.
//!
//! Subcommands:
//!
//! * `gc-trace diff BASE CURRENT [--json FILE] [--shape-only]
//!   [--latency-rel F] [--count-rel F] [--mix-abs F] [--min-count N]` —
//!   extracts the shape of two recorded traces (`trace.jsonl` or
//!   `trace.json`) and compares them (see `gc_trace::diff`). Prints the
//!   human table, optionally writes the machine-readable verdict, and
//!   exits 0 (clean) / 1 (regressed) / 2 (unreadable input).
//! * `gc-trace check-bench FILE...` — validates `BENCH_*.json` files
//!   against the `gc-bench/v1` schema; exits nonzero on any violation.
//!
//! `--check <file>` parses and validates an existing Chrome trace document
//! (required fields, begin/end balance per track) and exits nonzero on
//! failure — the CI `trace-smoke` job runs the demo and then this mode on
//! its own output.
//!
//! Usage: `gc-trace [--out DIR] [--mutators K] [--ops N] [--check FILE]
//! [--metrics-addr ADDR]`

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

use gc_model::invariants::combined_property;
use gc_model::{GcModel, ModelConfig};
use gc_trace::chrome::{chrome_trace, jsonl, validate_chrome_trace};
use gc_trace::{
    diff_shapes, EventKind, Json, Liveness, MetricsServer, Registry, Thresholds, TraceShape,
    Tracer, TrackDump,
};
use mc::{Checker, CheckerConfig, Strategy};
use otf_gc::{Collector, GcConfig, HeapLayout};

struct Args {
    out: PathBuf,
    mutators: usize,
    ops: usize,
    check: Option<PathBuf>,
    metrics_addr: Option<String>,
}

fn parse_args(args: &[String]) -> Args {
    let mut out = PathBuf::from("experiments_output");
    let mut mutators = 3usize;
    let mut ops = 12_000usize;
    let mut check = None;
    let mut metrics_addr = None;
    let mut i = 0;
    while i < args.len() {
        let need = |i: usize| {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("{} needs a value", args[i]))
        };
        match args[i].as_str() {
            "--out" => {
                out = PathBuf::from(need(i));
                i += 2;
            }
            "--mutators" => {
                mutators = need(i).parse().expect("mutators must be a usize");
                i += 2;
            }
            "--ops" => {
                ops = need(i).parse().expect("ops must be a usize");
                i += 2;
            }
            "--check" => {
                check = Some(PathBuf::from(need(i)));
                i += 2;
            }
            "--metrics-addr" => {
                metrics_addr = Some(need(i).clone());
                i += 2;
            }
            other => panic!("unknown argument: {other} (see the module docs for usage)"),
        }
    }
    Args {
        out,
        mutators,
        ops,
        check,
        metrics_addr,
    }
}

/// `--check` mode: parse + validate an existing Chrome trace document.
fn check_file(path: &Path) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("gc-trace: cannot read {}: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("gc-trace: {} is not valid JSON: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    match validate_chrome_trace(&doc) {
        Ok(summary) => {
            println!(
                "{}: valid Chrome trace — {} events ({} spans, {} instants) on {} track(s)",
                path.display(),
                summary.events,
                summary.spans,
                summary.instants,
                summary.tracks
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("gc-trace: {} failed validation: {e}", path.display());
            ExitCode::FAILURE
        }
    }
}

/// `diff` subcommand: compare two recorded traces, exit 0/1/2.
fn run_diff(args: &[String]) -> ExitCode {
    let mut thr = Thresholds::default();
    let mut json_out: Option<PathBuf> = None;
    let mut files: Vec<PathBuf> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let need = |i: usize| {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("{} needs a value", args[i]))
        };
        match args[i].as_str() {
            "--latency-rel" => {
                thr.latency_rel = need(i).parse().expect("latency-rel must be a float");
                i += 2;
            }
            "--count-rel" => {
                thr.count_rel = need(i).parse().expect("count-rel must be a float");
                i += 2;
            }
            "--mix-abs" => {
                thr.mix_abs = need(i).parse().expect("mix-abs must be a float");
                i += 2;
            }
            "--min-count" => {
                thr.min_count = need(i).parse().expect("min-count must be a u64");
                i += 2;
            }
            "--shape-only" => {
                thr.check_latency = false;
                i += 1;
            }
            "--json" => {
                json_out = Some(PathBuf::from(need(i)));
                i += 2;
            }
            other if other.starts_with("--") => {
                panic!("unknown diff argument: {other}")
            }
            _ => {
                files.push(PathBuf::from(&args[i]));
                i += 1;
            }
        }
    }
    if files.len() != 2 {
        eprintln!("usage: gc-trace diff BASE CURRENT [--json FILE] [--shape-only] ...");
        return ExitCode::from(2);
    }
    let load = |path: &Path| -> Result<TraceShape, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        TraceShape::from_text(&text).map_err(|e| format!("{}: {e}", path.display()))
    };
    let (base, current) = match (load(&files[0]), load(&files[1])) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("gc-trace diff: {e}");
            return ExitCode::from(2);
        }
    };
    let report = diff_shapes(&base, &current, &thr);
    print!("{}", report.render_table());
    if let Some(path) = json_out {
        let doc = report.to_json(&base, &current, &thr);
        if let Err(e) = std::fs::write(&path, format!("{doc}\n")) {
            eprintln!("gc-trace diff: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("wrote {}", path.display());
    }
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `check-bench` subcommand: schema-validate `BENCH_*.json` files.
fn run_check_bench(args: &[String]) -> ExitCode {
    if args.is_empty() {
        eprintln!("usage: gc-trace check-bench FILE...");
        return ExitCode::from(2);
    }
    let mut failed = false;
    for arg in args {
        let path = Path::new(arg);
        match gc_trace::check_bench_file(path) {
            Ok(()) => println!("{}: valid gc-bench/v1 record", path.display()),
            Err(e) => {
                eprintln!("gc-trace check-bench: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// The instrumented runtime workload: `mutators` threads churn a shared
/// list (the stress/torture access pattern) while the collector runs
/// on-the-fly, every thread writing to its own trace track. A sampler
/// thread publishes `gc_cycles_completed` into `registry` while the
/// workload runs, so a live `/healthz` probe sees cycle progress.
fn run_gc_workload(mutators: usize, ops: usize, registry: &Registry) -> (u64, usize) {
    // The segmented layout so the trace shows the full event vocabulary:
    // TLAB refills, segment claims and lazy sweeps alongside the cycles.
    let cfg = GcConfig::builder()
        .capacity(2048)
        .max_fields(2)
        .layout(HeapLayout::Segmented {
            segment_slots: 128,
            tlab_slots: 32,
        })
        .build();
    let collector = Collector::new(cfg);
    collector.start();
    let mut m0 = collector.register_mutator();
    let anchor = m0.alloc(2).expect("fresh heap has room");
    let done = std::sync::atomic::AtomicUsize::new(0);
    let cycles_gauge = registry.gauge("gc_cycles_completed");
    std::thread::scope(|s| {
        for i in 0..mutators {
            let mut m = collector.register_mutator();
            m.adopt(anchor);
            let done = &done;
            s.spawn(move || {
                gc_trace::set_track_name(&format!("mutator-{i}"));
                for op in 0..ops {
                    m.safepoint();
                    match m.alloc(2) {
                        Ok(node) => {
                            let old = m.load(anchor, 0);
                            m.store(node, 0, old);
                            m.store(anchor, 0, Some(node));
                            if let Some(o) = old {
                                m.discard(o);
                            }
                            m.discard(node);
                        }
                        Err(_) => std::thread::yield_now(),
                    }
                    if op % 64 == 0 {
                        m.store(anchor, 0, None);
                    }
                }
                done.fetch_add(1, std::sync::atomic::Ordering::Release);
            });
        }
        let done = &done;
        let collector_ref = &collector;
        let gauge = cycles_gauge.clone();
        s.spawn(move || {
            while done.load(std::sync::atomic::Ordering::Acquire) < mutators {
                gauge.set(collector_ref.stats().cycles() as i64);
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
        });
        s.spawn(move || {
            gc_trace::set_track_name("driver");
            while done.load(std::sync::atomic::Ordering::Acquire) < mutators {
                m0.safepoint();
                std::thread::yield_now();
            }
            drop(m0);
        });
    });
    collector.stop();
    let cycles = collector.stats().cycles();
    cycles_gauge.set(cycles as i64);
    let live = collector.live_objects();
    (cycles, live)
}

/// The instrumented checker workload: a bounded BFS over the fig3
/// configuration, small enough to finish in well under a second. The
/// shared registry also receives the live `mc_*` telemetry gauges.
fn run_checker_workload(registry: &Arc<Registry>) -> (String, usize, usize) {
    let cfg = ModelConfig::small(1, 2);
    let model = GcModel::new(cfg.clone());
    let checker = Checker::with_config(
        CheckerConfig {
            max_states: 30_000,
            hash_compact: true,
            ..CheckerConfig::default()
        }
        .metrics(Arc::clone(registry)),
    )
    .strategy(Strategy::Bfs { threads: 2 })
    .property(combined_property(&cfg));
    let outcome = checker.run(&model);
    let stats = outcome.stats();
    (outcome.verdict(), stats.states, stats.depth)
}

/// Distils handshake latencies and cycle shapes out of the drained event
/// stream into `registry` — the demo of the metrics pillar feeding off the
/// tracing pillar.
fn populate_metrics(registry: &Registry, dumps: &[TrackDump]) {
    let hs_latency = registry.histogram("gc_handshake_latency_ns");
    let cycle_span = registry.histogram("gc_cycle_duration_ns");
    let events = registry.counter("trace_events_drained");
    let dropped = registry.counter("trace_events_dropped");
    for dump in dumps {
        dropped.add(dump.dropped);
        events.add(dump.events.len() as u64);
        let mut hs_open: HashMap<u32, u64> = HashMap::new();
        let mut cycle_open: HashMap<u64, u64> = HashMap::new();
        for e in &dump.events {
            match e.kind {
                EventKind::HandshakeBegin { generation, .. } => {
                    hs_open.insert(generation, e.ts_ns);
                }
                EventKind::HandshakeEnd { generation, .. } => {
                    if let Some(t0) = hs_open.remove(&generation) {
                        hs_latency.record(e.ts_ns.saturating_sub(t0));
                    }
                }
                EventKind::CycleBegin { cycle } => {
                    cycle_open.insert(cycle, e.ts_ns);
                }
                EventKind::CycleEnd { cycle, .. } => {
                    if let Some(t0) = cycle_open.remove(&cycle) {
                        cycle_span.record(e.ts_ns.saturating_sub(t0));
                    }
                }
                EventKind::MarkCas { won } => {
                    if won {
                        registry.counter("gc_mark_cas_won").inc();
                    } else {
                        registry.counter("gc_mark_cas_lost").inc();
                    }
                }
                EventKind::BarrierHit { deletion } => {
                    if deletion {
                        registry.counter("gc_deletion_barrier_hits").inc();
                    } else {
                        registry.counter("gc_insertion_barrier_hits").inc();
                    }
                }
                _ => {}
            }
        }
    }
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match raw.first().map(String::as_str) {
        Some("diff") => return run_diff(&raw[1..]),
        Some("check-bench") => return run_check_bench(&raw[1..]),
        _ => {}
    }
    let args = parse_args(&raw);
    if let Some(path) = &args.check {
        return check_file(path);
    }

    println!(
        "== gc-trace demo: {} mutators x {} ops + bounded model check ==",
        args.mutators, args.ops
    );
    let registry = Arc::new(Registry::new());
    let server = match &args.metrics_addr {
        Some(addr) => {
            let liveness = Liveness::watch(
                Arc::clone(&registry),
                "gc_cycles_completed",
                std::time::Duration::from_secs(5),
            );
            match MetricsServer::spawn(addr, Arc::clone(&registry), Some(liveness)) {
                Ok(s) => {
                    println!(
                        "serving /metrics /metrics.json /healthz on http://{}",
                        s.local_addr()
                    );
                    Some(s)
                }
                Err(e) => {
                    eprintln!("gc-trace: cannot bind {addr}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        None => None,
    };
    gc_trace::enable();
    gc_trace::set_track_name("main");

    let (cycles, live) = run_gc_workload(args.mutators, args.ops, &registry);
    println!("runtime workload: {cycles} collection cycles, {live} live objects at exit");

    let (verdict, states, depth) = run_checker_workload(&registry);
    println!("checker workload: {verdict} ({states} states, depth {depth})");

    gc_trace::disable();
    let dumps = Tracer::global().drain();

    populate_metrics(&registry, &dumps);
    registry.gauge("gc_live_objects").set(live as i64);
    registry.counter("gc_cycles").add(cycles);

    let doc = chrome_trace(&dumps);
    let summary = match validate_chrome_trace(&doc) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("gc-trace: generated trace failed validation: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "trace: {} events ({} spans, {} instants) on {} track(s)",
        summary.events, summary.spans, summary.instants, summary.tracks
    );

    let record = gc_trace::bench_record(
        "trace_demo",
        &[
            ("mutators", Json::from(args.mutators)),
            ("ops", Json::from(args.ops)),
        ],
        &[
            ("gc_cycles", Json::from(cycles)),
            ("live_objects", Json::from(live)),
            ("checker_verdict", Json::from(verdict.as_str())),
            ("checker_states", Json::from(states)),
            ("trace_events", Json::from(summary.events)),
            ("trace_tracks", Json::from(summary.tracks)),
        ],
        Some(&registry),
    );

    if let Err(e) = std::fs::create_dir_all(&args.out) {
        eprintln!("gc-trace: cannot create {}: {e}", args.out.display());
        return ExitCode::from(2);
    }
    let outputs: [(&str, String); 4] = [
        ("trace.json", format!("{doc}\n")),
        ("trace.jsonl", jsonl(&dumps)),
        ("metrics.prom", registry.render_text()),
        ("metrics.json", format!("{}\n", registry.snapshot())),
    ];
    for (name, contents) in outputs {
        let path = args.out.join(name);
        if let Err(e) = std::fs::write(&path, contents) {
            eprintln!("gc-trace: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("wrote {}", path.display());
    }
    // Schema-checked emission: a malformed record fails the run here,
    // not a downstream consumer.
    match gc_trace::write_bench_record_at(&args.out, "trace_demo", &record) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("gc-trace: cannot write bench record: {e}");
            return ExitCode::from(2);
        }
    }
    if let Some(server) = server {
        println!("metrics endpoint served {} request(s)", server.shutdown());
    }
    println!("load trace.json in Perfetto (ui.perfetto.dev) or chrome://tracing");
    ExitCode::SUCCESS
}
