//! # Relaxing Safely — reproduction workspace
//!
//! A Rust reproduction of *Relaxing Safely: Verified On-the-Fly Garbage
//! Collection for x86-TSO* (Gammie, Hosking & Engelhardt, PLDI 2015).
//!
//! This root crate re-exports the workspace's public API so that examples
//! and downstream users can depend on a single crate:
//!
//! * [`tso`] — the operational x86-TSO memory model (paper Fig. 9 substrate).
//! * [`cimp`] — the CIMP modelling language and its semantics (Figs. 7, 8).
//! * [`types`] — heap vocabulary: references, objects, reachability,
//!   tricolor abstraction, work-lists.
//! * [`model`] — the collector ∥ mutators ∥ system model and the paper's
//!   invariants as executable predicates (Figs. 2–6, 9, 10; §3.2).
//! * [`mc`] — the explicit-state model checker used to re-establish the
//!   headline safety theorem on bounded configurations.
//! * [`analysis`] — the static analyzer behind the `gc-analyze` binary:
//!   CFGs over CIMP, the TSO store-buffer dataflow with fence suggestions,
//!   and the GC-protocol lints (§3 fence discipline, Fig. 6 barriers).
//! * [`gc`] — the executable on-the-fly mark-sweep collector runtime.
//! * [`trace`] — lock-free event tracing, the metrics registry and the
//!   Chrome-trace exporter behind the `gc-trace` binary (§2.10).
//! * [`serve`] — the request-serving robustness harness behind the
//!   `gc-serve` binary: admission control, deadline-aware allocation,
//!   adaptive pacing, and chaos-under-serve (§2.12).
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for the per-figure reproduction record.

pub use cimp;
pub use gc_analysis as analysis;
pub use gc_model as model;
pub use gc_serve as serve;
pub use gc_trace as trace;
pub use gc_types as types;
pub use mc;
pub use otf_gc as gc;
pub use tso_model as tso;
