//! A litmus-test harness for the x86-TSO machine.
//!
//! Litmus tests are the standard way relaxed-memory models are communicated
//! and validated: tiny multi-threaded programs whose set of permitted final
//! outcomes distinguishes one model from another. This module provides a
//! small instruction set and an exhaustive explorer that enumerates *every*
//! interleaving of a test (including all store-buffer commit points) and
//! collects the set of reachable final register valuations.
//!
//! This is the executable counterpart of the paper's Figure 9: the same
//! machine that underlies the garbage collector model, demonstrated on the
//! classic SB/MP shapes (see the crate's tests and the `fig9_tso_litmus`
//! experiment binary in `gc-bench`).
//!
//! # Example
//!
//! ```
//! use tso_model::litmus::{Instr, LitmusTest, Outcome};
//! use tso_model::MemoryModel;
//!
//! // SB: t0: x=1; r0=y   ∥   t1: y=1; r0=x
//! let sb = LitmusTest::new("SB")
//!     .init("x", 0)
//!     .init("y", 0)
//!     .thread(vec![Instr::Write("x", 1), Instr::Read("y", 0)])
//!     .thread(vec![Instr::Write("y", 1), Instr::Read("x", 0)]);
//!
//! let tso = sb.outcomes(MemoryModel::Tso);
//! let sc = sb.outcomes(MemoryModel::Sc);
//! let both_zero = Outcome::new(vec![vec![0], vec![0]]);
//! assert!(tso.contains(&both_zero)); // the TSO-only relaxed outcome
//! assert!(!sc.contains(&both_zero)); // forbidden under SC
//! ```

use std::collections::{BTreeSet, HashSet};

use crate::machine::{Machine, MemoryModel, ThreadId};

/// A litmus-test instruction over string-named locations and `u32` values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// Store a constant to a location.
    Write(&'static str, u32),
    /// Load a location into the numbered thread-local register.
    Read(&'static str, usize),
    /// A full memory fence (`MFENCE`).
    MFence,
    /// A locked compare-and-swap: if the location holds `expected`, replace
    /// it by `new`. The register receives 1 on success, 0 on failure.
    ///
    /// Executed as one atomic transition (lock–flush–read–write–flush–unlock),
    /// matching the coarse view of `LOCK CMPXCHG`.
    Cas {
        /// Target location.
        addr: &'static str,
        /// Value the location must hold for the swap to happen.
        expected: u32,
        /// Replacement value.
        new: u32,
        /// Register receiving the success flag.
        reg: usize,
    },
}

/// A final register valuation: `regs[t][r]` is register `r` of thread `t`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Outcome {
    regs: Vec<Vec<u32>>,
}

impl Outcome {
    /// Creates an outcome from per-thread register files.
    pub fn new(regs: Vec<Vec<u32>>) -> Self {
        Outcome { regs }
    }

    /// The register files, indexed by thread then register.
    pub fn regs(&self) -> &[Vec<u32>] {
        &self.regs
    }
}

/// A litmus test: initial memory plus one instruction sequence per thread.
#[derive(Debug, Clone)]
pub struct LitmusTest {
    name: &'static str,
    init: Vec<(&'static str, u32)>,
    threads: Vec<Vec<Instr>>,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ExplState {
    machine: Machine<&'static str, u32>,
    pcs: Vec<usize>,
    regs: Vec<Vec<u32>>,
}

impl LitmusTest {
    /// Creates an empty test with the given display name.
    pub fn new(name: &'static str) -> Self {
        LitmusTest {
            name,
            init: Vec::new(),
            threads: Vec::new(),
        }
    }

    /// The test's display name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The initial memory bindings, in insertion order.
    pub fn init_bindings(&self) -> &[(&'static str, u32)] {
        &self.init
    }

    /// The per-thread instruction sequences.
    pub fn threads(&self) -> &[Vec<Instr>] {
        &self.threads
    }

    /// Adds an initial memory binding.
    #[must_use]
    pub fn init(mut self, addr: &'static str, value: u32) -> Self {
        self.init.push((addr, value));
        self
    }

    /// Adds a thread executing `program`.
    #[must_use]
    pub fn thread(mut self, program: Vec<Instr>) -> Self {
        self.threads.push(program);
        self
    }

    fn register_count(&self, thread: usize) -> usize {
        self.threads[thread]
            .iter()
            .filter_map(|i| match *i {
                Instr::Read(_, r) | Instr::Cas { reg: r, .. } => Some(r + 1),
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }

    fn initial_state(&self, model: MemoryModel) -> ExplState {
        let mut machine = Machine::new(self.threads.len(), model);
        for &(a, v) in &self.init {
            machine.initialize(a, v);
        }
        ExplState {
            machine,
            pcs: vec![0; self.threads.len()],
            regs: (0..self.threads.len())
                .map(|t| vec![u32::MAX; self.register_count(t)])
                .collect(),
        }
    }

    /// Successor states of `s`: every enabled program step of every thread,
    /// plus every enabled store-buffer commit. Appends into a
    /// caller-provided scratch buffer — the explorers reuse one buffer
    /// across the whole search instead of allocating a `Vec` per state.
    ///
    /// With `canonicalize`, each successor's store buffers are normalized
    /// by coalescing adjacent duplicate writes
    /// ([`Machine::canonicalize_buffers`]) so observationally-equivalent
    /// buffer contents dedup to one state.
    fn successors_into(&self, s: &ExplState, canonicalize: bool, out: &mut Vec<ExplState>) {
        let base = out.len();
        for (ti, program) in self.threads.iter().enumerate() {
            let t = ThreadId::new(ti);
            // Program step.
            if let Some(&instr) = program.get(s.pcs[ti]) {
                let mut next = s.clone();
                next.pcs[ti] += 1;
                let ok = match instr {
                    Instr::Write(a, v) => next.machine.write(t, a, v).is_ok(),
                    Instr::Read(a, r) => match next.machine.read(t, &a) {
                        Ok(v) => {
                            next.regs[ti][r] = v.unwrap_or(u32::MAX);
                            true
                        }
                        Err(_) => false,
                    },
                    Instr::MFence => next.machine.mfence(t).is_ok(),
                    Instr::Cas {
                        addr,
                        expected,
                        new,
                        reg,
                    } => match next.machine.locked_cmpxchg(t, addr, &expected, new) {
                        Ok(won) => {
                            next.regs[ti][reg] = u32::from(won);
                            true
                        }
                        Err(_) => false,
                    },
                };
                if ok {
                    out.push(next);
                }
            }
            // Commit step.
            if !s.machine.buffer(t).is_empty() {
                let mut next = s.clone();
                if next.machine.commit(t).is_ok() {
                    out.push(next);
                }
            }
        }
        if canonicalize {
            for next in &mut out[base..] {
                next.machine.canonicalize_buffers();
            }
        }
    }

    /// The shared exhaustive DFS: visits every distinct state once, calls
    /// `on_state` for each final state, and returns the number of distinct
    /// states seen. One scratch successor buffer serves the whole search.
    fn explore(
        &self,
        model: MemoryModel,
        canonicalize: bool,
        mut on_final: impl FnMut(&ExplState),
    ) -> usize {
        let mut seen: HashSet<ExplState> = HashSet::new();
        let mut stack = vec![self.initial_state(model)];
        let mut scratch: Vec<ExplState> = Vec::new();
        while let Some(s) = stack.pop() {
            if !seen.insert(s.clone()) {
                continue;
            }
            let done = s
                .pcs
                .iter()
                .enumerate()
                .all(|(t, &pc)| pc == self.threads[t].len())
                && s.machine.threads_with_pending().next().is_none();
            if done {
                on_final(&s);
            }
            scratch.clear();
            self.successors_into(&s, canonicalize, &mut scratch);
            stack.append(&mut scratch);
        }
        seen.len()
    }

    /// Exhaustively explores every interleaving under `model` and returns
    /// the set of final outcomes.
    ///
    /// A state is final when every thread has run to completion *and* every
    /// store buffer has drained (the standard litmus final-state convention).
    /// Registers never written read back as `u32::MAX`; locations never
    /// initialized read as `u32::MAX` as well, so use explicit
    /// [`init`](LitmusTest::init) bindings.
    pub fn outcomes(&self, model: MemoryModel) -> BTreeSet<Outcome> {
        self.outcomes_with(model, false)
    }

    /// [`outcomes`](LitmusTest::outcomes) with store-buffer
    /// canonicalization optionally enabled. Canonicalization coalesces
    /// adjacent duplicate pending writes, which preserves every committed
    /// memory and every forwarded read — so the outcome set is identical;
    /// only the number of distinct explored states shrinks.
    pub fn outcomes_with(&self, model: MemoryModel, canonicalize: bool) -> BTreeSet<Outcome> {
        let mut finals = BTreeSet::new();
        self.explore(model, canonicalize, |s| {
            finals.insert(Outcome::new(s.regs.clone()));
        });
        finals
    }

    /// Exhaustively explores every interleaving under `model` and returns
    /// the set of reachable *final memories* (address-sorted), for tests
    /// whose interesting observable is the committed state rather than
    /// registers (e.g. `2+2W`).
    pub fn final_memories(&self, model: MemoryModel) -> BTreeSet<Vec<(&'static str, u32)>> {
        let mut finals = BTreeSet::new();
        self.explore(model, false, |s| {
            finals.insert(
                s.machine
                    .memory_iter()
                    .map(|(a, v)| (*a, *v))
                    .collect::<Vec<_>>(),
            );
        });
        finals
    }

    /// The number of distinct states explored under `model` — used by the
    /// state-space statistics experiment.
    pub fn state_count(&self, model: MemoryModel) -> usize {
        self.state_count_with(model, false)
    }

    /// [`state_count`](LitmusTest::state_count) with store-buffer
    /// canonicalization optionally enabled, for measuring the per-test
    /// savings of the normalization.
    pub fn state_count_with(&self, model: MemoryModel, canonicalize: bool) -> usize {
        self.explore(model, canonicalize, |_| {})
    }
}

/// The store-buffering litmus test (`SB`): the signature TSO relaxation.
pub fn sb() -> LitmusTest {
    LitmusTest::new("SB")
        .init("x", 0)
        .init("y", 0)
        .thread(vec![Instr::Write("x", 1), Instr::Read("y", 0)])
        .thread(vec![Instr::Write("y", 1), Instr::Read("x", 0)])
}

/// Store buffering with an `MFENCE` between each thread's store and load
/// (`SB+mfences`): the relaxed outcome is forbidden again.
pub fn sb_fenced() -> LitmusTest {
    LitmusTest::new("SB+mfences")
        .init("x", 0)
        .init("y", 0)
        .thread(vec![
            Instr::Write("x", 1),
            Instr::MFence,
            Instr::Read("y", 0),
        ])
        .thread(vec![
            Instr::Write("y", 1),
            Instr::MFence,
            Instr::Read("x", 0),
        ])
}

/// Message passing (`MP`): t0 writes data then flag; t1 reads flag then
/// data. TSO preserves this idiom (no relaxed outcome), unlike weaker models.
pub fn mp() -> LitmusTest {
    LitmusTest::new("MP")
        .init("data", 0)
        .init("flag", 0)
        .thread(vec![Instr::Write("data", 1), Instr::Write("flag", 1)])
        .thread(vec![Instr::Read("flag", 0), Instr::Read("data", 1)])
}

/// Load buffering (`LB`): each thread reads the other's location then
/// writes its own. The cyclic outcome r0=r1=1 requires reordering loads
/// after later stores, which TSO (like SC) forbids.
pub fn lb() -> LitmusTest {
    LitmusTest::new("LB")
        .init("x", 0)
        .init("y", 0)
        .thread(vec![Instr::Read("y", 0), Instr::Write("x", 1)])
        .thread(vec![Instr::Read("x", 0), Instr::Write("y", 1)])
}

/// Sewell et al.'s example n6: a thread reads its *own* buffered store
/// while an older store to another location is still pending — exhibiting
/// store forwarding. The outcome r0=1 ∧ r1=0 ∧ x=1 is allowed under TSO
/// and surprising under naive interleaving-with-fences reasoning.
pub fn n6() -> LitmusTest {
    LitmusTest::new("n6")
        .init("x", 0)
        .init("y", 0)
        .thread(vec![
            Instr::Write("x", 1),
            Instr::Read("x", 0), // forwarded from the buffer: 1
            Instr::Read("y", 1), // may still read 0
        ])
        .thread(vec![Instr::Write("y", 2), Instr::Write("x", 2)])
}

/// Independent reads of independent writes (`IRIW`): two writers, two
/// readers. TSO is multi-copy atomic (a single shared memory), so the two
/// readers can never disagree on the order of the two writes.
pub fn iriw() -> LitmusTest {
    LitmusTest::new("IRIW")
        .init("x", 0)
        .init("y", 0)
        .thread(vec![Instr::Write("x", 1)])
        .thread(vec![Instr::Write("y", 1)])
        .thread(vec![
            Instr::Read("x", 0),
            Instr::MFence,
            Instr::Read("y", 1),
        ])
        .thread(vec![
            Instr::Read("y", 0),
            Instr::MFence,
            Instr::Read("x", 1),
        ])
}

/// `R`: one thread writes both locations, the other writes then reads.
/// The outcome r0=0 with x=1 final... the store-buffer delay of thread 1's
/// write lets its read of `x` miss thread 0's second store under TSO.
pub fn r_shape() -> LitmusTest {
    LitmusTest::new("R")
        .init("x", 0)
        .init("y", 0)
        .thread(vec![Instr::Write("x", 1), Instr::Write("y", 1)])
        .thread(vec![Instr::Write("y", 2), Instr::Read("x", 0)])
}

/// `2+2W`: both threads write both locations, in opposite orders. Under
/// TSO the final memory must be an interleaving of the two FIFO-committed
/// streams `[x:=1; y:=1]` and `[y:=2; x:=2]` — which rules out the final
/// state `x = 1 ∧ y = 2` (it would need `x:=2` before `x:=1` *and* `y:=1`
/// before `y:=2`, a cycle through the program orders).
pub fn two_plus_two_w() -> LitmusTest {
    LitmusTest::new("2+2W")
        .init("x", 0)
        .init("y", 0)
        .thread(vec![Instr::Write("x", 1), Instr::Write("y", 1)])
        .thread(vec![Instr::Write("y", 2), Instr::Write("x", 2)])
}

/// Every named litmus test in this module, for suite-wide harnesses (the
/// static analyzer's oracle-agreement tests iterate over exactly this set).
pub fn suite() -> Vec<LitmusTest> {
    vec![
        sb(),
        sb_fenced(),
        mp(),
        lb(),
        n6(),
        iriw(),
        r_shape(),
        two_plus_two_w(),
        cas_race(),
    ]
}

/// Store buffering with each store issued twice (`SB+dups`): the repeated
/// adjacent writes are observationally redundant, so buffer
/// canonicalization collapses them — a worst case for naive exploration
/// and the demonstration test for `sb_canon` savings.
pub fn sb_dups() -> LitmusTest {
    LitmusTest::new("SB+dups")
        .init("x", 0)
        .init("y", 0)
        .thread(vec![
            Instr::Write("x", 1),
            Instr::Write("x", 1),
            Instr::Write("x", 1),
            Instr::Read("y", 0),
        ])
        .thread(vec![
            Instr::Write("y", 1),
            Instr::Write("y", 1),
            Instr::Write("y", 1),
            Instr::Read("x", 0),
        ])
}

/// Two threads race a CAS on the same location: exactly one must win.
pub fn cas_race() -> LitmusTest {
    LitmusTest::new("CAS-race")
        .init("x", 0)
        .thread(vec![Instr::Cas {
            addr: "x",
            expected: 0,
            new: 1,
            reg: 0,
        }])
        .thread(vec![Instr::Cas {
            addr: "x",
            expected: 0,
            new: 2,
            reg: 0,
        }])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(regs: Vec<Vec<u32>>) -> Outcome {
        Outcome::new(regs)
    }

    #[test]
    fn sb_relaxed_outcome_is_tso_only() {
        let t = sb();
        let tso = t.outcomes(MemoryModel::Tso);
        let sc = t.outcomes(MemoryModel::Sc);
        let relaxed = outcome(vec![vec![0], vec![0]]);
        assert!(tso.contains(&relaxed));
        assert!(!sc.contains(&relaxed));
        // TSO admits strictly more behaviours, and all SC behaviours.
        assert!(sc.iter().all(|o| tso.contains(o)));
        assert!(tso.len() > sc.len());
    }

    #[test]
    fn fences_restore_sc_for_sb() {
        let t = sb_fenced();
        let tso = t.outcomes(MemoryModel::Tso);
        let sc = sb().outcomes(MemoryModel::Sc);
        assert_eq!(tso, sc);
    }

    #[test]
    fn mp_is_preserved_by_tso() {
        let t = mp();
        let tso = t.outcomes(MemoryModel::Tso);
        // flag=1 observed but data=0: forbidden under TSO (FIFO buffers).
        let violation = outcome(vec![vec![], vec![1, 0]]);
        assert!(!tso.contains(&violation));
        // Sanity: the in-order outcome is reachable.
        assert!(tso.contains(&outcome(vec![vec![], vec![1, 1]])));
    }

    #[test]
    fn cas_race_has_exactly_one_winner() {
        let t = cas_race();
        for model in [MemoryModel::Tso, MemoryModel::Sc] {
            let outs = t.outcomes(model);
            assert!(!outs.is_empty());
            for o in &outs {
                let wins: u32 = o.regs().iter().map(|r| r[0]).sum();
                assert_eq!(wins, 1, "exactly one CAS must win: {o:?}");
            }
        }
    }

    #[test]
    fn lb_cycle_is_forbidden_even_under_tso() {
        let t = lb();
        let cyclic = outcome(vec![vec![1], vec![1]]);
        assert!(!t.outcomes(MemoryModel::Tso).contains(&cyclic));
        // TSO adds no behaviours at all for LB (no stores precede loads).
        assert_eq!(t.outcomes(MemoryModel::Tso), t.outcomes(MemoryModel::Sc));
    }

    #[test]
    fn n6_store_forwarding_is_observable() {
        let t = n6();
        let tso = t.outcomes(MemoryModel::Tso);
        // r0 = 1 (own buffered store), r1 = 0 (y write not yet visible):
        // needs forwarding + buffering together.
        let fwd = outcome(vec![vec![1, 0], vec![]]);
        assert!(tso.contains(&fwd));
        // Own stores are never invisible to the issuing thread.
        for o in &tso {
            assert_ne!(o.regs()[0][0], 0, "t0 must see x=1 or x=2, never 0");
        }
    }

    #[test]
    fn iriw_readers_agree_on_write_order() {
        let t = iriw();
        for o in t.outcomes(MemoryModel::Tso) {
            let (r2, r3) = (&o.regs()[2], &o.regs()[3]);
            // Disagreement: reader 2 sees x before y while reader 3 sees y
            // before x. TSO's single shared memory forbids it.
            let disagree = r2[0] == 1 && r2[1] == 0 && r3[0] == 1 && r3[1] == 0;
            assert!(!disagree, "IRIW violation under TSO: {o:?}");
        }
    }

    #[test]
    fn r_shape_relaxed_outcome_is_tso_only() {
        let t = r_shape();
        // t1 reads x=0 even though its own y-write is ordered after t0's
        // stores in the final memory (y = 1): only buffering explains it.
        let tso = t.outcomes(MemoryModel::Tso);
        let sc = t.outcomes(MemoryModel::Sc);
        assert!(sc.iter().all(|o| tso.contains(o)));
        assert!(tso.len() >= sc.len());
    }

    #[test]
    fn two_plus_two_w_forbids_the_cyclic_final_state() {
        let t = two_plus_two_w();
        let finals = t.final_memories(MemoryModel::Tso);
        // x = 1 ∧ y = 2 needs x:=2 < x:=1 and y:=1 < y:=2, contradicting
        // both threads' FIFO commit orders.
        assert!(!finals.contains(&vec![("x", 1), ("y", 2)]));
        // The other three combinations are all reachable interleavings.
        for want in [
            vec![("x", 1), ("y", 1)],
            vec![("x", 2), ("y", 1)],
            vec![("x", 2), ("y", 2)],
        ] {
            assert!(finals.contains(&want), "missing {want:?}");
        }
        // TSO adds nothing over SC for a write-only test's final states.
        assert_eq!(finals, t.final_memories(MemoryModel::Sc));
    }

    #[test]
    fn tso_explores_more_states_than_sc() {
        let t = sb();
        assert!(t.state_count(MemoryModel::Tso) > t.state_count(MemoryModel::Sc));
    }

    #[test]
    fn canonicalization_preserves_outcomes_across_the_suite() {
        for t in suite().into_iter().chain([sb_dups()]) {
            for model in [MemoryModel::Tso, MemoryModel::Sc] {
                assert_eq!(
                    t.outcomes_with(model, false),
                    t.outcomes_with(model, true),
                    "{} outcomes changed under sb_canon ({model:?})",
                    t.name()
                );
            }
        }
    }

    #[test]
    fn canonicalization_shrinks_duplicate_write_state_spaces() {
        let t = sb_dups();
        let naive = t.state_count_with(MemoryModel::Tso, false);
        let canon = t.state_count_with(MemoryModel::Tso, true);
        assert!(
            canon < naive,
            "expected canon ({canon}) < naive ({naive}) for SB+dups"
        );
        // SB has no adjacent duplicates, so canon must be a no-op there.
        let sb = sb();
        assert_eq!(
            sb.state_count_with(MemoryModel::Tso, false),
            sb.state_count_with(MemoryModel::Tso, true)
        );
        // The relaxed outcome survives canonicalization.
        assert!(t
            .outcomes_with(MemoryModel::Tso, true)
            .contains(&outcome(vec![vec![0], vec![0]])));
    }

    #[test]
    fn uninitialized_reads_are_flagged() {
        let t = LitmusTest::new("uninit").thread(vec![Instr::Read("z", 0)]);
        let outs = t.outcomes(MemoryModel::Tso);
        assert_eq!(outs.len(), 1);
        assert!(outs.contains(&outcome(vec![vec![u32::MAX]])));
    }
}
