//! An operational model of x86-TSO shared memory.
//!
//! This crate implements the programmer's model of x86 multiprocessor memory
//! due to Sewell et al. ("x86-TSO: a rigorous and usable programmer's model
//! for x86 multiprocessors", CACM 53(7), 2010), which is the memory substrate
//! verified against in *Relaxing Safely: Verified On-the-Fly Garbage
//! Collection for x86-TSO* (PLDI 2015, Figure 9).
//!
//! The model postulates:
//!
//! * a single shared memory, a partial map from addresses to values;
//! * one FIFO **store buffer** per hardware thread: stores are enqueued and
//!   committed to shared memory asynchronously, in order;
//! * loads first consult the issuing thread's own store buffer (newest entry
//!   for the address wins) and fall through to shared memory otherwise;
//! * a global **bus lock** taken by locked instructions (e.g. `LOCK CMPXCHG`);
//!   while one thread holds the lock all *other* threads are blocked from
//!   reading memory and from committing buffered stores (they may still
//!   enqueue stores);
//! * `MFENCE` is modelled as a step that is enabled only once the issuing
//!   thread's store buffer is empty, so "issuing a fence" means waiting for
//!   the buffer to drain;
//! * releasing the bus lock likewise requires an empty buffer, which gives
//!   locked instructions their implicit flushing/fence behaviour.
//!
//! The machine is generic over address and value types so that it can serve
//! both as a stand-alone litmus-test playground ([`litmus`]) and as the
//! memory component of the garbage collector model in the `gc-model` crate.
//!
//! # Example
//!
//! The classic store-buffering (SB) litmus test: both threads write 1 and
//! then read the other's location. Under sequential consistency at least one
//! thread must see a 1; under TSO both loads may see the initial 0 because
//! both stores can still be sitting in the store buffers.
//!
//! ```
//! use tso_model::{Machine, MemoryModel, ThreadId};
//!
//! let t0 = ThreadId::new(0);
//! let t1 = ThreadId::new(1);
//! let mut m: Machine<&str, u32> = Machine::new(2, MemoryModel::Tso);
//! m.initialize("x", 0);
//! m.initialize("y", 0);
//!
//! m.write(t0, "x", 1)?; // buffered
//! m.write(t1, "y", 1)?; // buffered
//!
//! // Neither store has committed, so both threads read 0 from memory:
//! assert_eq!(m.read(t0, &"y")?, Some(0));
//! assert_eq!(m.read(t1, &"x")?, Some(0));
//!
//! // ... yet each thread sees its *own* store via buffer forwarding:
//! assert_eq!(m.read(t0, &"x")?, Some(1));
//! assert_eq!(m.read(t1, &"y")?, Some(1));
//! # Ok::<(), tso_model::TsoError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod litmus;
mod machine;

pub use machine::{Machine, MemoryModel, StoreBuffer, ThreadId, TsoError};
