//! The x86-TSO abstract machine.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

/// Identifier of a hardware thread in a [`Machine`].
///
/// Thread ids are dense indices `0..n` where `n` is the thread count the
/// machine was created with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(usize);

impl ThreadId {
    /// Creates a thread id from its index.
    pub fn new(index: usize) -> Self {
        ThreadId(index)
    }

    /// Returns the underlying index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Which consistency model the machine exhibits.
///
/// The garbage collector paper verifies against [`MemoryModel::Tso`];
/// [`MemoryModel::Sc`] is provided for the SC-vs-TSO ablation experiments
/// (writes take effect immediately, store buffers stay empty).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MemoryModel {
    /// Total store order: writes are buffered per thread and committed
    /// asynchronously in FIFO order.
    #[default]
    Tso,
    /// Sequential consistency: writes are applied to shared memory
    /// immediately; store buffers are always empty.
    Sc,
}

/// Errors returned by [`Machine`] operations whose x86-TSO enabling
/// condition does not hold.
///
/// In an operational exploration (model checking) these are not failures but
/// "transition not enabled" signals; a scheduler simply does not select the
/// corresponding step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TsoError {
    /// The thread is blocked because another thread holds the bus lock.
    Blocked {
        /// The blocked thread.
        thread: ThreadId,
        /// The lock holder.
        holder: ThreadId,
    },
    /// A `lock` was attempted while the bus lock is already held.
    LockHeld {
        /// The current holder.
        holder: ThreadId,
    },
    /// An `unlock` was attempted by a thread that does not hold the lock.
    NotLockOwner {
        /// The thread attempting the unlock.
        thread: ThreadId,
    },
    /// An `mfence` or `unlock` was attempted while the thread's store buffer
    /// still contains pending writes.
    BufferNotEmpty {
        /// The thread whose buffer is non-empty.
        thread: ThreadId,
        /// Number of pending writes.
        pending: usize,
    },
    /// A `commit` was attempted on an empty store buffer.
    NoPendingWrites {
        /// The thread with the empty buffer.
        thread: ThreadId,
    },
    /// A thread id out of range for this machine.
    UnknownThread {
        /// The offending id.
        thread: ThreadId,
        /// Number of threads in the machine.
        threads: usize,
    },
}

impl fmt::Display for TsoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TsoError::Blocked { thread, holder } => {
                write!(f, "{thread} is blocked: bus lock held by {holder}")
            }
            TsoError::LockHeld { holder } => {
                write!(f, "bus lock already held by {holder}")
            }
            TsoError::NotLockOwner { thread } => {
                write!(f, "{thread} does not hold the bus lock")
            }
            TsoError::BufferNotEmpty { thread, pending } => {
                write!(f, "store buffer of {thread} has {pending} pending write(s)")
            }
            TsoError::NoPendingWrites { thread } => {
                write!(f, "store buffer of {thread} is empty")
            }
            TsoError::UnknownThread { thread, threads } => {
                write!(
                    f,
                    "{thread} out of range for machine with {threads} thread(s)"
                )
            }
        }
    }
}

impl Error for TsoError {}

/// A per-thread FIFO store buffer: the sequence of writes issued by the
/// thread that have not yet reached shared memory, oldest first.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct StoreBuffer<A, V> {
    entries: VecDeque<(A, V)>,
}

impl<A, V> StoreBuffer<A, V> {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        StoreBuffer {
            entries: VecDeque::new(),
        }
    }

    /// Number of pending writes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer holds no pending writes.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over pending writes, oldest first.
    pub fn iter(&self) -> impl DoubleEndedIterator<Item = &(A, V)> {
        self.entries.iter()
    }

    fn push(&mut self, addr: A, value: V) {
        self.entries.push_back((addr, value));
    }

    fn pop(&mut self) -> Option<(A, V)> {
        self.entries.pop_front()
    }

    /// Rebuilds a buffer from its pending writes, oldest first — the
    /// inverse of [`StoreBuffer::iter`], for state deserialization.
    pub fn from_entries(entries: impl IntoIterator<Item = (A, V)>) -> Self {
        StoreBuffer {
            entries: entries.into_iter().collect(),
        }
    }

    /// Coalesces *adjacent duplicate* pending writes — consecutive entries
    /// with the same address **and** the same value — keeping one copy.
    /// Returns the number of entries removed.
    ///
    /// This is the only buffer normalization that is observationally sound
    /// in general: committing the first of two identical adjacent writes
    /// leaves every subsequent memory state, every same-thread forwarded
    /// read and every other-thread read exactly as committing the
    /// coalesced single write would. (Coalescing *shadowed* writes to the
    /// same address with different values is **unsound**: the intermediate
    /// value becomes globally visible when the older write commits.)
    pub fn coalesce_adjacent_duplicates(&mut self) -> usize
    where
        A: PartialEq,
        V: PartialEq,
    {
        let before = self.entries.len();
        let mut keep: VecDeque<(A, V)> = VecDeque::with_capacity(before);
        for e in self.entries.drain(..) {
            if keep.back() == Some(&e) {
                continue;
            }
            keep.push_back(e);
        }
        self.entries = keep;
        before - self.entries.len()
    }
}

impl<A: PartialEq, V> StoreBuffer<A, V> {
    /// The newest pending value for `addr`, if any — the value a load by the
    /// owning thread forwards from the buffer.
    pub fn newest(&self, addr: &A) -> Option<&V> {
        self.entries
            .iter()
            .rev()
            .find(|(a, _)| a == addr)
            .map(|(_, v)| v)
    }
}

/// The x86-TSO abstract machine: shared memory, per-thread store buffers and
/// the global bus lock.
///
/// Addresses `A` must be ordered so that the shared memory has a canonical
/// representation (`BTreeMap`), which lets whole machine states be hashed and
/// compared during model checking.
///
/// The transition rules follow Sewell et al. exactly:
///
/// | step        | enabling condition                          | effect |
/// |-------------|---------------------------------------------|--------|
/// | [`read`]    | `not_blocked(t)`                            | newest buffered write to the address, else shared memory |
/// | [`write`]   | — (always enabled)                          | enqueue on `t`'s buffer (TSO) or apply directly (SC) |
/// | [`commit`]  | `not_blocked(t)` ∧ buffer non-empty         | dequeue oldest write, apply to memory |
/// | [`mfence`]  | buffer of `t` empty                         | no-op (the condition *is* the fence) |
/// | [`lock`]    | bus lock free                               | `t` takes the lock |
/// | [`unlock`]  | `t` holds the lock ∧ buffer of `t` empty    | release the lock |
///
/// where `not_blocked(t)` holds iff the bus lock is free or held by `t`.
///
/// [`read`]: Machine::read
/// [`write`]: Machine::write
/// [`commit`]: Machine::commit
/// [`mfence`]: Machine::mfence
/// [`lock`]: Machine::lock
/// [`unlock`]: Machine::unlock
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Machine<A, V> {
    memory: BTreeMap<A, V>,
    buffers: Vec<StoreBuffer<A, V>>,
    lock: Option<ThreadId>,
    model: MemoryModel,
}

impl<A: Ord + Clone, V: Clone> Machine<A, V> {
    /// Creates a machine with `threads` hardware threads, empty memory,
    /// empty store buffers and the bus lock free.
    pub fn new(threads: usize, model: MemoryModel) -> Self {
        Machine {
            memory: BTreeMap::new(),
            buffers: (0..threads).map(|_| StoreBuffer::new()).collect(),
            lock: None,
            model,
        }
    }

    /// The number of hardware threads.
    pub fn threads(&self) -> usize {
        self.buffers.len()
    }

    /// The consistency model this machine runs under.
    pub fn model(&self) -> MemoryModel {
        self.model
    }

    /// The current bus lock holder, if any.
    pub fn lock_holder(&self) -> Option<ThreadId> {
        self.lock
    }

    /// Whether `thread` may perform memory reads and buffer commits: the bus
    /// lock is free or held by `thread` itself.
    pub fn not_blocked(&self, thread: ThreadId) -> bool {
        self.lock.is_none() || self.lock == Some(thread)
    }

    /// Direct, un-modelled access to shared memory (no buffer forwarding).
    ///
    /// This is the "omniscient" view used by invariant checkers; program
    /// steps must use [`Machine::read`].
    pub fn memory(&self, addr: &A) -> Option<&V> {
        self.memory.get(addr)
    }

    /// Iterates over the shared memory contents in address order.
    pub fn memory_iter(&self) -> impl Iterator<Item = (&A, &V)> {
        self.memory.iter()
    }

    /// The store buffer of `thread`.
    ///
    /// # Panics
    ///
    /// Panics if `thread` is out of range.
    pub fn buffer(&self, thread: ThreadId) -> &StoreBuffer<A, V> {
        &self.buffers[thread.0]
    }

    /// Threads whose store buffers are non-empty, i.e. that have a `commit`
    /// step enabled (modulo blocking).
    pub fn threads_with_pending(&self) -> impl Iterator<Item = ThreadId> + '_ {
        self.buffers
            .iter()
            .enumerate()
            .filter(|(_, b)| !b.is_empty())
            .map(|(i, _)| ThreadId(i))
    }

    /// Sets the initial contents of `addr` directly in shared memory,
    /// bypassing the store buffers. Intended for test/benchmark setup.
    pub fn initialize(&mut self, addr: A, value: V) {
        self.memory.insert(addr, value);
    }

    /// Removes `addr` from shared memory (used to model freeing a heap
    /// cell). Pending buffered writes to `addr` are *not* removed: a write
    /// committed after the removal re-creates the location, exactly as a
    /// buffered store to freed memory would on hardware. Returns the removed
    /// value.
    pub fn remove(&mut self, addr: &A) -> Option<V> {
        self.memory.remove(addr)
    }

    fn check_thread(&self, thread: ThreadId) -> Result<(), TsoError> {
        if thread.0 < self.buffers.len() {
            Ok(())
        } else {
            Err(TsoError::UnknownThread {
                thread,
                threads: self.buffers.len(),
            })
        }
    }

    fn check_not_blocked(&self, thread: ThreadId) -> Result<(), TsoError> {
        match self.lock {
            Some(holder) if holder != thread => Err(TsoError::Blocked { thread, holder }),
            _ => Ok(()),
        }
    }

    /// Performs a load of `addr` by `thread`.
    ///
    /// The newest write to `addr` pending in `thread`'s own store buffer is
    /// forwarded if present; otherwise shared memory is consulted. Returns
    /// `None` if the location has never been written (or has been
    /// [`remove`](Machine::remove)d and not re-written).
    ///
    /// # Errors
    ///
    /// [`TsoError::Blocked`] if another thread holds the bus lock.
    pub fn read(&self, thread: ThreadId, addr: &A) -> Result<Option<V>, TsoError> {
        self.check_thread(thread)?;
        self.check_not_blocked(thread)?;
        if let Some(v) = self.buffers[thread.0].newest(addr) {
            return Ok(Some(v.clone()));
        }
        Ok(self.memory.get(addr).cloned())
    }

    /// Performs a store of `value` to `addr` by `thread`.
    ///
    /// Under TSO the write is enqueued on `thread`'s store buffer; it reaches
    /// shared memory only via a later [`commit`](Machine::commit). Under SC
    /// it is applied immediately. Enqueuing is permitted even while another
    /// thread holds the bus lock (the buffer is thread-private).
    ///
    /// # Errors
    ///
    /// [`TsoError::UnknownThread`] if `thread` is out of range.
    pub fn write(&mut self, thread: ThreadId, addr: A, value: V) -> Result<(), TsoError> {
        self.check_thread(thread)?;
        match self.model {
            MemoryModel::Tso => self.buffers[thread.0].push(addr, value),
            MemoryModel::Sc => {
                self.memory.insert(addr, value);
            }
        }
        Ok(())
    }

    /// Commits the oldest pending write of `thread` to shared memory and
    /// returns it. This is the machine's only internal (scheduler-chosen)
    /// step.
    ///
    /// # Errors
    ///
    /// [`TsoError::Blocked`] if another thread holds the bus lock, or
    /// [`TsoError::NoPendingWrites`] if the buffer is empty.
    pub fn commit(&mut self, thread: ThreadId) -> Result<(A, V), TsoError> {
        self.check_thread(thread)?;
        self.check_not_blocked(thread)?;
        let (addr, value) = self.buffers[thread.0]
            .pop()
            .ok_or(TsoError::NoPendingWrites { thread })?;
        self.memory.insert(addr.clone(), value.clone());
        Ok((addr, value))
    }

    /// Commits every pending write of `thread`, oldest first, returning how
    /// many writes were flushed. A convenience for direct execution; in an
    /// exploration each [`commit`](Machine::commit) is a separate transition.
    ///
    /// # Errors
    ///
    /// [`TsoError::Blocked`] if another thread holds the bus lock.
    pub fn flush(&mut self, thread: ThreadId) -> Result<usize, TsoError> {
        self.check_thread(thread)?;
        self.check_not_blocked(thread)?;
        let mut n = 0;
        while !self.buffers[thread.0].is_empty() {
            self.commit(thread)?;
            n += 1;
        }
        Ok(n)
    }

    /// An `MFENCE` by `thread`: enabled only when the thread's store buffer
    /// is empty. The step itself has no effect — waiting for the enabling
    /// condition is what flushes.
    ///
    /// # Errors
    ///
    /// [`TsoError::BufferNotEmpty`] if writes are still pending.
    pub fn mfence(&self, thread: ThreadId) -> Result<(), TsoError> {
        self.check_thread(thread)?;
        let pending = self.buffers[thread.0].len();
        if pending == 0 {
            Ok(())
        } else {
            Err(TsoError::BufferNotEmpty { thread, pending })
        }
    }

    /// Whether an `mfence` step by `thread` is currently enabled.
    pub fn can_mfence(&self, thread: ThreadId) -> bool {
        self.mfence(thread).is_ok()
    }

    /// Takes the bus lock for `thread` (the start of a locked instruction).
    ///
    /// # Errors
    ///
    /// [`TsoError::LockHeld`] if any thread (including `thread`) already
    /// holds the lock — the model's lock is not re-entrant.
    pub fn lock(&mut self, thread: ThreadId) -> Result<(), TsoError> {
        self.check_thread(thread)?;
        if let Some(holder) = self.lock {
            return Err(TsoError::LockHeld { holder });
        }
        self.lock = Some(thread);
        Ok(())
    }

    /// Releases the bus lock (the end of a locked instruction). Enabled only
    /// when `thread`'s store buffer is empty, which forces the locked
    /// instruction's writes to be globally visible before it completes.
    ///
    /// # Errors
    ///
    /// [`TsoError::NotLockOwner`] if `thread` does not hold the lock, or
    /// [`TsoError::BufferNotEmpty`] if writes are still pending.
    pub fn unlock(&mut self, thread: ThreadId) -> Result<(), TsoError> {
        self.check_thread(thread)?;
        if self.lock != Some(thread) {
            return Err(TsoError::NotLockOwner { thread });
        }
        let pending = self.buffers[thread.0].len();
        if pending != 0 {
            return Err(TsoError::BufferNotEmpty { thread, pending });
        }
        self.lock = None;
        Ok(())
    }

    /// Executes an atomic compare-and-swap as a single composite step:
    /// lock, flush, read, conditional write, flush, unlock — the
    /// coarse-grained view of x86 `LOCK CMPXCHG` used for direct execution.
    /// (The garbage collector *model* performs the fine-grained sub-steps
    /// individually so that interleavings inside the CAS window are
    /// explored.)
    ///
    /// Returns `true` (the caller "wins") iff the current value equalled
    /// `expected` and the swap was performed.
    ///
    /// # Errors
    ///
    /// [`TsoError::LockHeld`] if the bus lock is taken, or
    /// [`TsoError::Blocked`] if the flush is blocked (impossible once the
    /// lock is acquired; listed for completeness).
    pub fn locked_cmpxchg(
        &mut self,
        thread: ThreadId,
        addr: A,
        expected: &V,
        new: V,
    ) -> Result<bool, TsoError>
    where
        V: PartialEq,
    {
        self.lock(thread)?;
        self.flush(thread)?;
        let current = self.read(thread, &addr)?;
        let won = current.as_ref() == Some(expected);
        if won {
            self.write(thread, addr, new)?;
        }
        self.flush(thread)?;
        self.unlock(thread)?;
        Ok(won)
    }

    /// Rebuilds a machine from previously-extracted parts — the inverse of
    /// reading [`Machine::memory_iter`], [`Machine::buffer`] and
    /// [`Machine::lock_holder`], for state deserialization.
    ///
    /// # Panics
    ///
    /// Panics if the lock holder is out of range of `buffers`.
    pub fn from_raw_parts(
        model: MemoryModel,
        memory: BTreeMap<A, V>,
        buffers: Vec<StoreBuffer<A, V>>,
        lock: Option<ThreadId>,
    ) -> Self {
        if let Some(t) = lock {
            assert!(t.0 < buffers.len(), "lock holder out of range");
        }
        Machine {
            memory,
            buffers,
            lock,
            model,
        }
    }

    /// Canonicalizes every store buffer by coalescing adjacent duplicate
    /// pending writes (see [`StoreBuffer::coalesce_adjacent_duplicates`]).
    /// Returns the total number of entries removed. Observationally
    /// equivalent machine states then hash identically.
    pub fn canonicalize_buffers(&mut self) -> usize
    where
        V: PartialEq,
    {
        self.buffers
            .iter_mut()
            .map(|b| b.coalesce_adjacent_duplicates())
            .sum()
    }

    /// Permutes the hardware threads: after the call, thread `new` owns
    /// what thread `map[new]` owned before (store buffer and, if it held
    /// it, the bus lock). Shared memory is untouched. Used by symmetry
    /// reduction to canonicalize states under permutations of identical
    /// threads.
    ///
    /// # Panics
    ///
    /// Panics if `map` is not a permutation of `0..self.threads()`.
    pub fn permute_threads(&mut self, map: &[usize]) {
        assert_eq!(map.len(), self.buffers.len(), "permutation arity");
        let mut seen = vec![false; map.len()];
        for &old in map {
            assert!(old < map.len() && !seen[old], "not a permutation");
            seen[old] = true;
        }
        let mut buffers: Vec<Option<StoreBuffer<A, V>>> =
            self.buffers.drain(..).map(Some).collect();
        self.buffers = map
            .iter()
            .map(|&old| buffers[old].take().expect("permutation visits once"))
            .collect();
        if let Some(holder) = self.lock {
            let new = map
                .iter()
                .position(|&old| old == holder.0)
                .expect("lock holder survives permutation");
            self.lock = Some(ThreadId(new));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: usize) -> ThreadId {
        ThreadId::new(i)
    }

    fn machine(model: MemoryModel) -> Machine<&'static str, u32> {
        let mut m = Machine::new(2, model);
        m.initialize("x", 0);
        m.initialize("y", 0);
        m
    }

    #[test]
    fn writes_buffer_under_tso() {
        let mut m = machine(MemoryModel::Tso);
        m.write(t(0), "x", 1).unwrap();
        assert_eq!(m.memory(&"x"), Some(&0));
        assert_eq!(m.buffer(t(0)).len(), 1);
    }

    #[test]
    fn writes_apply_immediately_under_sc() {
        let mut m = machine(MemoryModel::Sc);
        m.write(t(0), "x", 1).unwrap();
        assert_eq!(m.memory(&"x"), Some(&1));
        assert!(m.buffer(t(0)).is_empty());
    }

    #[test]
    fn read_forwards_newest_own_store() {
        let mut m = machine(MemoryModel::Tso);
        m.write(t(0), "x", 1).unwrap();
        m.write(t(0), "x", 2).unwrap();
        assert_eq!(m.read(t(0), &"x").unwrap(), Some(2));
        // The other thread still sees memory.
        assert_eq!(m.read(t(1), &"x").unwrap(), Some(0));
    }

    #[test]
    fn commit_is_fifo() {
        let mut m = machine(MemoryModel::Tso);
        m.write(t(0), "x", 1).unwrap();
        m.write(t(0), "y", 2).unwrap();
        assert_eq!(m.commit(t(0)).unwrap(), ("x", 1));
        assert_eq!(m.memory(&"x"), Some(&1));
        assert_eq!(m.memory(&"y"), Some(&0));
        assert_eq!(m.commit(t(0)).unwrap(), ("y", 2));
        assert_eq!(m.memory(&"y"), Some(&2));
    }

    #[test]
    fn commit_empty_buffer_is_disabled() {
        let mut m = machine(MemoryModel::Tso);
        assert_eq!(
            m.commit(t(0)),
            Err(TsoError::NoPendingWrites { thread: t(0) })
        );
    }

    #[test]
    fn mfence_requires_empty_buffer() {
        let mut m = machine(MemoryModel::Tso);
        assert!(m.can_mfence(t(0)));
        m.write(t(0), "x", 1).unwrap();
        assert_eq!(
            m.mfence(t(0)),
            Err(TsoError::BufferNotEmpty {
                thread: t(0),
                pending: 1
            })
        );
        m.commit(t(0)).unwrap();
        assert!(m.can_mfence(t(0)));
    }

    #[test]
    fn lock_blocks_other_reads_and_commits_but_not_writes() {
        let mut m = machine(MemoryModel::Tso);
        m.write(t(1), "y", 7).unwrap();
        m.lock(t(0)).unwrap();
        assert_eq!(
            m.read(t(1), &"x"),
            Err(TsoError::Blocked {
                thread: t(1),
                holder: t(0)
            })
        );
        assert_eq!(
            m.commit(t(1)),
            Err(TsoError::Blocked {
                thread: t(1),
                holder: t(0)
            })
        );
        // Writes still enqueue while blocked.
        m.write(t(1), "y", 8).unwrap();
        assert_eq!(m.buffer(t(1)).len(), 2);
        // The lock holder itself is unimpeded.
        assert_eq!(m.read(t(0), &"x").unwrap(), Some(0));
        m.unlock(t(0)).unwrap();
        assert_eq!(m.read(t(1), &"x").unwrap(), Some(0));
    }

    #[test]
    fn lock_is_exclusive_and_unlock_checks_owner() {
        let mut m = machine(MemoryModel::Tso);
        m.lock(t(0)).unwrap();
        assert_eq!(m.lock(t(1)), Err(TsoError::LockHeld { holder: t(0) }));
        assert_eq!(m.unlock(t(1)), Err(TsoError::NotLockOwner { thread: t(1) }));
        m.unlock(t(0)).unwrap();
        assert_eq!(m.lock_holder(), None);
    }

    #[test]
    fn unlock_requires_drained_buffer() {
        let mut m = machine(MemoryModel::Tso);
        m.lock(t(0)).unwrap();
        m.write(t(0), "x", 1).unwrap();
        assert_eq!(
            m.unlock(t(0)),
            Err(TsoError::BufferNotEmpty {
                thread: t(0),
                pending: 1
            })
        );
        m.flush(t(0)).unwrap();
        m.unlock(t(0)).unwrap();
    }

    #[test]
    fn cmpxchg_succeeds_once_per_value() {
        let mut m = machine(MemoryModel::Tso);
        assert!(m.locked_cmpxchg(t(0), "x", &0, 1).unwrap());
        // Second CAS with the stale expectation fails...
        assert!(!m.locked_cmpxchg(t(1), "x", &0, 2).unwrap());
        // ...and the failed CAS did not write.
        assert_eq!(m.memory(&"x"), Some(&1));
        // The lock is free afterwards either way.
        assert_eq!(m.lock_holder(), None);
    }

    #[test]
    fn cmpxchg_flushes_pending_writes_first() {
        let mut m = machine(MemoryModel::Tso);
        m.write(t(0), "y", 9).unwrap();
        assert!(m.locked_cmpxchg(t(0), "x", &0, 1).unwrap());
        // The unrelated pending write was forced to memory by the lock.
        assert_eq!(m.memory(&"y"), Some(&9));
        assert!(m.buffer(t(0)).is_empty());
    }

    #[test]
    fn remove_leaves_buffered_writes() {
        let mut m = machine(MemoryModel::Tso);
        m.write(t(0), "x", 5).unwrap();
        assert_eq!(m.remove(&"x"), Some(0));
        assert_eq!(m.memory(&"x"), None);
        // The stale buffered store re-creates the location when it commits —
        // exactly the hazard the collector's sweep must be safe against.
        m.commit(t(0)).unwrap();
        assert_eq!(m.memory(&"x"), Some(&5));
    }

    #[test]
    fn threads_with_pending_reports_nonempty_buffers() {
        let mut m = machine(MemoryModel::Tso);
        m.write(t(1), "y", 1).unwrap();
        let pend: Vec<_> = m.threads_with_pending().collect();
        assert_eq!(pend, vec![t(1)]);
    }

    #[test]
    fn unknown_thread_is_rejected() {
        let m = machine(MemoryModel::Tso);
        assert_eq!(
            m.read(t(9), &"x"),
            Err(TsoError::UnknownThread {
                thread: t(9),
                threads: 2
            })
        );
    }

    #[test]
    fn machine_states_hash_and_compare() {
        use std::collections::HashSet;
        let mut a = machine(MemoryModel::Tso);
        let b = a.clone();
        assert_eq!(a, b);
        a.write(t(0), "x", 1).unwrap();
        assert_ne!(a, b);
        let mut set = HashSet::new();
        set.insert(a.clone());
        set.insert(b);
        assert_eq!(set.len(), 2);
        set.insert(a);
        assert_eq!(set.len(), 2);
    }
}
