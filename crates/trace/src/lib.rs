//! `gc-trace`: lock-free event tracing, a metrics registry, and Chrome
//! trace-event export for the "Relaxing Safely" reproduction.
//!
//! Three pillars (ROADMAP item: observability, DESIGN.md §2.10):
//!
//! * **Tracing** ([`ring`], [`event`], [`tracer`]): each instrumented
//!   thread owns a fixed-capacity lock-free SPSC ring of epoch-stamped
//!   binary events. A full ring drops (and counts) rather than blocks —
//!   tracing never adds a wait to a mutator or the collector. The
//!   runtime-disable fast path is one relaxed atomic load, and consumers
//!   compile the call sites out entirely when built without their `trace`
//!   feature.
//! * **Metrics** ([`metrics`]): named counters, gauges and log-linear
//!   histograms with p50/p95/p99, a Prometheus-style text exposition, and
//!   a JSON snapshot / `BENCH_*.json` record writer.
//! * **Export** ([`chrome`], [`json`]): a Chrome trace-event document
//!   (cycles as spans with handshake/mark/sweep nested under them, one
//!   track per thread — loadable in Perfetto) plus a flat JSONL stream,
//!   built on a small dependency-free JSON value.
//! * **Live scrape & regression gate** ([`scrape`], [`diff`], [`bench`]):
//!   a std-only Prometheus endpoint over a live [`Registry`]
//!   (`/metrics`, `/metrics.json`, `/healthz`), a trace-shape differ
//!   with configurable thresholds behind `gc-trace diff`, and the
//!   schema-checked `BENCH_*.json` writer/validator (DESIGN.md §2.14).
//!
//! The crate is deliberately leaf-level: `otf-gc`, `mc` and the bench
//! rigs depend on it (optionally), never the reverse, so the event
//! vocabulary in [`event`] mirrors the runtime's phase and handshake
//! encodings rather than importing them.
//!
//! # Quick start
//!
//! ```
//! use gc_trace::{self as trace, EventKind};
//!
//! trace::enable();
//! trace::set_track_name("worker-0");
//! trace::emit(EventKind::SpanBegin { id: 1 });
//! trace::emit(EventKind::Instant { id: 42, value: 7 });
//! trace::emit(EventKind::SpanEnd { id: 1 });
//! trace::disable();
//!
//! let dumps = trace::Tracer::global().drain();
//! let doc = trace::chrome::chrome_trace(&dumps);
//! trace::chrome::validate_chrome_trace(&doc).unwrap();
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod bench;
pub mod chrome;
pub mod diff;
pub mod event;
pub mod json;
pub mod metrics;
pub mod ring;
pub mod scrape;
pub mod sink;
pub mod tracer;

pub use bench::{
    check_bench_file, validate_bench_record, write_bench_record, write_bench_record_at,
    BENCH_SCHEMA,
};
pub use diff::{diff_shapes, DiffError, DiffReport, Finding, Summary, Thresholds, TraceShape};
pub use event::{Event, EventKind, HANDSHAKE_NAMES, PHASE_NAMES};
pub use json::{Json, JsonError};
pub use metrics::{bench_record, escape_label_value, labeled, Counter, Gauge, Histogram, Registry};
pub use ring::Ring;
pub use scrape::{Health, Liveness, MetricsServer, METRICS_CONTENT_TYPE};
pub use sink::{SinkSummary, TraceSink};
pub use tracer::{
    disable, emit, enable, enabled, set_track_name, Tracer, TrackDump, DEFAULT_RING_CAPACITY,
};
