//! Exporters: Chrome trace-event JSON (loadable in Perfetto / `chrome://
//! tracing`) and a flat JSONL stream.
//!
//! Each [`TrackDump`] becomes one Chrome thread track (`tid` = track id,
//! named via `thread_name` metadata). Span-shaped events become balanced
//! `B`/`E` pairs: cycles with the mark/sweep phases and handshakes nested
//! under them on the collector track, BFS levels on the checker track.
//! Point events render as thread-scoped instants. The exporter enforces
//! span balance itself — stray closes are dropped and spans still open at
//! the end of a dump are closed at the last timestamp — so the emitted
//! trace always passes [`validate_chrome_trace`].

use crate::event::{Event, EventKind, HANDSHAKE_NAMES, PHASE_NAMES};
use crate::json::Json;
use crate::tracer::TrackDump;

/// The process id used for every emitted event (single-process trace).
const PID: u64 = 1;

/// Names for the well-known [`EventKind::Counter`] ids, rendered as Chrome
/// counter tracks (`ph:"C"`). Ids beyond the table render as
/// `counter-<id>`.
pub const COUNTER_NAMES: [&str; 3] = ["heap_occupancy_permille", "frontier", "queue_depth"];

fn counter_name(id: u8) -> String {
    COUNTER_NAMES
        .get(id as usize)
        .map(|s| (*s).to_owned())
        .unwrap_or_else(|| format!("counter-{id}"))
}

/// What kind of span an open `B` belongs to, for matching closes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SpanTag {
    Cycle,
    Phase,
    Handshake,
    Level,
    Generic(u32),
}

fn handshake_name(ty: u8) -> &'static str {
    HANDSHAKE_NAMES.get(ty as usize).copied().unwrap_or("?")
}

fn phase_name(phase: u8) -> &'static str {
    PHASE_NAMES.get(phase as usize).copied().unwrap_or("?")
}

/// Names for [`EventKind::ServeRequest`] outcomes.
fn serve_outcome_name(outcome: u8) -> &'static str {
    match outcome {
        0 => "ok",
        1 => "shed",
        2 => "rejected",
        3 => "timeout",
        _ => "error",
    }
}

/// Microseconds (Chrome's `ts` unit) from our nanosecond stamps.
fn us(ts_ns: u64) -> Json {
    Json::Num(ts_ns as f64 / 1_000.0)
}

fn base(ph: &str, name: &str, cat: &str, ts_ns: u64, tid: u32) -> Json {
    Json::obj()
        .set("name", name)
        .set("cat", cat)
        .set("ph", ph)
        .set("ts", us(ts_ns))
        .set("pid", PID)
        .set("tid", u64::from(tid))
}

fn instant(name: &str, cat: &str, ts_ns: u64, tid: u32, args: Json) -> Json {
    base("i", name, cat, ts_ns, tid)
        .set("s", "t")
        .set("args", args)
}

/// One track's open-span stack entry.
struct Open {
    tag: SpanTag,
}

/// Converts drained tracks into a complete Chrome trace-event document:
/// `{"traceEvents": [...], "displayTimeUnit": "ms", ...}`.
pub fn chrome_trace(dumps: &[TrackDump]) -> Json {
    let mut events: Vec<Json> = Vec::new();
    events.push(
        Json::obj()
            .set("name", "process_name")
            .set("ph", "M")
            .set("pid", PID)
            .set("tid", 0u64)
            .set("args", Json::obj().set("name", "gc-trace")),
    );
    let mut total_dropped = 0u64;
    for dump in dumps {
        total_dropped += dump.dropped;
        events.push(
            Json::obj()
                .set("name", "thread_name")
                .set("ph", "M")
                .set("pid", PID)
                .set("tid", u64::from(dump.id))
                .set("args", Json::obj().set("name", dump.name.as_str())),
        );
        export_track(dump, &mut events);
    }
    Json::obj()
        .set("traceEvents", Json::Arr(events))
        .set("displayTimeUnit", "ms")
        .set("otherData", Json::obj().set("droppedEvents", total_dropped))
}

fn export_track(dump: &TrackDump, out: &mut Vec<Json>) {
    let tid = dump.id;
    let mut stack: Vec<Open> = Vec::new();
    let mut last_ts = 0u64;

    // Pops spans down to (and including) the topmost `tag`, emitting `E`
    // events; a close with no matching open is dropped to keep balance.
    let close = |stack: &mut Vec<Open>, out: &mut Vec<Json>, tag: SpanTag, ts: u64| -> bool {
        let Some(depth) = stack.iter().rposition(|o| o.tag == tag) else {
            return false;
        };
        while stack.len() > depth {
            stack.pop();
            out.push(base("E", "", "gc", ts, tid));
        }
        true
    };

    for e in &dump.events {
        last_ts = last_ts.max(e.ts_ns);
        let ts = e.ts_ns;
        match e.kind {
            EventKind::CycleBegin { cycle } => {
                stack.push(Open {
                    tag: SpanTag::Cycle,
                });
                out.push(
                    base("B", &format!("cycle {cycle}"), "gc", ts, tid)
                        .set("args", Json::obj().set("cycle", cycle)),
                );
            }
            EventKind::CycleEnd { freed, traced, .. } => {
                // Close any phase/handshake still nested under the cycle,
                // then stamp the cycle's own E with its result args.
                if close(&mut stack, out, SpanTag::Cycle, ts) {
                    if let Some(last) = out.last_mut() {
                        *last = last.clone().set(
                            "args",
                            Json::obj().set("freed", freed).set("traced", traced),
                        );
                    }
                }
            }
            EventKind::PhaseEnter { phase } => {
                // A new phase ends the previous one (and any handshake
                // still open inside it); idle (0) just closes.
                close(&mut stack, out, SpanTag::Phase, ts);
                if phase != 0 {
                    stack.push(Open {
                        tag: SpanTag::Phase,
                    });
                    out.push(base("B", phase_name(phase), "gc", ts, tid));
                }
            }
            EventKind::HandshakeBegin { generation, ty } => {
                stack.push(Open {
                    tag: SpanTag::Handshake,
                });
                out.push(
                    base(
                        "B",
                        &format!("handshake {}", handshake_name(ty)),
                        "gc",
                        ts,
                        tid,
                    )
                    .set("args", Json::obj().set("generation", generation)),
                );
            }
            EventKind::HandshakeEnd { outcome, .. } => {
                if close(&mut stack, out, SpanTag::Handshake, ts) {
                    if let Some(last) = out.last_mut() {
                        *last = last.clone().set(
                            "args",
                            Json::obj().set(
                                "outcome",
                                match outcome {
                                    0 => "done",
                                    1 => "stopped",
                                    _ => "timeout",
                                },
                            ),
                        );
                    }
                }
            }
            EventKind::LevelBegin { level, frontier } => {
                stack.push(Open {
                    tag: SpanTag::Level,
                });
                out.push(
                    base("B", &format!("level {level}"), "mc", ts, tid)
                        .set("args", Json::obj().set("frontier", frontier)),
                );
                // The frontier size doubles as a counter track so its
                // growth curve is visible at a glance in the timeline.
                out.push(
                    base("C", &counter_name(1), "mc", ts, tid)
                        .set("args", Json::obj().set("value", frontier)),
                );
            }
            EventKind::LevelEnd {
                discovered,
                states_total,
                ..
            } => {
                if close(&mut stack, out, SpanTag::Level, ts) {
                    if let Some(last) = out.last_mut() {
                        *last = last.clone().set(
                            "args",
                            Json::obj()
                                .set("discovered", discovered)
                                .set("states_total", states_total),
                        );
                    }
                }
            }
            EventKind::SpanBegin { id } => {
                stack.push(Open {
                    tag: SpanTag::Generic(id),
                });
                out.push(base("B", &format!("span-{id}"), "app", ts, tid));
            }
            EventKind::SpanEnd { id } => {
                close(&mut stack, out, SpanTag::Generic(id), ts);
            }
            EventKind::MarkCas { won } => out.push(instant(
                "mark_cas",
                "gc",
                ts,
                tid,
                Json::obj().set("won", won),
            )),
            EventKind::BarrierHit { deletion } => out.push(instant(
                "barrier_hit",
                "gc",
                ts,
                tid,
                Json::obj().set("kind", if deletion { "deletion" } else { "insertion" }),
            )),
            EventKind::AllocColor { slot, color } => out.push(instant(
                "alloc",
                "gc",
                ts,
                tid,
                Json::obj().set("slot", slot).set("color", color),
            )),
            EventKind::PoolRefill { got } => out.push(instant(
                "pool_refill",
                "gc",
                ts,
                tid,
                Json::obj().set("got", got),
            )),
            EventKind::TlabRefill { got } => out.push(instant(
                "tlab_refill",
                "gc",
                ts,
                tid,
                Json::obj().set("got", got),
            )),
            EventKind::SegmentClaimed { segment } => out.push(instant(
                "segment_claimed",
                "gc",
                ts,
                tid,
                Json::obj().set("segment", segment),
            )),
            EventKind::LazySweepSegment { segment, freed } => out.push(instant(
                "lazy_sweep_segment",
                "gc",
                ts,
                tid,
                Json::obj().set("segment", segment).set("freed", freed),
            )),
            EventKind::ChaosFired { site } => out.push(instant(
                "chaos_fired",
                "chaos",
                ts,
                tid,
                Json::obj().set("site", u64::from(site)),
            )),
            EventKind::ShardOccupancy { max, total } => out.push(instant(
                "shard_occupancy",
                "mc",
                ts,
                tid,
                Json::obj().set("max", max).set("total", total),
            )),
            EventKind::Instant { id, value } => out.push(instant(
                &format!("instant-{id}"),
                "app",
                ts,
                tid,
                Json::obj().set("value", value),
            )),
            EventKind::Counter { id, value } => out.push(
                base("C", &counter_name(id), "app", ts, tid)
                    .set("args", Json::obj().set("value", value)),
            ),
            EventKind::ServeRequest {
                id,
                outcome,
                latency_us,
            } => out.push(instant(
                "serve_request",
                "serve",
                ts,
                tid,
                Json::obj()
                    .set("id", id)
                    .set("outcome", serve_outcome_name(outcome))
                    .set("latency_us", latency_us),
            )),
            EventKind::SegmentOccupancy {
                segment,
                busy,
                slots,
            } => out.push(
                base("C", &format!("segment-{segment}-occupancy"), "gc", ts, tid)
                    .set("args", Json::obj().set("busy", busy).set("slots", slots)),
            ),
            EventKind::FreeSegments { free, total } => out.push(
                base("C", "free_segments", "gc", ts, tid)
                    .set("args", Json::obj().set("free", free).set("total", total)),
            ),
        }
    }
    // Close anything left open at the track's last timestamp so the trace
    // is always balanced (e.g. a workload stopped mid-cycle).
    while stack.pop().is_some() {
        out.push(base("E", "", "gc", last_ts, tid));
    }
}

/// Renders dumps as JSONL: one JSON object per event per line, with the
/// track id/name and the decoded event payload. Append-friendly and
/// greppable where the Chrome document is not.
pub fn jsonl(dumps: &[TrackDump]) -> String {
    let mut out = String::new();
    for dump in dumps {
        for e in &dump.events {
            out.push_str(&event_json(dump.id, &dump.name, e).to_string());
            out.push('\n');
        }
    }
    out
}

/// One event as a flat JSON object (the JSONL record shape).
pub fn event_json(track: u32, track_name: &str, e: &Event) -> Json {
    let mut j = Json::obj()
        .set("ts_ns", e.ts_ns)
        .set("track", u64::from(track))
        .set("track_name", track_name)
        .set("event", e.kind.name());
    j = match e.kind {
        EventKind::CycleBegin { cycle } => j.set("cycle", cycle),
        EventKind::CycleEnd {
            cycle,
            freed,
            traced,
        } => j
            .set("cycle", cycle)
            .set("freed", freed)
            .set("traced", traced),
        EventKind::PhaseEnter { phase } => j.set("phase", phase_name(phase)),
        EventKind::HandshakeBegin { generation, ty } => j
            .set("generation", generation)
            .set("type", handshake_name(ty)),
        EventKind::HandshakeEnd {
            generation,
            ty,
            outcome,
        } => j
            .set("generation", generation)
            .set("type", handshake_name(ty))
            .set("outcome", u64::from(outcome)),
        EventKind::MarkCas { won } => j.set("won", won),
        EventKind::BarrierHit { deletion } => j.set("deletion", deletion),
        EventKind::AllocColor { slot, color } => j.set("slot", slot).set("color", color),
        EventKind::PoolRefill { got } => j.set("got", got),
        EventKind::TlabRefill { got } => j.set("got", got),
        EventKind::SegmentClaimed { segment } => j.set("segment", segment),
        EventKind::LazySweepSegment { segment, freed } => {
            j.set("segment", segment).set("freed", freed)
        }
        EventKind::ChaosFired { site } => j.set("site", u64::from(site)),
        EventKind::LevelBegin { level, frontier } => {
            j.set("level", level).set("frontier", frontier)
        }
        EventKind::LevelEnd {
            level,
            discovered,
            states_total,
        } => j
            .set("level", level)
            .set("discovered", discovered)
            .set("states_total", states_total),
        EventKind::ShardOccupancy { max, total } => j.set("max", max).set("total", total),
        EventKind::SpanBegin { id } => j.set("id", id),
        EventKind::SpanEnd { id } => j.set("id", id),
        EventKind::Instant { id, value } => j.set("id", id).set("value", value),
        EventKind::Counter { id, value } => j.set("counter", counter_name(id)).set("value", value),
        EventKind::ServeRequest {
            id,
            outcome,
            latency_us,
        } => j
            .set("id", id)
            .set("outcome", serve_outcome_name(outcome))
            .set("latency_us", latency_us),
        EventKind::SegmentOccupancy {
            segment,
            busy,
            slots,
        } => j
            .set("segment", segment)
            .set("busy", busy)
            .set("slots", slots),
        EventKind::FreeSegments { free, total } => j.set("free", free).set("total", total),
    };
    j
}

/// Summary returned by [`validate_chrome_trace`] on success.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSummary {
    /// Entries in `traceEvents` (including metadata).
    pub events: usize,
    /// Matched `B`/`E` span pairs.
    pub spans: usize,
    /// Instant (`ph: "i"`) events.
    pub instants: usize,
    /// Counter (`ph: "C"`) samples.
    pub counters: usize,
    /// Distinct `tid`s seen.
    pub tracks: usize,
}

/// Validates a Chrome trace-event document: the shape every consumer
/// (Perfetto, `chrome://tracing`) requires, plus per-track `B`/`E`
/// balance. Used by the demo's `--check` mode and the CI smoke job.
pub fn validate_chrome_trace(trace: &Json) -> Result<TraceSummary, String> {
    let events = trace
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing traceEvents array")?;
    let mut depths: std::collections::BTreeMap<u64, usize> = std::collections::BTreeMap::new();
    let mut tids: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
    let mut spans = 0usize;
    let mut instants = 0usize;
    let mut counters = 0usize;
    for (i, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        let tid = e
            .get("tid")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("event {i}: missing tid"))? as u64;
        e.get("pid")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("event {i}: missing pid"))?;
        if ph != "M" {
            let ts = e
                .get("ts")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("event {i}: missing ts"))?;
            if !ts.is_finite() || ts < 0.0 {
                return Err(format!("event {i}: bad ts {ts}"));
            }
            // A track is any tid carrying real events — instants count,
            // not just span pairs (a mutator track may be instants-only).
            tids.insert(tid);
        }
        match ph {
            "B" => {
                e.get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("event {i}: B without name"))?;
                *depths.entry(tid).or_insert(0) += 1;
            }
            "E" => {
                let d = depths.entry(tid).or_insert(0);
                if *d == 0 {
                    return Err(format!("event {i}: E with no open B on tid {tid}"));
                }
                *d -= 1;
                spans += 1;
            }
            "i" => {
                e.get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("event {i}: instant without name"))?;
                instants += 1;
            }
            "C" => {
                e.get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("event {i}: counter without name"))?;
                e.get("args")
                    .ok_or_else(|| format!("event {i}: counter without args"))?;
                counters += 1;
            }
            "M" => {}
            other => return Err(format!("event {i}: unsupported ph {other:?}")),
        }
    }
    if let Some((tid, d)) = depths.iter().find(|(_, d)| **d != 0) {
        return Err(format!("tid {tid}: {d} unclosed B span(s)"));
    }
    Ok(TraceSummary {
        events: events.len(),
        spans,
        instants,
        counters,
        tracks: tids.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dump(id: u32, name: &str, events: Vec<(u64, EventKind)>) -> TrackDump {
        TrackDump {
            id,
            name: name.to_owned(),
            dropped: 0,
            events: events
                .into_iter()
                .map(|(ts_ns, kind)| Event { ts_ns, kind })
                .collect(),
        }
    }

    fn collector_dump() -> TrackDump {
        dump(
            1,
            "gc-collector",
            vec![
                (100, EventKind::CycleBegin { cycle: 0 }),
                (110, EventKind::PhaseEnter { phase: 1 }),
                (
                    120,
                    EventKind::HandshakeBegin {
                        generation: 1,
                        ty: 1,
                    },
                ),
                (
                    150,
                    EventKind::HandshakeEnd {
                        generation: 1,
                        ty: 1,
                        outcome: 0,
                    },
                ),
                (160, EventKind::PhaseEnter { phase: 2 }),
                (170, EventKind::MarkCas { won: true }),
                (200, EventKind::PhaseEnter { phase: 3 }),
                (240, EventKind::PhaseEnter { phase: 0 }),
                (
                    250,
                    EventKind::CycleEnd {
                        cycle: 0,
                        freed: 5,
                        traced: 9,
                    },
                ),
            ],
        )
    }

    #[test]
    fn round_trips_through_parse_and_validates() {
        let trace = chrome_trace(&[collector_dump()]);
        let text = trace.to_string();
        let parsed = Json::parse(&text).expect("valid JSON");
        let summary = validate_chrome_trace(&parsed).expect("valid trace");
        // Spans: cycle + 3 phases + handshake.
        assert_eq!(summary.spans, 5);
        assert_eq!(summary.instants, 1); // the mark CAS
        assert_eq!(summary.tracks, 1);
    }

    #[test]
    fn spans_nest_cycle_phase_handshake() {
        let trace = chrome_trace(&[collector_dump()]);
        let events = trace.get("traceEvents").unwrap().as_arr().unwrap();
        let names: Vec<(String, String)> = events
            .iter()
            .filter(|e| matches!(e.get("ph").and_then(Json::as_str), Some("B") | Some("E")))
            .map(|e| {
                (
                    e.get("ph").and_then(Json::as_str).unwrap().to_owned(),
                    e.get("name")
                        .and_then(Json::as_str)
                        .unwrap_or("")
                        .to_owned(),
                )
            })
            .collect();
        // B cycle, B init, B handshake, E(handshake), E(init via phase 2),
        // B mark, E(mark), B sweep, E(sweep via idle), E(cycle).
        let opens: Vec<&str> = names
            .iter()
            .filter(|(ph, _)| ph == "B")
            .map(|(_, n)| n.as_str())
            .collect();
        assert_eq!(
            opens,
            ["cycle 0", "init", "handshake noop", "mark", "sweep"]
        );
        // Balanced: equal numbers of B and E.
        let b = names.iter().filter(|(ph, _)| ph == "B").count();
        let e = names.iter().filter(|(ph, _)| ph == "E").count();
        assert_eq!(b, e);
    }

    #[test]
    fn unclosed_spans_are_closed_and_stray_closes_dropped() {
        let d = dump(
            2,
            "ragged",
            vec![
                (10, EventKind::SpanEnd { id: 9 }), // stray: dropped
                (20, EventKind::CycleBegin { cycle: 1 }),
                (30, EventKind::PhaseEnter { phase: 2 }),
                // track ends mid-phase: both spans force-closed
            ],
        );
        let trace = chrome_trace(&[d]);
        let summary = validate_chrome_trace(&trace).expect("still balanced");
        assert_eq!(summary.spans, 2);
    }

    #[test]
    fn counter_tracks_render_and_validate() {
        let d = dump(
            4,
            "gc-serve",
            vec![
                (10, EventKind::Counter { id: 0, value: 850 }),
                (20, EventKind::Counter { id: 2, value: 17 }),
                (30, EventKind::Counter { id: 9, value: 3 }),
                (
                    40,
                    EventKind::ServeRequest {
                        id: 12,
                        outcome: 1,
                        latency_us: 900,
                    },
                ),
            ],
        );
        let trace = chrome_trace(&[d]);
        let parsed = Json::parse(&trace.to_string()).expect("valid JSON");
        let summary = validate_chrome_trace(&parsed).expect("counters validate");
        assert_eq!(summary.counters, 3);
        assert_eq!(summary.instants, 1); // the serve_request
        let events = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        let counter_names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("C"))
            .filter_map(|e| e.get("name").and_then(Json::as_str))
            .collect();
        assert_eq!(
            counter_names,
            ["heap_occupancy_permille", "queue_depth", "counter-9"]
        );
        // A BFS level opening also samples the frontier counter.
        let lvl = dump(
            5,
            "mc",
            vec![
                (
                    1,
                    EventKind::LevelBegin {
                        level: 0,
                        frontier: 42,
                    },
                ),
                (
                    2,
                    EventKind::LevelEnd {
                        level: 0,
                        discovered: 7,
                        states_total: 49,
                    },
                ),
            ],
        );
        let summary = validate_chrome_trace(&chrome_trace(&[lvl])).expect("valid");
        assert_eq!(summary.counters, 1);
        assert_eq!(summary.spans, 1);
        // A counter without args must be rejected.
        let bad = Json::obj().set(
            "traceEvents",
            Json::Arr(vec![Json::obj()
                .set("name", "q")
                .set("ph", "C")
                .set("ts", 1u64)
                .set("pid", 1u64)
                .set("tid", 1u64)]),
        );
        assert!(validate_chrome_trace(&bad).is_err());
    }

    #[test]
    fn segment_gauges_render_as_counter_tracks() {
        let d = dump(
            6,
            "gc-collector",
            vec![
                (
                    10,
                    EventKind::SegmentOccupancy {
                        segment: 0,
                        busy: 61,
                        slots: 64,
                    },
                ),
                (
                    10,
                    EventKind::SegmentOccupancy {
                        segment: 1,
                        busy: 0,
                        slots: 64,
                    },
                ),
                (10, EventKind::FreeSegments { free: 1, total: 2 }),
            ],
        );
        let trace = chrome_trace(&[d]);
        let parsed = Json::parse(&trace.to_string()).expect("valid JSON");
        let summary = validate_chrome_trace(&parsed).expect("gauges validate");
        assert_eq!(summary.counters, 3);
        let events = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        let counter_names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("C"))
            .filter_map(|e| e.get("name").and_then(Json::as_str))
            .collect();
        assert_eq!(
            counter_names,
            [
                "segment-0-occupancy",
                "segment-1-occupancy",
                "free_segments"
            ]
        );
        let busy: Vec<f64> = events
            .iter()
            .filter(|e| {
                e.get("name")
                    .and_then(Json::as_str)
                    .is_some_and(|n| n.starts_with("segment-"))
            })
            .filter_map(|e| e.get("args")?.get("busy")?.as_f64())
            .collect();
        assert_eq!(busy, [61.0, 0.0]);
    }

    #[test]
    fn metadata_names_every_track() {
        let trace = chrome_trace(&[
            collector_dump(),
            dump(
                7,
                "mutator-3",
                vec![(5, EventKind::BarrierHit { deletion: true })],
            ),
        ]);
        let events = trace.get("traceEvents").unwrap().as_arr().unwrap();
        let thread_names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some("thread_name"))
            .filter_map(|e| e.get("args")?.get("name")?.as_str())
            .collect();
        assert_eq!(thread_names, ["gc-collector", "mutator-3"]);
    }

    #[test]
    fn jsonl_is_one_valid_object_per_line() {
        let text = jsonl(&[collector_dump()]);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 9);
        for line in lines {
            let v = Json::parse(line).expect("valid JSONL line");
            assert!(v.get("event").is_some());
            assert_eq!(
                v.get("track_name").and_then(Json::as_str),
                Some("gc-collector")
            );
        }
    }

    #[test]
    fn validator_rejects_imbalance_and_missing_fields() {
        let bad = Json::obj().set(
            "traceEvents",
            Json::Arr(vec![Json::obj()
                .set("name", "x")
                .set("ph", "E")
                .set("ts", 1u64)
                .set("pid", 1u64)
                .set("tid", 1u64)]),
        );
        assert!(validate_chrome_trace(&bad).is_err());
        let missing = Json::obj().set("traceEvents", Json::Arr(vec![Json::obj().set("ph", "B")]));
        assert!(validate_chrome_trace(&missing).is_err());
        assert!(validate_chrome_trace(&Json::obj()).is_err());
    }
}
