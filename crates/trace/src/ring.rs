//! The lock-free single-producer/single-consumer event ring.
//!
//! One ring belongs to one producing thread; the drain side is a single
//! consumer (the exporter, serialised by the tracer's registry lock). The
//! slots are plain atomic words — no `unsafe` anywhere — and the classic
//! SPSC publication protocol makes every drained record a consistent
//! four-word event:
//!
//! * the producer writes the slot words relaxed, then publishes by storing
//!   `head + 1` with `Release`;
//! * the consumer `Acquire`-loads `head`, so the slot writes of every
//!   published record happen-before its reads;
//! * the consumer frees a slot by storing `tail + 1` with `Release`, and
//!   the producer `Acquire`-loads `tail` before reusing a slot, so the
//!   consumer's reads happen-before any overwrite.
//!
//! A full ring **drops** the new event and counts it — a mutator is never
//! blocked, delayed or spun by tracing (the paper's collector promises
//! wait-free mutator progress at handshakes; the tracer must not break
//! that promise through the back door).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crate::event::Event;

/// Words per event record (see [`Event::encode`]).
const WORDS: usize = 4;

/// A fixed-capacity SPSC ring of encoded events.
#[derive(Debug)]
pub struct Ring {
    /// `capacity * WORDS` atomic words; capacity is a power of two.
    slots: Vec<AtomicU64>,
    mask: usize,
    /// Next record index to write (producer-owned, consumer-read).
    head: AtomicUsize,
    /// Next record index to read (consumer-owned, producer-read).
    tail: AtomicUsize,
    /// Events dropped because the ring was full.
    dropped: AtomicU64,
}

impl Ring {
    /// A ring holding up to `capacity` events (rounded up to a power of
    /// two, minimum 8).
    pub fn new(capacity: usize) -> Ring {
        let capacity = capacity.max(8).next_power_of_two();
        let mut slots = Vec::with_capacity(capacity * WORDS);
        slots.resize_with(capacity * WORDS, || AtomicU64::new(0));
        Ring {
            slots,
            mask: capacity - 1,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Event capacity (a power of two).
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.head
            .load(Ordering::Acquire)
            .wrapping_sub(self.tail.load(Ordering::Acquire))
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events dropped on the floor because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Producer side: appends `event`, or drops it (and counts the drop)
    /// when the ring is full. Never blocks, never spins.
    pub fn push(&self, event: &Event) -> bool {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head.wrapping_sub(tail) > self.mask {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let base = (head & self.mask) * WORDS;
        let words = event.encode();
        for (i, w) in words.iter().enumerate() {
            self.slots[base + i].store(*w, Ordering::Relaxed);
        }
        self.head.store(head.wrapping_add(1), Ordering::Release);
        true
    }

    /// Consumer side: removes and returns the oldest event, if any.
    /// Records written by an unknown (newer) event code are skipped.
    pub fn pop(&self) -> Option<Event> {
        loop {
            let tail = self.tail.load(Ordering::Relaxed);
            let head = self.head.load(Ordering::Acquire);
            if tail == head {
                return None;
            }
            let base = (tail & self.mask) * WORDS;
            let mut words = [0u64; WORDS];
            for (i, w) in words.iter_mut().enumerate() {
                *w = self.slots[base + i].load(Ordering::Relaxed);
            }
            self.tail.store(tail.wrapping_add(1), Ordering::Release);
            match Event::decode(words) {
                Some(e) => return Some(e),
                None => continue, // unknown code: skip the record
            }
        }
    }

    /// Consumer side: drains everything currently buffered, oldest first.
    pub fn drain(&self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.len());
        while let Some(e) = self.pop() {
            out.push(e);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(ts: u64) -> Event {
        Event {
            ts_ns: ts,
            kind: EventKind::Instant { id: 0, value: ts },
        }
    }

    #[test]
    fn fifo_order_and_wraparound() {
        let r = Ring::new(8);
        // Fill, drain, refill across the wrap boundary several times.
        for round in 0..5u64 {
            for i in 0..6 {
                assert!(r.push(&ev(round * 100 + i)));
            }
            let got = r.drain();
            assert_eq!(got.len(), 6);
            for (i, e) in got.iter().enumerate() {
                assert_eq!(e.ts_ns, round * 100 + i as u64, "FIFO preserved");
            }
        }
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn overflow_drops_and_counts_without_blocking() {
        let r = Ring::new(8);
        for i in 0..8 {
            assert!(r.push(&ev(i)));
        }
        // Ring full: the next pushes return immediately, dropping.
        for i in 8..20 {
            assert!(!r.push(&ev(i)));
        }
        assert_eq!(r.dropped(), 12);
        // The buffered prefix is intact — drops lose the newest, never
        // corrupt the oldest.
        let got = r.drain();
        assert_eq!(got.len(), 8);
        assert_eq!(got[0].ts_ns, 0);
        assert_eq!(got[7].ts_ns, 7);
        // Space freed: pushes work again.
        assert!(r.push(&ev(99)));
        assert_eq!(r.drain().len(), 1);
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(Ring::new(0).capacity(), 8);
        assert_eq!(Ring::new(9).capacity(), 16);
        assert_eq!(Ring::new(1024).capacity(), 1024);
    }

    #[test]
    fn concurrent_producer_consumer_never_tears_events() {
        use std::sync::atomic::AtomicBool;
        let r = Ring::new(64);
        let done = AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| {
                for i in 0..50_000u64 {
                    // Value mirrors the timestamp: a torn record would
                    // break the equality below.
                    r.push(&Event {
                        ts_ns: i,
                        kind: EventKind::Instant { id: 7, value: i },
                    });
                }
                done.store(true, Ordering::Release);
            });
            let mut last = None;
            loop {
                match r.pop() {
                    Some(e) => {
                        match e.kind {
                            EventKind::Instant { id, value } => {
                                assert_eq!(id, 7);
                                assert_eq!(value, e.ts_ns, "torn record");
                            }
                            other => panic!("unexpected kind {other:?}"),
                        }
                        if let Some(prev) = last {
                            assert!(e.ts_ns > prev, "order preserved across drops");
                        }
                        last = Some(e.ts_ns);
                    }
                    None => {
                        if done.load(Ordering::Acquire) && r.is_empty() {
                            break;
                        }
                        std::hint::spin_loop();
                    }
                }
            }
        });
    }
}
