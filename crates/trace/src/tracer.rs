//! The process-wide tracer: per-thread ring registration, the
//! runtime-disable fast path, and draining.
//!
//! Instrumented sites call [`emit`], which is two branches when tracing is
//! disabled: a relaxed load of a process-global `AtomicBool` and the
//! `return`. Enabling at runtime flips that bool; compiling consumers with
//! their `trace` feature off removes the call sites entirely (the
//! instrumentation macros expand to nothing).
//!
//! Each emitting thread lazily registers one SPSC [`Ring`] under a stable
//! track id; the registry keeps the ring alive after the thread exits so a
//! late drain still sees its events.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::event::{Event, EventKind};
use crate::ring::Ring;

/// Process-global enable flag: the runtime-disable fast path.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Default per-thread ring capacity, in events.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// One thread's track: a ring plus identity for the exporters.
#[derive(Debug)]
pub struct Track {
    /// Stable track id (Chrome `tid`), assigned at registration.
    pub id: u32,
    /// Track name: the thread name, or an explicit [`set_track_name`].
    name: Mutex<String>,
    ring: Ring,
}

impl Track {
    /// The track's display name.
    pub fn name(&self) -> String {
        self.name.lock().expect("track name lock").clone()
    }
}

/// Everything drained from one track: identity, drop accounting, events.
#[derive(Debug)]
pub struct TrackDump {
    /// Stable track id.
    pub id: u32,
    /// Display name.
    pub name: String,
    /// Events dropped on ring overflow over the track's lifetime.
    pub dropped: u64,
    /// Drained events, oldest first.
    pub events: Vec<Event>,
}

/// The process-wide tracer.
#[derive(Debug)]
pub struct Tracer {
    epoch: Instant,
    tracks: Mutex<Vec<Arc<Track>>>,
    next_track: AtomicU32,
    ring_capacity: AtomicU32,
}

static GLOBAL: OnceLock<Tracer> = OnceLock::new();

thread_local! {
    static MY_TRACK: RefCell<Option<Arc<Track>>> = const { RefCell::new(None) };
}

impl Tracer {
    /// A fresh tracer. Crate-internal: everything routes through
    /// [`Tracer::global`] in production; the trace sink's tests use a
    /// private leaked instance so their background drains cannot steal
    /// events from concurrently running tests of the global tracer.
    pub(crate) fn new() -> Tracer {
        Tracer {
            epoch: Instant::now(),
            tracks: Mutex::new(Vec::new()),
            next_track: AtomicU32::new(1),
            ring_capacity: AtomicU32::new(DEFAULT_RING_CAPACITY as u32),
        }
    }

    /// The process-wide tracer (created on first use).
    pub fn global() -> &'static Tracer {
        GLOBAL.get_or_init(Tracer::new)
    }

    /// Nanoseconds since the tracer's epoch.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Turns event recording on.
    pub fn enable(&self) {
        ENABLED.store(true, Ordering::Release);
    }

    /// Turns event recording off. Already-buffered events stay drainable.
    pub fn disable(&self) {
        ENABLED.store(false, Ordering::Release);
    }

    /// Sets the ring capacity used for threads that register *after* this
    /// call (existing rings keep their size).
    pub fn set_ring_capacity(&self, events: usize) {
        let clamped = events.clamp(8, u32::MAX as usize) as u32;
        self.ring_capacity.store(clamped, Ordering::Relaxed);
    }

    /// This thread's track, registering it on first use.
    fn my_track(&self) -> Arc<Track> {
        MY_TRACK.with(|slot| {
            let mut slot = slot.borrow_mut();
            if let Some(t) = slot.as_ref() {
                return Arc::clone(t);
            }
            let id = self.next_track.fetch_add(1, Ordering::Relaxed);
            let name = std::thread::current()
                .name()
                .map(str::to_owned)
                .unwrap_or_else(|| format!("thread-{id}"));
            let track = Arc::new(Track {
                id,
                name: Mutex::new(name),
                ring: Ring::new(self.ring_capacity.load(Ordering::Relaxed) as usize),
            });
            self.tracks
                .lock()
                .expect("tracer registry lock")
                .push(Arc::clone(&track));
            *slot = Some(Arc::clone(&track));
            track
        })
    }

    /// Records `kind` on the calling thread's track (no-op when disabled).
    pub fn record(&self, kind: EventKind) {
        if !enabled() {
            return;
        }
        let event = Event {
            ts_ns: self.now_ns(),
            kind,
        };
        self.my_track().ring.push(&event);
    }

    /// Renames the calling thread's track (registers it if needed).
    pub fn name_current_track(&self, name: &str) {
        let track = self.my_track();
        *track.name.lock().expect("track name lock") = name.to_owned();
    }

    /// Drains every track's buffered events, oldest first per track.
    /// Tracks appear in registration order; a track that emitted nothing
    /// since the last drain still appears (with `events` empty) so drop
    /// accounting is never lost.
    pub fn drain(&self) -> Vec<TrackDump> {
        let tracks: Vec<Arc<Track>> = self
            .tracks
            .lock()
            .expect("tracer registry lock")
            .iter()
            .map(Arc::clone)
            .collect();
        tracks
            .iter()
            .map(|t| TrackDump {
                id: t.id,
                name: t.name(),
                dropped: t.ring.dropped(),
                events: t.ring.drain(),
            })
            .collect()
    }

    /// Total events dropped across every track.
    pub fn total_dropped(&self) -> u64 {
        self.tracks
            .lock()
            .expect("tracer registry lock")
            .iter()
            .map(|t| t.ring.dropped())
            .sum()
    }
}

/// Whether tracing is currently recording. This is the instrumented hot
/// paths' fast path: one relaxed atomic load.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Records `kind` on the calling thread's track. Two branches when
/// disabled; one ring push when enabled.
#[inline]
pub fn emit(kind: EventKind) {
    if !enabled() {
        return;
    }
    Tracer::global().record(kind);
}

/// Enables recording process-wide.
pub fn enable() {
    Tracer::global().enable();
}

/// Disables recording process-wide (buffered events stay drainable).
pub fn disable() {
    Tracer::global().disable();
}

/// Names the calling thread's track for the exporters.
pub fn set_track_name(name: &str) {
    Tracer::global().name_current_track(name);
}

/// Serialises tests (here and in [`crate::sink`]) that toggle the
/// process-global [`ENABLED`] flag or drain the global tracer — without it
/// they race under the default parallel test runner.
#[cfg(test)]
pub(crate) static TEST_ENABLE_GUARD: Mutex<()> = Mutex::new(());

#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    TEST_ENABLE_GUARD
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    // The tracer is process-global state; these tests run in one process
    // with other tests, so they serialise on `TEST_ENABLE_GUARD` and only
    // assert properties that are robust to concurrent emitters (their own
    // track's contents).

    #[test]
    fn disabled_emit_records_nothing_enabled_emit_records() {
        let _g = test_guard();
        let t = Tracer::global();
        t.disable();
        emit(EventKind::Instant { id: 901, value: 1 });
        t.enable();
        emit(EventKind::Instant { id: 902, value: 2 });
        t.disable();
        let mine: Vec<Event> = t
            .drain()
            .into_iter()
            .flat_map(|d| d.events)
            .filter(|e| matches!(e.kind, EventKind::Instant { id, .. } if id == 901 || id == 902))
            .collect();
        assert_eq!(mine.len(), 1);
        assert_eq!(mine[0].kind, EventKind::Instant { id: 902, value: 2 });
    }

    #[test]
    fn named_tracks_surface_in_drain() {
        let _g = test_guard();
        let t = Tracer::global();
        t.enable();
        std::thread::scope(|s| {
            s.spawn(|| {
                set_track_name("trace-test-worker");
                emit(EventKind::Instant { id: 903, value: 3 });
            });
        });
        t.disable();
        let dumps = t.drain();
        let mine = dumps
            .iter()
            .find(|d| d.name == "trace-test-worker")
            .expect("named track registered");
        assert!(mine
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::Instant { id: 903, .. })));
    }

    #[test]
    fn timestamps_are_monotonic_per_track() {
        let _g = test_guard();
        let t = Tracer::global();
        t.enable();
        std::thread::scope(|s| {
            s.spawn(|| {
                set_track_name("trace-test-mono");
                for i in 0..100 {
                    emit(EventKind::Instant { id: 904, value: i });
                }
            });
        });
        t.disable();
        let dumps = t.drain();
        let mine = dumps.iter().find(|d| d.name == "trace-test-mono").unwrap();
        let ts: Vec<u64> = mine.events.iter().map(|e| e.ts_ns).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
    }
}
