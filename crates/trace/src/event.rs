//! Typed trace events and their fixed-width binary encoding.
//!
//! Every event is stamped with a nanosecond offset from the tracer's epoch
//! and packs into exactly four 64-bit words — the unit the lock-free ring
//! buffer stores. The encoding is total: any `EventKind` round-trips
//! through [`Event::encode`]/[`Event::decode`] unchanged, and unknown codes
//! decode to `None` so a reader can skip records from a newer writer.

/// The collector phases, mirrored here so the trace crate stays
/// dependency-free (`otf-gc` depends on us, not the reverse).
pub const PHASE_NAMES: [&str; 4] = ["idle", "init", "mark", "sweep"];

/// Handshake type names, indexed by the wire value used by `otf-gc`
/// (1 = noop, 2 = get-roots, 3 = get-work).
pub const HANDSHAKE_NAMES: [&str; 4] = ["?", "noop", "get-roots", "get-work"];

/// One timestamped trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Nanoseconds since the tracer's epoch.
    pub ts_ns: u64,
    /// What happened.
    pub kind: EventKind,
}

/// The typed event vocabulary.
///
/// Span-shaped pairs (`CycleBegin`/`CycleEnd`, `HandshakeBegin`/
/// `HandshakeEnd`, `LevelBegin`/`LevelEnd`, `SpanBegin`/`SpanEnd`) nest on
/// their emitting thread's track; `PhaseEnter` events partition the
/// enclosing cycle span into phase sub-spans. Everything else renders as an
/// instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A collection cycle started (cycle index = completed cycles so far).
    CycleBegin {
        /// 0-based cycle index.
        cycle: u64,
    },
    /// A collection cycle ended.
    CycleEnd {
        /// 0-based cycle index.
        cycle: u64,
        /// Objects freed by the sweep (0 for aborted cycles).
        freed: u32,
        /// Objects traced by the mark loop.
        traced: u32,
    },
    /// The collector entered a phase (0 idle, 1 init, 2 mark, 3 sweep).
    PhaseEnter {
        /// Phase byte, indexes [`PHASE_NAMES`].
        phase: u8,
    },
    /// A soft-handshake round was posted to every registered mutator.
    HandshakeBegin {
        /// Handshake generation.
        generation: u32,
        /// Handshake type, indexes [`HANDSHAKE_NAMES`].
        ty: u8,
    },
    /// A soft-handshake round resolved.
    HandshakeEnd {
        /// Handshake generation.
        generation: u32,
        /// Handshake type, indexes [`HANDSHAKE_NAMES`].
        ty: u8,
        /// 0 done, 1 stopped, 2 timed out.
        outcome: u8,
    },
    /// A marking CAS resolved (Figure 5's slow path).
    MarkCas {
        /// Whether this side turned the object grey.
        won: bool,
    },
    /// A write barrier greyed (or tried to grey) a target.
    BarrierHit {
        /// `true` for the deletion barrier, `false` for insertion.
        deletion: bool,
    },
    /// An object was allocated with the current allocation color.
    AllocColor {
        /// Heap slot index.
        slot: u32,
        /// The allocation sense `f_A` at allocation time.
        color: bool,
    },
    /// A mutator refilled its allocation pool from the shared free list.
    PoolRefill {
        /// Slots obtained.
        got: u32,
    },
    /// A mutator refilled its thread-local allocation buffer (segmented
    /// heap layout).
    TlabRefill {
        /// Slots obtained.
        got: u32,
    },
    /// A mutator claimed a fresh segment for bump allocation.
    SegmentClaimed {
        /// Segment index.
        segment: u32,
    },
    /// A mutator (or the collector's mop-up) lazily swept a segment.
    LazySweepSegment {
        /// Segment index.
        segment: u32,
        /// Objects reclaimed from the segment.
        freed: u32,
    },
    /// A chaos fault fired at an injection site.
    ChaosFired {
        /// `ChaosSite` repr.
        site: u8,
    },
    /// The checker started expanding a BFS level.
    LevelBegin {
        /// BFS level (depth).
        level: u32,
        /// Frontier size entering the level.
        frontier: u64,
    },
    /// The checker finished a BFS level.
    LevelEnd {
        /// BFS level (depth).
        level: u32,
        /// States newly discovered by this level.
        discovered: u64,
        /// Total distinct states after the level.
        states_total: u64,
    },
    /// Seen-set shard occupancy after a level's deterministic drain.
    ShardOccupancy {
        /// Entries in the fullest shard.
        max: u64,
        /// Entries across all shards.
        total: u64,
    },
    /// Start of a generic named span (bench rigs, workloads).
    SpanBegin {
        /// Caller-chosen span id (rendered as `span-<id>` unless named).
        id: u32,
    },
    /// End of a generic named span.
    SpanEnd {
        /// Caller-chosen span id.
        id: u32,
    },
    /// A generic instant measurement.
    Instant {
        /// Caller-chosen counter id.
        id: u32,
        /// The measured value.
        value: u64,
    },
    /// A sampled counter value, rendered as a Chrome counter track
    /// (`ph:"C"`). Well-known ids are named by
    /// [`COUNTER_NAMES`](crate::chrome::COUNTER_NAMES): 0 = heap occupancy
    /// (per-mille), 1 = frontier size, 2 = queue depth.
    Counter {
        /// Counter id, indexes [`COUNTER_NAMES`](crate::chrome::COUNTER_NAMES).
        id: u8,
        /// The sampled value.
        value: u64,
    },
    /// A served request resolved (emitted by the `gc-serve` harness).
    ServeRequest {
        /// Request id.
        id: u32,
        /// 0 ok, 1 shed, 2 rejected, 3 deadline timeout, 4 error.
        outcome: u8,
        /// End-to-end latency in microseconds.
        latency_us: u32,
    },
    /// A per-segment occupancy sample (segmented heap layout): how many
    /// of one segment's slots are unavailable for allocation, by the
    /// same availability rule the global occupancy signal uses. Renders
    /// as a Chrome counter track `segment-<n>-occupancy`.
    SegmentOccupancy {
        /// Segment index.
        segment: u32,
        /// Slots unavailable for allocation in this segment.
        busy: u32,
        /// Total slots per segment (the track's full-scale value).
        slots: u32,
    },
    /// A free-segment-stack depth sample (segmented heap layout):
    /// segments currently claimable whole from the lock-free free stack.
    /// Renders as a Chrome counter track `free_segments`.
    FreeSegments {
        /// Segments on the free stack.
        free: u32,
        /// Total segments in the heap.
        total: u32,
    },
}

impl EventKind {
    /// A short stable name for JSONL output and debugging.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::CycleBegin { .. } => "cycle_begin",
            EventKind::CycleEnd { .. } => "cycle_end",
            EventKind::PhaseEnter { .. } => "phase_enter",
            EventKind::HandshakeBegin { .. } => "handshake_begin",
            EventKind::HandshakeEnd { .. } => "handshake_end",
            EventKind::MarkCas { .. } => "mark_cas",
            EventKind::BarrierHit { .. } => "barrier_hit",
            EventKind::AllocColor { .. } => "alloc_color",
            EventKind::PoolRefill { .. } => "pool_refill",
            EventKind::TlabRefill { .. } => "tlab_refill",
            EventKind::SegmentClaimed { .. } => "segment_claimed",
            EventKind::LazySweepSegment { .. } => "lazy_sweep_segment",
            EventKind::ChaosFired { .. } => "chaos_fired",
            EventKind::LevelBegin { .. } => "level_begin",
            EventKind::LevelEnd { .. } => "level_end",
            EventKind::ShardOccupancy { .. } => "shard_occupancy",
            EventKind::SpanBegin { .. } => "span_begin",
            EventKind::SpanEnd { .. } => "span_end",
            EventKind::Instant { .. } => "instant",
            EventKind::Counter { .. } => "counter",
            EventKind::ServeRequest { .. } => "serve_request",
            EventKind::SegmentOccupancy { .. } => "segment_occupancy",
            EventKind::FreeSegments { .. } => "free_segments",
        }
    }
}

impl Event {
    /// Packs the event into the ring buffer's four-word record:
    /// `[ts, code, a, b]`.
    pub fn encode(&self) -> [u64; 4] {
        let (code, a, b): (u64, u64, u64) = match self.kind {
            EventKind::CycleBegin { cycle } => (1, cycle, 0),
            EventKind::CycleEnd {
                cycle,
                freed,
                traced,
            } => (2, cycle, (u64::from(freed) << 32) | u64::from(traced)),
            EventKind::PhaseEnter { phase } => (3, u64::from(phase), 0),
            EventKind::HandshakeBegin { generation, ty } => {
                (4, u64::from(generation), u64::from(ty))
            }
            EventKind::HandshakeEnd {
                generation,
                ty,
                outcome,
            } => (
                5,
                u64::from(generation),
                (u64::from(outcome) << 8) | u64::from(ty),
            ),
            EventKind::MarkCas { won } => (6, u64::from(won), 0),
            EventKind::BarrierHit { deletion } => (7, u64::from(deletion), 0),
            EventKind::AllocColor { slot, color } => (8, u64::from(slot), u64::from(color)),
            EventKind::PoolRefill { got } => (9, u64::from(got), 0),
            EventKind::ChaosFired { site } => (10, u64::from(site), 0),
            EventKind::LevelBegin { level, frontier } => (11, u64::from(level), frontier),
            EventKind::LevelEnd {
                level,
                discovered,
                states_total,
            } => (12, (u64::from(level) << 40) | discovered, states_total),
            EventKind::ShardOccupancy { max, total } => (13, max, total),
            EventKind::SpanBegin { id } => (14, u64::from(id), 0),
            EventKind::SpanEnd { id } => (15, u64::from(id), 0),
            EventKind::Instant { id, value } => (16, u64::from(id), value),
            EventKind::TlabRefill { got } => (17, u64::from(got), 0),
            EventKind::SegmentClaimed { segment } => (18, u64::from(segment), 0),
            EventKind::LazySweepSegment { segment, freed } => {
                (19, u64::from(segment), u64::from(freed))
            }
            EventKind::Counter { id, value } => (20, u64::from(id), value),
            EventKind::ServeRequest {
                id,
                outcome,
                latency_us,
            } => (
                21,
                (u64::from(id) << 8) | u64::from(outcome),
                u64::from(latency_us),
            ),
            EventKind::SegmentOccupancy {
                segment,
                busy,
                slots,
            } => (
                22,
                u64::from(segment),
                (u64::from(slots) << 32) | u64::from(busy),
            ),
            EventKind::FreeSegments { free, total } => (23, u64::from(free), u64::from(total)),
        };
        [self.ts_ns, code, a, b]
    }

    /// Decodes a four-word record; `None` for unknown codes.
    pub fn decode(w: [u64; 4]) -> Option<Event> {
        let [ts_ns, code, a, b] = w;
        let kind = match code {
            1 => EventKind::CycleBegin { cycle: a },
            2 => EventKind::CycleEnd {
                cycle: a,
                freed: (b >> 32) as u32,
                traced: b as u32,
            },
            3 => EventKind::PhaseEnter { phase: a as u8 },
            4 => EventKind::HandshakeBegin {
                generation: a as u32,
                ty: b as u8,
            },
            5 => EventKind::HandshakeEnd {
                generation: a as u32,
                ty: b as u8,
                outcome: (b >> 8) as u8,
            },
            6 => EventKind::MarkCas { won: a != 0 },
            7 => EventKind::BarrierHit { deletion: a != 0 },
            8 => EventKind::AllocColor {
                slot: a as u32,
                color: b != 0,
            },
            9 => EventKind::PoolRefill { got: a as u32 },
            10 => EventKind::ChaosFired { site: a as u8 },
            11 => EventKind::LevelBegin {
                level: a as u32,
                frontier: b,
            },
            12 => EventKind::LevelEnd {
                level: (a >> 40) as u32,
                discovered: a & ((1 << 40) - 1),
                states_total: b,
            },
            13 => EventKind::ShardOccupancy { max: a, total: b },
            14 => EventKind::SpanBegin { id: a as u32 },
            15 => EventKind::SpanEnd { id: a as u32 },
            16 => EventKind::Instant {
                id: a as u32,
                value: b,
            },
            17 => EventKind::TlabRefill { got: a as u32 },
            18 => EventKind::SegmentClaimed { segment: a as u32 },
            19 => EventKind::LazySweepSegment {
                segment: a as u32,
                freed: b as u32,
            },
            20 => EventKind::Counter {
                id: a as u8,
                value: b,
            },
            21 => EventKind::ServeRequest {
                id: (a >> 8) as u32,
                outcome: a as u8,
                latency_us: b as u32,
            },
            22 => EventKind::SegmentOccupancy {
                segment: a as u32,
                busy: b as u32,
                slots: (b >> 32) as u32,
            },
            23 => EventKind::FreeSegments {
                free: a as u32,
                total: b as u32,
            },
            _ => return None,
        };
        Some(Event { ts_ns, kind })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_round_trips() {
        let kinds = [
            EventKind::CycleBegin { cycle: 7 },
            EventKind::CycleEnd {
                cycle: 7,
                freed: 12,
                traced: 99,
            },
            EventKind::PhaseEnter { phase: 2 },
            EventKind::HandshakeBegin {
                generation: 41,
                ty: 2,
            },
            EventKind::HandshakeEnd {
                generation: 41,
                ty: 2,
                outcome: 0,
            },
            EventKind::MarkCas { won: true },
            EventKind::BarrierHit { deletion: false },
            EventKind::AllocColor {
                slot: 1234,
                color: true,
            },
            EventKind::PoolRefill { got: 8 },
            EventKind::TlabRefill { got: 32 },
            EventKind::SegmentClaimed { segment: 17 },
            EventKind::LazySweepSegment {
                segment: 17,
                freed: 61,
            },
            EventKind::ChaosFired { site: 3 },
            EventKind::LevelBegin {
                level: 9,
                frontier: 100_000,
            },
            EventKind::LevelEnd {
                level: 9,
                discovered: 54_321,
                states_total: 1 << 33,
            },
            EventKind::ShardOccupancy {
                max: 512,
                total: 30_000,
            },
            EventKind::SpanBegin { id: 2 },
            EventKind::SpanEnd { id: 2 },
            EventKind::Instant {
                id: 1,
                value: u64::MAX,
            },
            EventKind::Counter { id: 2, value: 997 },
            EventKind::ServeRequest {
                id: 123_456,
                outcome: 3,
                latency_us: 41_000,
            },
            EventKind::SegmentOccupancy {
                segment: 5,
                busy: 61,
                slots: 64,
            },
            EventKind::FreeSegments { free: 3, total: 8 },
        ];
        for (i, kind) in kinds.into_iter().enumerate() {
            let e = Event {
                ts_ns: 1_000 + i as u64,
                kind,
            };
            assert_eq!(Event::decode(e.encode()), Some(e), "kind {kind:?}");
        }
    }

    #[test]
    fn unknown_codes_decode_to_none() {
        assert_eq!(Event::decode([0, 0, 0, 0]), None);
        assert_eq!(Event::decode([5, 999, 1, 2]), None);
    }
}
