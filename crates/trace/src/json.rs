//! A minimal JSON value: build, render, parse.
//!
//! The container is offline, so the exporters cannot lean on serde; this
//! module is the small dependency-free subset they need. Rendering is
//! deterministic (object keys keep insertion order), parsing accepts
//! anything the renderers produce plus standard JSON from external tools
//! (Perfetto exports, schema files).

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (rendered without a trailing `.0` when integral).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, keys in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Builder: sets `key` on an object (panics on non-objects).
    #[must_use]
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(entries) => entries.push((key.to_owned(), value.into())),
            other => panic!("Json::set on non-object {other:?}"),
        }
        self
    }

    /// Member lookup on objects; `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Parses `text` as a single JSON value (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}
impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Num(n as f64)
    }
}
impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::Num(f64::from(n))
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Obj(entries) => {
                write!(f, "{{")?;
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

/// A parse failure, with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our
                            // renderers; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_round_trip() {
        let v = Json::obj()
            .set("name", "trace \"quoted\"\n")
            .set("count", 42u64)
            .set("ratio", Json::Num(0.5))
            .set("ok", true)
            .set("nothing", Json::Null)
            .set(
                "items",
                Json::Arr(vec![Json::Num(1.0), Json::Str("two".into())]),
            );
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn parses_external_style_json() {
        let v = Json::parse(
            r#" { "traceEvents": [ {"ph":"B","ts":1.5e3}, {"ph":"E","ts":2000} ],
                 "displayTimeUnit": "ms" } "#,
        )
        .unwrap();
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("ts").unwrap().as_f64(), Some(1500.0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("{} trailing").is_err());
    }

    #[test]
    fn integral_numbers_render_without_fraction() {
        assert_eq!(Json::Num(3.0).to_string(), "3");
        assert_eq!(Json::Num(3.25).to_string(), "3.25");
        assert_eq!(Json::Num(-7.0).to_string(), "-7");
    }
}
