//! One schema-checked path for `BENCH_*.json` emission.
//!
//! Every bench bin used to hand-roll `fs::write` of a
//! [`crate::bench_record`] document; this module is the single funnel:
//! [`validate_bench_record`] rejects malformed records *before* they are
//! written (so a refactor that drops a field fails the producing run, not
//! a downstream diff three PRs later), [`write_bench_record_at`] writes a
//! validated record to an explicit output directory, and
//! [`write_bench_record`] anchors it at the repository's
//! `experiments_output/` for checked-in artifacts. `gc-trace check-bench`
//! runs the same validator over existing files in CI.

use std::path::{Path, PathBuf};

use crate::json::Json;

/// The schema tag every record must carry.
pub const BENCH_SCHEMA: &str = "gc-bench/v1";

/// Checks that `record` is a well-formed `gc-bench/v1` document:
/// an object with a non-empty string `bench`, `schema` equal to
/// [`BENCH_SCHEMA`], object-valued `params` and `results`, and `metrics`
/// either `null` or a registry snapshot (`counters`/`gauges`/`histograms`
/// objects). Returns every violation, empty on success.
pub fn validate_bench_record(record: &Json) -> Vec<String> {
    let mut errors = Vec::new();
    if !matches!(record, Json::Obj(_)) {
        return vec!["record is not a JSON object".to_owned()];
    }
    match record.get("bench").and_then(Json::as_str) {
        Some(name) if !name.is_empty() => {}
        Some(_) => errors.push("\"bench\" is empty".to_owned()),
        None => errors.push("missing string field \"bench\"".to_owned()),
    }
    match record.get("schema").and_then(Json::as_str) {
        Some(BENCH_SCHEMA) => {}
        Some(other) => errors.push(format!(
            "\"schema\" is {other:?}, expected {BENCH_SCHEMA:?}"
        )),
        None => errors.push(format!("missing \"schema\": {BENCH_SCHEMA:?}")),
    }
    for field in ["params", "results"] {
        match record.get(field) {
            Some(Json::Obj(_)) => {}
            Some(_) => errors.push(format!("\"{field}\" is not an object")),
            None => errors.push(format!("missing object field \"{field}\"")),
        }
    }
    match record.get("metrics") {
        Some(Json::Null) | None => {}
        Some(snap @ Json::Obj(_)) => {
            for section in ["counters", "gauges", "histograms"] {
                if !matches!(snap.get(section), Some(Json::Obj(_))) {
                    errors.push(format!(
                        "\"metrics\" snapshot is missing object section \"{section}\""
                    ));
                }
            }
        }
        Some(_) => errors.push("\"metrics\" is neither null nor a snapshot object".to_owned()),
    }
    errors
}

/// Validates a file's contents as a `gc-bench/v1` record. The error is
/// one human-readable string (parse failure or joined violations).
pub fn check_bench_file(path: &Path) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let record = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let errors = validate_bench_record(&record);
    if errors.is_empty() {
        Ok(())
    } else {
        Err(format!("{}: {}", path.display(), errors.join("; ")))
    }
}

fn invalid(errors: Vec<String>) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("invalid bench record: {}", errors.join("; ")),
    )
}

/// Validates `record` and writes it to `<dir>/BENCH_<bench>.json`
/// (creating `dir`), returning the path. Schema violations surface as
/// `InvalidData` I/O errors so the producing run fails loudly.
pub fn write_bench_record_at(dir: &Path, bench: &str, record: &Json) -> std::io::Result<PathBuf> {
    let errors = validate_bench_record(record);
    if !errors.is_empty() {
        return Err(invalid(errors));
    }
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("BENCH_{bench}.json"));
    std::fs::write(&path, format!("{record}\n"))?;
    Ok(path)
}

/// Validates `record` and writes it to `experiments_output/BENCH_<bench>.json`
/// at the *repository root* (creating the directory), returning the path.
/// The root is found by walking up from `CARGO_MANIFEST_DIR` to `.git` —
/// `cargo bench` and `cargo test` set the working directory to the package
/// root, so a cwd-relative path would scatter records across `crates/*`.
pub fn write_bench_record(bench: &str, record: &Json) -> std::io::Result<PathBuf> {
    let root = std::env::var_os("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .map(|manifest| {
            manifest
                .ancestors()
                .find(|a| a.join(".git").exists())
                .map(Path::to_path_buf)
                .unwrap_or(manifest)
        })
        .unwrap_or_else(|| PathBuf::from("."));
    write_bench_record_at(&root.join("experiments_output"), bench, record)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{bench_record, Registry};

    #[test]
    fn well_formed_records_validate() {
        let r = Registry::new();
        r.counter("x_total").inc();
        let record = bench_record(
            "demo",
            &[("seed", Json::from(7u64))],
            &[("throughput", Json::Num(12.5))],
            Some(&r),
        );
        assert!(validate_bench_record(&record).is_empty());
        let no_metrics = bench_record("demo", &[], &[], None);
        assert!(validate_bench_record(&no_metrics).is_empty());
    }

    #[test]
    fn violations_are_each_reported() {
        let bad = Json::obj()
            .set("bench", "")
            .set("schema", "gc-bench/v0")
            .set("params", Json::Arr(vec![]))
            .set("metrics", Json::obj());
        let errors = validate_bench_record(&bad);
        assert!(errors.iter().any(|e| e.contains("\"bench\" is empty")));
        assert!(errors.iter().any(|e| e.contains("gc-bench/v0")));
        assert!(errors.iter().any(|e| e.contains("\"params\" is not")));
        assert!(errors.iter().any(|e| e.contains("\"results\"")));
        assert!(errors.iter().any(|e| e.contains("counters")));
        assert!(!validate_bench_record(&Json::Arr(vec![])).is_empty());
    }

    #[test]
    fn write_at_validates_then_round_trips() {
        let dir = std::env::temp_dir().join(format!("gc-trace-bench-test-{}", std::process::id()));
        let record = bench_record("unit", &[], &[("ok", Json::Bool(true))], None);
        let path = write_bench_record_at(&dir, "unit", &record).unwrap();
        assert!(path.ends_with("BENCH_unit.json"));
        check_bench_file(&path).unwrap();

        let err = write_bench_record_at(&dir, "bad", &Json::obj()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);

        std::fs::write(dir.join("BENCH_corrupt.json"), "{not json").unwrap();
        assert!(check_bench_file(&dir.join("BENCH_corrupt.json")).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
