//! Trace diffing: extract the *shape* of a recorded run and compare two
//! shapes under configurable thresholds — the regression gate behind
//! `gc-trace diff` and the CI `trace-diff` job.
//!
//! A [`TraceShape`] distils a `trace.jsonl` (flat event records, the
//! [`crate::chrome::event_json`] shape) or `trace.json` (Chrome
//! trace-event document) into per-cycle shape records: handshake latency
//! per type, cycle/mark/sweep durations, barrier-hit and alloc-color
//! mixes, serve-request outcome/latency distributions, and checker level
//! progress. [`diff_shapes`] then compares two shapes:
//!
//! * **latency families** (quantiles of durations) regress one-sided —
//!   only when the current run is *slower* than `1 + latency_rel` times
//!   the baseline (a 20% slowdown trips the 0.15 default), and only past
//!   an absolute floor so histogram-bucket noise on nanosecond-scale
//!   values cannot trip it;
//! * **count families** regress in either direction beyond `count_rel` —
//!   a run with half or double the cycles has changed shape even if it
//!   got faster;
//! * **mix families** (fractions of a whole: deletion-barrier share,
//!   black-alloc share, outcome shares) regress when the share moves by
//!   more than `mix_abs` absolute;
//! * **presence**: a family well-populated in the baseline that vanishes
//!   entirely is always a regression, even in `shape_only` mode — this is
//!   the noise-immune core of the CI gate.
//!
//! All ingestion errors are structured [`DiffError`]s (with a line number
//! for JSONL inputs): truncated or corrupt files report, never panic.

use std::collections::{BTreeMap, HashMap};

use crate::json::Json;
use crate::metrics::Histogram;

/// A structured ingestion failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffError {
    /// 1-based line of the offending JSONL record, when line-addressable.
    pub line: Option<usize>,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for DiffError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.line {
            Some(n) => write!(f, "line {n}: {}", self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for DiffError {}

fn err(line: Option<usize>, message: impl Into<String>) -> DiffError {
    DiffError {
        line,
        message: message.into(),
    }
}

/// The five-number summary of a duration/latency distribution.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    /// Samples recorded.
    pub count: u64,
    /// Mean sample.
    pub mean: f64,
    /// Median.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Largest sample.
    pub max: u64,
}

impl Summary {
    fn of(h: &Histogram) -> Summary {
        Summary {
            count: h.count(),
            mean: h.mean(),
            p50: h.quantile(0.50),
            p95: h.quantile(0.95),
            p99: h.quantile(0.99),
            max: h.max(),
        }
    }

    fn to_json(self) -> Json {
        Json::obj()
            .set("count", self.count)
            .set("mean", Json::Num(self.mean))
            .set("p50", self.p50)
            .set("p95", self.p95)
            .set("p99", self.p99)
            .set("max", self.max)
    }
}

/// The extracted shape of one recorded run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceShape {
    /// Event records ingested.
    pub events: u64,
    /// Records skipped (footers, unknown kinds).
    pub skipped: u64,
    /// Completed collection cycles (begin/end paired).
    pub cycles: u64,
    /// Cycle wall-clock durations (ns).
    pub cycle_ns: Summary,
    /// Mark-phase durations (ns).
    pub mark_ns: Summary,
    /// Sweep-phase durations (ns).
    pub sweep_ns: Summary,
    /// Objects freed, summed over cycle ends.
    pub freed_total: u64,
    /// Objects traced, summed over cycle ends.
    pub traced_total: u64,
    /// Handshake latency (ns) per handshake type, plus `"all"`.
    pub handshake_ns: BTreeMap<String, Summary>,
    /// Insertion-barrier hits.
    pub barrier_insertion: u64,
    /// Deletion-barrier hits.
    pub barrier_deletion: u64,
    /// Allocations coloured white at birth.
    pub alloc_white: u64,
    /// Allocations coloured black at birth.
    pub alloc_black: u64,
    /// Mark CAS races won.
    pub mark_cas_won: u64,
    /// Mark CAS races lost.
    pub mark_cas_lost: u64,
    /// Chaos faults fired.
    pub chaos_fired: u64,
    /// Serve-request count per outcome (`ok`, `shed`, ...).
    pub serve_outcomes: BTreeMap<String, u64>,
    /// Serve-request latency (µs).
    pub serve_latency_us: Summary,
    /// Checker BFS levels completed.
    pub checker_levels: u64,
    /// Final checker state count (max `states_total` seen).
    pub checker_states: u64,
    /// Largest checker frontier observed.
    pub peak_frontier: u64,
}

/// Streaming accumulator: feeds decoded records into histograms, then
/// freezes into a [`TraceShape`].
#[derive(Default)]
struct ShapeBuilder {
    shape: TraceShape,
    cycle_h: Histogram,
    mark_h: Histogram,
    sweep_h: Histogram,
    hs_all: Histogram,
    hs_by_type: BTreeMap<String, Histogram>,
    serve_h: Histogram,
    /// Open handshakes keyed by (track, generation) → (start ts, type).
    hs_open: HashMap<(u64, u64), (u64, String)>,
    /// Open cycles keyed by (track, cycle id).
    cycle_open: HashMap<(u64, u64), u64>,
    /// Current phase per track → (phase name, entered ts).
    phase_open: HashMap<u64, (String, u64)>,
}

impl ShapeBuilder {
    fn cycle_begin(&mut self, track: u64, cycle: u64, ts: u64) {
        self.cycle_open.insert((track, cycle), ts);
    }

    fn cycle_end(&mut self, track: u64, cycle: u64, ts: u64, freed: u64, traced: u64) {
        self.shape.freed_total += freed;
        self.shape.traced_total += traced;
        if let Some(t0) = self.cycle_open.remove(&(track, cycle)) {
            self.shape.cycles += 1;
            self.cycle_h.record(ts.saturating_sub(t0));
        }
    }

    fn phase_enter(&mut self, track: u64, phase: &str, ts: u64) {
        if let Some((prev, t0)) = self.phase_open.remove(&track) {
            let d = ts.saturating_sub(t0);
            match prev.as_str() {
                "mark" => self.mark_h.record(d),
                "sweep" => self.sweep_h.record(d),
                _ => {}
            }
        }
        if phase != "idle" {
            self.phase_open.insert(track, (phase.to_owned(), ts));
        }
    }

    fn handshake_begin(&mut self, track: u64, generation: u64, ty: &str, ts: u64) {
        self.hs_open
            .insert((track, generation), (ts, ty.to_owned()));
    }

    fn handshake_end(&mut self, track: u64, generation: u64, ts: u64) {
        if let Some((t0, ty)) = self.hs_open.remove(&(track, generation)) {
            let d = ts.saturating_sub(t0);
            self.hs_all.record(d);
            self.hs_by_type.entry(ty).or_default().record(d);
        }
    }

    fn serve_request(&mut self, outcome: &str, latency_us: u64) {
        *self
            .shape
            .serve_outcomes
            .entry(outcome.to_owned())
            .or_default() += 1;
        self.serve_h.record(latency_us);
    }

    fn finish(mut self) -> TraceShape {
        self.shape.cycle_ns = Summary::of(&self.cycle_h);
        self.shape.mark_ns = Summary::of(&self.mark_h);
        self.shape.sweep_ns = Summary::of(&self.sweep_h);
        self.shape.serve_latency_us = Summary::of(&self.serve_h);
        if self.hs_all.count() > 0 {
            self.shape
                .handshake_ns
                .insert("all".to_owned(), Summary::of(&self.hs_all));
        }
        for (ty, h) in self.hs_by_type {
            self.shape.handshake_ns.insert(ty, Summary::of(&h));
        }
        self.shape
    }
}

fn get_u64(j: &Json, key: &str) -> Option<u64> {
    j.get(key).and_then(Json::as_f64).map(|v| v as u64)
}

fn get_bool(j: &Json, key: &str) -> Option<bool> {
    match j.get(key) {
        Some(Json::Bool(b)) => Some(*b),
        _ => None,
    }
}

impl TraceShape {
    /// Ingests a trace from text: a Chrome trace-event document when the
    /// whole input parses as a JSON object with `traceEvents`, flat JSONL
    /// otherwise.
    pub fn from_text(text: &str) -> Result<TraceShape, DiffError> {
        if text.trim_start().starts_with('{') {
            if let Ok(doc) = Json::parse(text) {
                if doc.get("traceEvents").is_some() {
                    return Self::from_chrome(&doc);
                }
            }
        }
        Self::from_jsonl(text)
    }

    /// Ingests flat JSONL records (the `trace.jsonl` /
    /// [`crate::chrome::event_json`] shape). Tolerates the background
    /// sink's `trace_footer` line; any non-JSON line is a structured
    /// error carrying its 1-based line number.
    pub fn from_jsonl(text: &str) -> Result<TraceShape, DiffError> {
        let mut b = ShapeBuilder::default();
        for (idx, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let record = Json::parse(line)
                .map_err(|e| err(Some(idx + 1), format!("corrupt JSONL record: {e}")))?;
            if record.get("trace_footer").is_some() {
                b.shape.skipped += 1;
                continue;
            }
            let Some(event) = record.get("event").and_then(Json::as_str) else {
                b.shape.skipped += 1;
                continue;
            };
            let event = event.to_owned();
            let track = get_u64(&record, "track").unwrap_or(0);
            let ts = get_u64(&record, "ts_ns").unwrap_or(0);
            b.shape.events += 1;
            match event.as_str() {
                "cycle_begin" => {
                    b.cycle_begin(track, get_u64(&record, "cycle").unwrap_or(0), ts);
                }
                "cycle_end" => b.cycle_end(
                    track,
                    get_u64(&record, "cycle").unwrap_or(0),
                    ts,
                    get_u64(&record, "freed").unwrap_or(0),
                    get_u64(&record, "traced").unwrap_or(0),
                ),
                "phase_enter" => {
                    let phase = record
                        .get("phase")
                        .and_then(Json::as_str)
                        .unwrap_or("idle")
                        .to_owned();
                    b.phase_enter(track, &phase, ts);
                }
                "handshake_begin" => {
                    let ty = record
                        .get("type")
                        .and_then(Json::as_str)
                        .unwrap_or("?")
                        .to_owned();
                    b.handshake_begin(track, get_u64(&record, "generation").unwrap_or(0), &ty, ts);
                }
                "handshake_end" => {
                    b.handshake_end(track, get_u64(&record, "generation").unwrap_or(0), ts);
                }
                "barrier_hit" => {
                    if get_bool(&record, "deletion").unwrap_or(false) {
                        b.shape.barrier_deletion += 1;
                    } else {
                        b.shape.barrier_insertion += 1;
                    }
                }
                "alloc_color" => {
                    if get_bool(&record, "color").unwrap_or(false) {
                        b.shape.alloc_black += 1;
                    } else {
                        b.shape.alloc_white += 1;
                    }
                }
                "mark_cas" => {
                    if get_bool(&record, "won").unwrap_or(false) {
                        b.shape.mark_cas_won += 1;
                    } else {
                        b.shape.mark_cas_lost += 1;
                    }
                }
                "chaos_fired" => b.shape.chaos_fired += 1,
                "serve_request" => {
                    let outcome = record
                        .get("outcome")
                        .and_then(Json::as_str)
                        .unwrap_or("?")
                        .to_owned();
                    b.serve_request(&outcome, get_u64(&record, "latency_us").unwrap_or(0));
                }
                "level_begin" => {
                    let frontier = get_u64(&record, "frontier").unwrap_or(0);
                    b.shape.peak_frontier = b.shape.peak_frontier.max(frontier);
                }
                "level_end" => {
                    b.shape.checker_levels += 1;
                    let total = get_u64(&record, "states_total").unwrap_or(0);
                    b.shape.checker_states = b.shape.checker_states.max(total);
                }
                _ => {
                    b.shape.events -= 1;
                    b.shape.skipped += 1;
                }
            }
        }
        let shape = b.finish();
        if shape.events == 0 {
            return Err(err(None, "no recognizable trace events in input"));
        }
        Ok(shape)
    }

    /// Ingests a Chrome trace-event document (the `trace.json` shape):
    /// spans reconstructed from per-track `B`/`E` stacks, instants and
    /// counters from their names and args. Timestamps are in µs.
    pub fn from_chrome(doc: &Json) -> Result<TraceShape, DiffError> {
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_arr)
            .ok_or_else(|| err(None, "missing traceEvents array"))?;
        let mut b = ShapeBuilder::default();
        // Per-track span stacks: (name, begin ts_ns, args).
        let mut stacks: HashMap<u64, Vec<(String, u64, Json)>> = HashMap::new();
        let mut hs_gen: u64 = 0; // synthetic generation pairing per stack order
        for (idx, e) in events.iter().enumerate() {
            let ph = e.get("ph").and_then(Json::as_str).unwrap_or("");
            if matches!(ph, "M" | "C") {
                continue;
            }
            let tid = get_u64(e, "tid").unwrap_or(0);
            let ts_ns = e
                .get("ts")
                .and_then(Json::as_f64)
                .map(|us| (us * 1_000.0) as u64)
                .ok_or_else(|| err(None, format!("traceEvents[{idx}]: missing ts")))?;
            let name = e.get("name").and_then(Json::as_str).unwrap_or("");
            let empty = Json::obj();
            let args = e.get("args").cloned().unwrap_or(empty);
            match ph {
                "B" => {
                    b.shape.events += 1;
                    stacks
                        .entry(tid)
                        .or_default()
                        .push((name.to_owned(), ts_ns, args));
                }
                "E" => {
                    b.shape.events += 1;
                    let Some((open_name, t0, open_args)) = stacks.entry(tid).or_default().pop()
                    else {
                        return Err(err(
                            None,
                            format!("traceEvents[{idx}]: E without matching B on tid {tid}"),
                        ));
                    };
                    // E carries the close args (cycle freed/traced).
                    let close_args = e.get("args").cloned().unwrap_or(Json::obj());
                    if let Some(cycle) = open_name.strip_prefix("cycle ") {
                        let id = cycle.parse().unwrap_or(0);
                        b.cycle_begin(tid, id, t0);
                        b.cycle_end(
                            tid,
                            id,
                            ts_ns,
                            get_u64(&close_args, "freed").unwrap_or(0),
                            get_u64(&close_args, "traced").unwrap_or(0),
                        );
                    } else if let Some(ty) = open_name.strip_prefix("handshake ") {
                        hs_gen += 1;
                        let generation =
                            get_u64(&open_args, "generation").unwrap_or(u64::MAX - hs_gen);
                        b.handshake_begin(tid, generation, ty, t0);
                        b.handshake_end(tid, generation, ts_ns);
                    } else if open_name == "mark" {
                        b.mark_h.record(ts_ns.saturating_sub(t0));
                    } else if open_name == "sweep" {
                        b.sweep_h.record(ts_ns.saturating_sub(t0));
                    } else if let Some(level) = open_name.strip_prefix("level ") {
                        let _ = level;
                        b.shape.checker_levels += 1;
                        let total = get_u64(&close_args, "states_total").unwrap_or(0);
                        b.shape.checker_states = b.shape.checker_states.max(total);
                        let frontier = get_u64(&open_args, "frontier").unwrap_or(0);
                        b.shape.peak_frontier = b.shape.peak_frontier.max(frontier);
                    }
                }
                "i" | "I" => {
                    b.shape.events += 1;
                    match name {
                        "barrier_hit" => {
                            let deletion = args
                                .get("kind")
                                .and_then(Json::as_str)
                                .is_some_and(|k| k == "deletion");
                            if deletion {
                                b.shape.barrier_deletion += 1;
                            } else {
                                b.shape.barrier_insertion += 1;
                            }
                        }
                        "alloc" => {
                            if get_bool(&args, "color").unwrap_or(false) {
                                b.shape.alloc_black += 1;
                            } else {
                                b.shape.alloc_white += 1;
                            }
                        }
                        "mark_cas" => {
                            if get_bool(&args, "won").unwrap_or(false) {
                                b.shape.mark_cas_won += 1;
                            } else {
                                b.shape.mark_cas_lost += 1;
                            }
                        }
                        "chaos_fired" => b.shape.chaos_fired += 1,
                        "serve_request" => {
                            let outcome = args
                                .get("outcome")
                                .and_then(Json::as_str)
                                .unwrap_or("?")
                                .to_owned();
                            b.serve_request(&outcome, get_u64(&args, "latency_us").unwrap_or(0));
                        }
                        _ => b.shape.skipped += 1,
                    }
                }
                _ => b.shape.skipped += 1,
            }
        }
        let shape = b.finish();
        if shape.events == 0 {
            return Err(err(None, "no recognizable trace events in traceEvents"));
        }
        Ok(shape)
    }

    /// The shape as JSON (the `base`/`current` sections of the verdict
    /// document).
    pub fn to_json(&self) -> Json {
        let mut hs = Json::obj();
        for (ty, s) in &self.handshake_ns {
            hs = hs.set(ty, s.to_json());
        }
        let mut serve = Json::obj();
        for (outcome, n) in &self.serve_outcomes {
            serve = serve.set(outcome, *n);
        }
        Json::obj()
            .set("events", self.events)
            .set("skipped", self.skipped)
            .set("cycles", self.cycles)
            .set("cycle_ns", self.cycle_ns.to_json())
            .set("mark_ns", self.mark_ns.to_json())
            .set("sweep_ns", self.sweep_ns.to_json())
            .set("freed_total", self.freed_total)
            .set("traced_total", self.traced_total)
            .set("handshake_ns", hs)
            .set("barrier_insertion", self.barrier_insertion)
            .set("barrier_deletion", self.barrier_deletion)
            .set("alloc_white", self.alloc_white)
            .set("alloc_black", self.alloc_black)
            .set("mark_cas_won", self.mark_cas_won)
            .set("mark_cas_lost", self.mark_cas_lost)
            .set("chaos_fired", self.chaos_fired)
            .set("serve_outcomes", serve)
            .set("serve_latency_us", self.serve_latency_us.to_json())
            .set("checker_levels", self.checker_levels)
            .set("checker_states", self.checker_states)
            .set("peak_frontier", self.peak_frontier)
    }
}

/// Comparison thresholds. Defaults are tuned for two runs on the *same*
/// machine; the CI baseline gate loosens them (or runs `shape_only`)
/// because a checked-in trace was recorded on different hardware.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Thresholds {
    /// One-sided relative slowdown tolerated on latency quantiles
    /// (0.15 = +15%; a seeded +20% perturbation trips it).
    pub latency_rel: f64,
    /// Absolute latency delta (ns) below which a quantile move is bucket
    /// noise, never a regression.
    pub latency_floor_ns: f64,
    /// Two-sided relative drift tolerated on event counts.
    pub count_rel: f64,
    /// Absolute drift tolerated on mix fractions (0.10 = ten points).
    pub mix_abs: f64,
    /// Families with fewer baseline samples than this are not compared
    /// (besides presence checks, which need the baseline ≥ this count).
    pub min_count: u64,
    /// When false (`--shape-only`), latency families are reported but
    /// never gate — counts, mixes and presence still do.
    pub check_latency: bool,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds {
            latency_rel: 0.15,
            latency_floor_ns: 1_000.0,
            count_rel: 0.5,
            mix_abs: 0.10,
            min_count: 8,
            check_latency: true,
        }
    }
}

/// One compared metric.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Metric path, e.g. `handshake_ns.all.p99`.
    pub metric: String,
    /// Comparison class: `latency-rel`, `count-rel`, `mix-abs`, `presence`.
    pub kind: &'static str,
    /// Baseline value.
    pub base: f64,
    /// Current value.
    pub current: f64,
    /// The measured delta (relative or absolute per `kind`).
    pub delta: f64,
    /// The threshold the delta was held against.
    pub threshold: f64,
    /// Whether this finding gates the verdict.
    pub regressed: bool,
}

impl Finding {
    fn to_json(&self) -> Json {
        Json::obj()
            .set("metric", self.metric.as_str())
            .set("kind", self.kind)
            .set("base", Json::Num(self.base))
            .set("current", Json::Num(self.current))
            .set("delta", Json::Num(self.delta))
            .set("threshold", Json::Num(self.threshold))
            .set("regressed", self.regressed)
    }
}

/// The outcome of one diff: every compared metric plus the verdict.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Every comparison made, regressed or not.
    pub findings: Vec<Finding>,
}

impl DiffReport {
    /// True when no finding regressed.
    pub fn clean(&self) -> bool {
        !self.findings.iter().any(|f| f.regressed)
    }

    /// The regressed findings.
    pub fn regressions(&self) -> Vec<&Finding> {
        self.findings.iter().filter(|f| f.regressed).collect()
    }

    /// The machine-readable verdict document
    /// (`{"schema":"gc-trace-diff/v1", "verdict": ..., ...}`).
    pub fn to_json(&self, base: &TraceShape, current: &TraceShape, thr: &Thresholds) -> Json {
        Json::obj()
            .set("schema", "gc-trace-diff/v1")
            .set("verdict", if self.clean() { "clean" } else { "regressed" })
            .set("regressions", self.regressions().len())
            .set("comparisons", self.findings.len())
            .set(
                "thresholds",
                Json::obj()
                    .set("latency_rel", Json::Num(thr.latency_rel))
                    .set("latency_floor_ns", Json::Num(thr.latency_floor_ns))
                    .set("count_rel", Json::Num(thr.count_rel))
                    .set("mix_abs", Json::Num(thr.mix_abs))
                    .set("min_count", thr.min_count)
                    .set("check_latency", thr.check_latency),
            )
            .set(
                "findings",
                Json::Arr(self.findings.iter().map(Finding::to_json).collect()),
            )
            .set("base", base.to_json())
            .set("current", current.to_json())
    }

    /// A human table: one row per comparison, regressions flagged.
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<34} {:>12} {:>12} {:>9} {:>9}  verdict",
            "metric", "base", "current", "delta", "limit"
        );
        let _ = writeln!(out, "{}", "-".repeat(92));
        for f in &self.findings {
            let _ = writeln!(
                out,
                "{:<34} {:>12.1} {:>12.1} {:>8.1}% {:>8.1}%  {}",
                f.metric,
                f.base,
                f.current,
                f.delta * 100.0,
                f.threshold * 100.0,
                if f.regressed { "REGRESSED" } else { "ok" }
            );
        }
        let _ = writeln!(
            out,
            "verdict: {} ({} regression(s) in {} comparison(s))",
            if self.clean() { "clean" } else { "REGRESSED" },
            self.regressions().len(),
            self.findings.len()
        );
        out
    }
}

/// Count comparison: two-sided relative drift, plus the presence check
/// (well-populated in base, gone in current → always a regression).
fn push_count(report: &mut DiffReport, thr: &Thresholds, metric: &str, b: u64, c: u64) {
    if b < thr.min_count {
        return;
    }
    if c == 0 {
        report.findings.push(Finding {
            metric: metric.to_owned(),
            kind: "presence",
            base: b as f64,
            current: 0.0,
            delta: 1.0,
            threshold: 0.0,
            regressed: true,
        });
        return;
    }
    let delta = (c as f64 - b as f64).abs() / b as f64;
    report.findings.push(Finding {
        metric: metric.to_owned(),
        kind: "count-rel",
        base: b as f64,
        current: c as f64,
        delta,
        threshold: thr.count_rel,
        regressed: delta > thr.count_rel,
    });
}

/// Latency comparison: one-sided (slower only), with an absolute floor
/// in the same unit as the summaries (`floor`).
fn push_latency(
    report: &mut DiffReport,
    thr: &Thresholds,
    floor: f64,
    metric: &str,
    b_sum: &Summary,
    c_sum: &Summary,
) {
    if b_sum.count < thr.min_count || c_sum.count < thr.min_count {
        return;
    }
    for (q, b, c) in [
        ("p50", b_sum.p50, c_sum.p50),
        ("p95", b_sum.p95, c_sum.p95),
        ("p99", b_sum.p99, c_sum.p99),
    ] {
        let (b, c) = (b as f64, c as f64);
        let delta = if b > 0.0 { (c - b) / b } else { 0.0 };
        let slow = c - b > floor && delta > thr.latency_rel;
        report.findings.push(Finding {
            metric: format!("{metric}.{q}"),
            kind: "latency-rel",
            base: b,
            current: c,
            delta,
            threshold: thr.latency_rel,
            regressed: thr.check_latency && slow,
        });
    }
}

/// Mix comparison: absolute drift of `part/total` fractions.
fn push_mix(
    report: &mut DiffReport,
    thr: &Thresholds,
    metric: &str,
    b_part: u64,
    b_total: u64,
    c_part: u64,
    c_total: u64,
) {
    if b_total < thr.min_count || c_total < thr.min_count {
        return;
    }
    let fb = b_part as f64 / b_total as f64;
    let fc = c_part as f64 / c_total as f64;
    let delta = (fc - fb).abs();
    report.findings.push(Finding {
        metric: metric.to_owned(),
        kind: "mix-abs",
        base: fb,
        current: fc,
        delta,
        threshold: thr.mix_abs,
        regressed: delta > thr.mix_abs,
    });
}

/// Compares two shapes under `thr`. See the module docs for the
/// comparison classes.
pub fn diff_shapes(base: &TraceShape, current: &TraceShape, thr: &Thresholds) -> DiffReport {
    let mut report = DiffReport::default();
    let r = &mut report;

    push_count(r, thr, "cycles", base.cycles, current.cycles);
    push_count(
        r,
        thr,
        "barrier_hits",
        base.barrier_insertion + base.barrier_deletion,
        current.barrier_insertion + current.barrier_deletion,
    );
    push_count(
        r,
        thr,
        "allocs",
        base.alloc_white + base.alloc_black,
        current.alloc_white + current.alloc_black,
    );
    push_count(
        r,
        thr,
        "serve_requests",
        base.serve_outcomes.values().sum(),
        current.serve_outcomes.values().sum(),
    );
    push_count(
        r,
        thr,
        "checker_levels",
        base.checker_levels,
        current.checker_levels,
    );
    push_count(
        r,
        thr,
        "checker_states",
        base.checker_states,
        current.checker_states,
    );
    push_count(r, thr, "chaos_fired", base.chaos_fired, current.chaos_fired);
    for (ty, b_sum) in &base.handshake_ns {
        let c = current.handshake_ns.get(ty).map_or(0, |s| s.count);
        push_count(r, thr, &format!("handshake_ns.{ty}.count"), b_sum.count, c);
    }

    push_latency(
        r,
        thr,
        thr.latency_floor_ns,
        "cycle_ns",
        &base.cycle_ns,
        &current.cycle_ns,
    );
    push_latency(
        r,
        thr,
        thr.latency_floor_ns,
        "mark_ns",
        &base.mark_ns,
        &current.mark_ns,
    );
    push_latency(
        r,
        thr,
        thr.latency_floor_ns,
        "sweep_ns",
        &base.sweep_ns,
        &current.sweep_ns,
    );
    for (ty, b_sum) in &base.handshake_ns {
        if let Some(c_sum) = current.handshake_ns.get(ty) {
            push_latency(
                r,
                thr,
                thr.latency_floor_ns,
                &format!("handshake_ns.{ty}"),
                b_sum,
                c_sum,
            );
        }
    }
    // Serve latencies are recorded in µs; scale the noise floor.
    push_latency(
        r,
        thr,
        thr.latency_floor_ns / 1_000.0,
        "serve_latency_us",
        &base.serve_latency_us,
        &current.serve_latency_us,
    );

    push_mix(
        r,
        thr,
        "barrier_deletion_share",
        base.barrier_deletion,
        base.barrier_insertion + base.barrier_deletion,
        current.barrier_deletion,
        current.barrier_insertion + current.barrier_deletion,
    );
    push_mix(
        r,
        thr,
        "alloc_black_share",
        base.alloc_black,
        base.alloc_white + base.alloc_black,
        current.alloc_black,
        current.alloc_white + current.alloc_black,
    );
    let b_serve: u64 = base.serve_outcomes.values().sum();
    let c_serve: u64 = current.serve_outcomes.values().sum();
    for (outcome, b_part) in &base.serve_outcomes {
        push_mix(
            r,
            thr,
            &format!("serve_outcomes.{outcome}_share"),
            *b_part,
            b_serve,
            current.serve_outcomes.get(outcome).copied().unwrap_or(0),
            c_serve,
        );
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic JSONL trace: `n` cycles each with one get-roots
    /// handshake of `hs_ns` latency, plus barrier/alloc instants.
    fn synth(n: u64, hs_ns: u64) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut ts = 1_000u64;
        for cycle in 0..n {
            let _ = writeln!(
                out,
                r#"{{"ts_ns":{ts},"track":1,"track_name":"driver","event":"cycle_begin","cycle":{cycle}}}"#
            );
            let _ = writeln!(
                out,
                r#"{{"ts_ns":{},"track":1,"track_name":"driver","event":"handshake_begin","generation":{cycle},"type":"get-roots"}}"#,
                ts + 10
            );
            let _ = writeln!(
                out,
                r#"{{"ts_ns":{},"track":1,"track_name":"driver","event":"handshake_end","generation":{cycle},"type":"get-roots","outcome":0}}"#,
                ts + 10 + hs_ns
            );
            let _ = writeln!(
                out,
                r#"{{"ts_ns":{},"track":2,"track_name":"m0","event":"barrier_hit","deletion":{}}}"#,
                ts + 20,
                cycle % 3 == 0
            );
            let _ = writeln!(
                out,
                r#"{{"ts_ns":{},"track":2,"track_name":"m0","event":"alloc_color","slot":7,"color":{}}}"#,
                ts + 30,
                cycle % 2 == 0
            );
            let _ = writeln!(
                out,
                r#"{{"ts_ns":{},"track":1,"track_name":"driver","event":"cycle_end","cycle":{cycle},"freed":3,"traced":9}}"#,
                ts + 50_000 + hs_ns
            );
            ts += 100_000;
        }
        out
    }

    #[test]
    fn identical_traces_diff_clean() {
        let text = synth(40, 80_000);
        let a = TraceShape::from_text(&text).unwrap();
        let b = TraceShape::from_text(&text).unwrap();
        assert_eq!(a.cycles, 40);
        assert_eq!(a.handshake_ns["get-roots"].count, 40);
        let report = diff_shapes(&a, &b, &Thresholds::default());
        assert!(report.clean(), "{}", report.render_table());
        assert!(!report.findings.is_empty());
    }

    #[test]
    fn twenty_percent_handshake_slowdown_regresses() {
        let base = TraceShape::from_text(&synth(40, 100_000)).unwrap();
        let slow = TraceShape::from_text(&synth(40, 120_000)).unwrap();
        let report = diff_shapes(&base, &slow, &Thresholds::default());
        assert!(!report.clean());
        assert!(
            report
                .regressions()
                .iter()
                .any(|f| f.metric.starts_with("handshake_ns.") && f.kind == "latency-rel"),
            "{}",
            report.render_table()
        );
        // Shape-only mode reports but does not gate on it.
        let lenient = Thresholds {
            check_latency: false,
            ..Thresholds::default()
        };
        assert!(diff_shapes(&base, &slow, &lenient).clean());
    }

    #[test]
    fn improvements_do_not_regress() {
        let base = TraceShape::from_text(&synth(40, 100_000)).unwrap();
        let fast = TraceShape::from_text(&synth(40, 50_000)).unwrap();
        assert!(diff_shapes(&base, &fast, &Thresholds::default()).clean());
    }

    #[test]
    fn vanished_family_is_a_presence_regression() {
        let base = TraceShape::from_text(&synth(40, 100_000)).unwrap();
        let mut gutted = base.clone();
        gutted.barrier_insertion = 0;
        gutted.barrier_deletion = 0;
        let lenient = Thresholds {
            check_latency: false,
            count_rel: 99.0,
            ..Thresholds::default()
        };
        let report = diff_shapes(&base, &gutted, &lenient);
        assert!(report
            .regressions()
            .iter()
            .any(|f| f.metric == "barrier_hits" && f.kind == "presence"));
    }

    #[test]
    fn corrupt_jsonl_is_a_structured_error() {
        let mut text = synth(4, 1_000);
        text.push_str("{\"ts_ns\":12, truncated-mid-rec");
        let e = TraceShape::from_text(&text).unwrap_err();
        assert_eq!(e.line, Some(25));
        assert!(e.message.contains("corrupt"), "{e}");
        let e2 = TraceShape::from_jsonl("not json at all\n").unwrap_err();
        assert_eq!(e2.line, Some(1));
        assert!(TraceShape::from_jsonl("").is_err());
    }

    #[test]
    fn footer_and_unknown_records_are_skipped() {
        let mut text = synth(10, 1_000);
        text.push_str("{\"trace_footer\":true,\"events\":60,\"dropped\":0,\"drains\":1}\n");
        text.push_str("{\"ts_ns\":5,\"track\":1,\"event\":\"pool_refill\",\"got\":4}\n");
        let shape = TraceShape::from_text(&text).unwrap();
        assert_eq!(shape.cycles, 10);
        assert!(shape.skipped >= 2);
    }

    #[test]
    fn chrome_document_ingests() {
        let doc = Json::obj().set(
            "traceEvents",
            Json::Arr(vec![
                Json::parse(r#"{"ph":"B","name":"cycle 0","ts":10.0,"pid":1,"tid":1,"cat":"gc"}"#)
                    .unwrap(),
                Json::parse(r#"{"ph":"B","name":"mark","ts":12.0,"pid":1,"tid":1,"cat":"gc"}"#)
                    .unwrap(),
                Json::parse(r#"{"ph":"E","name":"","ts":40.0,"pid":1,"tid":1,"cat":"gc"}"#)
                    .unwrap(),
                Json::parse(
                    r#"{"ph":"E","name":"","ts":90.0,"pid":1,"tid":1,"cat":"gc","args":{"freed":2,"traced":5}}"#,
                )
                .unwrap(),
                Json::parse(
                    r#"{"ph":"i","name":"barrier_hit","ts":20.0,"pid":1,"tid":2,"cat":"gc","s":"t","args":{"kind":"deletion"}}"#,
                )
                .unwrap(),
            ]),
        );
        let shape = TraceShape::from_chrome(&doc).unwrap();
        assert_eq!(shape.cycles, 1);
        assert_eq!(shape.cycle_ns.count, 1);
        assert_eq!(shape.mark_ns.count, 1);
        assert_eq!(shape.barrier_deletion, 1);
        assert_eq!(shape.freed_total, 2);
    }

    #[test]
    fn verdict_document_shape() {
        let a = TraceShape::from_text(&synth(20, 10_000)).unwrap();
        let report = diff_shapes(&a, &a, &Thresholds::default());
        let doc = report.to_json(&a, &a, &Thresholds::default());
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("gc-trace-diff/v1")
        );
        assert_eq!(doc.get("verdict").and_then(Json::as_str), Some("clean"));
        assert!(doc.get("findings").and_then(Json::as_arr).is_some());
        assert_eq!(Json::parse(&doc.to_string()).unwrap(), doc);
    }
}
