//! A std-only Prometheus scrape endpoint over a live [`Registry`].
//!
//! [`MetricsServer::spawn`] binds a TCP listener and serves three routes
//! from a background thread:
//!
//! * `GET /metrics` — the registry's text exposition, with the standard
//!   `Content-Type: text/plain; version=0.0.4; charset=utf-8`;
//! * `GET /metrics.json` — the registry's JSON snapshot;
//! * `GET /healthz` — collector liveness: `200` while the watched
//!   progress metric has changed within the staleness window, `503` once
//!   it goes stale (a stalled overnight run stops looking alive).
//!
//! The server is deliberately minimal — `GET`-only, `Connection: close`,
//! one handler thread — because its consumers are a Prometheus scraper on
//! a multi-second interval and `curl`, not request traffic. It has no
//! dependencies beyond `std`, matching the offline-container constraint.
//!
//! Liveness is derived from the registry rather than from the collector
//! directly: the serve harness owns its collector internally, so the bins
//! cannot poll it, but every harness already publishes a monotonically
//! advancing progress metric (`gc_cycles_completed`, `mc_states_total`).
//! [`Liveness::watch`] samples that metric on each `/healthz` hit and
//! reports stale when it stops moving.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::json::Json;
use crate::metrics::Registry;

/// The scrape response media type Prometheus expects.
pub const METRICS_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Watches one progress metric in a [`Registry`] and reports whether it
/// has changed recently enough to call the producer alive.
#[derive(Clone)]
pub struct Liveness {
    inner: Arc<LivenessState>,
}

struct LivenessState {
    registry: Arc<Registry>,
    metric: String,
    window: Duration,
    /// Last observed value and when it last *changed* (creation counts as
    /// a change, so a fresh process gets a startup grace of `window`).
    last: Mutex<(Option<i64>, Instant)>,
}

/// One `/healthz` evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct Health {
    /// Whether the watched metric changed within the window.
    pub healthy: bool,
    /// The watched metric's current value (`None` until registered).
    pub value: Option<i64>,
    /// Time since the watched metric last changed.
    pub since_progress: Duration,
}

impl Liveness {
    /// Watches counter-or-gauge `metric` in `registry`: the producer is
    /// healthy while the value keeps changing at least once per `window`.
    pub fn watch(registry: Arc<Registry>, metric: &str, window: Duration) -> Liveness {
        Liveness {
            inner: Arc::new(LivenessState {
                registry,
                metric: metric.to_owned(),
                window,
                last: Mutex::new((None, Instant::now())),
            }),
        }
    }

    /// Samples the watched metric and evaluates the staleness window.
    pub fn check(&self) -> Health {
        let now = Instant::now();
        let value = self.inner.registry.value_of(&self.inner.metric);
        let mut last = self.inner.last.lock().expect("liveness lock");
        if value != last.0 {
            *last = (value, now);
        }
        let since_progress = now.duration_since(last.1);
        Health {
            healthy: since_progress <= self.inner.window,
            value,
            since_progress,
        }
    }

    /// The watched metric's name.
    pub fn metric(&self) -> &str {
        &self.inner.metric
    }

    /// The staleness window.
    pub fn window(&self) -> Duration {
        self.inner.window
    }
}

/// A background scrape server over a shared [`Registry`].
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<u64>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9464`; port `0` picks a free port —
    /// read it back with [`local_addr`](MetricsServer::local_addr)) and
    /// serves the registry until [`shutdown`](MetricsServer::shutdown) or
    /// drop. `liveness` drives `/healthz`; without one the route always
    /// answers `200` (nothing claims to be a collector).
    pub fn spawn(
        addr: &str,
        registry: Arc<Registry>,
        liveness: Option<Liveness>,
    ) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("metrics-scrape".into())
            .spawn(move || serve_loop(&listener, &registry, liveness.as_ref(), &stop2))?;
        Ok(MetricsServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port `0` requests).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the server and returns how many requests it answered.
    pub fn shutdown(mut self) -> u64 {
        self.stop.store(true, Ordering::Release);
        self.handle
            .take()
            .map(|h| h.join().unwrap_or(0))
            .unwrap_or(0)
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Accept loop: nonblocking accept with a short nap so shutdown is
/// observed within ~10ms even when no scraper ever connects.
fn serve_loop(
    listener: &TcpListener,
    registry: &Registry,
    liveness: Option<&Liveness>,
    stop: &AtomicBool,
) -> u64 {
    let mut served = 0u64;
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if handle_connection(stream, registry, liveness).is_ok() {
                    served += 1;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if stop.load(Ordering::Acquire) {
                    return served;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => {
                if stop.load(Ordering::Acquire) {
                    return served;
                }
            }
        }
        if stop.load(Ordering::Acquire) {
            return served;
        }
    }
}

fn handle_connection(
    stream: TcpStream,
    registry: &Registry,
    liveness: Option<&Liveness>,
) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_millis(500)))?;
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain the headers; none of them change the answer.
    let mut header = String::new();
    loop {
        header.clear();
        if reader.read_line(&mut header)? == 0 || header.trim_end().is_empty() {
            break;
        }
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let stream = reader.into_inner();
    if method != "GET" {
        return respond(
            stream,
            405,
            "Method Not Allowed",
            "text/plain; charset=utf-8",
            "only GET is served\n",
        );
    }
    match path {
        "/metrics" => respond(
            stream,
            200,
            "OK",
            METRICS_CONTENT_TYPE,
            &registry.render_text(),
        ),
        "/metrics.json" => respond(
            stream,
            200,
            "OK",
            "application/json",
            &format!("{}\n", registry.snapshot()),
        ),
        "/healthz" => {
            let (status, reason, body) = match liveness {
                None => (
                    200,
                    "OK",
                    Json::obj()
                        .set("status", "ok")
                        .set("liveness", "unconfigured"),
                ),
                Some(l) => {
                    let h = l.check();
                    let body = Json::obj()
                        .set("status", if h.healthy { "ok" } else { "stale" })
                        .set("watched", l.metric())
                        .set("value", h.value.map(Json::from).unwrap_or(Json::Null))
                        .set("since_progress_ms", h.since_progress.as_millis() as u64)
                        .set("window_ms", l.window().as_millis() as u64);
                    if h.healthy {
                        (200, "OK", body)
                    } else {
                        (503, "Service Unavailable", body)
                    }
                }
            };
            respond(
                stream,
                status,
                reason,
                "application/json",
                &format!("{body}\n"),
            )
        }
        _ => respond(
            stream,
            404,
            "Not Found",
            "text/plain; charset=utf-8",
            "routes: /metrics /metrics.json /healthz\n",
        ),
    }
}

fn respond(
    mut stream: TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read as _;

    /// Raw one-shot GET; returns (status line, headers, body).
    fn get(addr: SocketAddr, path: &str) -> (String, String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect scrape server");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        let mut text = String::new();
        stream.read_to_string(&mut text).expect("read response");
        let (head, body) = text.split_once("\r\n\r\n").expect("header terminator");
        let (status, headers) = head.split_once("\r\n").unwrap_or((head, ""));
        (status.to_owned(), headers.to_owned(), body.to_owned())
    }

    #[test]
    fn serves_metrics_with_prometheus_content_type() {
        let registry = Arc::new(Registry::new());
        registry.counter("scrape_demo_total").add(3);
        let server = MetricsServer::spawn("127.0.0.1:0", Arc::clone(&registry), None).unwrap();
        let (status, headers, body) = get(server.local_addr(), "/metrics");
        assert!(status.contains("200"), "status: {status}");
        assert!(headers.contains(METRICS_CONTENT_TYPE), "headers: {headers}");
        assert!(body.contains("# TYPE scrape_demo_total counter"));
        assert!(body.contains("scrape_demo_total 3"));

        let (status, headers, body) = get(server.local_addr(), "/metrics.json");
        assert!(status.contains("200"));
        assert!(headers.contains("application/json"));
        let snap = Json::parse(&body).expect("snapshot parses");
        assert!(snap.get("counters").is_some());

        let (status, _, _) = get(server.local_addr(), "/nope");
        assert!(status.contains("404"), "status: {status}");
        assert!(server.shutdown() >= 3);
    }

    #[test]
    fn healthz_tracks_progress_recency() {
        let registry = Arc::new(Registry::new());
        let progress = registry.counter("demo_progress_total");
        let liveness = Liveness::watch(
            Arc::clone(&registry),
            "demo_progress_total",
            Duration::from_millis(120),
        );
        let server =
            MetricsServer::spawn("127.0.0.1:0", Arc::clone(&registry), Some(liveness)).unwrap();

        // Startup grace: healthy before any progress.
        let (status, _, body) = get(server.local_addr(), "/healthz");
        assert!(status.contains("200"), "status: {status}, body: {body}");

        // Stale once the window passes without a change.
        std::thread::sleep(Duration::from_millis(200));
        let (status, _, body) = get(server.local_addr(), "/healthz");
        assert!(status.contains("503"), "status: {status}, body: {body}");
        assert!(body.contains("\"status\":\"stale\""));

        // Progress resurrects it.
        progress.inc();
        let (status, _, body) = get(server.local_addr(), "/healthz");
        assert!(status.contains("200"), "status: {status}, body: {body}");
        assert!(body.contains("\"status\":\"ok\""));
        server.shutdown();
    }
}
