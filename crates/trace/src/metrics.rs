//! The metrics registry: counters, gauges and log-linear histograms, with
//! a Prometheus-style text exposition and a JSON snapshot writer.
//!
//! Handles are cheap `Arc`-wrapped atomics: register once, update from any
//! thread with relaxed increments. Histograms use log-linear buckets (16
//! linear sub-buckets per power of two), so any recorded value lands in a
//! bucket whose width is at most 1/16 of its magnitude — quantile
//! estimates carry ≤ ~6.25% relative error, which is plenty for latency
//! reporting and costs a fixed 1 KiB of counters per histogram.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::json::Json;

/// Linear sub-buckets per power-of-two group.
const SUBS: usize = 16;
/// Power-of-two groups covering the full `u64` range.
const GROUPS: usize = 65;

/// A monotonic counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that goes up and down.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `d` (may be negative).
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A lock-free log-linear histogram of `u64` samples.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        let mut buckets = Vec::with_capacity(GROUPS * SUBS);
        buckets.resize_with(GROUPS * SUBS, || AtomicU64::new(0));
        Histogram {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// The bucket index for `v`: values below `SUBS` get exact buckets;
    /// larger values are split into `SUBS` linear sub-buckets per
    /// power-of-two group.
    fn index(v: u64) -> usize {
        if v < SUBS as u64 {
            return v as usize;
        }
        let group = 63 - v.leading_zeros() as usize; // floor(log2 v), ≥ 4
        let sub = (v >> (group - 4)) as usize & (SUBS - 1);
        (group - 3) * SUBS + sub
    }

    /// A representative value (midpoint) for bucket `idx` — the inverse of
    /// [`Histogram::index`] up to bucket width.
    fn representative(idx: usize) -> u64 {
        if idx < SUBS {
            return idx as u64;
        }
        let group = idx / SUBS + 3;
        let sub = (idx % SUBS) as u64;
        let base = (1u64 << group) + (sub << (group - 4));
        let width = 1u64 << (group - 4);
        base + width / 2
    }

    /// Records one sample. Lock-free: three relaxed atomic RMWs plus a
    /// bounded CAS loop for the max.
    pub fn record(&self, v: u64) {
        self.buckets[Self::index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        let mut cur = self.max.load(Ordering::Relaxed);
        while v > cur {
            match self
                .max
                .compare_exchange_weak(cur, v, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(now) => cur = now,
            }
        }
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest sample recorded (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean of all samples (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as a bucket representative, or 0
    /// when empty. Concurrent recording makes the answer approximate in
    /// the usual monitoring sense.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        // Rank of the q-quantile in a sorted sample (nearest-rank method).
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (idx, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::representative(idx).min(self.max());
            }
        }
        self.max()
    }
}

/// How a metric renders in the text exposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MetricType {
    Counter,
    Gauge,
    Histogram,
}

/// Escapes a label *value* for the text exposition: backslash, double
/// quote and newline are the three characters the Prometheus text format
/// requires escaped inside `label="..."`.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Escapes `# HELP` text (backslash and newline, per the format).
fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// The metric *family* of a registered name: the part before the label
/// set. `hits_total{technique="por"}` and `hits_total{technique="sym"}`
/// are two series of the one family `hits_total`.
fn family(name: &str) -> &str {
    name.split('{').next().unwrap_or(name)
}

/// The registry key for a labelled series: the family name plus a
/// `{k="v",...}` label set with values escaped. With no labels the key is
/// the bare family name.
pub fn labeled(family: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return family.to_owned();
    }
    let mut out = String::from(family);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_label_value(v));
        out.push('"');
    }
    out.push('}');
    out
}

/// A registry of named metrics.
///
/// Names follow Prometheus conventions (`snake_case`, unit-suffixed, e.g.
/// `gc_handshake_latency_ns`). Registering the same name twice returns the
/// same underlying metric. Labelled series are registered through
/// [`Registry::counter_with`] (and friends); all series of one family
/// share a single `# TYPE` line in the exposition.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    help: Mutex<BTreeMap<String, String>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter named `name`, creating it at zero if needed.
    pub fn counter(&self, name: &str) -> Counter {
        self.counters
            .lock()
            .expect("registry lock")
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// The gauge named `name`, creating it at zero if needed.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauges
            .lock()
            .expect("registry lock")
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// The histogram named `name`, creating it empty if needed.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        Arc::clone(
            self.histograms
                .lock()
                .expect("registry lock")
                .entry(name.to_owned())
                .or_default(),
        )
    }

    /// The counter series of `family` with the given label set, creating
    /// it at zero if needed. Label values are escaped at registration, so
    /// arbitrary strings are safe.
    pub fn counter_with(&self, family: &str, labels: &[(&str, &str)]) -> Counter {
        self.counter(&labeled(family, labels))
    }

    /// The gauge series of `family` with the given label set.
    pub fn gauge_with(&self, family: &str, labels: &[(&str, &str)]) -> Gauge {
        self.gauge(&labeled(family, labels))
    }

    /// The histogram series of `family` with the given label set.
    pub fn histogram_with(&self, family: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.histogram(&labeled(family, labels))
    }

    /// Records help text for a metric family, rendered as a `# HELP` line
    /// (exactly once per family) in the text exposition.
    pub fn describe(&self, family: &str, help: &str) {
        self.help
            .lock()
            .expect("registry lock")
            .insert(family.to_owned(), help.to_owned());
    }

    /// The current value of the counter or gauge registered under `name`,
    /// *without* creating it. Counters win name collisions, matching the
    /// exposition's family-type priority. Used by liveness probes that
    /// watch a progress metric someone else registers.
    pub fn value_of(&self, name: &str) -> Option<i64> {
        if let Some(c) = self.counters.lock().expect("registry lock").get(name) {
            return Some(c.get() as i64);
        }
        self.gauges
            .lock()
            .expect("registry lock")
            .get(name)
            .map(Gauge::get)
    }

    fn rows(&self) -> Vec<(String, MetricType, Json)> {
        let mut rows = Vec::new();
        for (name, c) in self.counters.lock().expect("registry lock").iter() {
            rows.push((name.clone(), MetricType::Counter, Json::from(c.get())));
        }
        for (name, g) in self.gauges.lock().expect("registry lock").iter() {
            rows.push((name.clone(), MetricType::Gauge, Json::from(g.get())));
        }
        for (name, h) in self.histograms.lock().expect("registry lock").iter() {
            let summary = Json::obj()
                .set("count", h.count())
                .set("sum", h.sum())
                .set("mean", Json::Num(h.mean()))
                .set("p50", h.quantile(0.50))
                .set("p95", h.quantile(0.95))
                .set("p99", h.quantile(0.99))
                .set("max", h.max());
            rows.push((name.clone(), MetricType::Histogram, summary));
        }
        rows
    }

    /// The Prometheus text exposition (format version 0.0.4): samples
    /// grouped by family, each family introduced by its `# HELP` (when
    /// [`describe`](Registry::describe)d) and `# TYPE` line exactly once;
    /// histograms expose quantile-labelled summary samples and `_count` /
    /// `_sum` series. A name registered under two metric kinds keeps the
    /// first kind (counter > gauge > histogram); the conflicting series
    /// are dropped from the exposition rather than emitting a family with
    /// two types, which scrapers reject wholesale.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let help = self.help.lock().expect("registry lock").clone();
        let mut groups: BTreeMap<String, Vec<(String, MetricType, Json)>> = BTreeMap::new();
        for (name, ty, value) in self.rows() {
            groups
                .entry(family(&name).to_owned())
                .or_default()
                .push((name, ty, value));
        }
        let mut out = String::new();
        for (fam, rows) in groups {
            let fam_ty = rows[0].1;
            if let Some(h) = help.get(&fam) {
                let _ = writeln!(out, "# HELP {fam} {}", escape_help(h));
            }
            let kind = match fam_ty {
                MetricType::Counter => "counter",
                MetricType::Gauge => "gauge",
                MetricType::Histogram => "summary",
            };
            let _ = writeln!(out, "# TYPE {fam} {kind}");
            for (name, ty, value) in rows {
                if ty != fam_ty {
                    continue;
                }
                match ty {
                    MetricType::Counter | MetricType::Gauge => {
                        let _ = writeln!(out, "{name} {value}");
                    }
                    MetricType::Histogram => {
                        // The series may carry labels: splice `quantile`
                        // into the existing label set.
                        let labels = name
                            .split_once('{')
                            .map(|(_, rest)| rest.trim_end_matches('}'))
                            .unwrap_or("");
                        for q in ["p50", "p95", "p99"] {
                            let quantile = &q[1..];
                            let v = value.get(q).and_then(Json::as_f64).unwrap_or(0.0);
                            if labels.is_empty() {
                                let _ = writeln!(out, "{fam}{{quantile=\"0.{quantile}\"}} {v}");
                            } else {
                                let _ = writeln!(
                                    out,
                                    "{fam}{{{labels},quantile=\"0.{quantile}\"}} {v}"
                                );
                            }
                        }
                        let count = value.get("count").and_then(Json::as_f64).unwrap_or(0.0);
                        let sum = value.get("sum").and_then(Json::as_f64).unwrap_or(0.0);
                        if labels.is_empty() {
                            let _ = writeln!(out, "{fam}_count {count}\n{fam}_sum {sum}");
                        } else {
                            let _ = writeln!(
                                out,
                                "{fam}_count{{{labels}}} {count}\n{fam}_sum{{{labels}}} {sum}"
                            );
                        }
                    }
                }
            }
        }
        out
    }

    /// A JSON snapshot of every metric:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {name: summary}}`.
    pub fn snapshot(&self) -> Json {
        let mut counters = Json::obj();
        let mut gauges = Json::obj();
        let mut histograms = Json::obj();
        for (name, ty, value) in self.rows() {
            match ty {
                MetricType::Counter => counters = counters.set(&name, value),
                MetricType::Gauge => gauges = gauges.set(&name, value),
                MetricType::Histogram => histograms = histograms.set(&name, value),
            }
        }
        Json::obj()
            .set("counters", counters)
            .set("gauges", gauges)
            .set("histograms", histograms)
    }
}

/// A `BENCH_*.json`-compatible record: benchmark identity, free-form
/// parameters, and a metrics snapshot. The schema every bench bin emits:
///
/// ```json
/// {"bench": "<name>", "schema": "gc-bench/v1",
///  "params": {...}, "results": {...}, "metrics": <Registry::snapshot>}
/// ```
pub fn bench_record(
    bench: &str,
    params: &[(&str, Json)],
    results: &[(&str, Json)],
    metrics: Option<&Registry>,
) -> Json {
    let mut p = Json::obj();
    for (k, v) in params {
        p = p.set(k, v.clone());
    }
    let mut r = Json::obj();
    for (k, v) in results {
        r = r.set(k, v.clone());
    }
    Json::obj()
        .set("bench", bench)
        .set("schema", "gc-bench/v1")
        .set("params", p)
        .set("results", r)
        .set(
            "metrics",
            metrics.map(Registry::snapshot).unwrap_or(Json::Null),
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_share_state_by_name() {
        let r = Registry::new();
        let a = r.counter("x_total");
        let b = r.counter("x_total");
        a.add(3);
        b.inc();
        assert_eq!(r.counter("x_total").get(), 4);
        let g = r.gauge("depth");
        g.set(7);
        g.add(-2);
        assert_eq!(r.gauge("depth").get(), 5);
    }

    #[test]
    fn histogram_quantiles_match_sorted_vec_oracle() {
        // Deterministic skewed samples: many small, long tail.
        let mut samples: Vec<u64> = Vec::new();
        let mut x = 0x243f_6a88_85a3_08d3u64;
        for _ in 0..10_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            samples.push(match x % 100 {
                0..=79 => x % 1_000,            // bulk
                80..=97 => 1_000 + x % 100_000, // mid tail
                _ => 100_000 + x % 10_000_000,  // far tail
            });
        }
        let h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        assert_eq!(h.count(), sorted.len() as u64);
        assert_eq!(h.sum(), sorted.iter().sum::<u64>());
        assert_eq!(h.max(), *sorted.last().unwrap());
        for q in [0.5, 0.9, 0.95, 0.99, 1.0] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let oracle = sorted[rank - 1];
            let got = h.quantile(q);
            // Log-linear bucketing: ≤ 1/16 relative bucket width, so the
            // representative is within 12.5% of the true quantile (plus
            // the exact small-value buckets below SUBS).
            let tolerance = (oracle as f64 * 0.125).max(1.0);
            assert!(
                (got as f64 - oracle as f64).abs() <= tolerance,
                "q={q}: got {got}, oracle {oracle}"
            );
        }
    }

    #[test]
    fn histogram_exact_for_small_values() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 3, 3, 7, 15] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.5), 3);
        assert_eq!(h.quantile(1.0), 15);
        assert_eq!(h.max(), 15);
    }

    #[test]
    fn bucket_index_is_monotonic_and_invertible_within_width() {
        let mut last = 0usize;
        for exp in 0..63u32 {
            for v in [
                1u64 << exp,
                (1u64 << exp) + 1,
                (1u64 << exp).wrapping_mul(3) / 2,
            ] {
                let idx = Histogram::index(v);
                assert!(idx >= last || v < 16, "index monotone at {v}");
                last = last.max(idx);
                let rep = Histogram::representative(idx);
                let width = (v >> 4).max(1);
                assert!(
                    rep.abs_diff(v) <= width,
                    "representative {rep} too far from {v}"
                );
            }
        }
    }

    #[test]
    fn text_exposition_and_snapshot_have_all_metrics() {
        let r = Registry::new();
        r.counter("events_total").add(10);
        r.gauge("live").set(3);
        let h = r.histogram("latency_ns");
        for v in 1..=100 {
            h.record(v);
        }
        let text = r.render_text();
        assert!(text.contains("# TYPE events_total counter"));
        assert!(text.contains("events_total 10"));
        assert!(text.contains("# TYPE live gauge"));
        assert!(text.contains("latency_ns{quantile=\"0.50\"}"));
        assert!(text.contains("latency_ns_count 100"));
        let snap = r.snapshot();
        assert_eq!(
            snap.get("counters")
                .and_then(|c| c.get("events_total"))
                .and_then(Json::as_f64),
            Some(10.0)
        );
        let hist = snap.get("histograms").and_then(|h| h.get("latency_ns"));
        assert!(hist.and_then(|h| h.get("p99")).is_some());
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.counter_with("odd_total", &[("path", "a\\b\"c\nd")]).inc();
        let text = r.render_text();
        assert!(
            text.contains("odd_total{path=\"a\\\\b\\\"c\\nd\"} 1"),
            "got: {text}"
        );
        assert_eq!(escape_label_value("plain"), "plain");
    }

    #[test]
    fn type_and_help_once_per_family() {
        let r = Registry::new();
        r.describe("hits_total", "per-technique hits");
        r.counter_with("hits_total", &[("technique", "por")]).inc();
        r.counter_with("hits_total", &[("technique", "sym")]).add(2);
        let text = r.render_text();
        assert_eq!(text.matches("# TYPE hits_total counter").count(), 1);
        assert_eq!(
            text.matches("# HELP hits_total per-technique hits").count(),
            1
        );
        assert!(text.contains("hits_total{technique=\"por\"} 1"));
        assert!(text.contains("hits_total{technique=\"sym\"} 2"));
        // Family lines are contiguous: HELP, TYPE, then both series.
        let lines: Vec<&str> = text.lines().collect();
        let at = lines
            .iter()
            .position(|l| l.starts_with("# HELP hits_total"))
            .unwrap();
        assert!(lines[at + 1].starts_with("# TYPE hits_total"));
        assert!(lines[at + 2].starts_with("hits_total{"));
        assert!(lines[at + 3].starts_with("hits_total{"));
    }

    #[test]
    fn conflicting_kinds_keep_first_family_type() {
        let r = Registry::new();
        r.counter("mixed").add(4);
        r.gauge("mixed").set(9);
        let text = r.render_text();
        assert_eq!(text.matches("# TYPE mixed").count(), 1);
        assert!(text.contains("# TYPE mixed counter"));
        assert!(text.contains("mixed 4"));
        assert!(!text.contains("mixed 9"));
        // value_of follows the same priority.
        assert_eq!(r.value_of("mixed"), Some(4));
        assert_eq!(r.value_of("absent"), None);
    }

    #[test]
    fn labelled_histograms_splice_quantile_labels() {
        let r = Registry::new();
        let h = r.histogram_with("stage_ns", &[("stage", "mark")]);
        for v in 1..=50 {
            h.record(v);
        }
        let text = r.render_text();
        assert!(text.contains("# TYPE stage_ns summary"));
        assert!(text.contains("stage_ns{stage=\"mark\",quantile=\"0.99\"}"));
        assert!(text.contains("stage_ns_count{stage=\"mark\"} 50"));
    }

    #[test]
    fn bench_record_shape() {
        let r = Registry::new();
        r.counter("ops_total").add(5);
        let rec = bench_record(
            "demo",
            &[("threads", Json::from(4u64))],
            &[("elapsed_s", Json::Num(1.25))],
            Some(&r),
        );
        assert_eq!(rec.get("bench").and_then(Json::as_str), Some("demo"));
        assert_eq!(
            rec.get("schema").and_then(Json::as_str),
            Some("gc-bench/v1")
        );
        assert!(rec.get("metrics").unwrap().get("counters").is_some());
        // The record is valid JSON end to end.
        assert_eq!(Json::parse(&rec.to_string()).unwrap(), rec);
    }
}
