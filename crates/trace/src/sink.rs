//! Background trace drain: stream the per-thread rings to a JSONL file
//! *during* the run.
//!
//! The rings are fixed-capacity and drop on overflow, so a long torture or
//! serve run that only drains at the end loses its early window — exactly
//! the part that explains how an incident started. [`TraceSink::spawn_drain`]
//! fixes that (ROADMAP: "close the gc-trace loop"): a background thread
//! drains every track on an interval and appends the events to a JSONL file
//! (the [`crate::chrome::event_json`] record shape, one object per line).
//!
//! Drops that happen anyway — the drain interval was too long for the event
//! rate — are *reported honestly*: the file ends with a footer line
//! carrying the lifetime overflow count summed across tracks, and
//! [`TraceSink::finish`] returns the same numbers as a [`SinkSummary`].
//!
//! # Sole-drainer requirement
//!
//! [`Tracer::drain`] is destructive and process-global: whoever calls it
//! takes the buffered events. While a sink is running it must be the *only*
//! drainer — a workload that also calls `drain()` itself will race the sink
//! and each will see a disjoint subset. Drain-at-end consumers (e.g. a
//! final Chrome export) should `finish()` the sink first and read the JSONL
//! file instead.

use std::collections::HashMap;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::chrome::event_json;
use crate::json::Json;
use crate::tracer::Tracer;

/// What a finished sink did, also written as the file's footer line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SinkSummary {
    /// Events written to the file (excluding the footer).
    pub events: u64,
    /// Events lost to ring overflow across every track's lifetime — honest
    /// accounting: these were *never seen* by any drain, this one included.
    pub dropped: u64,
    /// Drain passes performed (including the final flush-on-stop pass).
    pub drains: u64,
}

/// A background thread streaming the tracer's rings to a JSONL file.
///
/// Create with [`TraceSink::spawn_drain`]; stop with [`TraceSink::finish`]
/// (returns the [`SinkSummary`] and any deferred I/O error) or by dropping
/// the sink (flush-on-drop, errors swallowed).
#[derive(Debug)]
pub struct TraceSink {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<io::Result<SinkSummary>>>,
}

impl TraceSink {
    /// Spawns a drain thread for the process-global [`Tracer`], appending
    /// each drained event to `path` as one JSON object per line, every
    /// `interval`. The file is created (truncated) eagerly so setup errors
    /// surface here rather than on the background thread.
    ///
    /// # Errors
    ///
    /// Any error creating the output file.
    pub fn spawn_drain<P: AsRef<Path>>(path: P, interval: Duration) -> io::Result<TraceSink> {
        TraceSink::spawn_drain_on(Tracer::global(), path, interval)
    }

    /// [`TraceSink::spawn_drain`] against an explicit tracer (the tests'
    /// isolation hook — production code has only the global tracer).
    pub(crate) fn spawn_drain_on<P: AsRef<Path>>(
        tracer: &'static Tracer,
        path: P,
        interval: Duration,
    ) -> io::Result<TraceSink> {
        let mut out = BufWriter::new(File::create(path)?);
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("gc-trace-sink".into())
            .spawn(move || {
                let mut summary = SinkSummary::default();
                // Lifetime overflow per track id: `TrackDump::dropped` is
                // cumulative, so keep the latest observation and sum at the
                // end rather than adding deltas (a track draining clean in
                // between must not zero its history).
                let mut dropped_by_track: HashMap<u32, u64> = HashMap::new();
                while !stop_flag.load(Ordering::Acquire) {
                    // Sleep in short steps so `finish()` never waits a full
                    // interval for the thread to notice the stop flag.
                    let mut slept = Duration::ZERO;
                    while slept < interval && !stop_flag.load(Ordering::Acquire) {
                        let step = (interval - slept).min(Duration::from_millis(10));
                        std::thread::sleep(step);
                        slept += step;
                    }
                    drain_pass(tracer, &mut out, &mut dropped_by_track, &mut summary)?;
                }
                // Final pass: events emitted after the last interval tick
                // still land in the file (flush-on-stop, also the
                // flush-on-drop path).
                drain_pass(tracer, &mut out, &mut dropped_by_track, &mut summary)?;
                summary.dropped = dropped_by_track.values().sum();
                writeln!(
                    out,
                    "{}",
                    Json::obj()
                        .set("trace_footer", true)
                        .set("events", summary.events)
                        .set("dropped", summary.dropped)
                        .set("drains", summary.drains)
                )?;
                out.flush()?;
                Ok(summary)
            })
            .expect("spawn trace sink thread");
        Ok(TraceSink {
            stop,
            handle: Some(handle),
        })
    }

    /// Stops the drain thread, flushes the file (final drain + footer), and
    /// returns what was written.
    ///
    /// # Errors
    ///
    /// Any I/O error the background thread hit — deferred to here so the
    /// hot path never blocks on error handling.
    pub fn finish(mut self) -> io::Result<SinkSummary> {
        self.stop.store(true, Ordering::Release);
        match self.handle.take().expect("sink joined twice").join() {
            Ok(r) => r,
            Err(_) => Err(io::Error::other("trace sink thread panicked")),
        }
    }
}

impl Drop for TraceSink {
    fn drop(&mut self) {
        // Flush-on-drop: a sink abandoned without `finish()` still stops
        // cleanly and writes its footer; errors have nowhere to go here.
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::Release);
            let _ = handle.join();
        }
    }
}

/// One drain: append every buffered event to the file, update the
/// per-track overflow observations.
fn drain_pass(
    tracer: &Tracer,
    out: &mut BufWriter<File>,
    dropped_by_track: &mut HashMap<u32, u64>,
    summary: &mut SinkSummary,
) -> io::Result<()> {
    for dump in tracer.drain() {
        dropped_by_track.insert(dump.id, dump.dropped);
        for e in &dump.events {
            writeln!(out, "{}", event_json(dump.id, &dump.name, e))?;
            summary.events += 1;
        }
    }
    summary.drains += 1;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    /// A leaked private tracer: these tests run a destructive background
    /// drainer, which must never race the other tests' drains of the
    /// global tracer.
    fn private_tracer() -> &'static Tracer {
        Box::leak(Box::new(Tracer::new()))
    }

    #[test]
    fn sink_streams_events_and_reports_footer() {
        let _g = crate::tracer::test_guard();
        let t = private_tracer();
        let dir = std::env::temp_dir().join("gc-trace-sink-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("stream-{}.jsonl", std::process::id()));
        let sink =
            TraceSink::spawn_drain_on(t, &path, Duration::from_millis(5)).expect("spawn sink");
        crate::enable();
        std::thread::scope(|s| {
            s.spawn(|| {
                // Fresh thread: its track registers with the private
                // tracer, not the global one.
                for i in 0..100 {
                    t.record(EventKind::Instant { id: 700, value: i });
                }
            });
        });
        // Let at least one interval drain happen mid-run.
        std::thread::sleep(Duration::from_millis(20));
        std::thread::scope(|s| {
            s.spawn(|| {
                for i in 100..120 {
                    t.record(EventKind::Instant { id: 700, value: i });
                }
            });
        });
        crate::disable();
        let summary = sink.finish().expect("clean finish");
        assert_eq!(summary.events, 120, "every event reached the file");
        assert_eq!(summary.dropped, 0);
        assert!(
            summary.drains >= 2,
            "drained during the run, not just at stop"
        );

        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 121, "120 events + footer");
        for line in &lines[..120] {
            let v = Json::parse(line).expect("valid JSONL");
            assert_eq!(v.get("event").and_then(Json::as_str), Some("instant"));
        }
        let footer = Json::parse(lines[120]).expect("valid footer");
        assert_eq!(footer.get("trace_footer"), Some(&Json::Bool(true)));
        assert_eq!(footer.get("events").and_then(Json::as_f64), Some(120.0));
        assert_eq!(footer.get("dropped").and_then(Json::as_f64), Some(0.0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sink_reports_overflow_honestly() {
        let _g = crate::tracer::test_guard();
        let t = private_tracer();
        t.set_ring_capacity(8);
        let dir = std::env::temp_dir().join("gc-trace-sink-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("overflow-{}.jsonl", std::process::id()));
        // A long interval: the burst below overflows the 8-slot ring long
        // before the first drain.
        let sink =
            TraceSink::spawn_drain_on(t, &path, Duration::from_secs(60)).expect("spawn sink");
        crate::enable();
        std::thread::scope(|s| {
            s.spawn(|| {
                for i in 0..64 {
                    t.record(EventKind::Instant { id: 701, value: i });
                }
            });
        });
        crate::disable();
        let summary = sink.finish().expect("clean finish");
        assert!(summary.dropped > 0, "the overflow was not hidden");
        assert_eq!(
            summary.events + summary.dropped,
            64,
            "written + dropped = emitted"
        );
        let text = std::fs::read_to_string(&path).unwrap();
        let footer = Json::parse(text.lines().last().unwrap()).unwrap();
        assert_eq!(
            footer.get("dropped").and_then(Json::as_f64),
            Some(summary.dropped as f64)
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn drop_flushes_without_finish() {
        let _g = crate::tracer::test_guard();
        let t = private_tracer();
        let dir = std::env::temp_dir().join("gc-trace-sink-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("drop-{}.jsonl", std::process::id()));
        {
            let _sink =
                TraceSink::spawn_drain_on(t, &path, Duration::from_secs(60)).expect("spawn sink");
            crate::enable();
            std::thread::scope(|s| {
                s.spawn(|| {
                    t.record(EventKind::Instant { id: 702, value: 1 });
                });
            });
            crate::disable();
            // Dropped here: flush-on-drop must still write event + footer.
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2, "one event + footer");
        assert!(text.lines().last().unwrap().contains("trace_footer"));
        std::fs::remove_file(&path).ok();
    }
}
