//! The "dirty store buffer" forward dataflow.
//!
//! For every program point the analysis computes the set of abstract
//! locations that *may* still sit unflushed in the issuing thread's store
//! buffer when control reaches that point. The domain per point is a map
//! from location to a witness node — the earliest (lowest-id) store that
//! could have put the write there — so fence suggestions can point at a
//! concrete command.
//!
//! Transfer function over [`MemEffect`](cimp::MemEffect):
//!
//! * `Store(x)`   — adds `x` (the write is enqueued, not yet visible);
//! * `Fence` / `LockedRmw(_)` — clears the set (the buffer drains);
//! * `Load(_)` / `Pure` / unannotated — identity.
//!
//! The join over predecessors is set union (may-analysis); witness ids are
//! joined by minimum so the fixpoint is deterministic. Termination:
//! the domain is finite (locations named by annotations) and transfer
//! functions are monotone under the subset order.

use std::collections::{BTreeMap, VecDeque};

use cimp::{AbsLoc, MemEffect};

use crate::cfg::{Cfg, NodeId};

/// May-buffered write-set at a program point: location → witness store node.
pub type BufferSet = BTreeMap<AbsLoc, NodeId>;

/// Applies node `n`'s transfer function to the incoming set.
fn transfer(cfg: &Cfg, n: NodeId, mut set: BufferSet) -> BufferSet {
    match cfg.node(n).effect {
        Some(MemEffect::Store(x)) => {
            set.entry(x).or_insert(n);
        }
        Some(MemEffect::Fence) | Some(MemEffect::LockedRmw(_)) => set.clear(),
        Some(MemEffect::Load(_)) | Some(MemEffect::Pure) | None => {}
    }
    set
}

/// Computes, for every node, the may-buffered write-set *on entry to* the
/// node (before its own effect applies). The entry node starts empty:
/// threads begin with drained buffers.
pub fn may_buffered(cfg: &Cfg) -> Vec<BufferSet> {
    let mut input: Vec<BufferSet> = cfg.node_ids().map(|_| BufferSet::new()).collect();
    let mut work: VecDeque<NodeId> = cfg.node_ids().collect();
    while let Some(n) = work.pop_front() {
        let out = transfer(cfg, n, input[n].clone());
        for s in cfg.succs(n) {
            let mut changed = false;
            for (&loc, &witness) in &out {
                match input[s].get(&loc) {
                    Some(&w) if w <= witness => {}
                    _ => {
                        input[s].insert(loc, witness);
                        changed = true;
                    }
                }
            }
            if changed && !work.contains(&s) {
                work.push_back(s);
            }
        }
    }
    input
}

#[cfg(test)]
mod tests {
    use super::*;
    use cimp::Program;

    type P = Program<u32, u8, u8>;

    fn atom(p: &mut P, label: cimp::Label, e: MemEffect) -> cimp::ComId {
        let id = p.skip(label);
        p.annotate(id, e)
    }

    #[test]
    fn store_buffers_until_fence() {
        let mut p = P::new();
        let st = atom(&mut p, "st", MemEffect::Store("x"));
        let ld = atom(&mut p, "ld", MemEffect::Load("y"));
        let fence = atom(&mut p, "fence", MemEffect::Fence);
        let after = atom(&mut p, "after", MemEffect::Load("y"));
        let s = p.seq([st, ld, fence, after]);
        p.set_entry(s);
        let cfg = Cfg::from_program("t", &p);
        let buf = may_buffered(&cfg);
        let n_st = cfg.node_of_com(st).unwrap();
        let n_ld = cfg.node_of_com(ld).unwrap();
        let n_after = cfg.node_of_com(after).unwrap();
        assert!(buf[n_st].is_empty(), "nothing buffered before the store");
        assert_eq!(
            buf[n_ld].get("x"),
            Some(&n_st),
            "store still buffered at load"
        );
        assert!(buf[n_after].is_empty(), "fence drained the buffer");
    }

    #[test]
    fn locked_rmw_drains_like_a_fence() {
        let mut p = P::new();
        let st = atom(&mut p, "st", MemEffect::Store("x"));
        let cas = atom(&mut p, "cas", MemEffect::LockedRmw("z"));
        let ld = atom(&mut p, "ld", MemEffect::Load("y"));
        let s = p.seq([st, cas, ld]);
        p.set_entry(s);
        let cfg = Cfg::from_program("t", &p);
        let buf = may_buffered(&cfg);
        assert!(buf[cfg.node_of_com(ld).unwrap()].is_empty());
    }

    #[test]
    fn loop_carries_buffered_write_around_back_edge() {
        // LOOP { st x; ld y } — on the second iteration the load sees x
        // possibly buffered from the previous one.
        let mut p = P::new();
        let st = atom(&mut p, "st", MemEffect::Store("x"));
        let ld = atom(&mut p, "ld", MemEffect::Load("y"));
        let body = p.seq([st, ld]);
        let l = p.loop_forever(body);
        p.set_entry(l);
        let cfg = Cfg::from_program("t", &p);
        let buf = may_buffered(&cfg);
        let n_st = cfg.node_of_com(st).unwrap();
        assert_eq!(
            buf[n_st].get("x"),
            Some(&n_st),
            "the back edge feeds the store's own output into its input"
        );
    }

    #[test]
    fn join_is_union_over_branches() {
        // if _ { st x } else { st y }; ld z — both x and y may be buffered
        // at the load.
        let mut p = P::new();
        let sx = atom(&mut p, "sx", MemEffect::Store("x"));
        let sy = atom(&mut p, "sy", MemEffect::Store("y"));
        let i = p.if_else(|_| true, sx, sy);
        let ld = atom(&mut p, "ld", MemEffect::Load("z"));
        let s = p.seq([i, ld]);
        p.set_entry(s);
        let cfg = Cfg::from_program("t", &p);
        let buf = may_buffered(&cfg);
        let at_ld = &buf[cfg.node_of_com(ld).unwrap()];
        assert!(at_ld.contains_key("x") && at_ld.contains_key("y"));
    }
}
