//! Running the full analysis over the GC model.
//!
//! Builds one CFG per process of `GC ∥ M₁ ∥ … ∥ Mₙ ∥ Sys` from the same
//! [`ModelConfig`] the model checker uses, runs every lint plus the
//! cross-thread store-buffer hazard search, and (via [`precheck`]) packages
//! the whole thing as an [`mc::Precheck`] so the checker can refuse to
//! explore a model the analyzer already rejects.

use std::sync::Arc;

use gc_model::gc::gc_program;
use gc_model::mark::regions::{FA, FIELD, PHASE};
use gc_model::mutator::mutator_program;
use gc_model::sys::sys_program;
use gc_model::{ModelConfig, Prog};

use crate::cfg::Cfg;
use crate::diag::{filter_and_sort, Diagnostic};
use crate::hazard::sb_hazards;
use crate::lint;

/// The label of the collector-side handshake initiation; `A002` demands
/// one on every cycle through a control-variable write.
pub const HANDSHAKE_LABEL: &str = "gc-hs-begin";

/// The write-barrier labels every mutator heap store must be dominated by
/// (`A003`): the deletion barrier's initial load and the insertion
/// barrier's priming step.
pub const BARRIER_LABELS: &[&str] = &["mut-store-begin", "mut-store-prime-insertion"];

/// One process of the model, with its program and CFG.
pub struct ProcessCfg {
    /// Display name (`"gc"`, `"mutator-0"`, …, `"sys"`).
    pub name: String,
    /// The CIMP program the CFG was built from.
    pub program: Prog,
    /// Its control-flow graph.
    pub cfg: Cfg,
}

/// Builds the CFG of every process in the model described by `cfg`.
pub fn model_cfgs(cfg: &ModelConfig) -> Vec<ProcessCfg> {
    let mut out = Vec::new();
    let gc = gc_program(cfg);
    out.push(ProcessCfg {
        cfg: Cfg::from_program("gc", &gc),
        name: "gc".to_string(),
        program: gc,
    });
    for m in 0..cfg.mutators {
        let name = format!("mutator-{m}");
        let p = mutator_program(cfg, m);
        out.push(ProcessCfg {
            cfg: Cfg::from_program(name.clone(), &p),
            name,
            program: p,
        });
    }
    let sys = sys_program(cfg);
    out.push(ProcessCfg {
        cfg: Cfg::from_program("sys", &sys),
        name: "sys".to_string(),
        program: sys,
    });
    out
}

/// Runs the full lint suite and hazard search over the model, dropping any
/// codes listed in `allow`. The returned list is sorted and deduplicated;
/// empty means the model is clean.
pub fn analyze_model_with(cfg: &ModelConfig, allow: &[String]) -> Vec<Diagnostic> {
    let procs = model_cfgs(cfg);
    let mut diags = Vec::new();
    for p in &procs {
        diags.extend(lint::unreachable_labels(&p.program, &p.cfg));
        diags.extend(lint::unannotated_atomics(&p.cfg));
        if p.name == "gc" {
            diags.extend(lint::handshake_free_control_cycle(
                &p.cfg,
                HANDSHAKE_LABEL,
                &[FA, gc_model::mark::regions::FM, PHASE],
            ));
        }
        if p.name.starts_with("mutator-") {
            diags.extend(lint::store_barrier_dominance(&p.cfg, FIELD, BARRIER_LABELS));
        }
    }
    // The hazard search is cross-thread: the sys process mediates memory
    // via rendezvous and issues no TSO accesses of its own (all its
    // commands are Pure), so including it is harmless.
    let threads: Vec<(String, Cfg)> = procs
        .iter()
        .map(|p| (p.name.clone(), p.cfg.clone()))
        .collect();
    diags.extend(sb_hazards(&threads));
    filter_and_sort(diags, allow)
}

/// [`analyze_model_with`] with nothing suppressed.
pub fn analyze_model(cfg: &ModelConfig) -> Vec<Diagnostic> {
    analyze_model_with(cfg, &[])
}

/// Packages the analysis as an [`mc::Precheck`] for
/// [`CheckerConfig::static_precheck`](mc::CheckerConfig): the checker runs
/// it before exploring and returns
/// [`Outcome::PrecheckFailed`](mc::Outcome::PrecheckFailed) if any
/// diagnostic (not in `allow`) fires.
pub fn precheck(cfg: ModelConfig, allow: Vec<String>) -> mc::Precheck {
    Arc::new(move || {
        analyze_model_with(&cfg, &allow)
            .iter()
            .map(Diagnostic::to_precheck)
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{A003, A005};

    #[test]
    fn faithful_model_is_clean() {
        let cfg = ModelConfig::default();
        let diags = analyze_model(&cfg);
        assert!(
            diags.is_empty(),
            "faithful model should be clean: {diags:?}"
        );
    }

    #[test]
    fn fence_ablation_produces_sb_hazard() {
        let cfg = ModelConfig {
            handshake_fences: false,
            ..ModelConfig::default()
        };
        let diags = analyze_model(&cfg);
        assert!(
            diags.iter().any(|d| d.code == A005),
            "missing handshake fences must surface a store-buffer hazard: {diags:?}"
        );
    }

    #[test]
    fn barrier_ablations_fail_dominance() {
        for (name, cfg) in [
            (
                "deletion",
                ModelConfig {
                    deletion_barrier: false,
                    ..ModelConfig::default()
                },
            ),
            (
                "insertion",
                ModelConfig {
                    insertion_barrier: false,
                    ..ModelConfig::default()
                },
            ),
        ] {
            let diags = analyze_model(&cfg);
            assert!(
                diags.iter().any(|d| d.code == A003),
                "{name}-barrier ablation must fail A003: {diags:?}"
            );
        }
    }

    #[test]
    fn racy_mark_produces_sb_hazard() {
        let cfg = ModelConfig {
            mark_cas: false,
            ..ModelConfig::default()
        };
        let diags = analyze_model(&cfg);
        assert!(
            diags.iter().any(|d| d.code == A005),
            "racy marking loses the unlock fence, so a hazard must appear: {diags:?}"
        );
    }

    #[test]
    fn suppression_silences_a_code() {
        let cfg = ModelConfig {
            mark_cas: false,
            ..ModelConfig::default()
        };
        let codes: Vec<_> = analyze_model(&cfg).iter().map(|d| d.code).collect();
        assert!(codes.contains(&A005));
        let remaining = analyze_model_with(&cfg, &["A005".to_string()]);
        assert!(remaining.iter().all(|d| d.code != A005));
    }

    #[test]
    fn precheck_mirrors_the_analysis() {
        let clean = precheck(ModelConfig::default(), Vec::new());
        assert!(clean().is_empty());
        let dirty = precheck(
            ModelConfig {
                mark_cas: false,
                ..ModelConfig::default()
            },
            Vec::new(),
        );
        assert!(!dirty().is_empty());
    }
}
