//! Control-flow graphs over the CIMP `Com` AST.
//!
//! The frame-stack semantics in `cimp::step` resolves structural commands
//! (`Seq`, `If`, `While`, `Loop`, `Choose`) without producing transitions,
//! so the CFG gives each *atomic* command (`LocalOp`, `Request`,
//! `Response`) a node of its own, carrying its label and
//! [`MemEffect`](cimp::MemEffect) annotation. Structural branch/join points
//! (`If`/`While`/`Loop`/`Choose`) get lightweight `Branch` nodes: they
//! never execute, but they keep the edge relation small and make loops and
//! dominators easy to read in the dot dump.
//!
//! Conditions are opaque Rust closures, so both arms of every branch are
//! considered reachable: the graph over-approximates control flow, which is
//! the right direction for the may-buffered-write analysis built on top.

use std::collections::{BTreeSet, HashMap};
use std::fmt::Write as _;

use cimp::{Com, ComId, Label, MemEffect, Program};

/// Index of a node within its [`Cfg`].
pub type NodeId = usize;

/// What a CFG node stands for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// The unique virtual entry node.
    Entry,
    /// The unique virtual exit node (unreachable for non-terminating
    /// programs such as the collector's `LOOP`).
    Exit,
    /// An atomic command — the only nodes that execute.
    Atomic,
    /// A structural branch/join point (`If`, `While`, `Loop`, `Choose`).
    Branch,
}

/// One CFG node.
#[derive(Debug, Clone)]
pub struct Node {
    /// The node's role.
    pub kind: NodeKind,
    /// The arena command this node was built from (absent for entry/exit).
    pub com: Option<ComId>,
    /// The command's label (atomic nodes), or the structural kind
    /// (`"if"`, `"while"`, `"loop"`, `"choose"`) for branch nodes.
    pub label: Option<Label>,
    /// The command's memory-effect annotation, if any.
    pub effect: Option<MemEffect>,
}

/// A control-flow graph for one CIMP process.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Display name of the process (`"gc"`, `"mutator-0"`, …).
    pub name: String,
    nodes: Vec<Node>,
    succs: Vec<BTreeSet<NodeId>>,
    preds: Vec<BTreeSet<NodeId>>,
    entry: NodeId,
    exit: NodeId,
    by_com: HashMap<ComId, NodeId>,
}

struct Builder<'p, S, Req, Resp> {
    p: &'p Program<S, Req, Resp>,
    cfg: Cfg,
    /// Memoised `(entry points, exit frontier)` per structural subtree, so
    /// shared sub-programs are walked once.
    shapes: HashMap<ComId, (Vec<NodeId>, Vec<NodeId>)>,
}

impl<'p, S, Req, Resp> Builder<'p, S, Req, Resp> {
    fn add(&mut self, node: Node) -> NodeId {
        let id = self.cfg.nodes.len();
        self.cfg.nodes.push(node);
        self.cfg.succs.push(BTreeSet::new());
        self.cfg.preds.push(BTreeSet::new());
        id
    }

    fn edge(&mut self, from: NodeId, to: NodeId) {
        self.cfg.succs[from].insert(to);
        self.cfg.preds[to].insert(from);
    }

    fn node_for(&mut self, com: ComId, kind: NodeKind, label: Label) -> NodeId {
        if let Some(&n) = self.cfg.by_com.get(&com) {
            return n;
        }
        let n = self.add(Node {
            kind,
            com: Some(com),
            label: Some(label),
            effect: self.p.effect(com),
        });
        self.cfg.by_com.insert(com, n);
        n
    }

    /// Computes the shape of the subtree rooted at `id`: the nodes an
    /// incoming edge should target, and the nodes control leaves through.
    /// An empty exit frontier means the subtree never terminates (`Loop`).
    fn shape(&mut self, id: ComId) -> (Vec<NodeId>, Vec<NodeId>) {
        if let Some(s) = self.shapes.get(&id) {
            return s.clone();
        }
        let result = match self.p.com(id) {
            Com::LocalOp { label, .. }
            | Com::Request { label, .. }
            | Com::Response { label, .. } => {
                let label = *label;
                let n = self.node_for(id, NodeKind::Atomic, label);
                (vec![n], vec![n])
            }
            Com::Seq(a, b) => {
                let (a, b) = (*a, *b);
                let (ea, xa) = self.shape(a);
                let (eb, xb) = self.shape(b);
                for x in &xa {
                    for e in &eb {
                        self.edge(*x, *e);
                    }
                }
                (ea, xb)
            }
            Com::If { then_c, else_c, .. } => {
                let (then_c, else_c) = (*then_c, *else_c);
                let n = self.node_for(id, NodeKind::Branch, "if");
                let (et, xt) = self.shape(then_c);
                for e in et {
                    self.edge(n, e);
                }
                let mut exits = xt;
                match else_c {
                    Some(ec) => {
                        let (ee, xe) = self.shape(ec);
                        for e in ee {
                            self.edge(n, e);
                        }
                        exits.extend(xe);
                    }
                    // A missing else-arm falls through structurally: the
                    // branch node itself is an exit of the subtree.
                    None => exits.push(n),
                }
                (vec![n], exits)
            }
            Com::While { body, .. } => {
                let body = *body;
                let n = self.node_for(id, NodeKind::Branch, "while");
                let (eb, xb) = self.shape(body);
                for e in eb {
                    self.edge(n, e);
                }
                for x in xb {
                    self.edge(x, n); // back edge
                }
                (vec![n], vec![n])
            }
            Com::Loop(body) => {
                let body = *body;
                let n = self.node_for(id, NodeKind::Branch, "loop");
                let (eb, xb) = self.shape(body);
                for e in eb {
                    self.edge(n, e);
                }
                for x in xb {
                    self.edge(x, n); // back edge
                }
                (vec![n], Vec::new()) // LOOP never terminates
            }
            Com::Choose(branches) => {
                let branches = branches.clone();
                let n = self.node_for(id, NodeKind::Branch, "choose");
                let mut exits = Vec::new();
                for b in branches {
                    let (eb, xb) = self.shape(b);
                    for e in eb {
                        self.edge(n, e);
                    }
                    exits.extend(xb);
                }
                (vec![n], exits)
            }
        };
        self.shapes.insert(id, result.clone());
        result
    }
}

impl Cfg {
    /// Builds the CFG of `p`, rooted at its entry point.
    ///
    /// # Panics
    ///
    /// Panics if `p` has no entry point.
    pub fn from_program<S, Req, Resp>(name: impl Into<String>, p: &Program<S, Req, Resp>) -> Cfg {
        let mut b = Builder {
            p,
            cfg: Cfg {
                name: name.into(),
                nodes: Vec::new(),
                succs: Vec::new(),
                preds: Vec::new(),
                entry: 0,
                exit: 0,
                by_com: HashMap::new(),
            },
            shapes: HashMap::new(),
        };
        let entry = b.add(Node {
            kind: NodeKind::Entry,
            com: None,
            label: None,
            effect: None,
        });
        b.cfg.entry = entry;
        let (starts, exits) = b.shape(p.entry());
        for s in starts {
            b.edge(entry, s);
        }
        let exit = b.add(Node {
            kind: NodeKind::Exit,
            com: None,
            label: None,
            effect: None,
        });
        b.cfg.exit = exit;
        for x in exits {
            b.edge(x, exit);
        }
        b.cfg
    }

    /// The virtual entry node.
    pub fn entry(&self) -> NodeId {
        self.entry
    }

    /// The virtual exit node.
    pub fn exit(&self) -> NodeId {
        self.exit
    }

    /// Number of nodes (including entry/exit).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes (never true for built graphs).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node at `n`.
    pub fn node(&self, n: NodeId) -> &Node {
        &self.nodes[n]
    }

    /// Successors of `n`.
    pub fn succs(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.succs[n].iter().copied()
    }

    /// Predecessors of `n`.
    pub fn preds(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.preds[n].iter().copied()
    }

    /// All node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        0..self.nodes.len()
    }

    /// The node built for arena command `com`, if it is reachable.
    pub fn node_of_com(&self, com: ComId) -> Option<NodeId> {
        self.by_com.get(&com).copied()
    }

    /// Nodes that execute (atomic commands), in id order.
    pub fn atomic_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_ids()
            .filter(|&n| self.nodes[n].kind == NodeKind::Atomic)
    }

    /// The display label of `n` for reports: the command label, the
    /// structural kind, or `entry`/`exit`.
    pub fn display_label(&self, n: NodeId) -> &str {
        match self.nodes[n].kind {
            NodeKind::Entry => "entry",
            NodeKind::Exit => "exit",
            _ => self.nodes[n].label.unwrap_or("?"),
        }
    }

    /// Set of nodes reachable from the entry (always the whole graph by
    /// construction, except possibly the exit node).
    pub fn reachable(&self) -> BTreeSet<NodeId> {
        let mut seen = BTreeSet::new();
        let mut stack = vec![self.entry];
        while let Some(n) = stack.pop() {
            if seen.insert(n) {
                stack.extend(self.succs(n));
            }
        }
        seen
    }

    /// Dominator sets: `dom[n]` is the set of nodes on *every* path from
    /// the entry to `n` (including `n`). Computed by the classic iterative
    /// intersection, which is plenty for graphs of this size.
    pub fn dominators(&self) -> Vec<BTreeSet<NodeId>> {
        let all: BTreeSet<NodeId> = self.node_ids().collect();
        let mut dom: Vec<BTreeSet<NodeId>> = self.node_ids().map(|_| all.clone()).collect();
        dom[self.entry] = BTreeSet::from([self.entry]);
        let mut changed = true;
        while changed {
            changed = false;
            for n in self.node_ids() {
                if n == self.entry {
                    continue;
                }
                let mut meet: Option<BTreeSet<NodeId>> = None;
                for p in self.preds(n) {
                    meet = Some(match meet {
                        None => dom[p].clone(),
                        Some(m) => m.intersection(&dom[p]).copied().collect(),
                    });
                }
                let mut new = meet.unwrap_or_default();
                new.insert(n);
                if new != dom[n] {
                    dom[n] = new;
                    changed = true;
                }
            }
        }
        dom
    }

    /// Whether `from` can reach `to` along edges whose *source* node
    /// satisfies `through` (used by the handshake lint: delete the
    /// handshake nodes, then test for cycles).
    pub fn reaches_through(
        &self,
        from: NodeId,
        to: NodeId,
        through: impl Fn(NodeId) -> bool,
    ) -> bool {
        let mut seen = BTreeSet::new();
        let mut stack: Vec<NodeId> = if through(from) {
            self.succs(from).collect()
        } else {
            return false;
        };
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if seen.insert(n) && through(n) {
                stack.extend(self.succs(n));
            }
        }
        false
    }

    /// Graphviz dot rendering: atomic nodes as boxes labelled
    /// `label\n<effect>`, branch nodes as small diamonds.
    pub fn to_dot(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}\" {{", self.name);
        let _ = writeln!(out, "  rankdir=TB;");
        for n in self.node_ids() {
            let node = &self.nodes[n];
            let (shape, label) = match node.kind {
                NodeKind::Entry => ("circle", "entry".to_string()),
                NodeKind::Exit => ("doublecircle", "exit".to_string()),
                NodeKind::Branch => ("diamond", node.label.unwrap_or("?").to_string()),
                NodeKind::Atomic => {
                    let effect = match node.effect {
                        Some(e) => e.to_string(),
                        None => "unannotated".to_string(),
                    };
                    ("box", format!("{}\\n{}", node.label.unwrap_or("?"), effect))
                }
            };
            let _ = writeln!(out, "  n{n} [shape={shape}, label=\"{label}\"];");
        }
        for n in self.node_ids() {
            for s in self.succs(n) {
                let _ = writeln!(out, "  n{n} -> n{s};");
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type P = Program<u32, u8, u8>;

    fn annotated(p: &mut P, label: Label, e: MemEffect) -> ComId {
        let id = p.skip(label);
        p.annotate(id, e)
    }

    #[test]
    fn straight_line_cfg() {
        let mut p = P::new();
        let a = annotated(&mut p, "a", MemEffect::Store("x"));
        let b = annotated(&mut p, "b", MemEffect::Load("y"));
        let s = p.seq([a, b]);
        p.set_entry(s);
        let cfg = Cfg::from_program("t", &p);
        // entry, a, b, exit
        assert_eq!(cfg.len(), 4);
        let na = cfg.node_of_com(a).unwrap();
        let nb = cfg.node_of_com(b).unwrap();
        assert_eq!(cfg.succs(cfg.entry()).collect::<Vec<_>>(), vec![na]);
        assert_eq!(cfg.succs(na).collect::<Vec<_>>(), vec![nb]);
        assert_eq!(cfg.succs(nb).collect::<Vec<_>>(), vec![cfg.exit()]);
        assert_eq!(cfg.node(na).effect, Some(MemEffect::Store("x")));
    }

    #[test]
    fn if_without_else_falls_through() {
        let mut p = P::new();
        let t = annotated(&mut p, "then", MemEffect::Fence);
        let i = p.if_then(|_| true, t);
        let after = annotated(&mut p, "after", MemEffect::Pure);
        let s = p.seq([i, after]);
        p.set_entry(s);
        let cfg = Cfg::from_program("t", &p);
        let nt = cfg.node_of_com(t).unwrap();
        let ni = cfg.node_of_com(i).unwrap();
        let na = cfg.node_of_com(after).unwrap();
        // The branch node reaches both the then-arm and (fall-through) the
        // continuation.
        let succs: Vec<_> = cfg.succs(ni).collect();
        assert!(succs.contains(&nt) && succs.contains(&na));
        assert_eq!(cfg.succs(nt).collect::<Vec<_>>(), vec![na]);
    }

    #[test]
    fn while_has_back_edge_and_exit() {
        let mut p = P::new();
        let body = annotated(&mut p, "body", MemEffect::Store("x"));
        let w = p.while_do(|_| true, body);
        let after = annotated(&mut p, "after", MemEffect::Load("x"));
        let s = p.seq([w, after]);
        p.set_entry(s);
        let cfg = Cfg::from_program("t", &p);
        let nw = cfg.node_of_com(w).unwrap();
        let nb = cfg.node_of_com(body).unwrap();
        let na = cfg.node_of_com(after).unwrap();
        assert!(cfg.succs(nw).collect::<Vec<_>>().contains(&nb));
        assert_eq!(cfg.succs(nb).collect::<Vec<_>>(), vec![nw]); // back edge
        assert!(cfg.succs(nw).collect::<Vec<_>>().contains(&na));
    }

    #[test]
    fn loop_never_reaches_exit() {
        let mut p = P::new();
        let body = annotated(&mut p, "body", MemEffect::Pure);
        let l = p.loop_forever(body);
        p.set_entry(l);
        let cfg = Cfg::from_program("t", &p);
        assert!(!cfg.reachable().contains(&cfg.exit()));
    }

    #[test]
    fn choose_fans_out_and_rejoins() {
        let mut p = P::new();
        let a = annotated(&mut p, "a", MemEffect::Pure);
        let b = annotated(&mut p, "b", MemEffect::Pure);
        let c = p.choose([a, b]);
        let after = annotated(&mut p, "after", MemEffect::Pure);
        let s = p.seq([c, after]);
        p.set_entry(s);
        let cfg = Cfg::from_program("t", &p);
        let nc = cfg.node_of_com(c).unwrap();
        let na = cfg.node_of_com(after).unwrap();
        assert_eq!(cfg.succs(nc).count(), 2);
        assert_eq!(cfg.preds(na).count(), 2);
    }

    #[test]
    fn dominators_on_a_diamond() {
        let mut p = P::new();
        let t = annotated(&mut p, "t", MemEffect::Pure);
        let e = annotated(&mut p, "e", MemEffect::Pure);
        let i = p.if_else(|_| true, t, e);
        let join = annotated(&mut p, "join", MemEffect::Pure);
        let s = p.seq([i, join]);
        p.set_entry(s);
        let cfg = Cfg::from_program("t", &p);
        let dom = cfg.dominators();
        let ni = cfg.node_of_com(i).unwrap();
        let nt = cfg.node_of_com(t).unwrap();
        let nj = cfg.node_of_com(join).unwrap();
        assert!(dom[nj].contains(&ni), "branch dominates join");
        assert!(!dom[nj].contains(&nt), "one arm does not dominate join");
    }

    #[test]
    fn dot_dump_mentions_labels_and_effects() {
        let mut p = P::new();
        let a = annotated(&mut p, "store-x", MemEffect::Store("x"));
        p.set_entry(a);
        let cfg = Cfg::from_program("demo", &p);
        let dot = cfg.to_dot();
        assert!(dot.starts_with("digraph \"demo\""));
        assert!(dot.contains("store-x\\nstore x"));
        assert!(dot.contains("->"));
    }
}
