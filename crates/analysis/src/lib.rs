//! Static analysis for CIMP programs under x86-TSO.
//!
//! The model checker in `mc` answers questions about one *bounded
//! configuration* by exhaustive exploration; this crate answers a cheaper
//! question about *program text*: does the process code respect the
//! store-buffer discipline the paper's proofs rely on (§3, Figure 9), and
//! does it follow the GC protocol's structural obligations? The two are
//! complementary — the analyzer is validated against the exhaustive TSO
//! explorer on the litmus suite, and plugs into the checker as a
//! [`static_precheck`](mc::CheckerConfig) so structurally-broken models are
//! rejected before any state is explored.
//!
//! The pieces:
//!
//! * [`cfg`] — control-flow graphs over the CIMP `Com` arena, with a
//!   Graphviz dot dump;
//! * [`dataflow`] — the "dirty store buffer" forward analysis: which
//!   abstract locations may still be buffered at each program point;
//! * [`hazard`] — cross-thread store-buffering (SB) hazard detection with
//!   concrete `mfence` placement suggestions (`A005`);
//! * [`lint`] — the GC-protocol lints: unreachable code (`A001`),
//!   handshake-free control writes (`A002`), write-barrier dominance
//!   (`A003`), missing effect annotations (`A004`);
//! * [`gcmodel`] — runs everything over `GC ∥ M₁ ∥ … ∥ Mₙ ∥ Sys` straight
//!   from a [`ModelConfig`](gc_model::ModelConfig), and packages it as an
//!   [`mc::Precheck`];
//! * [`litmus`] — litmus-test translation and the analyzer-vs-oracle
//!   agreement harness;
//! * [`cli`] — the `gc-analyze` driver.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cfg;
pub mod cli;
pub mod dataflow;
pub mod diag;
pub mod gcmodel;
pub mod hazard;
pub mod lint;
pub mod litmus;

pub use cfg::{Cfg, Node, NodeId, NodeKind};
pub use diag::{Diagnostic, ALL_CODES};
pub use gcmodel::{analyze_model, analyze_model_with, model_cfgs, precheck};
pub use hazard::{sb_hazards, vulnerable_pairs};
pub use litmus::{analyze_litmus, litmus_cfgs, tso_relaxes};
