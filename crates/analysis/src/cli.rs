//! The `gc-analyze` command-line driver.
//!
//! Exit codes (also printed by `--help`):
//!
//! * `0` — analysis ran and found no diagnostics;
//! * `1` — analysis ran and found at least one diagnostic;
//! * `2` — usage or parse error (unknown flag, unknown litmus test, …).

use std::fmt::Write as _;

use gc_model::ModelConfig;
use tso_model::litmus;

use crate::diag::{filter_and_sort, Diagnostic, ALL_CODES};
use crate::gcmodel::{analyze_model_with, model_cfgs};
use crate::litmus::{analyze_litmus, litmus_cfgs};

/// Analysis found no diagnostics.
pub const EXIT_CLEAN: i32 = 0;
/// Analysis found at least one diagnostic.
pub const EXIT_DIAGNOSTICS: i32 = 1;
/// Usage or parse error.
pub const EXIT_USAGE: i32 = 2;

/// A named model ablation: its `--ablate` name and the config flip it
/// performs.
pub type Ablation = (&'static str, fn(&mut ModelConfig));

/// The model ablations selectable with `--ablate`, with the config field
/// each one flips.
pub const ABLATIONS: &[Ablation] = &[
    ("no-deletion-barrier", |c| c.deletion_barrier = false),
    ("no-insertion-barrier", |c| c.insertion_barrier = false),
    ("no-handshake-fences", |c| c.handshake_fences = false),
    ("no-mark-cas", |c| c.mark_cas = false),
    ("premature-alloc-black", |c| c.premature_alloc_black = true),
    ("skip-noop2", |c| c.skip_noop2 = true),
    ("skip-noop3", |c| c.skip_noop3 = true),
];

fn usage() -> String {
    let mut s = String::from(
        "gc-analyze: static analyzer for the CIMP garbage-collector model\n\
         \n\
         USAGE:\n\
         \x20   gc-analyze [--model] [--ablate NAME]... [--allow CODE]... [--dot]\n\
         \x20   gc-analyze --litmus <NAME|all> [--allow CODE]... [--dot]\n\
         \n\
         MODES:\n\
         \x20   --model          analyze the GC model (default when no mode given)\n\
         \x20   --litmus NAME    analyze a named litmus test, or `all` for the suite\n\
         \n\
         OPTIONS:\n\
         \x20   --ablate NAME    flip a model ablation before analyzing; one of:\n",
    );
    for (name, _) in ABLATIONS {
        let _ = writeln!(s, "                        {name}");
    }
    s.push_str("\x20   --allow CODE     suppress a diagnostic code (repeatable); codes:\n");
    for (code, what) in ALL_CODES {
        let _ = writeln!(s, "                        {code}  {what}");
    }
    s.push_str(
        "\x20   --dot            dump the control-flow graphs in Graphviz dot format\n\
         \x20                    instead of analyzing\n\
         \x20   -h, --help       print this help\n\
         \n\
         EXIT CODES:\n\
         \x20   0    analysis ran and found no diagnostics\n\
         \x20   1    analysis ran and found at least one diagnostic\n\
         \x20   2    usage or parse error\n",
    );
    s
}

#[derive(Debug, PartialEq, Eq)]
enum Mode {
    Model,
    Litmus(String),
}

struct Opts {
    mode: Mode,
    ablate: Vec<String>,
    allow: Vec<String>,
    dot: bool,
}

fn parse(args: &[String]) -> Result<Option<Opts>, String> {
    let mut mode = None;
    let mut ablate = Vec::new();
    let mut allow = Vec::new();
    let mut dot = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-h" | "--help" => return Ok(None),
            "--model" => mode = Some(Mode::Model),
            "--litmus" => {
                let name = it.next().ok_or("--litmus requires a test name")?;
                mode = Some(Mode::Litmus(name.clone()));
            }
            "--ablate" => {
                let name = it.next().ok_or("--ablate requires an ablation name")?;
                if !ABLATIONS.iter().any(|(n, _)| n == name) {
                    return Err(format!("unknown ablation `{name}`"));
                }
                ablate.push(name.clone());
            }
            "--allow" => {
                let code = it.next().ok_or("--allow requires a diagnostic code")?;
                if !ALL_CODES.iter().any(|(c, _)| c == code) {
                    return Err(format!("unknown diagnostic code `{code}`"));
                }
                allow.push(code.clone());
            }
            "--dot" => dot = true,
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Some(Opts {
        mode: mode.unwrap_or(Mode::Model),
        ablate,
        allow,
        dot,
    }))
}

fn report(diags: &[Diagnostic], what: &str, out: &mut String) -> i32 {
    if diags.is_empty() {
        let _ = writeln!(out, "{what}: clean");
        EXIT_CLEAN
    } else {
        for d in diags {
            let _ = writeln!(out, "{d}");
        }
        let _ = writeln!(out, "{what}: {} diagnostic(s)", diags.len());
        EXIT_DIAGNOSTICS
    }
}

/// Runs the CLI on `args` (without the program name), appending output to
/// `out`. Returns the process exit code.
pub fn run(args: &[String], out: &mut String) -> i32 {
    let opts = match parse(args) {
        Ok(Some(opts)) => opts,
        Ok(None) => {
            out.push_str(&usage());
            return EXIT_CLEAN;
        }
        Err(e) => {
            let _ = writeln!(out, "error: {e}");
            out.push('\n');
            out.push_str(&usage());
            return EXIT_USAGE;
        }
    };

    match &opts.mode {
        Mode::Model => {
            let mut cfg = ModelConfig::default();
            for name in &opts.ablate {
                let (_, apply) = ABLATIONS
                    .iter()
                    .find(|(n, _)| n == name)
                    .expect("validated during parse");
                apply(&mut cfg);
            }
            if opts.dot {
                for p in model_cfgs(&cfg) {
                    out.push_str(&p.cfg.to_dot());
                }
                return EXIT_CLEAN;
            }
            let diags = analyze_model_with(&cfg, &opts.allow);
            report(&diags, "model", out)
        }
        Mode::Litmus(name) => {
            let suite = litmus::suite();
            let selected: Vec<_> = if name == "all" {
                suite
            } else {
                let found: Vec<_> = suite
                    .into_iter()
                    .filter(|t| t.name().eq_ignore_ascii_case(name))
                    .collect();
                if found.is_empty() {
                    let _ = writeln!(out, "error: unknown litmus test `{name}`");
                    let names: Vec<_> = litmus::suite().iter().map(|t| t.name()).collect();
                    let _ = writeln!(out, "known tests: {} (or `all`)", names.join(", "));
                    return EXIT_USAGE;
                }
                found
            };
            if opts.dot {
                for t in &selected {
                    for (_, cfg) in litmus_cfgs(t) {
                        out.push_str(&cfg.to_dot());
                    }
                }
                return EXIT_CLEAN;
            }
            let mut code = EXIT_CLEAN;
            for t in &selected {
                let diags = filter_and_sort(analyze_litmus(t), &opts.allow);
                code = code.max(report(&diags, t.name(), out));
            }
            code
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_args(args: &[&str]) -> (i32, String) {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut out = String::new();
        let code = run(&args, &mut out);
        (code, out)
    }

    #[test]
    fn help_documents_exit_codes() {
        let (code, out) = run_args(&["--help"]);
        assert_eq!(code, EXIT_CLEAN);
        assert!(out.contains("EXIT CODES"));
        assert!(out.contains("0    analysis ran and found no diagnostics"));
        assert!(out.contains("2    usage or parse error"));
        for (c, _) in ALL_CODES {
            assert!(out.contains(c), "help must list {c}");
        }
    }

    #[test]
    fn unknown_flag_is_a_usage_error() {
        let (code, out) = run_args(&["--frobnicate"]);
        assert_eq!(code, EXIT_USAGE);
        assert!(out.contains("unknown argument"));
    }

    #[test]
    fn unknown_litmus_test_is_a_usage_error() {
        let (code, out) = run_args(&["--litmus", "nope"]);
        assert_eq!(code, EXIT_USAGE);
        assert!(out.contains("unknown litmus test"));
    }

    #[test]
    fn faithful_model_exits_clean() {
        let (code, out) = run_args(&["--model"]);
        assert_eq!(code, EXIT_CLEAN, "{out}");
        assert!(out.contains("model: clean"));
    }

    #[test]
    fn ablated_model_exits_with_diagnostics() {
        let (code, out) = run_args(&["--model", "--ablate", "no-mark-cas"]);
        assert_eq!(code, EXIT_DIAGNOSTICS, "{out}");
        assert!(out.contains("A005"));
    }

    #[test]
    fn suppressing_every_code_turns_the_exit_clean() {
        let (code, _) = run_args(&[
            "--model",
            "--ablate",
            "no-mark-cas",
            "--allow",
            "A005",
            "--allow",
            "A003",
            "--allow",
            "A002",
            "--allow",
            "A001",
            "--allow",
            "A004",
        ]);
        assert_eq!(code, EXIT_CLEAN);
    }

    #[test]
    fn litmus_sb_flags_and_fenced_variant_is_clean() {
        let (code, out) = run_args(&["--litmus", "sb"]);
        assert_eq!(code, EXIT_DIAGNOSTICS);
        assert!(out.contains("A005"));
        let (code, out) = run_args(&["--litmus", "SB+mfences"]);
        assert_eq!(code, EXIT_CLEAN, "{out}");
    }

    #[test]
    fn dot_mode_emits_graphs() {
        let (code, out) = run_args(&["--model", "--dot"]);
        assert_eq!(code, EXIT_CLEAN);
        assert!(out.contains("digraph \"gc\""));
        assert!(out.contains("digraph \"sys\""));
        let (code, out) = run_args(&["--litmus", "sb", "--dot"]);
        assert_eq!(code, EXIT_CLEAN);
        assert!(out.contains("digraph \"t0\""));
    }
}
