//! Analyzing litmus tests, and validating the analyzer against the
//! exhaustive x86-TSO explorer.
//!
//! Each [`LitmusTest`] thread is straight-line code, so its translation to
//! a CIMP program is direct: one annotated skip per instruction. The
//! interesting part is the *oracle*: [`tso_relaxes`] asks the
//! `tso-model` explorer whether the test has any final register valuation
//! under TSO that sequential consistency forbids. The analyzer is validated
//! by demanding agreement — it must flag a test iff the explorer exhibits a
//! relaxed outcome — over the whole named suite
//! ([`tso_model::litmus::suite`]).

use cimp::{MemEffect, Program};
use tso_model::litmus::{Instr, LitmusTest};
use tso_model::MemoryModel;

use crate::cfg::Cfg;
use crate::diag::Diagnostic;
use crate::hazard::sb_hazards;

/// The CIMP instantiation for litmus threads: no interesting local state,
/// no rendezvous (the TSO machine semantics lives in `tso-model`; here only
/// the static effect summary matters).
type LitmusProg = Program<(), u8, u8>;

/// Labels are `&'static str`; litmus programs are tiny and enumerable, so
/// leaking one label per instruction is bounded and keeps the CIMP label
/// type unchanged.
fn leak(s: String) -> &'static str {
    Box::leak(s.into_boxed_str())
}

/// Builds the CIMP program for one litmus thread.
fn thread_program(test_name: &str, tid: usize, instrs: &[Instr]) -> LitmusProg {
    let mut p = LitmusProg::new();
    let ids: Vec<_> = instrs
        .iter()
        .enumerate()
        .map(|(i, instr)| {
            let (desc, effect) = match *instr {
                Instr::Write(a, v) => (format!("write-{a}={v}"), MemEffect::Store(a)),
                Instr::Read(a, r) => (format!("read-{a}-r{r}"), MemEffect::Load(a)),
                Instr::MFence => ("mfence".to_string(), MemEffect::Fence),
                Instr::Cas { addr, .. } => (format!("cas-{addr}"), MemEffect::LockedRmw(addr)),
            };
            let label = leak(format!("{test_name}/t{tid}#{i}:{desc}"));
            let id = p.skip(label);
            p.annotate(id, effect)
        })
        .collect();
    let entry = p.seq(ids);
    p.set_entry(entry);
    p
}

/// One CFG per thread of `test`, named `t0`, `t1`, ….
pub fn litmus_cfgs(test: &LitmusTest) -> Vec<(String, Cfg)> {
    test.threads()
        .iter()
        .enumerate()
        .map(|(tid, instrs)| {
            let name = format!("t{tid}");
            let p = thread_program(test.name(), tid, instrs);
            (name.clone(), Cfg::from_program(name, &p))
        })
        .collect()
}

/// Runs the store-buffer hazard analysis over `test`. A non-empty result
/// means the analyzer predicts TSO-only behaviour and suggests fences.
pub fn analyze_litmus(test: &LitmusTest) -> Vec<Diagnostic> {
    sb_hazards(&litmus_cfgs(test))
}

/// The exhaustive oracle: does `test` exhibit any final register valuation
/// under TSO that SC forbids? (Both sets are finite; the explorer
/// enumerates every interleaving including all commit points.)
pub fn tso_relaxes(test: &LitmusTest) -> bool {
    test.outcomes(MemoryModel::Tso) != test.outcomes(MemoryModel::Sc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tso_model::litmus;

    #[test]
    fn sb_is_flagged_with_a_concrete_fence_suggestion() {
        let diags = analyze_litmus(&litmus::sb());
        assert_eq!(diags.len(), 1);
        assert!(
            diags[0]
                .message
                .contains("mfence immediately before `SB/t0#1:read-y-r0`"),
            "suggestion should name the load: {}",
            diags[0].message
        );
    }

    #[test]
    fn fenced_sb_and_mp_are_clean() {
        assert!(analyze_litmus(&litmus::sb_fenced()).is_empty());
        assert!(analyze_litmus(&litmus::mp()).is_empty());
    }

    #[test]
    fn analyzer_agrees_with_the_exhaustive_oracle_on_the_whole_suite() {
        for test in litmus::suite() {
            let flagged = !analyze_litmus(&test).is_empty();
            let relaxed = tso_relaxes(&test);
            assert_eq!(
                flagged,
                relaxed,
                "analyzer and oracle disagree on `{}`: static analysis {} it, \
                 but the exhaustive explorer says TSO {} relaxed register \
                 outcomes",
                test.name(),
                if flagged { "flags" } else { "accepts" },
                if relaxed { "has" } else { "has no" },
            );
        }
    }

    #[test]
    fn applying_the_suggested_fence_makes_sb_agree_again() {
        // The analyzer's suggestion for SB is an mfence before the load;
        // sb_fenced() is exactly that program, and both the analyzer and
        // the oracle accept it.
        assert!(tso_relaxes(&litmus::sb()));
        assert!(!tso_relaxes(&litmus::sb_fenced()));
        assert!(analyze_litmus(&litmus::sb_fenced()).is_empty());
    }
}
