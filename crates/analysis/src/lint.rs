//! The GC-protocol lint suite (`A001`–`A004`).
//!
//! Each lint is a pure function from a CFG (plus, for `A001`, the source
//! program arena) to diagnostics with a stable code, so callers can run
//! any subset and suppress individual codes via
//! [`filter_and_sort`](crate::diag::filter_and_sort).

use cimp::{AbsLoc, Label, MemEffect, Program};

use crate::cfg::Cfg;
use crate::diag::{Diagnostic, A001, A002, A003, A004};

/// `A001`: labelled commands in the arena with no CFG node — code that no
/// path from the entry point can reach (typically a branch that was built
/// but never wired into the program).
pub fn unreachable_labels<S, Req, Resp>(p: &Program<S, Req, Resp>, cfg: &Cfg) -> Vec<Diagnostic> {
    p.com_ids()
        .filter_map(|id| {
            let label = p.label(id)?;
            if cfg.node_of_com(id).is_some() {
                return None;
            }
            Some(Diagnostic::at(
                A001,
                label,
                format!(
                    "labelled command `{label}` is not reachable from the entry \
                     point of `{}`",
                    cfg.name
                ),
            ))
        })
        .collect()
}

/// `A002`: a collector write to a control variable (one of `controls`)
/// that lies on a cycle never passing through a handshake (a node labelled
/// `handshake_label`). Mutators only observe control variables at barrier
/// and handshake points, so a handshake-free cycle lets the collector spin
/// for ever without its control writes being acknowledged — the protocol
/// the paper's `hp_InitMark`/handshake obligations (§3.1) rule out.
pub fn handshake_free_control_cycle(
    cfg: &Cfg,
    handshake_label: Label,
    controls: &[AbsLoc],
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for n in cfg.atomic_nodes() {
        let Some(MemEffect::Store(x)) = cfg.node(n).effect else {
            continue;
        };
        if !controls.contains(&x) {
            continue;
        }
        let not_handshake = |m| cfg.display_label(m) != handshake_label;
        if cfg.reaches_through(n, n, not_handshake) {
            diags.push(Diagnostic::at(
                A002,
                cfg.display_label(n),
                format!(
                    "control-variable write `{}` (store {x}) in `{}` lies on a \
                     cycle with no `{handshake_label}` handshake: mutators may \
                     never observe the new value",
                    cfg.display_label(n),
                    cfg.name
                ),
            ));
        }
    }
    diags
}

/// `A003`: a heap store (a `Store(heap)` node) not dominated by every one
/// of the `barriers` labels. In the faithful mutator each `mut-store-write`
/// is preceded on *every* path by the deletion barrier's load
/// (`mut-store-begin`) and the insertion barrier's priming
/// (`mut-store-prime-insertion`); an ablated barrier breaks dominance and
/// the lint reproduces the paper's Figure 6 obligations statically.
pub fn store_barrier_dominance(cfg: &Cfg, heap: AbsLoc, barriers: &[Label]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let dom = cfg.dominators();
    for n in cfg.atomic_nodes() {
        let Some(MemEffect::Store(x)) = cfg.node(n).effect else {
            continue;
        };
        if x != heap {
            continue;
        }
        for &barrier in barriers {
            let dominated = dom[n]
                .iter()
                .any(|&d| d != n && cfg.display_label(d) == barrier);
            if !dominated {
                diags.push(Diagnostic::at(
                    A003,
                    cfg.display_label(n),
                    format!(
                        "heap store `{}` (store {heap}) in `{}` is not dominated \
                         by its `{barrier}` write barrier: some execution stores \
                         without the barrier having run",
                        cfg.display_label(n),
                        cfg.name
                    ),
                ));
            }
        }
    }
    diags
}

/// `A004`: reachable atomic commands with no [`MemEffect`] annotation. The
/// dataflow must treat such commands as pure, which is unsound if they in
/// fact touch shared memory — so new atomics are forced to declare
/// themselves.
pub fn unannotated_atomics(cfg: &Cfg) -> Vec<Diagnostic> {
    cfg.atomic_nodes()
        .filter(|&n| cfg.node(n).effect.is_none())
        .map(|n| {
            Diagnostic::at(
                A004,
                cfg.display_label(n),
                format!(
                    "atomic command `{}` in `{}` has no MemEffect annotation; \
                     the store-buffer analysis must assume it is pure",
                    cfg.display_label(n),
                    cfg.name
                ),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cimp::MemEffect;

    type P = Program<u32, u8, u8>;

    fn atom(p: &mut P, label: Label, e: MemEffect) -> cimp::ComId {
        let id = p.skip(label);
        p.annotate(id, e)
    }

    #[test]
    fn a001_flags_orphaned_command() {
        let mut p = P::new();
        let a = atom(&mut p, "live", MemEffect::Pure);
        let _orphan = atom(&mut p, "dead", MemEffect::Pure);
        p.set_entry(a);
        let cfg = Cfg::from_program("t", &p);
        let diags = unreachable_labels(&p, &cfg);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, A001);
        assert_eq!(diags[0].label.as_deref(), Some("dead"));
    }

    #[test]
    fn a002_fires_without_handshake_on_cycle() {
        // LOOP { store phase } — no handshake anywhere.
        let mut p = P::new();
        let st = atom(&mut p, "set-phase", MemEffect::Store("phase"));
        let l = p.loop_forever(st);
        p.set_entry(l);
        let cfg = Cfg::from_program("gc", &p);
        let diags = handshake_free_control_cycle(&cfg, "hs-begin", &["phase"]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, A002);

        // LOOP { store phase; hs-begin } — every cycle handshakes: clean.
        let mut p = P::new();
        let st = atom(&mut p, "set-phase", MemEffect::Store("phase"));
        let hs = atom(&mut p, "hs-begin", MemEffect::Fence);
        let body = p.seq([st, hs]);
        let l = p.loop_forever(body);
        p.set_entry(l);
        let cfg = Cfg::from_program("gc", &p);
        assert!(handshake_free_control_cycle(&cfg, "hs-begin", &["phase"]).is_empty());
    }

    #[test]
    fn a002_ignores_non_control_stores_and_straight_line() {
        let mut p = P::new();
        let st = atom(&mut p, "set-phase", MemEffect::Store("phase"));
        p.set_entry(st); // no cycle at all
        let cfg = Cfg::from_program("gc", &p);
        assert!(handshake_free_control_cycle(&cfg, "hs-begin", &["phase"]).is_empty());
    }

    #[test]
    fn a003_requires_every_barrier_on_every_path() {
        // barrier; store — dominated: clean.
        let mut p = P::new();
        let b = atom(&mut p, "barrier", MemEffect::Pure);
        let st = atom(&mut p, "write", MemEffect::Store("field"));
        let s = p.seq([b, st]);
        p.set_entry(s);
        let cfg = Cfg::from_program("mut", &p);
        assert!(store_barrier_dominance(&cfg, "field", &["barrier"]).is_empty());

        // if _ { barrier }; store — a barrier-free path exists: flagged.
        let mut p = P::new();
        let b = atom(&mut p, "barrier", MemEffect::Pure);
        let i = p.if_then(|_| true, b);
        let st = atom(&mut p, "write", MemEffect::Store("field"));
        let s = p.seq([i, st]);
        p.set_entry(s);
        let cfg = Cfg::from_program("mut", &p);
        let diags = store_barrier_dominance(&cfg, "field", &["barrier"]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, A003);
        assert!(diags[0].message.contains("`barrier`"));
    }

    #[test]
    fn a004_flags_missing_annotation() {
        let mut p = P::new();
        let a = p.skip("mystery"); // deliberately unannotated
        p.set_entry(a);
        let cfg = Cfg::from_program("t", &p);
        let diags = unannotated_atomics(&cfg);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, A004);
        assert_eq!(diags[0].label.as_deref(), Some("mystery"));
    }
}
