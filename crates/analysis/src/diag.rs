//! Diagnostics: stable codes, suppression, and rendering.

use std::fmt;

/// A stable diagnostic code. Codes never change meaning once shipped; CI
/// suppressions (`--allow A003`) key on them.
pub type Code = &'static str;

/// Unreachable atomic command: a labelled command sits in the program arena
/// but no path from the entry point reaches it.
pub const A001: Code = "A001";
/// Handshake-protocol violation: a collector write to a control variable
/// (`fA`/`fM`/`phase`) lies on a cycle that performs no soft handshake, so
/// a mutator may run arbitrarily long without observing the new value.
pub const A002: Code = "A002";
/// Write-barrier incompleteness: a mutator heap store is not dominated by
/// its insertion/deletion barrier sequence.
pub const A003: Code = "A003";
/// Missing memory-effect annotation: an atomic command reachable from the
/// entry point carries no [`MemEffect`](cimp::MemEffect), so the
/// store-buffer dataflow must treat it (unsoundly) as pure.
pub const A004: Code = "A004";
/// TSO store-buffer hazard: two threads each load, with a write still
/// buffered, the location the other publishes — the store-buffering (SB)
/// shape. Comes with a concrete fence suggestion.
pub const A005: Code = "A005";

/// Every lint code with a one-line description, for `--help` and docs.
pub const ALL_CODES: &[(Code, &str)] = &[
    (A001, "unreachable labelled command"),
    (A002, "control-variable write not followed by a handshake"),
    (
        A003,
        "mutator heap store not dominated by its write barriers",
    ),
    (
        A004,
        "reachable atomic command without a MemEffect annotation",
    ),
    (
        A005,
        "cross-thread TSO store-buffer hazard (fence suggested)",
    ),
];

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Stable code (`A001`, …).
    pub code: Code,
    /// The CIMP label the finding anchors to, if any.
    pub label: Option<String>,
    /// Human-readable description, including the fix where one is known.
    pub message: String,
}

impl Diagnostic {
    /// Creates a diagnostic anchored at `label`.
    pub fn at(code: Code, label: impl Into<String>, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            label: Some(label.into()),
            message: message.into(),
        }
    }

    /// Converts into the mirror type the `mc` checker embeds in
    /// [`Outcome::PrecheckFailed`](mc::Outcome::PrecheckFailed).
    pub fn to_precheck(&self) -> mc::PrecheckDiagnostic {
        mc::PrecheckDiagnostic {
            code: self.code.to_string(),
            label: self.label.clone(),
            message: self.message.clone(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.label {
            Some(l) => write!(f, "{} [{}]: {}", self.code, l, self.message),
            None => write!(f, "{}: {}", self.code, self.message),
        }
    }
}

/// Drops diagnostics whose code appears in `allow` (each lint is
/// individually suppressible), then sorts by code, label and message for a
/// deterministic report order.
pub fn filter_and_sort(mut diags: Vec<Diagnostic>, allow: &[String]) -> Vec<Diagnostic> {
    diags.retain(|d| !allow.iter().any(|a| a == d.code));
    diags.sort();
    diags.dedup();
    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_suppression() {
        let d1 = Diagnostic::at(A005, "sb-load", "hazard");
        let d2 = Diagnostic {
            code: A001,
            label: None,
            message: "dead".into(),
        };
        assert_eq!(d1.to_string(), "A005 [sb-load]: hazard");
        assert_eq!(d2.to_string(), "A001: dead");
        let kept = filter_and_sort(vec![d1.clone(), d2.clone()], &["A001".to_string()]);
        assert_eq!(kept, vec![d1.clone()]);
        // Sorted by code, duplicates removed.
        let all = filter_and_sort(vec![d1.clone(), d2.clone(), d1.clone()], &[]);
        assert_eq!(all, vec![d2, d1]);
    }

    #[test]
    fn precheck_mirror_round_trips() {
        let d = Diagnostic::at(A002, "gc-flip-fM", "no handshake");
        let p = d.to_precheck();
        assert_eq!(p.code, "A002");
        assert_eq!(p.label.as_deref(), Some("gc-flip-fM"));
        assert_eq!(p.to_string(), d.to_string());
    }
}
