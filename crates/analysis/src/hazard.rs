//! Cross-thread TSO store-buffer hazard detection (lint `A005`).
//!
//! A thread is *vulnerable on `(x, y)`* if it can reach a `Load(y)` while a
//! write to `x ≠ y` may still sit in its store buffer: it reads `y` before
//! its `x`-write is globally visible. Reading a location you yourself have
//! buffered is fine — store forwarding returns your own value — which is
//! why same-location pairs are excluded.
//!
//! Two threads `p ≠ q` form the store-buffering (SB) litmus shape exactly
//! when `(x, y)` is vulnerable in `p` and the mirrored `(y, x)` is
//! vulnerable in `q`: both loads may then return the initial values, an
//! outcome sequential consistency forbids. One `MFENCE` (or locked RMW) on
//! either side between the store and the load breaks the shape, so each
//! hazard is reported with the label of a load before which inserting an
//! `mfence` closes it.

use std::collections::BTreeMap;

use cimp::{AbsLoc, MemEffect};

use crate::cfg::Cfg;
use crate::dataflow::may_buffered;
use crate::diag::{Diagnostic, A005};

/// A vulnerable pair within one thread: evidence that a `Load(load_loc)`
/// is reachable with a `Store(store_loc)` possibly still buffered.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Vulnerability {
    /// The buffered location.
    pub store_loc: AbsLoc,
    /// The location loaded while the store may be buffered.
    pub load_loc: AbsLoc,
    /// Label of the witnessing store command.
    pub store_label: String,
    /// Label of the load command; an `mfence` immediately before it closes
    /// the vulnerability.
    pub load_label: String,
}

/// All vulnerable pairs of `cfg`, keyed by `(store_loc, load_loc)` with the
/// first (lowest-node-id) witness kept per pair.
pub fn vulnerable_pairs(cfg: &Cfg) -> BTreeMap<(AbsLoc, AbsLoc), Vulnerability> {
    let buf = may_buffered(cfg);
    let mut pairs = BTreeMap::new();
    for n in cfg.atomic_nodes() {
        let Some(MemEffect::Load(y)) = cfg.node(n).effect else {
            continue;
        };
        for (&x, &witness) in &buf[n] {
            if x == y {
                continue; // store forwarding: own buffered value is seen
            }
            pairs.entry((x, y)).or_insert_with(|| Vulnerability {
                store_loc: x,
                load_loc: y,
                store_label: cfg.display_label(witness).to_string(),
                load_label: cfg.display_label(n).to_string(),
            });
        }
    }
    pairs
}

/// Finds SB-shaped hazards across a system of named threads: for each pair
/// of distinct threads, a vulnerability `(x, y)` in one matched by `(y, x)`
/// in the other. Returns one `A005` diagnostic per hazard, anchored at the
/// first thread's load with a concrete fence suggestion.
pub fn sb_hazards(threads: &[(String, Cfg)]) -> Vec<Diagnostic> {
    let pairs: Vec<_> = threads
        .iter()
        .map(|(name, cfg)| (name, vulnerable_pairs(cfg)))
        .collect();
    let mut diags = Vec::new();
    for (i, (pname, pv)) in pairs.iter().enumerate() {
        for (qname, qv) in pairs.iter().skip(i + 1) {
            for ((x, y), v) in pv {
                let Some(w) = qv.get(&(*y, *x)) else {
                    continue;
                };
                diags.push(Diagnostic::at(
                    A005,
                    v.load_label.clone(),
                    format!(
                        "store-buffer hazard between threads `{pname}` and `{qname}`: \
                         `{pname}` loads {y} at `{}` while its store to {x} at `{}` may \
                         still be buffered, and `{qname}` loads {x} at `{}` while its \
                         store to {y} at `{}` may still be buffered (SB shape); \
                         suggest an mfence immediately before `{}` (or before `{}`)",
                        v.load_label,
                        v.store_label,
                        w.load_label,
                        w.store_label,
                        v.load_label,
                        w.load_label,
                    ),
                ));
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use cimp::Program;

    type P = Program<u32, u8, u8>;

    fn thread(ops: &[(&'static str, MemEffect)]) -> Cfg {
        let mut p = P::new();
        let ids: Vec<_> = ops
            .iter()
            .map(|(label, e)| {
                let id = p.skip(label);
                p.annotate(id, *e)
            })
            .collect();
        let s = p.seq(ids);
        p.set_entry(s);
        Cfg::from_program("t", &p)
    }

    #[test]
    fn sb_shape_is_flagged_and_fence_fixes_it() {
        let t0 = thread(&[
            ("st-x", MemEffect::Store("x")),
            ("ld-y", MemEffect::Load("y")),
        ]);
        let t1 = thread(&[
            ("st-y", MemEffect::Store("y")),
            ("ld-x", MemEffect::Load("x")),
        ]);
        let diags = sb_hazards(&[("p0".into(), t0), ("p1".into(), t1)]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, A005);
        assert!(diags[0]
            .message
            .contains("mfence immediately before `ld-y`"));

        let t0f = thread(&[
            ("st-x", MemEffect::Store("x")),
            ("mfence", MemEffect::Fence),
            ("ld-y", MemEffect::Load("y")),
        ]);
        let t1 = thread(&[
            ("st-y", MemEffect::Store("y")),
            ("ld-x", MemEffect::Load("x")),
        ]);
        assert!(sb_hazards(&[("p0".into(), t0f), ("p1".into(), t1)]).is_empty());
    }

    #[test]
    fn mp_shape_is_clean() {
        // Message passing: writer stores both, reader loads both — no
        // symmetric vulnerable pair, TSO preserves the SC outcomes.
        let w = thread(&[
            ("st-d", MemEffect::Store("data")),
            ("st-f", MemEffect::Store("flag")),
        ]);
        let r = thread(&[
            ("ld-f", MemEffect::Load("flag")),
            ("ld-d", MemEffect::Load("data")),
        ]);
        assert!(sb_hazards(&[("w".into(), w), ("r".into(), r)]).is_empty());
    }

    #[test]
    fn same_location_reload_is_store_forwarding_not_hazard() {
        let t0 = thread(&[
            ("st-x", MemEffect::Store("x")),
            ("ld-x", MemEffect::Load("x")),
        ]);
        let t1 = thread(&[
            ("st-x2", MemEffect::Store("x")),
            ("ld-x2", MemEffect::Load("x")),
        ]);
        assert!(sb_hazards(&[("p0".into(), t0), ("p1".into(), t1)]).is_empty());
    }

    #[test]
    fn vulnerability_needs_both_threads() {
        // Only one side vulnerable: no hazard.
        let t0 = thread(&[
            ("st-x", MemEffect::Store("x")),
            ("ld-y", MemEffect::Load("y")),
        ]);
        let t1 = thread(&[
            ("ld-x", MemEffect::Load("x")),
            ("st-y", MemEffect::Store("y")),
        ]);
        assert!(sb_hazards(&[("p0".into(), t0), ("p1".into(), t1)]).is_empty());
    }
}
