//! CIMP: a small imperative language for modelling concurrent systems.
//!
//! This crate is an executable Rust rendition of the modelling language used
//! in *Relaxing Safely: Verified On-the-Fly Garbage Collection for x86-TSO*
//! (PLDI 2015, §3, Figures 7 and 8). CIMP extends Winskel's IMP with:
//!
//! * **process-algebra-style rendezvous** (synchronous message passing):
//!   a [`Request`](program::Com::Request) by one process synchronises with a
//!   [`Response`](program::Com::Response) by another, exchanging a request
//!   value α and a response value β in a single indivisible system step;
//! * **control and data non-determinism**: [`Choose`](program::Com::Choose)
//!   between branches, and local operations that return *sets* of successor
//!   states;
//! * **flat parallel composition**: a [`System`](system::System) interleaves
//!   the steps of its processes at the top level, with no action hiding.
//!
//! Each process has purely local control and data state — there is *no*
//! shared global state. Anything shared (in the paper: the TSO memory, the
//! handshake bits, the global work-list) lives in the local state of a
//! distinguished system process that other processes talk to via rendezvous.
//!
//! The operational semantics follows the paper's frame-stack presentation: a
//! process's control state is a stack of commands; sequencing, loops, choice
//! and conditionals are resolved structurally, and only the three *atomic*
//! commands — `LocalOp`, `Request`, `Response` — produce transitions. This
//! makes the atomicity of distinct operations independent, which the paper
//! singles out as a key strength of the approach.
//!
//! # Example
//!
//! A one-shot client/server rendezvous:
//!
//! ```
//! use cimp::{Program, System};
//!
//! // Local state: a counter. Requests and responses are numbers.
//! let mut client: Program<u32, u32, u32> = Program::new();
//! let ask = client.request(
//!     "ask",
//!     |s| *s,                              // α = current counter
//!     |s, beta| vec![s + beta],            // add the response
//! );
//! client.set_entry(ask);
//!
//! let mut server: Program<u32, u32, u32> = Program::new();
//! let answer = server.response("answer", |alpha, s| vec![(*s, alpha * 2)]);
//! server.set_entry(answer);
//!
//! let sys = System::new(vec![("client", client, 21), ("server", server, 0)]);
//! let init = sys.initial_state();
//! let succs = sys.successors(&init);
//! assert_eq!(succs.len(), 1); // exactly one rendezvous possible
//! let (_event, next) = &succs[0];
//! assert_eq!(*next.local(0), 21 + 42);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pretty;
pub mod program;
pub mod step;
pub mod system;

pub use program::{AbsLoc, Com, ComId, Label, MemEffect, Program};
pub use step::{PendingStep, Stack};
pub use system::{Event, ProcId, System, SystemState};
