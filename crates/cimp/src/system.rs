//! CIMP system semantics: top-level interleaving and rendezvous (Figure 8).
//!
//! A [`System`] is a flat parallel composition of named processes, each with
//! its own [`Program`](crate::Program) and local state. The global
//! transition relation `⇒` has two rules:
//!
//! * **interleaving**: any process with an enabled `τ` step takes it alone;
//! * **rendezvous**: a process offering a `Request` (α computed from its
//!   state) pairs with a *different* process offering a `Response`; both
//!   update their local states simultaneously, the responder choosing β.
//!
//! All processes share one local-state type `S` (in heterogeneous models,
//! an enum over the per-role states) and one request/response vocabulary.

use std::fmt;
use std::sync::Arc;

use crate::program::{Label, Program};
use crate::step::{at_labels, enabled_steps, PendingStep, Stack};

/// Index of a process within a [`System`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcId(pub usize);

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// What happened in one global step — used for counterexample traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event<Req, Resp> {
    /// Process `proc` performed local computation at `label`.
    Tau {
        /// The stepping process.
        proc: ProcId,
        /// Program location of the `LocalOp`.
        label: Label,
    },
    /// `sender` and `receiver` completed a rendezvous.
    Comm {
        /// The requesting process.
        sender: ProcId,
        /// The responding process.
        receiver: ProcId,
        /// Location of the `Request`.
        send_label: Label,
        /// Location of the `Response`.
        recv_label: Label,
        /// The request value α.
        req: Req,
        /// The response value β.
        resp: Resp,
    },
}

impl<Req: fmt::Debug, Resp: fmt::Debug> fmt::Display for Event<Req, Resp> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Tau { proc, label } => write!(f, "{proc}: {label}"),
            Event::Comm {
                sender,
                receiver,
                send_label,
                recv_label,
                req,
                resp,
            } => write!(
                f,
                "{sender}:{send_label} --{req:?}--> {receiver}:{recv_label} ==> {resp:?}"
            ),
        }
    }
}

/// A global state: the control stack and local data state of every process.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SystemState<S> {
    controls: Vec<Stack>,
    locals: Vec<S>,
}

impl<S> SystemState<S> {
    /// The local data state of process `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn local(&self, p: usize) -> &S {
        &self.locals[p]
    }

    /// All local data states, indexed by process.
    pub fn locals(&self) -> &[S] {
        &self.locals
    }

    /// The control stack of process `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn control(&self, p: usize) -> &Stack {
        &self.controls[p]
    }

    /// Whether process `p` has terminated (empty control stack).
    pub fn terminated(&self, p: usize) -> bool {
        self.controls[p].is_empty()
    }

    /// Builds a state directly from parts (for tests and invariant
    /// satisfiability witnesses).
    pub fn from_parts(controls: Vec<Stack>, locals: Vec<S>) -> Self {
        assert_eq!(controls.len(), locals.len());
        SystemState { controls, locals }
    }
}

struct Process<S, Req, Resp> {
    name: &'static str,
    program: Arc<Program<S, Req, Resp>>,
    initial: S,
}

/// A flat parallel composition of CIMP processes.
pub struct System<S, Req, Resp> {
    procs: Vec<Process<S, Req, Resp>>,
}

impl<S, Req, Resp> fmt::Debug for System<S, Req, Resp> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("System")
            .field(
                "processes",
                &self.procs.iter().map(|p| p.name).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl<S, Req, Resp> System<S, Req, Resp>
where
    S: Clone,
    Req: Clone,
    Resp: Clone,
{
    /// Creates a system from `(name, program, initial local state)` triples.
    ///
    /// # Panics
    ///
    /// Panics if `procs` is empty or any program lacks an entry point.
    pub fn new(procs: Vec<(&'static str, Program<S, Req, Resp>, S)>) -> Self {
        assert!(!procs.is_empty(), "system of zero processes");
        System {
            procs: procs
                .into_iter()
                .map(|(name, program, initial)| {
                    let _ = program.entry(); // panic early if unset
                    Process {
                        name,
                        program: Arc::new(program),
                        initial,
                    }
                })
                .collect(),
        }
    }

    /// Number of processes.
    pub fn len(&self) -> usize {
        self.procs.len()
    }

    /// Whether the system has no processes (never true for a constructed
    /// system).
    pub fn is_empty(&self) -> bool {
        self.procs.is_empty()
    }

    /// The display name of process `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn name(&self, p: ProcId) -> &'static str {
        self.procs[p.0].name
    }

    /// The index of the process named `name`, if any.
    pub fn find(&self, name: &str) -> Option<ProcId> {
        self.procs.iter().position(|p| p.name == name).map(ProcId)
    }

    /// The initial global state.
    pub fn initial_state(&self) -> SystemState<S> {
        SystemState {
            controls: self.procs.iter().map(|p| vec![p.program.entry()]).collect(),
            locals: self.procs.iter().map(|p| p.initial.clone()).collect(),
        }
    }

    /// The executable `at p ℓ` predicate: the labels process `p` may execute
    /// next from `state`.
    pub fn at(&self, state: &SystemState<S>, p: ProcId) -> Vec<Label> {
        at_labels(
            &self.procs[p.0].program,
            &state.controls[p.0],
            &state.locals[p.0],
        )
    }

    /// All global successor states with the events that produce them — the
    /// `⇒` relation of Figure 8.
    pub fn successors(&self, state: &SystemState<S>) -> Vec<(Event<Req, Resp>, SystemState<S>)> {
        let mut out = Vec::new();
        self.successors_into(state, &mut out);
        out
    }

    /// Like [`System::successors`], but appends into a caller-provided
    /// buffer instead of allocating a fresh `Vec` — the hot path for the
    /// model checker's per-worker scratch buffers.
    pub fn successors_into(
        &self,
        state: &SystemState<S>,
        out: &mut Vec<(Event<Req, Resp>, SystemState<S>)>,
    ) {
        // Per-process enabled steps, computed once.
        let steps: Vec<Vec<PendingStep<S, Req, Resp>>> = self
            .procs
            .iter()
            .enumerate()
            .map(|(i, p)| enabled_steps(&p.program, &state.controls[i], &state.locals[i]))
            .collect();

        // Interleaved τ steps.
        for (i, proc_steps) in steps.iter().enumerate() {
            for s in proc_steps {
                if let PendingStep::Tau {
                    label,
                    stack,
                    state: local,
                } = s
                {
                    let mut next = state.clone();
                    next.controls[i] = stack.clone();
                    next.locals[i] = local.clone();
                    out.push((
                        Event::Tau {
                            proc: ProcId(i),
                            label,
                        },
                        next,
                    ));
                }
            }
        }

        // Rendezvous: sender i, receiver j, i ≠ j.
        for (i, sender_steps) in steps.iter().enumerate() {
            for send in sender_steps {
                let PendingStep::Send {
                    label: send_label,
                    req,
                    stack: send_stack,
                    recv,
                } = send
                else {
                    continue;
                };
                for (j, recv_steps) in steps.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    for rc in recv_steps {
                        let PendingStep::Recv {
                            label: recv_label,
                            stack: recv_stack,
                            resp,
                        } = rc
                        else {
                            continue;
                        };
                        for (recv_local, beta) in resp(req, &state.locals[j]) {
                            for send_local in recv(&state.locals[i], req, &beta) {
                                let mut next = state.clone();
                                next.controls[i] = send_stack.clone();
                                next.locals[i] = send_local.clone();
                                next.controls[j] = recv_stack.clone();
                                next.locals[j] = recv_local.clone();
                                out.push((
                                    Event::Comm {
                                        sender: ProcId(i),
                                        receiver: ProcId(j),
                                        send_label,
                                        recv_label,
                                        req: req.clone(),
                                        resp: beta.clone(),
                                    },
                                    next,
                                ));
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type P = Program<u32, u32, u32>;

    fn counter(label: Label) -> P {
        let mut p = P::new();
        let inc = p.assign(label, |s| *s += 1);
        p.set_entry(inc);
        p
    }

    #[test]
    fn taus_interleave() {
        let sys = System::new(vec![("a", counter("inc_a"), 0), ("b", counter("inc_b"), 0)]);
        let init = sys.initial_state();
        let succs = sys.successors(&init);
        assert_eq!(succs.len(), 2);
        // One step leaves the other process untouched.
        let (_, s0) = &succs[0];
        assert_eq!(s0.locals(), &[1, 0]);
    }

    #[test]
    fn rendezvous_updates_both_parties() {
        let mut client = P::new();
        let ask = client.request("ask", |s| *s, |s, beta| vec![s + beta]);
        client.set_entry(ask);

        let mut server = P::new();
        let ans = server.response("answer", |alpha, s| vec![(s + 1, alpha * 2)]);
        server.set_entry(ans);

        let sys = System::new(vec![("client", client, 10), ("server", server, 100)]);
        let succs = sys.successors(&sys.initial_state());
        assert_eq!(succs.len(), 1);
        let (ev, next) = &succs[0];
        match ev {
            Event::Comm {
                sender,
                receiver,
                req,
                resp,
                ..
            } => {
                assert_eq!(sys.name(*sender), "client");
                assert_eq!(sys.name(*receiver), "server");
                assert_eq!(*req, 10);
                assert_eq!(*resp, 20);
            }
            other => panic!("expected Comm, got {other:?}"),
        }
        assert_eq!(next.locals(), &[30, 101]);
        // Both processes have terminated.
        assert!(next.terminated(0));
        assert!(next.terminated(1));
    }

    #[test]
    fn no_self_rendezvous() {
        // A single process offering both a Request and (next) a Response
        // cannot synchronise with itself.
        let mut p = P::new();
        let ask = p.request("ask", |s| *s, |s, _| vec![*s]);
        p.set_entry(ask);
        let sys = System::new(vec![("lonely", p, 0)]);
        assert!(sys.successors(&sys.initial_state()).is_empty());
    }

    #[test]
    fn responder_filters_requests() {
        // The server only answers even requests: odd client blocks forever.
        let build = |init: u32| {
            let mut client = P::new();
            let ask = client.request("ask", |s| *s, |s, _| vec![*s]);
            client.set_entry(ask);
            let mut server = P::new();
            let ans = server.response("answer", |alpha, s| {
                if alpha % 2 == 0 {
                    vec![(*s, 0)]
                } else {
                    vec![]
                }
            });
            server.set_entry(ans);
            System::new(vec![("client", client, init), ("server", server, 0)])
        };
        assert_eq!(build(2).successors(&build(2).initial_state()).len(), 1);
        assert!(build(3).successors(&build(3).initial_state()).is_empty());
    }

    #[test]
    fn nondeterministic_response_fans_out() {
        let mut client = P::new();
        let ask = client.request("ask", |s| *s, |_, beta| vec![*beta]);
        client.set_entry(ask);
        let mut server = P::new();
        let ans = server.response("answer", |_, s| vec![(*s, 7), (*s, 8)]);
        server.set_entry(ans);
        let sys = System::new(vec![("client", client, 0), ("server", server, 0)]);
        let succs = sys.successors(&sys.initial_state());
        assert_eq!(succs.len(), 2);
        let mut finals: Vec<u32> = succs.iter().map(|(_, s)| *s.local(0)).collect();
        finals.sort_unstable();
        assert_eq!(finals, vec![7, 8]);
    }

    #[test]
    fn at_reports_next_labels() {
        let sys = System::new(vec![("a", counter("inc_a"), 0)]);
        let init = sys.initial_state();
        assert_eq!(sys.at(&init, ProcId(0)), vec!["inc_a"]);
    }

    #[test]
    fn find_locates_processes_by_name() {
        let sys = System::new(vec![("a", counter("x"), 0), ("b", counter("y"), 0)]);
        assert_eq!(sys.find("b"), Some(ProcId(1)));
        assert_eq!(sys.find("zz"), None);
    }

    #[test]
    fn event_display_is_readable() {
        let ev: Event<u32, u32> = Event::Comm {
            sender: ProcId(0),
            receiver: ProcId(1),
            send_label: "ask",
            recv_label: "answer",
            req: 5,
            resp: 10,
        };
        assert_eq!(ev.to_string(), "p0:ask --5--> p1:answer ==> 10");
    }
}
