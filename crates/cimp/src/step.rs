//! CIMP process semantics: the local small-step relation `→γ` of Figure 7.
//!
//! A process's control state is a [`Stack`] of command ids (a frame stack,
//! top at the end of the vector). Control structure — `Seq`, `If`, `While`,
//! `Loop`, `Choose` — is resolved *structurally* while computing the enabled
//! steps; only the atomic commands (`LocalOp`, `Request`, `Response`)
//! produce [`PendingStep`]s. Because branch conditions read only the
//! process's own local state, which no other process can modify, folding
//! their evaluation into the next atomic action preserves the reachable
//! state set while removing needless interleaving points.

use crate::program::{Com, ComId, Label, Program, RecvFn, RespFn};

/// A process's control state: a frame stack of commands, **top at the end**.
/// An empty stack means the process has terminated.
pub type Stack = Vec<ComId>;

/// An enabled atomic step of a single process, before any system-level
/// pairing. The embedded `stack` is the control state *after* the step.
pub enum PendingStep<S, Req, Resp> {
    /// A `τ` step: local computation.
    Tau {
        /// Label of the `LocalOp` taken.
        label: Label,
        /// Control state after the step.
        stack: Stack,
        /// Local data state after the step.
        state: S,
    },
    /// An offered `Request` with one specific α (a request offering several
    /// α values yields several `Send`s): the rendezvous completes only if
    /// some other process offers a matching `Response`.
    Send {
        /// Label of the `Request`.
        label: Label,
        /// The request value α, already computed from the sender's state.
        req: Req,
        /// Control state after the rendezvous.
        stack: Stack,
        /// Applies the chosen α and the eventual response β to the sender's
        /// state.
        recv: RecvFn<S, Req, Resp>,
    },
    /// An offered `Response`.
    Recv {
        /// Label of the `Response`.
        label: Label,
        /// Control state after the rendezvous.
        stack: Stack,
        /// The response relation, applied to the incoming α.
        resp: RespFn<S, Req, Resp>,
    },
}

impl<S, Req: std::fmt::Debug, Resp> std::fmt::Debug for PendingStep<S, Req, Resp> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PendingStep::Tau { label, .. } => write!(f, "Tau({label})"),
            PendingStep::Send { label, req, .. } => write!(f, "Send({label}, {req:?})"),
            PendingStep::Recv { label, .. } => write!(f, "Recv({label})"),
        }
    }
}

/// Upper bound on structural unfoldings while computing one step, to turn
/// busy loops with no atomic action (`WHILE true DO <nothing atomic>`) into
/// a panic instead of divergence. Generously larger than any real program's
/// nesting depth.
const MAX_STRUCTURAL_DEPTH: usize = 10_000;

/// Computes the enabled atomic steps of a process with control `stack` and
/// local state `state` (the `→γ` relation restricted to its atomic heads).
///
/// # Panics
///
/// Panics if structural unfolding exceeds an internal bound, which indicates
/// a control loop containing no atomic command.
pub fn enabled_steps<S, Req, Resp>(
    program: &Program<S, Req, Resp>,
    stack: &Stack,
    state: &S,
) -> Vec<PendingStep<S, Req, Resp>>
where
    S: Clone,
{
    let mut out = Vec::new();
    let mut work: Vec<Stack> = vec![stack.clone()];
    let mut expansions = 0usize;
    while let Some(mut stack) = work.pop() {
        expansions += 1;
        assert!(
            expansions < MAX_STRUCTURAL_DEPTH,
            "structural unfolding diverged: control loop with no atomic command"
        );
        let Some(top) = stack.pop() else {
            continue; // terminated process: no steps
        };
        match program.com(top) {
            Com::LocalOp { label, op } => {
                for s2 in op(state) {
                    out.push(PendingStep::Tau {
                        label,
                        stack: stack.clone(),
                        state: s2,
                    });
                }
            }
            Com::Request { label, act, recv } => {
                for req in act(state) {
                    out.push(PendingStep::Send {
                        label,
                        req,
                        stack: stack.clone(),
                        recv: recv.clone(),
                    });
                }
            }
            Com::Response { label, resp } => {
                out.push(PendingStep::Recv {
                    label,
                    stack,
                    resp: resp.clone(),
                });
            }
            Com::Seq(a, b) => {
                stack.push(*b);
                stack.push(*a);
                work.push(stack);
            }
            Com::If {
                cond,
                then_c,
                else_c,
            } => {
                if cond(state) {
                    stack.push(*then_c);
                } else if let Some(e) = else_c {
                    stack.push(*e);
                }
                work.push(stack);
            }
            Com::While { cond, body } => {
                if cond(state) {
                    stack.push(top); // the While itself: re-test after the body
                    stack.push(*body);
                }
                work.push(stack);
            }
            Com::Loop(body) => {
                stack.push(top);
                stack.push(*body);
                work.push(stack);
            }
            Com::Choose(branches) => {
                for &branch in branches {
                    let mut s = stack.clone();
                    s.push(branch);
                    work.push(s);
                }
            }
        }
    }
    out
}

/// The labels of the atomic commands that could execute next from `stack`
/// in `state` — the executable analogue of the paper's `at p ℓ` predicate.
///
/// Branch conditions are resolved against `state`, so the result is the set
/// of labels reachable without executing any atomic command. For a `Choose`
/// this can contain several labels; for straight-line code exactly one.
pub fn at_labels<S, Req, Resp>(
    program: &Program<S, Req, Resp>,
    stack: &Stack,
    state: &S,
) -> Vec<Label>
where
    S: Clone,
{
    enabled_steps(program, stack, state)
        .iter()
        .map(|s| match s {
            PendingStep::Tau { label, .. }
            | PendingStep::Send { label, .. }
            | PendingStep::Recv { label, .. } => *label,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Program;

    type P = Program<u32, u32, u32>;

    fn initial(p: &P) -> Stack {
        vec![p.entry()]
    }

    #[test]
    fn local_op_steps_and_pops() {
        let mut p = P::new();
        let inc = p.assign("inc", |s| *s += 1);
        p.set_entry(inc);
        let steps = enabled_steps(&p, &initial(&p), &0);
        assert_eq!(steps.len(), 1);
        match &steps[0] {
            PendingStep::Tau {
                label,
                stack,
                state,
            } => {
                assert_eq!(*label, "inc");
                assert!(stack.is_empty());
                assert_eq!(*state, 1);
            }
            other => panic!("expected Tau, got {other:?}"),
        }
    }

    #[test]
    fn nondeterministic_local_op_yields_all_successors() {
        let mut p = P::new();
        let flip = p.local_op("flip", |s| vec![*s, *s + 10]);
        p.set_entry(flip);
        let steps = enabled_steps(&p, &initial(&p), &1);
        assert_eq!(steps.len(), 2);
    }

    #[test]
    fn disabled_guard_blocks() {
        let mut p = P::new();
        let g = p.guard("await", |s| *s > 5);
        p.set_entry(g);
        assert!(enabled_steps(&p, &initial(&p), &0).is_empty());
        assert_eq!(enabled_steps(&p, &initial(&p), &6).len(), 1);
    }

    #[test]
    fn seq_exposes_first_then_second() {
        let mut p = P::new();
        let a = p.assign("a", |s| *s += 1);
        let b = p.assign("b", |s| *s *= 2);
        let s = p.seq2(a, b);
        p.set_entry(s);
        let steps = enabled_steps(&p, &initial(&p), &1);
        assert_eq!(steps.len(), 1);
        let PendingStep::Tau {
            label,
            stack,
            state,
        } = &steps[0]
        else {
            panic!()
        };
        assert_eq!(*label, "a");
        assert_eq!(*state, 2);
        // Continue from the post-step stack: `b` is next.
        let steps2 = enabled_steps(&p, stack, state);
        let PendingStep::Tau { label, state, .. } = &steps2[0] else {
            panic!()
        };
        assert_eq!(*label, "b");
        assert_eq!(*state, 4);
    }

    #[test]
    fn if_resolves_on_local_state() {
        let mut p = P::new();
        let t = p.skip("then");
        let e = p.skip("else");
        let c = p.if_else(|s| *s == 0, t, e);
        p.set_entry(c);
        assert_eq!(at_labels(&p, &initial(&p), &0), vec!["then"]);
        assert_eq!(at_labels(&p, &initial(&p), &1), vec!["else"]);
    }

    #[test]
    fn while_iterates_and_exits() {
        let mut p = P::new();
        let body = p.assign("inc", |s| *s += 1);
        let w = p.while_do(|s| *s < 3, body);
        let done = p.skip("done");
        let all = p.seq2(w, done);
        p.set_entry(all);
        // Drive the loop to completion.
        let mut stack = initial(&p);
        let mut state = 0u32;
        let mut labels = Vec::new();
        loop {
            let steps = enabled_steps(&p, &stack, &state);
            if steps.is_empty() {
                break;
            }
            assert_eq!(steps.len(), 1);
            let PendingStep::Tau {
                label,
                stack: s2,
                state: st2,
            } = &steps[0]
            else {
                panic!()
            };
            labels.push(*label);
            stack = s2.clone();
            state = *st2;
        }
        assert_eq!(labels, vec!["inc", "inc", "inc", "done"]);
        assert_eq!(state, 3);
    }

    #[test]
    fn loop_never_terminates() {
        let mut p = P::new();
        let body = p.assign("tick", |s| *s = s.wrapping_add(1));
        let l = p.loop_forever(body);
        p.set_entry(l);
        let mut stack = initial(&p);
        let mut state = 0u32;
        for _ in 0..100 {
            let steps = enabled_steps(&p, &stack, &state);
            assert_eq!(steps.len(), 1);
            let PendingStep::Tau {
                stack: s2,
                state: st2,
                ..
            } = &steps[0]
            else {
                panic!()
            };
            stack = s2.clone();
            state = *st2;
        }
        assert_eq!(state, 100);
    }

    #[test]
    fn choose_offers_all_enabled_branches() {
        let mut p = P::new();
        let a = p.skip("a");
        let b = p.guard("b", |s| *s > 0);
        let c = p.choose([a, b]);
        p.set_entry(c);
        assert_eq!(at_labels(&p, &initial(&p), &0), vec!["a"]);
        let mut at1 = at_labels(&p, &initial(&p), &1);
        at1.sort_unstable();
        assert_eq!(at1, vec!["a", "b"]);
    }

    #[test]
    fn request_carries_computed_alpha() {
        let mut p = P::new();
        let r = p.request("ask", |s| s * 2, |s, beta| vec![s + beta]);
        p.set_entry(r);
        let steps = enabled_steps(&p, &initial(&p), &21);
        let PendingStep::Send { req, recv, .. } = &steps[0] else {
            panic!()
        };
        assert_eq!(*req, 42);
        assert_eq!(recv(&21, req, &1), vec![22]);
    }

    #[test]
    fn terminated_process_has_no_steps() {
        let p = P::new();
        assert!(enabled_steps(&p, &Vec::new(), &0).is_empty());
    }

    #[test]
    #[should_panic(expected = "structural unfolding diverged")]
    fn busy_control_loop_panics() {
        let mut p = P::new();
        // WHILE true DO (if true then ... with no atomic action): encode a
        // loop whose body is another empty while.
        let inner = p.while_do(|_| false, crate::program::ComId::dummy_for_test());
        let outer = p.while_do(|_| true, inner);
        p.set_entry(outer);
        let _ = enabled_steps(&p, &vec![p.entry()], &0);
    }
}
