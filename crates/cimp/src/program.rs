//! CIMP syntax: commands, programs and the program builder.

use std::fmt;
use std::sync::Arc;

/// A program-location label.
///
/// Every atomic command carries a label; the paper's local assertions are
/// stated as "property holds when control for process *p* resides at *ℓ*"
/// (`at p ℓ`), and counterexample traces print labels.
pub type Label = &'static str;

/// Index of a command within its [`Program`]'s arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ComId(u32);

impl ComId {
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw arena index, for external state serialization (e.g. the
    /// model checker's compact frontier encoding).
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Rebuilds a `ComId` from [`ComId::raw`]. The caller is responsible
    /// for only feeding back values obtained from `raw` on the *same*
    /// program; a stale or foreign index is not dereferenceable.
    pub fn from_raw(raw: u32) -> ComId {
        ComId(raw)
    }

    /// A placeholder id for tests that build intentionally-unreachable
    /// control structure; must never be dereferenced.
    #[cfg(test)]
    pub(crate) fn dummy_for_test() -> ComId {
        ComId(u32::MAX)
    }
}

/// Non-deterministic local operation: maps a local state to the set of
/// possible successor local states. Returning an empty vector means the
/// operation is *disabled* in that state (the process blocks), which is how
/// guards/awaits are modelled.
pub type OpFn<S> = Arc<dyn Fn(&S) -> Vec<S> + Send + Sync>;

/// Computes the set of request values α the sender offers (data
/// non-determinism: each α is offered as a separate potential rendezvous;
/// an empty vector disables the request).
pub type ActFn<S, Req> = Arc<dyn Fn(&S) -> Vec<Req> + Send + Sync>;

/// Applies the chosen request α and the response value β to the sender's
/// local state, non-deterministically.
pub type RecvFn<S, Req, Resp> = Arc<dyn Fn(&S, &Req, &Resp) -> Vec<S> + Send + Sync>;

/// The receiver's side of a rendezvous: given the request α and the
/// receiver's local state, the set of (successor state, response β) pairs.
/// An empty vector means the receiver cannot answer this particular request
/// (no rendezvous forms), which is how the system process pattern-matches on
/// request shapes.
pub type RespFn<S, Req, Resp> = Arc<dyn Fn(&Req, &S) -> Vec<(S, Resp)> + Send + Sync>;

/// Evaluates a branch condition on the local state.
pub type CondFn<S> = Arc<dyn Fn(&S) -> bool + Send + Sync>;

/// An abstract shared-memory location.
///
/// Static analyses cannot evaluate the opaque request closures of a
/// [`Com::Request`], so commands are summarised at the granularity of
/// *named location regions* ("fM", "phase", "field", …). Region names are
/// model-specific; the analysis only compares them for equality.
pub type AbsLoc = &'static str;

/// A static summary of an atomic command's shared-memory behaviour under
/// x86-TSO, attached to commands via [`Program::annotate`].
///
/// The summary describes the effect on the *issuing thread's* store buffer
/// and its visibility: what a forward may-buffered-write analysis needs in
/// order to reason about fence placement without enumerating interleavings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemEffect {
    /// Loads the region (store-buffer forwarding, else shared memory).
    Load(AbsLoc),
    /// Stores to the region; the write is enqueued on the issuing thread's
    /// store buffer and becomes globally visible only at a later commit.
    Store(AbsLoc),
    /// Drains the issuing thread's store buffer (`MFENCE`, or any
    /// rendezvous whose enabling condition requires an empty buffer).
    Fence,
    /// A locked read-modify-write of the region: reads and writes it and
    /// leaves the buffer drained (x86 locked instructions flush on
    /// completion).
    LockedRmw(AbsLoc),
    /// No shared-memory access (local computation, or an atomic service
    /// rendezvous that touches no TSO-visible location).
    Pure,
}

impl fmt::Display for MemEffect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemEffect::Load(l) => write!(f, "load {l}"),
            MemEffect::Store(l) => write!(f, "store {l}"),
            MemEffect::Fence => write!(f, "fence"),
            MemEffect::LockedRmw(l) => write!(f, "locked-rmw {l}"),
            MemEffect::Pure => write!(f, "pure"),
        }
    }
}

/// A CIMP command (Figure 7 of the paper).
///
/// `LocalOp`, `Request` and `Response` are the atomic commands — the only
/// ones that produce transitions. The rest are control structure, resolved
/// structurally by the semantics in [`crate::step`].
pub enum Com<S, Req, Resp> {
    /// `{ℓ} LOCALOP R`: non-deterministic update of the local state.
    LocalOp {
        /// Program location.
        label: Label,
        /// The update relation.
        op: OpFn<S>,
    },
    /// `{ℓ} REQUEST act val`: offer a rendezvous with any of the request
    /// values `act(s)`; on completion update the local state with the
    /// chosen α and received β via `recv`.
    Request {
        /// Program location.
        label: Label,
        /// Computes the offered α values from the sender state.
        act: ActFn<S, Req>,
        /// Applies the chosen α and the received β to the sender state.
        recv: RecvFn<S, Req, Resp>,
    },
    /// `{ℓ} RESPONSE f`: offer to answer a rendezvous; `resp` maps the
    /// incoming α and the local state to possible (state, β) outcomes.
    Response {
        /// Program location.
        label: Label,
        /// The response relation.
        resp: RespFn<S, Req, Resp>,
    },
    /// `c₁ ;; c₂`: sequential composition.
    Seq(ComId, ComId),
    /// `IF cond THEN c₁ ELSE c₂`: deterministic branch on local state.
    /// `else_c = None` is a structural skip: a false condition simply
    /// falls through to the continuation without producing a step.
    If {
        /// Branch condition over the local state.
        cond: CondFn<S>,
        /// Taken when the condition holds.
        then_c: ComId,
        /// Taken otherwise (`None`: fall through).
        else_c: Option<ComId>,
    },
    /// `WHILE cond DO c`: loop while the condition holds.
    While {
        /// Loop condition over the local state.
        cond: CondFn<S>,
        /// Loop body.
        body: ComId,
    },
    /// `LOOP c`: infinite repetition (the collector's outer loop).
    Loop(ComId),
    /// `c₁ ⊓ c₂ ⊓ …`: non-deterministic choice among branches. A branch
    /// whose first atomic action is disabled simply cannot be chosen.
    Choose(Vec<ComId>),
}

impl<S, Req, Resp> fmt::Debug for Com<S, Req, Resp> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Com::LocalOp { label, .. } => write!(f, "LocalOp({label})"),
            Com::Request { label, .. } => write!(f, "Request({label})"),
            Com::Response { label, .. } => write!(f, "Response({label})"),
            Com::Seq(a, b) => write!(f, "Seq({a:?}, {b:?})"),
            Com::If { then_c, else_c, .. } => write!(f, "If(_, {then_c:?}, {else_c:?})"),
            Com::While { body, .. } => write!(f, "While(_, {body:?})"),
            Com::Loop(c) => write!(f, "Loop({c:?})"),
            Com::Choose(cs) => write!(f, "Choose({cs:?})"),
        }
    }
}

/// A CIMP program: an arena of commands plus an entry point.
///
/// Commands reference each other by [`ComId`], so control states (frame
/// stacks of `ComId`) are cheap to clone, hash and compare — the property
/// the model checker relies on.
pub struct Program<S, Req, Resp> {
    coms: Vec<Com<S, Req, Resp>>,
    effects: Vec<Option<MemEffect>>,
    entry: Option<ComId>,
}

impl<S, Req, Resp> fmt::Debug for Program<S, Req, Resp> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Program")
            .field("commands", &self.coms.len())
            .field("entry", &self.entry)
            .finish()
    }
}

impl<S, Req, Resp> Default for Program<S, Req, Resp> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S, Req, Resp> Program<S, Req, Resp> {
    /// Creates an empty program.
    pub fn new() -> Self {
        Program {
            coms: Vec::new(),
            effects: Vec::new(),
            entry: None,
        }
    }

    /// Number of commands in the arena.
    pub fn len(&self) -> usize {
        self.coms.len()
    }

    /// Whether the program has no commands.
    pub fn is_empty(&self) -> bool {
        self.coms.is_empty()
    }

    /// The command stored at `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this program.
    pub fn com(&self, id: ComId) -> &Com<S, Req, Resp> {
        &self.coms[id.index()]
    }

    /// Sets the program's entry point.
    pub fn set_entry(&mut self, entry: ComId) {
        self.entry = Some(entry);
    }

    /// The program's entry point.
    ///
    /// # Panics
    ///
    /// Panics if no entry point was set.
    pub fn entry(&self) -> ComId {
        self.entry.expect("program entry point not set")
    }

    fn push(&mut self, com: Com<S, Req, Resp>) -> ComId {
        let id = ComId(u32::try_from(self.coms.len()).expect("program too large"));
        self.coms.push(com);
        self.effects.push(None);
        id
    }

    /// Attaches a static memory-effect summary to the command at `id` and
    /// returns `id` for chaining. Effects feed the `gc-analysis` store-buffer
    /// dataflow; unannotated atomic commands are reported by its `A004` lint.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this program.
    pub fn annotate(&mut self, id: ComId, effect: MemEffect) -> ComId {
        assert!(id.index() < self.coms.len(), "annotate: unknown ComId");
        self.effects[id.index()] = Some(effect);
        id
    }

    /// The memory-effect summary of the command at `id`, if one was attached.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this program.
    pub fn effect(&self, id: ComId) -> Option<MemEffect> {
        self.effects[id.index()]
    }

    /// Adds a non-deterministic local operation.
    pub fn local_op(
        &mut self,
        label: Label,
        op: impl Fn(&S) -> Vec<S> + Send + Sync + 'static,
    ) -> ComId {
        self.push(Com::LocalOp {
            label,
            op: Arc::new(op),
        })
    }

    /// Adds a deterministic local assignment (a `LocalOp` with exactly one
    /// successor).
    pub fn assign(&mut self, label: Label, f: impl Fn(&mut S) + Send + Sync + 'static) -> ComId
    where
        S: Clone,
    {
        self.local_op(label, move |s| {
            let mut s2 = s.clone();
            f(&mut s2);
            vec![s2]
        })
    }

    /// Adds a guard: a step that is enabled only when `cond` holds and
    /// leaves the state unchanged (an *await*).
    pub fn guard(
        &mut self,
        label: Label,
        cond: impl Fn(&S) -> bool + Send + Sync + 'static,
    ) -> ComId
    where
        S: Clone,
    {
        self.local_op(
            label,
            move |s| if cond(s) { vec![s.clone()] } else { Vec::new() },
        )
    }

    /// Adds a no-op step (useful as a visible program point).
    pub fn skip(&mut self, label: Label) -> ComId
    where
        S: Clone,
    {
        self.local_op(label, |s| vec![s.clone()])
    }

    /// Adds a `Request` command with a single (deterministic) request value
    /// — the paper's `REQUEST act val`.
    pub fn request(
        &mut self,
        label: Label,
        act: impl Fn(&S) -> Req + Send + Sync + 'static,
        recv: impl Fn(&S, &Resp) -> Vec<S> + Send + Sync + 'static,
    ) -> ComId {
        self.push(Com::Request {
            label,
            act: Arc::new(move |s| vec![act(s)]),
            recv: Arc::new(move |s, _req, beta| recv(s, beta)),
        })
    }

    /// Adds a `Request` command offering a *set* of request values (data
    /// non-determinism): each α in `act(s)` is a separate potential
    /// rendezvous, and `recv` learns which α was taken. An empty set
    /// disables the request.
    pub fn request_nd(
        &mut self,
        label: Label,
        act: impl Fn(&S) -> Vec<Req> + Send + Sync + 'static,
        recv: impl Fn(&S, &Req, &Resp) -> Vec<S> + Send + Sync + 'static,
    ) -> ComId {
        self.push(Com::Request {
            label,
            act: Arc::new(act),
            recv: Arc::new(recv),
        })
    }

    /// Adds a `Request` whose response is ignored (the state is unchanged
    /// upon completion).
    pub fn request_ignore(
        &mut self,
        label: Label,
        act: impl Fn(&S) -> Req + Send + Sync + 'static,
    ) -> ComId
    where
        S: Clone,
    {
        self.request(label, act, |s, _| vec![s.clone()])
    }

    /// Adds a `Response` command.
    pub fn response(
        &mut self,
        label: Label,
        resp: impl Fn(&Req, &S) -> Vec<(S, Resp)> + Send + Sync + 'static,
    ) -> ComId {
        self.push(Com::Response {
            label,
            resp: Arc::new(resp),
        })
    }

    /// Sequential composition of two commands.
    pub fn seq2(&mut self, first: ComId, second: ComId) -> ComId {
        self.push(Com::Seq(first, second))
    }

    /// Sequential composition of a non-empty list of commands.
    ///
    /// # Panics
    ///
    /// Panics if `cmds` is empty.
    pub fn seq(&mut self, cmds: impl IntoIterator<Item = ComId>) -> ComId {
        let mut iter = cmds.into_iter();
        let first = iter.next().expect("seq of zero commands");
        iter.fold(first, |acc, c| self.seq2(acc, c))
    }

    /// `IF cond THEN then_c ELSE else_c`.
    pub fn if_else(
        &mut self,
        cond: impl Fn(&S) -> bool + Send + Sync + 'static,
        then_c: ComId,
        else_c: ComId,
    ) -> ComId {
        self.push(Com::If {
            cond: Arc::new(cond),
            then_c,
            else_c: Some(else_c),
        })
    }

    /// `IF cond THEN then_c` — a false condition falls through
    /// *structurally*, producing no step.
    pub fn if_then(
        &mut self,
        cond: impl Fn(&S) -> bool + Send + Sync + 'static,
        then_c: ComId,
    ) -> ComId {
        self.push(Com::If {
            cond: Arc::new(cond),
            then_c,
            else_c: None,
        })
    }

    /// `WHILE cond DO body`.
    pub fn while_do(
        &mut self,
        cond: impl Fn(&S) -> bool + Send + Sync + 'static,
        body: ComId,
    ) -> ComId {
        self.push(Com::While {
            cond: Arc::new(cond),
            body,
        })
    }

    /// `LOOP body`: repeat forever.
    pub fn loop_forever(&mut self, body: ComId) -> ComId {
        self.push(Com::Loop(body))
    }

    /// Non-deterministic choice among the given branches.
    ///
    /// # Panics
    ///
    /// Panics if `branches` is empty.
    pub fn choose(&mut self, branches: impl IntoIterator<Item = ComId>) -> ComId {
        let branches: Vec<ComId> = branches.into_iter().collect();
        assert!(!branches.is_empty(), "choose of zero branches");
        self.push(Com::Choose(branches))
    }

    /// All command ids in the arena, in allocation order. Static analyses
    /// use this to sweep for commands not reachable from the entry point.
    pub fn com_ids(&self) -> impl Iterator<Item = ComId> {
        (0..self.coms.len()).map(|i| ComId(i as u32))
    }

    /// The label of an atomic command, if `id` refers to one.
    pub fn label(&self, id: ComId) -> Option<Label> {
        match self.com(id) {
            Com::LocalOp { label, .. }
            | Com::Request { label, .. }
            | Com::Response { label, .. } => Some(label),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type P = Program<u32, (), ()>;

    #[test]
    fn builder_allocates_dense_ids() {
        let mut p = P::new();
        let a = p.skip("a");
        let b = p.skip("b");
        let s = p.seq2(a, b);
        assert_eq!(p.len(), 3);
        assert!(matches!(p.com(s), Com::Seq(x, y) if *x == a && *y == b));
    }

    #[test]
    fn labels_only_on_atomic_commands() {
        let mut p = P::new();
        let a = p.assign("inc", |s| *s += 1);
        let w = p.while_do(|s| *s < 3, a);
        assert_eq!(p.label(a), Some("inc"));
        assert_eq!(p.label(w), None);
    }

    #[test]
    #[should_panic(expected = "entry point not set")]
    fn entry_unset_panics() {
        let p = P::new();
        let _ = p.entry();
    }

    #[test]
    #[should_panic(expected = "choose of zero branches")]
    fn empty_choose_panics() {
        let mut p = P::new();
        let _ = p.choose([]);
    }

    #[test]
    fn effects_default_to_none_and_annotate() {
        let mut p = P::new();
        let a = p.skip("a");
        let b = p.skip("b");
        assert_eq!(p.effect(a), None);
        let a2 = p.annotate(a, MemEffect::Store("x"));
        assert_eq!(a2, a);
        assert_eq!(p.effect(a), Some(MemEffect::Store("x")));
        assert_eq!(p.effect(b), None);
        assert_eq!(MemEffect::Load("y").to_string(), "load y");
    }
}
