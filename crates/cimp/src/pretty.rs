//! A pretty-printer for CIMP programs.
//!
//! Renders a program's command tree as indented text, with the labels of
//! atomic commands visible — useful for eyeballing a model against its
//! paper pseudo-code (the collector of Figure 2 prints as a structured
//! outline) and for debugging control-flow mistakes in model construction.

use std::fmt::Write as _;

use crate::program::{Com, ComId, Program};

/// Renders the sub-program rooted at `entry` as an indented outline.
///
/// Sequencing is flattened; loops, conditionals and choices indent their
/// bodies. Shared sub-programs (the same [`ComId`] reachable through
/// several parents, e.g. a `mark` routine inlined at multiple call sites)
/// are printed in full at each occurrence unless they would recurse, which
/// cannot happen since programs are DAGs by construction.
pub fn render<S, Req, Resp>(program: &Program<S, Req, Resp>, entry: ComId) -> String {
    let mut out = String::new();
    render_into(program, entry, 0, &mut out);
    out
}

/// Renders the whole program from its entry point.
///
/// # Panics
///
/// Panics if the program has no entry point.
pub fn render_program<S, Req, Resp>(program: &Program<S, Req, Resp>) -> String {
    render(program, program.entry())
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn render_into<S, Req, Resp>(
    program: &Program<S, Req, Resp>,
    id: ComId,
    depth: usize,
    out: &mut String,
) {
    match program.com(id) {
        Com::LocalOp { label, .. } => {
            indent(out, depth);
            let _ = writeln!(out, "{{{label}}} local-op");
        }
        Com::Request { label, .. } => {
            indent(out, depth);
            let _ = writeln!(out, "{{{label}}} request");
        }
        Com::Response { label, .. } => {
            indent(out, depth);
            let _ = writeln!(out, "{{{label}}} response");
        }
        Com::Seq(a, b) => {
            render_into(program, *a, depth, out);
            render_into(program, *b, depth, out);
        }
        Com::If { then_c, else_c, .. } => {
            indent(out, depth);
            out.push_str("if <cond>\n");
            render_into(program, *then_c, depth + 1, out);
            if let Some(e) = else_c {
                indent(out, depth);
                out.push_str("else\n");
                render_into(program, *e, depth + 1, out);
            }
        }
        Com::While { body, .. } => {
            indent(out, depth);
            out.push_str("while <cond>\n");
            render_into(program, *body, depth + 1, out);
        }
        Com::Loop(body) => {
            indent(out, depth);
            out.push_str("loop\n");
            render_into(program, *body, depth + 1, out);
        }
        Com::Choose(branches) => {
            indent(out, depth);
            out.push_str("choose\n");
            for (i, b) in branches.iter().enumerate() {
                indent(out, depth);
                let _ = writeln!(out, "| branch {i}");
                render_into(program, *b, depth + 1, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type P = Program<u32, (), ()>;

    #[test]
    fn renders_structure() {
        let mut p = P::new();
        let a = p.skip("a");
        let b = p.skip("b");
        let body = p.seq2(a, b);
        let w = p.while_do(|s| *s < 3, body);
        let init = p.assign("init", |s| *s = 0);
        let main = p.seq2(init, w);
        p.set_entry(main);
        let text = render_program(&p);
        assert_eq!(
            text,
            "{init} local-op\nwhile <cond>\n  {a} local-op\n  {b} local-op\n"
        );
    }

    #[test]
    fn renders_choice_and_if() {
        let mut p = P::new();
        let x = p.skip("x");
        let y = p.skip("y");
        let c = p.choose([x, y]);
        let guard = p.if_then(|_| true, c);
        p.set_entry(guard);
        let text = render_program(&p);
        assert!(text.contains("if <cond>"));
        assert!(text.contains("| branch 0"));
        assert!(text.contains("{y} local-op"));
    }

    #[test]
    fn shared_subprograms_print_at_each_site() {
        let mut p = P::new();
        let shared = p.skip("shared");
        let seq = p.seq2(shared, shared);
        p.set_entry(seq);
        let text = render_program(&p);
        assert_eq!(text.matches("{shared}").count(), 2);
    }
}
