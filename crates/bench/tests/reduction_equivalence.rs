//! Verdict-equivalence suite for the state-space reductions.
//!
//! The reductions (`por`, `symmetry`, `sb_canon` — see `DESIGN.md` §2.13)
//! are sound iff they change *state counts only*: every combination must
//! produce the same verdict, the same violated property, and a
//! byte-identical counterexample trace as the unreduced baseline, at any
//! worker-thread count. This suite pins that down across all 2³ reduction
//! combinations × 1/2/4 BFS threads, on faithful (verifying) instances and
//! on each paper ablation (violating instances), plus the TSO litmus
//! suite for the buffer-canonicalization leg on its own.

use gc_bench::{check_config_opts, CheckReport, Suite};
use gc_model::{InitialHeap, ModelConfig};
use mc::{CheckerConfig, Reduction, Strategy};
use tso_model::litmus;
use tso_model::MemoryModel;

/// State cap per run. Every instance in this suite completes (verifies or
/// finds its counterexample) well under it; hitting the cap fails the
/// baseline assertion rather than silently weakening the comparison.
const MAX_STATES: usize = 2_000_000;

/// All 2³ reduction combinations, `none` first.
fn combos() -> Vec<Reduction> {
    let mut out = Vec::new();
    for por in [false, true] {
        for symmetry in [false, true] {
            for sb_canon in [false, true] {
                out.push(Reduction {
                    por,
                    symmetry,
                    sb_canon,
                });
            }
        }
    }
    out
}

fn run(name: &str, cfg: &ModelConfig, suite: Suite, r: Reduction, threads: usize) -> CheckReport {
    check_config_opts(
        format!(
            "{name} por={} sym={} sb={} threads={threads}",
            r.por, r.symmetry, r.sb_canon
        ),
        cfg,
        suite.properties(cfg),
        CheckerConfig {
            max_states: MAX_STATES,
            hash_compact: true,
            ..CheckerConfig::default()
        }
        .reduction(r),
        Strategy::Bfs { threads },
    )
}

/// Checks `cfg` under every reduction combination at 1/2/4 worker threads
/// and asserts verdict, violated-property, and trace equality against the
/// unreduced single-threaded baseline.
fn assert_equivalent(name: &str, cfg: &ModelConfig, suite: Suite) {
    let baseline = run(name, cfg, suite, Reduction::default(), 1);
    assert!(
        !baseline.outcome.contains("BOUNDED"),
        "{name}: baseline must complete, got {}",
        baseline.outcome
    );
    for r in combos() {
        for threads in [1usize, 2, 4] {
            if !r.any() && threads == 1 {
                continue; // that is the baseline itself
            }
            let report = run(name, cfg, suite, r, threads);
            assert_eq!(
                report.outcome, baseline.outcome,
                "{}: verdict differs from baseline",
                report.label
            );
            assert_eq!(
                report.violated, baseline.violated,
                "{}: violated property differs from baseline",
                report.label
            );
            assert_eq!(
                report.trace, baseline.trace,
                "{}: counterexample trace differs from baseline",
                report.label
            );
        }
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "exhausts a verifying state space 23 times; run with --release (CI: reduction-bench)"
)]
fn faithful_one_mutator_store_discard() {
    let mut cfg = ModelConfig::small(1, 2);
    cfg.ops.alloc = false;
    cfg.ops.load = false;
    assert_equivalent("1mut store/discard", &cfg, Suite::Full);
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "exhausts a verifying state space 23 times; run with --release (CI: reduction-bench)"
)]
fn faithful_two_mutators_symmetric_store_only() {
    // Symmetric (identical root sets), so the symmetry leg actually
    // engages; store-only keeps the space small enough for debug builds.
    let mut cfg = ModelConfig::small(2, 2);
    cfg.initial = InitialHeap::shared_object(2, 1);
    cfg.ops.alloc = false;
    cfg.ops.load = false;
    cfg.ops.discard = false;
    assert_equivalent("2mut symmetric store-only", &cfg, Suite::Full);
}

#[test]
fn ablation_no_deletion_barrier() {
    let mut cfg = ModelConfig::small(1, 3);
    cfg.deletion_barrier = false;
    cfg.initial = InitialHeap::chain(1, 2, 1); // Figure 1's hiding shape
    cfg.ops.alloc = false;
    assert_equivalent("no deletion barrier", &cfg, Suite::Full);
}

#[test]
fn ablation_no_insertion_barrier() {
    let mut cfg = ModelConfig::small(1, 3);
    cfg.insertion_barrier = false;
    assert_equivalent("no insertion barrier", &cfg, Suite::Full);
}

#[test]
fn ablation_no_handshake_fences_tso() {
    let mut cfg = ModelConfig::small(1, 2);
    cfg.handshake_fences = false;
    assert_equivalent("no handshake fences", &cfg, Suite::SafetyOnly);
}

#[test]
fn ablation_racy_mark_two_mutators_symmetric() {
    // Violating *and* symmetric: the counterexample replay must stay
    // byte-identical even when the orbit merging was active on the way.
    let mut cfg = ModelConfig::small(2, 2);
    cfg.mark_cas = false;
    cfg.initial = InitialHeap::shared_object(2, 1);
    cfg.ops.alloc = false;
    cfg.ops.load = false;
    assert_equivalent("racy mark, 2mut shared", &cfg, Suite::Full);
}

#[test]
fn litmus_outcomes_unchanged_by_buffer_canonicalization() {
    let mut tests = litmus::suite();
    tests.push(litmus::sb_dups());
    tests.push(litmus::cas_race());
    for t in &tests {
        for model in [MemoryModel::Tso, MemoryModel::Sc] {
            let plain = t.outcomes_with(model, false);
            let canon = t.outcomes_with(model, true);
            assert_eq!(
                plain,
                canon,
                "{} ({model:?}): canonicalization changed the observable outcomes",
                t.name()
            );
            assert!(
                t.state_count_with(model, true) <= t.state_count_with(model, false),
                "{} ({model:?}): canonicalization grew the state space",
                t.name()
            );
        }
    }
}
