//! Shared infrastructure for the experiment drivers in `src/bin/` — each
//! binary regenerates the evidence for one figure (or observation) of
//! *Relaxing Safely* (PLDI 2015). See the workspace `EXPERIMENTS.md` for
//! the figure → binary map and recorded results.

use std::time::{Duration, Instant};

use gc_model::invariants::{combined_property, safety_property};
use gc_model::{GcModel, ModelConfig};
use mc::{Checker, Outcome, Property};

/// Which invariants a run checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Suite {
    /// The full §3.2 suite (including the phase-ghost-indexed invariants,
    /// which presuppose the faithful handshake structure).
    Full,
    /// Only the headline safety property `valid_refs_inv` — used for
    /// ablations that intentionally change the handshake structure.
    SafetyOnly,
}

/// The distilled result of one model-checking run.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Human-readable configuration label.
    pub label: String,
    /// `VERIFIED`, `VIOLATED <inv>`, or `BOUNDED (...)`.
    pub outcome: String,
    /// Distinct states visited.
    pub states: usize,
    /// Transitions traversed.
    pub transitions: usize,
    /// Deepest BFS level reached.
    pub depth: usize,
    /// Wall-clock time.
    pub elapsed: Duration,
    /// The violated invariant, if any.
    pub violated: Option<&'static str>,
    /// The formatted counterexample trace, if any.
    pub trace: Option<String>,
}

impl CheckReport {
    /// Whether the run verified exhaustively.
    pub fn verified(&self) -> bool {
        self.outcome == "VERIFIED"
    }
}

/// Model-checks `cfg` with the chosen suite, up to `max_states`
/// (hash-compacted), and distils the outcome.
pub fn check_config(
    label: impl Into<String>,
    cfg: &ModelConfig,
    max_states: usize,
    suite: Suite,
) -> CheckReport {
    let prop = match suite {
        Suite::Full => combined_property(cfg),
        Suite::SafetyOnly => safety_property(cfg),
    };
    check_config_with(label, cfg, max_states, vec![prop])
}

/// Like [`check_config`] but with caller-supplied properties.
pub fn check_config_with(
    label: impl Into<String>,
    cfg: &ModelConfig,
    max_states: usize,
    properties: Vec<Property<gc_model::ModelState>>,
) -> CheckReport {
    let model = GcModel::new(cfg.clone());
    let mut checker = Checker::new().max_states(max_states).hash_compact(true);
    for p in properties {
        checker = checker.property(p);
    }
    let t0 = Instant::now();
    let outcome = checker.run(&model);
    let elapsed = t0.elapsed();
    let stats = outcome.stats();
    let (outcome_str, violated, trace) = match &outcome {
        Outcome::Verified(_) => ("VERIFIED".to_string(), None, None),
        Outcome::Violated {
            property, trace, ..
        } => (
            format!("VIOLATED {property}"),
            Some(*property),
            Some(model.format_trace(&trace.actions)),
        ),
        Outcome::BoundReached { bound, .. } => (format!("BOUNDED ({bound})"), None, None),
        Outcome::Deadlock { trace, .. } => (
            "DEADLOCK".to_string(),
            None,
            Some(model.format_trace(&trace.actions)),
        ),
    };
    CheckReport {
        label: label.into(),
        outcome: outcome_str,
        states: stats.states,
        transitions: stats.transitions,
        depth: stats.depth,
        elapsed,
        violated,
        trace,
    }
}

/// Prints a row-per-report table.
pub fn print_table(reports: &[CheckReport]) {
    println!(
        "{:<44} {:>12} {:>13} {:>6} {:>9}  {}",
        "configuration", "states", "transitions", "depth", "time", "outcome"
    );
    println!("{}", "-".repeat(118));
    for r in reports {
        println!(
            "{:<44} {:>12} {:>13} {:>6} {:>8.1}s  {}",
            r.label,
            r.states,
            r.transitions,
            r.depth,
            r.elapsed.as_secs_f64(),
            r.outcome
        );
    }
}

/// Prints a counterexample trace, if present, under a header.
pub fn print_trace(report: &CheckReport) {
    if let Some(trace) = &report.trace {
        println!("\ncounterexample for `{}`:", report.label);
        println!("{trace}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_config_distils_outcomes() {
        let mut cfg = ModelConfig::small(1, 2);
        cfg.ops.alloc = false;
        cfg.ops.load = false;
        cfg.ops.store = false;
        let report = check_config("tiny", &cfg, 500_000, Suite::Full);
        assert!(report.states > 0);
        assert!(report.violated.is_none(), "outcome: {}", report.outcome);
    }
}
