//! Shared infrastructure for the experiment drivers in `src/bin/` — each
//! binary regenerates the evidence for one figure (or observation) of
//! *Relaxing Safely* (PLDI 2015). See the workspace `EXPERIMENTS.md` for
//! the figure → binary map and recorded results.

pub mod harness;

use std::time::{Duration, Instant};

use gc_model::invariants::{combined_property, safety_property};
use gc_model::{GcModel, ModelConfig};
use mc::{Checker, CheckerConfig, Property, Strategy};

/// Which invariants a run checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Suite {
    /// The full §3.2 suite (including the phase-ghost-indexed invariants,
    /// which presuppose the faithful handshake structure).
    Full,
    /// Only the headline safety property `valid_refs_inv` — used for
    /// ablations that intentionally change the handshake structure.
    SafetyOnly,
}

impl Suite {
    /// The property set this suite checks for `cfg`.
    pub fn properties(self, cfg: &ModelConfig) -> Vec<Property<gc_model::ModelState>> {
        match self {
            Suite::Full => vec![combined_property(cfg)],
            Suite::SafetyOnly => vec![safety_property(cfg)],
        }
    }
}

/// The distilled result of one model-checking run.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Human-readable configuration label.
    pub label: String,
    /// `VERIFIED`, `VIOLATED <inv>`, or `BOUNDED (...)`.
    pub outcome: String,
    /// Distinct states visited.
    pub states: usize,
    /// Transitions traversed.
    pub transitions: usize,
    /// Deepest BFS level reached.
    pub depth: usize,
    /// Wall-clock time.
    pub elapsed: Duration,
    /// The violated invariant, if any.
    pub violated: Option<&'static str>,
    /// The formatted counterexample trace, if any.
    pub trace: Option<String>,
}

impl CheckReport {
    /// Whether the run verified exhaustively.
    pub fn verified(&self) -> bool {
        self.outcome == "VERIFIED"
    }
}

/// The default exploration bounds for experiment runs: hash-compact dedup
/// under a state cap.
pub fn bounded_config(max_states: usize) -> CheckerConfig {
    CheckerConfig {
        max_states,
        hash_compact: true,
        ..CheckerConfig::default()
    }
}

/// Model-checks `cfg` with the chosen suite, up to `max_states`
/// (hash-compacted, sequential BFS), and distils the outcome.
pub fn check_config(
    label: impl Into<String>,
    cfg: &ModelConfig,
    max_states: usize,
    suite: Suite,
) -> CheckReport {
    check_config_with(label, cfg, max_states, suite.properties(cfg))
}

/// Like [`check_config`] but with caller-supplied properties.
pub fn check_config_with(
    label: impl Into<String>,
    cfg: &ModelConfig,
    max_states: usize,
    properties: Vec<Property<gc_model::ModelState>>,
) -> CheckReport {
    check_config_opts(
        label,
        cfg,
        properties,
        bounded_config(max_states),
        Strategy::default(),
    )
}

/// The fully general driver: model-checks `cfg` with caller-supplied
/// properties, checker configuration and strategy.
pub fn check_config_opts(
    label: impl Into<String>,
    cfg: &ModelConfig,
    properties: Vec<Property<gc_model::ModelState>>,
    checker_config: CheckerConfig,
    strategy: Strategy,
) -> CheckReport {
    let model = GcModel::new(cfg.clone());
    let mut checker = Checker::with_config(checker_config).strategy(strategy);
    for p in properties {
        checker = checker.property(p);
    }
    let t0 = Instant::now();
    let outcome = checker.run(&model);
    let elapsed = t0.elapsed();
    let stats = outcome.stats();
    CheckReport {
        label: label.into(),
        outcome: outcome.verdict(),
        states: stats.states,
        transitions: stats.transitions,
        depth: stats.depth,
        elapsed,
        violated: outcome.violated_property(),
        trace: outcome
            .trace()
            .map(|trace| model.format_trace(&trace.actions)),
    }
}

/// Prints a row-per-report table.
pub fn print_table(reports: &[CheckReport]) {
    println!(
        "{:<44} {:>12} {:>13} {:>6} {:>9}  outcome",
        "configuration", "states", "transitions", "depth", "time"
    );
    println!("{}", "-".repeat(118));
    for r in reports {
        println!(
            "{:<44} {:>12} {:>13} {:>6} {:>8.1}s  {}",
            r.label,
            r.states,
            r.transitions,
            r.depth,
            r.elapsed.as_secs_f64(),
            r.outcome
        );
    }
}

/// Prints a counterexample trace, if present, under a header.
pub fn print_trace(report: &CheckReport) {
    if let Some(trace) = &report.trace {
        println!("\ncounterexample for `{}`:", report.label);
        println!("{trace}");
    }
}

/// A [`CheckReport`] as a flat JSON object for `BENCH_*.json` records.
pub fn report_json(report: &CheckReport) -> gc_trace::Json {
    gc_trace::Json::obj()
        .set("label", report.label.as_str())
        .set("outcome", report.outcome.as_str())
        .set("states", report.states)
        .set("transitions", report.transitions)
        .set("depth", report.depth)
        .set("elapsed_s", report.elapsed.as_secs_f64())
}

/// Writes a [`gc_trace::bench_record`] document to
/// `experiments_output/BENCH_<bench>.json` at the *workspace root*
/// (creating the directory), and returns the path. Delegates to
/// [`gc_trace::write_bench_record`], which anchors at the repository root
/// (walking up from `CARGO_MANIFEST_DIR` — `cargo bench` and `cargo test`
/// set the working directory to the package root, so a cwd-relative path
/// would scatter records across `crates/*`) and rejects records that do
/// not conform to the `gc-bench/v1` schema. Bench bins treat failures
/// here as warnings, not errors — the measurement already happened.
pub fn write_bench_record(
    bench: &str,
    record: &gc_trace::Json,
) -> std::io::Result<std::path::PathBuf> {
    gc_trace::write_bench_record(bench, record)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_config_distils_outcomes() {
        let mut cfg = ModelConfig::small(1, 2);
        cfg.ops.alloc = false;
        cfg.ops.load = false;
        cfg.ops.store = false;
        let report = check_config("tiny", &cfg, 500_000, Suite::Full);
        assert!(report.states > 0);
        assert!(report.violated.is_none(), "outcome: {}", report.outcome);
    }
}
