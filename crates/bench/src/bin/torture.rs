//! **Torture — the chaos-engine acceptance harness.**
//!
//! For each seed, runs K mutator threads churning a shared structure under
//! a randomized deterministic [`FaultPlan`] (handshake delay storms,
//! spurious mark-CAS losses, injected silence, mid-barrier mutator panics,
//! slow staged transfers) while the driver thread runs collection cycles
//! back to back with the handshake watchdog armed.
//!
//! The run asserts, per seed:
//!
//! * **termination** — every cycle reaches an outcome (`Completed` or
//!   `TimedOut`), never a hang, even with mutators silent for several
//!   handshake generations or leaked without deregistering;
//! * **safety** — the use-after-free oracle (validation mode) never fires:
//!   every churner panic must be a chaos-injected one;
//! * **heap validity** — live objects never exceed capacity mid-run, and
//!   after quiescence the free list is exhaustive and duplicate-free, the
//!   phase is idle, and all garbage is reclaimed within two completed
//!   cycles.
//!
//! Usage: `torture [--seeds 1,2,3] [--ops N] [--mutators K] [--capacity N]
//! [--layout slab|segmented|both] [--metrics-addr ADDR]`. Every seed runs
//! once per selected heap layout — the chaos plans include storms on the
//! segmented-only TLAB refill and lazy-sweep sites. `--metrics-addr`
//! serves the run's registry live over HTTP (`/metrics`, `/metrics.json`,
//! `/healthz` keyed to `torture_collect_calls_total` progress). Exits
//! nonzero if any verdict is not OK.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use gc_bench::write_bench_record;
use gc_trace::{Json, Liveness, MetricsServer, Registry};
use otf_gc::{Collector, FaultPlan, Gc, GcConfig, HeapLayout, Mutator};

/// One mutator's churn loop: grow a shared list off `anchor`, cut it loose
/// periodically, and walk the visible prefix (every access validated by the
/// use-after-free oracle).
fn churn(mut m: Mutator, anchor: Gc, ops: usize) {
    for op in 0..ops {
        m.safepoint();
        match m.alloc(2) {
            Ok(node) => {
                let old = m.load(anchor, 0);
                m.store(node, 0, old);
                m.store(anchor, 0, Some(node));
                if let Some(o) = old {
                    m.discard(o);
                }
                m.discard(node);
            }
            // HeapFull/Exhausted is backpressure, not failure: the driver's
            // next cycle (or our own emergency cycle) frees the cuttings.
            Err(_) => std::thread::yield_now(),
        }
        if op.is_multiple_of(64) {
            m.store(anchor, 0, None); // cut: mass garbage
        }
        if op.is_multiple_of(16) {
            let mut cur = m.load(anchor, 0);
            let mut n = 0;
            while let Some(c) = cur {
                let next = m.load(c, 0);
                m.discard(c);
                cur = next;
                n += 1;
                if n > 128 {
                    break;
                }
            }
        }
    }
}

fn panic_message(e: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

struct SeedReport {
    seed: u64,
    layout: &'static str,
    completed: u64,
    timed_out: u64,
    evictions: u64,
    chaos_panics: u64,
    fired: u64,
    verdict: Result<(), String>,
}

fn run_seed(
    seed: u64,
    layout: HeapLayout,
    mutators: usize,
    ops: usize,
    capacity: usize,
    registry: &Registry,
) -> SeedReport {
    let plan = FaultPlan::from_seed(seed);
    let cfg = GcConfig::builder()
        .capacity(capacity)
        .max_fields(2)
        .layout(layout)
        .handshake_timeout(Duration::from_millis(40))
        .emergency_retries(2)
        .alloc_pool(if seed.is_multiple_of(2) { 0 } else { 8 })
        .chaos(plan)
        .build();
    let collector = Collector::new(cfg);

    // Root the shared anchor from a bootstrap mutator until every churner
    // has adopted it, then leave before the first cycle can block on us.
    let mut m0 = collector.register_mutator();
    let anchor = m0.alloc(2).expect("fresh heap has room");
    let mut churners = Vec::new();
    for _ in 0..mutators {
        let mut m = collector.register_mutator();
        m.adopt(anchor);
        churners.push(m);
    }
    drop(m0);
    if seed.is_multiple_of(3) {
        // Leak a registered mutator: never beats, never acks, never
        // deregisters — the watchdog must evict it or no cycle ever ends.
        std::mem::forget(collector.register_mutator());
    }

    let chaos_panics = AtomicUsize::new(0);
    let oracle_trips = AtomicUsize::new(0);
    let first_oracle: Mutex<Option<String>> = Mutex::new(None);
    let finished = AtomicUsize::new(0);
    let mut verdict: Result<(), String> = Ok(());

    std::thread::scope(|s| {
        for m in churners {
            let chaos_panics = &chaos_panics;
            let oracle_trips = &oracle_trips;
            let first_oracle = &first_oracle;
            let finished = &finished;
            s.spawn(move || {
                let r = std::panic::catch_unwind(AssertUnwindSafe(|| churn(m, anchor, ops)));
                if let Err(e) = r {
                    let msg = panic_message(e.as_ref());
                    if msg.starts_with("chaos:") {
                        chaos_panics.fetch_add(1, Ordering::Relaxed);
                    } else {
                        // Anything else is the use-after-free oracle (or a
                        // genuine bug): a safety violation either way.
                        oracle_trips.fetch_add(1, Ordering::Relaxed);
                        first_oracle.lock().unwrap().get_or_insert(msg);
                    }
                }
                finished.fetch_add(1, Ordering::Release);
            });
        }
        // The driver: cycles back to back until every churner is done.
        // The watchdog guarantees each collect() call terminates. Each
        // lap bumps the progress counter the /healthz liveness probe
        // watches and republishes the cumulative cycle gauge.
        let collect_calls = registry.counter("torture_collect_calls_total");
        let cycles_gauge = registry.gauge("gc_cycles_completed");
        while finished.load(Ordering::Acquire) < mutators {
            let _ = collector.collect();
            collect_calls.inc();
            cycles_gauge.set(collector.stats().cycles() as i64);
            let live = collector.live_objects();
            if live > capacity && verdict.is_ok() {
                verdict = Err(format!("{live} live objects exceed capacity {capacity}"));
            }
        }
    });

    // Quiesced: everything is garbage now; two completed cycles must
    // reclaim it all (the §4 floating-garbage bound), and the heap must
    // pass the exhaustive integrity check.
    let mut final_completed = 0;
    for _ in 0..10 {
        if collector.collect().is_completed() {
            final_completed += 1;
            if final_completed == 2 {
                break;
            }
        }
    }
    if verdict.is_ok() && final_completed < 2 {
        verdict = Err("quiesced heap failed to complete two cycles".into());
    }
    if verdict.is_ok() && oracle_trips.load(Ordering::Relaxed) > 0 {
        verdict = Err(format!(
            "use-after-free oracle fired {} time(s), first: {}",
            oracle_trips.load(Ordering::Relaxed),
            first_oracle
                .lock()
                .unwrap()
                .take()
                .unwrap_or_else(|| "<?>".into())
        ));
    }
    if verdict.is_ok() {
        let live = collector.live_objects();
        if live != 0 {
            verdict = Err(format!("{live} objects leaked past two completed cycles"));
        }
    }
    if verdict.is_ok() {
        verdict = collector.debug_verify_integrity();
    }

    let st = collector.stats();
    SeedReport {
        seed,
        layout: layout.name(),
        completed: st.cycles(),
        timed_out: st.cycle_timeouts(),
        evictions: st.evictions(),
        chaos_panics: chaos_panics.load(Ordering::Relaxed) as u64,
        fired: st.chaos_fired_total(),
        verdict,
    }
}

/// The segmented geometry the torture runs use: small segments relative
/// to capacity so refills and lazy sweeps happen constantly.
fn segmented(capacity: usize) -> HeapLayout {
    let segment_slots = if capacity.is_multiple_of(64) { 64 } else { 1 };
    HeapLayout::Segmented {
        segment_slots,
        tlab_slots: segment_slots.min(16),
    }
}

fn parse_args() -> (
    Vec<u64>,
    usize,
    usize,
    usize,
    Vec<&'static str>,
    Option<String>,
) {
    let mut seeds: Vec<u64> = (1..=10).collect();
    let mut ops = 20_000usize;
    let mut mutators = 4usize;
    let mut capacity = 1_024usize;
    let mut layouts = vec!["slab", "segmented"];
    let mut metrics_addr = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let need = |i: usize| {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("{} needs a value", args[i]))
        };
        match args[i].as_str() {
            "--seeds" => {
                seeds = need(i)
                    .split(',')
                    .map(|s| s.trim().parse().expect("seed must be a u64"))
                    .collect();
                i += 2;
            }
            "--ops" => {
                ops = need(i).parse().expect("ops must be a usize");
                i += 2;
            }
            "--mutators" => {
                mutators = need(i).parse().expect("mutators must be a usize");
                i += 2;
            }
            "--capacity" => {
                capacity = need(i).parse().expect("capacity must be a usize");
                i += 2;
            }
            "--layout" => {
                layouts = match need(i).as_str() {
                    "slab" => vec!["slab"],
                    "segmented" => vec!["segmented"],
                    "both" => vec!["slab", "segmented"],
                    other => panic!("--layout must be slab|segmented|both, got {other}"),
                };
                i += 2;
            }
            "--metrics-addr" => {
                metrics_addr = Some(need(i).clone());
                i += 2;
            }
            other => panic!("unknown argument: {other}"),
        }
    }
    (seeds, ops, mutators, capacity, layouts, metrics_addr)
}

fn main() {
    // Injected panics are expected by the dozen: keep stderr quiet and
    // report through the captured payloads instead.
    std::panic::set_hook(Box::new(|_| {}));
    let (seeds, ops, mutators, capacity, layouts, metrics_addr) = parse_args();
    println!(
        "== torture: {} seeds x {mutators} mutators x {ops} ops, capacity {capacity}, layouts {layouts:?} ==",
        seeds.len()
    );
    // One registry across all seeds: collect-call and cycle counts
    // accumulate, the optional scrape endpoint serves them live, and the
    // snapshot lands in the BENCH record.
    let registry = Arc::new(Registry::new());
    let server = metrics_addr.map(|addr| {
        let live = Liveness::watch(
            Arc::clone(&registry),
            "torture_collect_calls_total",
            Duration::from_secs(10),
        );
        let s = MetricsServer::spawn(&addr, Arc::clone(&registry), Some(live))
            .unwrap_or_else(|e| panic!("cannot bind {addr}: {e}"));
        println!("metrics: http://{}/metrics", s.local_addr());
        s
    });
    println!(
        "{:>6} | {:>9} | {:>9} | {:>8} | {:>7} | {:>6} | {:>6} | verdict",
        "seed", "layout", "completed", "timedout", "evicted", "panics", "faults"
    );
    let mut failures = 0;
    let mut rows: Vec<Json> = Vec::new();
    for &layout_name in &layouts {
        let layout = match layout_name {
            "slab" => HeapLayout::Slab,
            _ => segmented(capacity),
        };
        for &seed in &seeds {
            let r = run_seed(seed, layout, mutators, ops, capacity, &registry);
            let verdict = match &r.verdict {
                Ok(()) => "OK".to_string(),
                Err(e) => {
                    failures += 1;
                    format!("FAIL: {e}")
                }
            };
            println!(
                "{:>6} | {:>9} | {:>9} | {:>8} | {:>7} | {:>6} | {:>6} | {verdict}",
                r.seed, r.layout, r.completed, r.timed_out, r.evictions, r.chaos_panics, r.fired
            );
            rows.push(
                Json::obj()
                    .set("seed", r.seed)
                    .set("layout", r.layout)
                    .set("completed", r.completed)
                    .set("timed_out", r.timed_out)
                    .set("evictions", r.evictions)
                    .set("chaos_panics", r.chaos_panics)
                    .set("faults_fired", r.fired)
                    .set("verdict", verdict.as_str()),
            );
        }
    }
    let record = gc_trace::bench_record(
        "torture",
        &[
            ("seeds", Json::from(seeds.len())),
            ("mutators", Json::from(mutators)),
            ("ops", Json::from(ops)),
            ("capacity", Json::from(capacity)),
            (
                "layouts",
                Json::Arr(layouts.iter().map(|&l| Json::from(l)).collect()),
            ),
        ],
        &[
            ("failures", Json::from(failures as u64)),
            ("per_seed", Json::Arr(rows)),
        ],
        Some(&registry),
    );
    match write_bench_record("torture", &record) {
        Ok(path) => println!("bench record -> {}", path.display()),
        Err(e) => eprintln!("warning: could not write bench record: {e}"),
    }
    if let Some(server) = server {
        server.shutdown();
    }
    if failures > 0 {
        eprintln!("torture: {failures} seed(s) FAILED");
        std::process::exit(1);
    }
    println!("torture: all seeds OK");
}
