//! **Figure 3 — control-state transitions and handshake phases.**
//!
//! Figure 3 shows (a) the collector's phase transitions over two cycles,
//! (b) the handshake phases mutators move through, and (c) that mutators
//! may observe new control states *before* the corresponding handshake
//! (store-buffer effects), yet all agree after the round.
//!
//! This driver explores the model and reports the observed relation
//! between the collector's handshake phase and each mutator's — verifying
//! the paper's phase relation (every mutator is in the collector's phase
//! or its predecessor) — and counts the "early observation" states where a
//! mutator has loaded a control value the corresponding handshake has not
//! yet communicated to it.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use gc_bench::{check_config_with, print_table};
use gc_model::invariants::combined_property;
use gc_model::view::View;
use gc_model::{ModelConfig, Phase};
use mc::Property;

fn main() {
    let max: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5_000_000);

    let cfg = ModelConfig::small(1, 2);

    #[derive(Default)]
    struct Obs {
        relation: BTreeMap<(String, String, bool), usize>,
        early: usize,
    }
    // The observer mutates shared state per visited state, so the run
    // stays on the sequential strategy (the default): parallel workers may
    // re-evaluate a property on claim races, skewing exact counts.
    let obs: Arc<Mutex<Obs>> = Arc::default();
    let o2 = Arc::clone(&obs);
    let cfg2 = cfg.clone();
    let watcher = Property::labeled(
        "phase-relation-observer",
        move |st: &gc_model::ModelState| {
            let v = View::new(&cfg2, st);
            let sys = v.sys();
            let mut obs = o2.lock().expect("observer lock");
            for m in 0..cfg2.mutators {
                let ms = v.mutator(m);
                *obs.relation
                    .entry((
                        sys.ghost_gc_phase.to_string(),
                        ms.ghost_hs_phase.to_string(),
                        sys.hs_pending[m],
                    ))
                    .or_insert(0) += 1;
                // "Early observation": the committed phase is already Mark or
                // beyond while the mutator's handshake phase says it has not
                // yet been told about Init — it could read the new value now.
                if sys.committed_phase() != Phase::Idle
                    && matches!(
                        ms.ghost_hs_phase,
                        gc_model::HsPhase::Idle | gc_model::HsPhase::IdleInit
                    )
                {
                    obs.early += 1;
                }
            }
            None
        },
    );

    let report = check_config_with(
        "1 mutator, 2 slots",
        &cfg,
        max,
        vec![watcher, combined_property(&cfg)],
    );
    print_table(std::slice::from_ref(&report));

    let obs = obs.lock().expect("observer lock");
    println!("\nobserved (collector hs-phase, mutator hs-phase, pending) relation:");
    println!(
        "{:<22} {:<22} {:>8} {:>10}",
        "collector", "mutator", "pending", "states"
    );
    for ((c, m, p), n) in obs.relation.iter() {
        println!("{c:<22} {m:<22} {p:>8} {n:>10}");
    }
    println!(
        "\nstates where a mutator could observe a control value ahead of its \
         handshake phase: {}",
        obs.early
    );
    assert!(obs.early > 0, "TSO makes early observation reachable");
    assert!(report.violated.is_none(), "the phase relation is invariant");
}
