//! **Figure 2 — the collector, with its line-comment invariants.**
//!
//! Figure 2's pseudo-code annotates the cycle with invariants ("Grey = ∅,
//! heap = Black", "Black = ∅", "barriers installed, allocate Black", the
//! snapshot invariant, the sweep justification). Those assertions are the
//! phase-indexed `sys_phase_inv` / `mutator_phase_inv` /
//! `reachable_snapshot_inv` of §3.2, which the full suite checks in every
//! reachable state. This driver runs that check and additionally reports
//! how the reachable states distribute over the collector's handshake
//! phases — the executable picture of the cycle.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use gc_bench::{check_config_with, print_table};
use gc_model::invariants::combined_property;
use gc_model::view::View;
use gc_model::{ModelConfig, Phase};
use mc::Property;

fn main() {
    let max: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5_000_000);

    let cfg = ModelConfig::small(1, 2);

    // A counting "property" that never fails: tallies states by
    // (handshake phase, committed phase).
    // Counting happens per visited state, so this driver keeps the default
    // sequential strategy for exact tallies.
    let histogram: Arc<Mutex<BTreeMap<(String, Phase), usize>>> =
        Arc::new(Mutex::new(BTreeMap::new()));
    let h2 = Arc::clone(&histogram);
    let cfg2 = cfg.clone();
    let counter = Property::labeled("phase-histogram", move |st: &gc_model::ModelState| {
        let v = View::new(&cfg2, st);
        let key = (
            v.sys().ghost_gc_phase.to_string(),
            v.sys().committed_phase(),
        );
        *h2.lock().expect("histogram lock").entry(key).or_insert(0) += 1;
        None
    });

    let report = check_config_with(
        "1 mutator, 2 slots, all ops",
        &cfg,
        max,
        vec![counter, combined_property(&cfg)],
    );
    print_table(std::slice::from_ref(&report));

    println!("\nstates by (handshake phase, committed collector phase):");
    println!("{:<22} {:>10}  states", "handshake phase", "phase");
    for ((hp, phase), n) in histogram.lock().expect("histogram lock").iter() {
        println!("{hp:<22} {phase:>10}  {n}");
    }
    assert!(report.violated.is_none());
    println!("\nevery Figure 2 line-comment invariant held in every state.");
}
