//! **Figure 7 — CIMP process semantics.**
//!
//! Exercises each small-step rule of the CIMP language on a miniature
//! program and prints the step sequences — the executable counterpart of
//! the paper's inference rules (local operations, sequential composition
//! via the frame stack, conditionals, loops, choice, and the
//! request/response pair that only fires as a system-level rendezvous).

use cimp::step::{at_labels, enabled_steps, PendingStep};
use cimp::Program;

type P = Program<u32, u32, u32>;

fn drive(p: &P, mut state: u32) -> (Vec<&'static str>, u32) {
    let mut stack = vec![p.entry()];
    let mut labels = Vec::new();
    loop {
        let steps = enabled_steps(p, &stack, &state);
        let Some(step) = steps.into_iter().next() else {
            break;
        };
        match step {
            PendingStep::Tau {
                label,
                stack: s,
                state: st,
            } => {
                labels.push(label);
                stack = s;
                state = st;
            }
            other => {
                labels.push(match other {
                    PendingStep::Send { label, .. } => label,
                    PendingStep::Recv { label, .. } => label,
                    PendingStep::Tau { .. } => unreachable!(),
                });
                break; // communication blocks a lone process
            }
        }
    }
    (labels, state)
}

fn main() {
    // LOCALOP: s' ∈ R s.
    let mut p = P::new();
    let op = p.local_op("nondet", |s| vec![s + 1, s + 10]);
    p.set_entry(op);
    let n = enabled_steps(&p, &vec![p.entry()], &0).len();
    println!("LOCALOP: one command, {n} enabled successors (data non-determinism)");

    // Seq via frame stack: c1 ;; c2.
    let mut p = P::new();
    let a = p.assign("first", |s| *s += 1);
    let b = p.assign("second", |s| *s *= 10);
    let s = p.seq2(a, b);
    p.set_entry(s);
    let (labels, end) = drive(&p, 0);
    println!("SEQ:     {labels:?} ends with state {end}");

    // If resolves structurally on local state.
    let mut p = P::new();
    let t = p.skip("then");
    let e = p.skip("else");
    let c = p.if_else(|s| *s == 0, t, e);
    p.set_entry(c);
    println!(
        "IF:      state 0 -> at {:?}; state 1 -> at {:?}",
        at_labels(&p, &vec![p.entry()], &0),
        at_labels(&p, &vec![p.entry()], &1)
    );

    // While iterates.
    let mut p = P::new();
    let body = p.assign("tick", |s| *s += 1);
    let w = p.while_do(|s| *s < 3, body);
    p.set_entry(w);
    let (labels, end) = drive(&p, 0);
    println!("WHILE:   {labels:?} ends with state {end}");

    // Choose offers all enabled branches; disabled guards prune.
    let mut p = P::new();
    let l = p.skip("left");
    let r = p.guard("right-if-positive", |s| *s > 0);
    let c = p.choose([l, r]);
    p.set_entry(c);
    println!(
        "CHOOSE:  state 0 offers {:?}; state 1 offers {:?}",
        at_labels(&p, &vec![p.entry()], &0),
        at_labels(&p, &vec![p.entry()], &1)
    );

    // Request blocks without a partner.
    let mut p = P::new();
    let req = p.request("ask", |s| *s, |s, beta| vec![s + beta]);
    p.set_entry(req);
    let steps = enabled_steps(&p, &vec![p.entry()], &5);
    println!(
        "REQUEST: a lone process offers {:?} — it can only fire as a rendezvous (see fig8)",
        steps
    );
}
