//! **Figure 5 — `mark` and the CAS-avoidance design point.**
//!
//! Figure 5's `mark` attempts the expensive CAS only when (a) the flag is
//! not already in the current sense and (b) a collection is active; all
//! racers witness the winner's mark, and only the winner enlists the
//! object. This driver checks the winner-uniqueness claim exhaustively in
//! the model (two mutators racing their barriers on a shared object) and
//! measures the fast path's effectiveness in the runtime: the fraction of
//! barrier executions that terminate after the two plain loads.

use gc_bench::{check_config, print_table, Suite};
use gc_model::{InitialHeap, ModelConfig};
use otf_gc::{Collector, GcConfig};

fn main() {
    let max: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5_000_000);

    // -- Model: two racing markers, exactly one winner --------------------
    // `valid_W_inv` (checked in every state) asserts disjoint work-lists
    // and marked-on-heap entries: both fail if two racers ever win.
    let mut race = ModelConfig::small(2, 2);
    race.initial = InitialHeap::shared_object(2, 1);
    race.ops.alloc = false;
    race.ops.load = false;
    let report = check_config(
        "2 mutators racing marks on a shared object",
        &race,
        max,
        Suite::Full,
    );
    print_table(std::slice::from_ref(&report));
    assert!(report.violated.is_none());

    // -- Runtime: fast-path effectiveness ---------------------------------
    println!("\nruntime barrier profile (list churn, collector running):");
    let collector = Collector::new(GcConfig::builder().capacity(4096).max_fields(2).build());
    let mut m = collector.register_mutator();
    let anchor = m.alloc(2).expect("room");
    collector.start();
    for i in 0..200_000u64 {
        m.safepoint();
        if let Ok(node) = m.alloc(2) {
            let old = m.load(anchor, 1);
            m.store(node, 0, old);
            m.store(anchor, 1, Some(node));
            if let Some(o) = old {
                m.discard(o);
            }
            m.discard(node);
        } else {
            m.safepoint();
            std::thread::yield_now();
        }
        if i % 1000 == 0 {
            // periodically cut the list to generate garbage
            m.store(anchor, 1, None);
        }
    }
    collector.stop();
    let s = collector.stats();
    let checks = s.barrier_checks();
    let cas = s.barrier_cas_won() + s.barrier_cas_lost();
    println!(
        "mark entries: {checks}, CAS attempts: {cas} ({:.2}% — the rest took the two-load fast path)",
        100.0 * cas as f64 / checks.max(1) as f64
    );
    println!(
        "CAS won: {}, CAS lost (racer already marked): {}",
        s.barrier_cas_won(),
        s.barrier_cas_lost()
    );
    println!(
        "cycles: {}, allocated: {}, freed: {}",
        s.cycles(),
        s.allocated(),
        s.freed()
    );
}
