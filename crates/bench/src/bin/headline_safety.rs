//! **The headline theorem**, re-established by exhaustive exploration:
//!
//! ```text
//! GC ∥ M₁ ∥ … ∥ Mₙ ∥ Sys  ⊨  □(∀r. reachable r → valid_ref r)
//! ```
//!
//! Sweeps bounded configurations (mutator count × heap size × operation
//! mix) and reports, per configuration, the state-space size and whether
//! the full §3.2 invariant suite held in every reachable state. A
//! `BOUNDED` row means the instance exceeded the state budget: every state
//! visited satisfied every invariant, but the exploration is a partial
//! (breadth-first, hence depth-bounded) verification only.
//!
//! Usage: `headline_safety [max_states_per_config]` (default 4 million;
//! the published EXPERIMENTS.md table was produced with larger budgets).

use gc_bench::{check_config, print_table, Suite};
use gc_model::ModelConfig;

fn main() {
    let max: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5_000_000);

    let mut reports = Vec::new();

    // The smallest faithful instance: full operation mix.
    reports.push(check_config(
        "1 mutator, 2 slots, all ops",
        &ModelConfig::small(1, 2),
        max,
        Suite::Full,
    ));

    // One mutator, more room.
    reports.push(check_config(
        "1 mutator, 3 slots, all ops",
        &ModelConfig::small(1, 3),
        max,
        Suite::Full,
    ));

    // Two mutators, trimmed op mix (stores + discards exercise both
    // barriers and the ragged handshakes; allocation is the main state
    // multiplier).
    let mut two = ModelConfig::small(2, 2);
    two.ops.alloc = false;
    two.ops.load = false;
    reports.push(check_config(
        "2 mutators, 2 slots, store/discard",
        &two,
        max,
        Suite::Full,
    ));

    // Two mutators sharing one object: maximal write contention.
    let mut shared = ModelConfig::small(2, 2);
    shared.initial = gc_model::InitialHeap::shared_object(2, 1);
    shared.ops.alloc = false;
    reports.push(check_config(
        "2 mutators, shared object, no alloc",
        &shared,
        max,
        Suite::Full,
    ));

    // SC comparison: the same smallest instance under sequential
    // consistency — the state-space cost of TSO in one number.
    let mut sc = ModelConfig::small(1, 2);
    sc.memory_model = tso_model::MemoryModel::Sc;
    reports.push(check_config(
        "1 mutator, 2 slots, all ops, SC",
        &sc,
        max,
        Suite::Full,
    ));

    print_table(&reports);
    for r in &reports {
        assert!(
            r.violated.is_none(),
            "faithful configuration violated {}",
            r.outcome
        );
    }
    println!("\nno faithful configuration violated any invariant.");
}
