//! **Ablation A4 — allocating black too early (§3.2, hp_InitMark).**
//!
//! The paper: "to preserve the strong tricolor invariant, we must know that
//! all mutators have installed their insertion barriers before setting the
//! allocation flag f_A to f_M". Setting `f_A` immediately after the `f_M`
//! flip — while mutators may still read `phase = Idle` and skip their
//! barriers — lets a mutator allocate a black object and store a white
//! reference into it unbarriered. The checker exhibits the failure.

use gc_bench::{check_config, print_table, print_trace, Suite};
use gc_model::ModelConfig;

fn main() {
    let max: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000_000);

    let mut premature = ModelConfig::small(1, 3);
    premature.premature_alloc_black = true;

    let reports = vec![check_config(
        "f_A := f_M during Idle (premature)",
        &premature,
        max,
        Suite::Full,
    )];
    print_table(&reports);
    print_trace(&reports[0]);
    assert!(reports[0].violated.is_some());
}
