//! **Figure 9 — the x86-TSO memory system.**
//!
//! The paper encodes Sewell et al.'s x86-TSO in CIMP; our `tso-model`
//! crate implements the same transition rules. This driver validates the
//! implementation against the classic litmus shapes: the TSO-only relaxed
//! outcome of store buffering (SB), its disappearance under MFENCE, the
//! preservation of message passing (MP), and the exactly-one-winner
//! guarantee of locked CMPXCHG (the race Figure 5's `mark` relies on).

use tso_model::litmus::{
    cas_race, iriw, lb, mp, n6, r_shape, sb, sb_fenced, two_plus_two_w, Outcome,
};
use tso_model::MemoryModel;

fn main() {
    println!(
        "{:<12} {:>9} {:>9} {:>11} {:>11}   note",
        "test", "TSO outs", "SC outs", "TSO states", "SC states"
    );
    println!("{}", "-".repeat(78));
    let relaxed = Outcome::new(vec![vec![0], vec![0]]);
    for test in [sb(), sb_fenced(), mp(), lb(), n6(), r_shape(), cas_race()] {
        let tso = test.outcomes(MemoryModel::Tso);
        let sc = test.outcomes(MemoryModel::Sc);
        let note = match test.name() {
            "SB" => {
                assert!(tso.contains(&relaxed) && !sc.contains(&relaxed));
                "r0=r1=0 admitted by TSO only"
            }
            "SB+mfences" => {
                assert!(!tso.contains(&relaxed));
                "MFENCEs restore SC"
            }
            "MP" => {
                assert!(!tso.contains(&Outcome::new(vec![vec![], vec![1, 0]])));
                "flag-then-stale-data forbidden"
            }
            "CAS-race" => {
                for o in &tso {
                    assert_eq!(o.regs().iter().map(|r| r[0]).sum::<u32>(), 1);
                }
                "exactly one winner, always"
            }
            "LB" => {
                assert_eq!(tso, sc);
                "load buffering forbidden (TSO = SC)"
            }
            "n6" => {
                assert!(tso.contains(&Outcome::new(vec![vec![1, 0], vec![]])));
                "own-store forwarding observable"
            }
            "R" => "store-buffer delay visible",
            _ => "",
        };
        println!(
            "{:<12} {:>9} {:>9} {:>11} {:>11}   {note}",
            test.name(),
            tso.len(),
            sc.len(),
            test.state_count(MemoryModel::Tso),
            test.state_count(MemoryModel::Sc),
        );
    }
    // IRIW (4 threads): TSO is multi-copy atomic — readers never disagree
    // on the order of independent writes.
    let t = iriw();
    for o in t.outcomes(MemoryModel::Tso) {
        let (r2, r3) = (&o.regs()[2], &o.regs()[3]);
        assert!(!(r2[0] == 1 && r2[1] == 0 && r3[0] == 1 && r3[1] == 0));
    }
    println!("IRIW (4 threads): no reader disagreement — TSO is multi-copy atomic");

    // 2+2W final memories: the cyclic final state is unreachable.
    let t = two_plus_two_w();
    let finals = t.final_memories(MemoryModel::Tso);
    assert!(!finals.contains(&vec![("x", 1), ("y", 2)]));
    println!(
        "2+2W: final x=1∧y=2 unreachable ({} final memories)",
        finals.len()
    );

    println!("\nall litmus expectations hold: the substrate matches x86-TSO.");
}
