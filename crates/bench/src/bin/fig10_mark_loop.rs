//! **Figure 10 — the mark loop, and termination soundness.**
//!
//! The subtle claim (§3.2 "Termination of Marking", `gc_W_empty_mut_inv`):
//! when the collector concludes the mark loop — its work-list is empty
//! after a get-work round — there are *no grey references anywhere*, so
//! sweeping is safe. This driver checks, over every reachable state, that
//! whenever the collector is about to write `phase := Sweep` the global
//! grey set is empty, on top of the standing `gc_W_empty_mut_inv`.

use gc_bench::{check_config_with, print_table};
use gc_model::invariants::combined_property;
use gc_model::view::View;
use gc_model::{GcModel, ModelConfig};
use mc::Property;

fn main() {
    let max: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5_000_000);

    let cfg = ModelConfig::small(1, 2);

    // A second model instance to evaluate `at` inside the property.
    let observer_model = GcModel::new(cfg.clone());
    let cfg2 = cfg.clone();
    let no_grey_at_sweep = Property::labeled("no-greys-at-sweep-entry", move |st| {
        let at = observer_model.system().at(st, cimp::ProcId(0));
        if at.contains(&"gc-phase-sweep") {
            let v = View::new(&cfg2, st);
            if !v.greys().is_empty() {
                return Some("no-greys-at-sweep-entry");
            }
        }
        None
    });

    let report = check_config_with(
        "1 mutator, 2 slots, all ops",
        &cfg,
        max,
        vec![no_grey_at_sweep, combined_property(&cfg)],
    );
    print_table(std::slice::from_ref(&report));
    assert!(report.violated.is_none());
    println!("\nwhenever the collector reaches `phase := Sweep`, the grey set is empty:");
    println!("mark-loop termination is sound (Figure 10 / gc_W_empty_mut_inv).");
}
