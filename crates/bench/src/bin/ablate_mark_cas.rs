//! **Ablation A5 — marking must be atomic when mark state is shared
//! (§2.3).**
//!
//! The paper's `mark` uses a locked CMPXCHG so that exactly one racer wins
//! and enlists the object: work-lists stay disjoint, which is what lets
//! Schism thread them through object headers. Replacing the CAS by an
//! unsynchronised read-then-write lets two markers both claim victory —
//! the checker catches the broken `valid_W_inv` (disjointness/marked-on-
//! heap) immediately.

use gc_bench::{check_config, print_table, print_trace, Suite};
use gc_model::{InitialHeap, ModelConfig};

fn main() {
    let max: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000_000);

    // One mutator racing the *collector* for the same object suffices.
    let mut racy = ModelConfig::small(1, 3);
    racy.mark_cas = false;

    // Two mutators sharing an object: mutator-vs-mutator races.
    let mut racy2 = ModelConfig::small(2, 2);
    racy2.mark_cas = false;
    racy2.initial = InitialHeap::shared_object(2, 1);
    racy2.ops.alloc = false;
    racy2.ops.load = false;

    let reports = vec![
        check_config("racy mark, 1 mutator", &racy, max, Suite::Full),
        check_config(
            "racy mark, 2 mutators, shared obj",
            &racy2,
            max,
            Suite::Full,
        ),
    ];
    print_table(&reports);
    for r in &reports {
        print_trace(r);
    }
    assert!(reports.iter().any(|r| r.violated.is_some()));
}
