//! **Ablations A1/A2 — the write barriers are load-bearing.**
//!
//! Removing the insertion barrier (§2: on-the-fly snapshotting *must* use
//! one while the snapshot is built) or the deletion barrier (Figure 1's
//! hiding scenario) makes the collector unsound. The checker finds a
//! shortest counterexample for each; the faithful configuration of the
//! same size verifies.

use gc_bench::{check_config, print_table, print_trace, Suite};
use gc_model::{InitialHeap, ModelConfig};

fn main() {
    let max: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5_000_000);

    let mut no_insertion = ModelConfig::small(1, 3);
    no_insertion.insertion_barrier = false;

    let mut no_deletion = ModelConfig::small(1, 3);
    no_deletion.deletion_barrier = false;
    no_deletion.initial = InitialHeap::chain(1, 2, 1); // Figure 1 shape
    no_deletion.ops.alloc = false;

    let reports = vec![
        check_config("no insertion barrier", &no_insertion, max, Suite::Full),
        check_config(
            "no deletion barrier (chain heap)",
            &no_deletion,
            max,
            Suite::Full,
        ),
    ];
    print_table(&reports);
    for r in &reports {
        print_trace(r);
        assert!(r.violated.is_some(), "{} should be unsound", r.label);
    }
}
