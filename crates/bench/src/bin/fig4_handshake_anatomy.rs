//! **Figure 4 — anatomy of a handshake.**
//!
//! Figure 4 is a sequence diagram: the collector updates control
//! variables, initiates the round at the system, each mutator polls its
//! bit, performs the requested work, transfers its work set, and the
//! system hands the merged set back to the collector.
//!
//! This driver regenerates that diagram from the model itself: it drives
//! the model with a greedy scheduler that prefers handshake events and
//! prints the message sequence of the root-marking round — machine-checked
//! pseudo-UML.

use gc_model::{GcModel, ModelConfig, ModelEvent};
use mc::TransitionSystem;

/// Priority of an event label for the greedy schedule (lower = preferred).
fn priority(label: &str) -> usize {
    const ORDER: &[&str] = &[
        "gc-flip-fM",
        "gc-phase-init",
        "gc-phase-mark",
        "gc-set-fA",
        "gc-hs-begin",
        "gc-hs-pend",
        "mut-hs-poll",
        "mut-hs-pick-root",
        "mark-load-fM",
        "mark-load-flag",
        "mark-load-phase",
        "mark-lock",
        "mark-cas-load-flag",
        "mark-set-flag",
        "sys-dequeue",
        "mark-unlock",
        "mut-hs-complete",
        "gc-hs-await",
    ];
    ORDER.iter().position(|l| *l == label).unwrap_or(usize::MAX)
}

fn label_of(ev: &ModelEvent) -> &'static str {
    match ev {
        ModelEvent::Tau { label, .. } => label,
        ModelEvent::Comm { send_label, .. } => send_label,
    }
}

fn main() {
    let mut cfg = ModelConfig::small(2, 3);
    cfg.ops.alloc = false; // keep the walk focused on the handshake
    let model = GcModel::new(cfg);
    let mut state = model.initial_states().remove(0);
    let mut events: Vec<ModelEvent> = Vec::new();

    // Walk greedily until the root-marking round has completed (the
    // get-roots await fires), or a step budget runs out.
    let mut roots_await_seen = false;
    for _ in 0..400 {
        let succs = model.successors(&state);
        let (ev, next) = succs
            .into_iter()
            .min_by_key(|(ev, _)| priority(label_of(ev)))
            .expect("the model never deadlocks");
        let is_roots_await = matches!(
            &ev,
            ModelEvent::Comm { req, .. }
                if req.kind == gc_model::ReqKind::HsAwait
        ) && events.iter().any(|e| {
            matches!(e, ModelEvent::Comm { req, .. }
                if req.kind == gc_model::ReqKind::HsBegin(gc_model::HsType::GetRoots))
        });
        events.push(ev);
        state = next;
        if is_roots_await {
            roots_await_seen = true;
            break;
        }
    }
    assert!(roots_await_seen, "walk should complete the get-roots round");

    println!("the root-marking handshake, as executed by the model");
    println!("(one line per atomic event; compare with the paper's Figure 4):\n");
    print!("{}", model.format_trace(&events));
    println!(
        "\n{} events from idle to the collector holding the merged roots.",
        events.len()
    );
}
