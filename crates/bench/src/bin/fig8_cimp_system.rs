//! **Figure 8 — CIMP system semantics.**
//!
//! The two rules of the global relation: interleaving of τ steps, and the
//! rendezvous that updates both parties simultaneously (sender's α from
//! its state, receiver's β chosen non-deterministically). Demonstrated by
//! counting interleavings of independent counters and by a client/server
//! exchange, including the no-self-rendezvous and filtered-response
//! corner cases.

use cimp::{Event, Program, System};
use mc::{Checker, TransitionSystem};

type P = Program<u32, u32, u32>;

struct Wrap(System<u32, u32, u32>);
impl TransitionSystem for Wrap {
    type State = cimp::SystemState<u32>;
    type Action = Event<u32, u32>;
    fn initial_states(&self) -> Vec<Self::State> {
        vec![self.0.initial_state()]
    }
    fn successors(&self, s: &Self::State) -> Vec<(Self::Action, Self::State)> {
        self.0.successors(s)
    }
}

fn counter(n: u32) -> P {
    let mut p = P::new();
    let body = p.assign("inc", move |s| *s += 1);
    let w = p.while_do(move |s| *s < n, body);
    p.set_entry(w);
    p
}

fn main() {
    // Interleaving: two independent 3-step counters — the state space is
    // the (3+1)² grid, every interleaving explored.
    let sys = System::new(vec![("a", counter(3), 0), ("b", counter(3), 0)]);
    let stats = Checker::new().run(&Wrap(sys)).stats();
    println!(
        "interleaving: two 3-step counters -> {} states, {} transitions (4×4 grid)",
        stats.states, stats.transitions
    );
    assert_eq!(stats.states, 16);

    // Rendezvous: client asks with α = its state, server doubles it.
    let mut client = P::new();
    let ask = client.request("ask", |s| *s, |_, beta| vec![*beta]);
    client.set_entry(ask);
    let mut server = P::new();
    let answer = server.response("answer", |alpha, s| vec![(s + 1, alpha * 2)]);
    server.set_entry(answer);
    let sys = System::new(vec![("client", client, 21), ("server", server, 100)]);
    let succs = sys.successors(&sys.initial_state());
    println!("\nrendezvous: {} global successor(s)", succs.len());
    for (ev, next) in &succs {
        println!("  {ev}   -> locals {:?}", next.locals());
    }
    assert_eq!(*succs[0].1.local(0), 42);
    assert_eq!(*succs[0].1.local(1), 101);

    // No self-rendezvous: a lone requester is stuck.
    let mut lonely = P::new();
    let ask = lonely.request("ask", |s| *s, |s, _| vec![*s]);
    lonely.set_entry(ask);
    let sys = System::new(vec![("lonely", lonely, 0)]);
    println!(
        "\nno self-rendezvous: a lone requester has {} successors",
        sys.successors(&sys.initial_state()).len()
    );

    // Filtered responses: the receiver pattern-matches on α (how the GC
    // model's system process dispatches on request shapes).
    let mk = |v: u32| {
        let mut c = P::new();
        let ask = c.request("ask", |s| *s, |s, _| vec![*s]);
        c.set_entry(ask);
        let mut srv = P::new();
        let ans = srv.response("even-only", |alpha, s| {
            if alpha % 2 == 0 {
                vec![(*s, 0)]
            } else {
                vec![]
            }
        });
        srv.set_entry(ans);
        System::new(vec![("c", c, v), ("srv", srv, 0)])
    };
    println!(
        "filtered:  α=4 -> {} rendezvous, α=5 -> {} (receiver refuses odd requests)",
        mk(4).successors(&mk(4).initial_state()).len(),
        mk(5).successors(&mk(5).initial_state()).len()
    );
}
