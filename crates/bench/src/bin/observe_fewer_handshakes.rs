//! **Observation (§4) — two initialization handshakes can be removed on
//! x86-TSO.**
//!
//! The paper: "From our close analysis of this algorithm we know that two
//! of the initialization handshakes can be removed on x86-TSO, but have
//! yet to prove this." We check the conjecture on bounded instances:
//! skipping the second noop round (after the `f_M` flip) and the third
//! (after `phase := Init`) — keeping the fences — preserves the *safety*
//! property on every configuration we can exhaust.
//!
//! Note the phase-indexed proof scaffolding (`sys_phase_inv` etc.) is tied
//! to the full handshake sequence and is not meaningful for the skipped
//! variants, so only the headline property is checked here.

use gc_bench::{check_config, print_table, print_trace, Suite};
use gc_model::ModelConfig;

fn main() {
    let max: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8_000_000);

    let mut skip2 = ModelConfig::small(1, 2);
    skip2.skip_noop2 = true;
    let mut skip3 = ModelConfig::small(1, 2);
    skip3.skip_noop3 = true;
    let mut skip23 = ModelConfig::small(1, 2);
    skip23.skip_noop2 = true;
    skip23.skip_noop3 = true;

    let reports = vec![
        check_config("skip noop2 (post f_M flip)", &skip2, max, Suite::SafetyOnly),
        check_config(
            "skip noop3 (post phase:=Init)",
            &skip3,
            max,
            Suite::SafetyOnly,
        ),
        check_config("skip both", &skip23, max, Suite::SafetyOnly),
    ];
    print_table(&reports);
    for r in &reports {
        print_trace(r);
    }
    if reports.iter().all(|r| r.verified()) {
        println!("\nall skipped variants verified: the bounded evidence supports the");
        println!("paper's conjecture that the two initialization handshakes are");
        println!("redundant on x86-TSO.");
    }
}
