//! **R1 — runtime stress with the safety oracle, plus the two-cycle
//! floating-garbage bound and the heap-layout allocation matrix.**
//!
//! Part 1: several mutator threads churn shared structures while the
//! collector runs on-the-fly; validation mode turns any
//! freed-while-reachable object into an immediate panic, so a clean run is
//! the runtime enactment of the safety theorem.
//!
//! Part 2: the allocation matrix — the same multi-threaded alloc/store/
//! discard loop under both [`HeapLayout`]s at two capacities, reporting
//! allocs/sec, barrier checks per allocation, and mean sweep ns per cycle.
//! This is the acceptance evidence for the segmented heap: TLAB bump
//! allocation beats the slab's global free list, and the bitmap sweep
//! stops scaling with heap capacity. Written to `BENCH_heap_alloc.json`.
//!
//! Part 3: the paper's §4 remark — "garbage is collected within two cycles
//! of the collector's outer loop" — measured directly: objects made
//! garbage *during* marking float through the current cycle and are
//! reclaimed by the next.
//!
//! Part 4: the barrier ablations on real threads — the stress loop run
//! with a barrier removed trips the use-after-free oracle, reproducing the
//! model checker's counterexamples at runtime scale. (Racy and
//! timing-dependent: the broken run is attempted several times and is
//! expected, not guaranteed, to fail.)

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Instant;

use gc_bench::write_bench_record;
use gc_trace::Json;
use otf_gc::{Collector, GcConfig, HeapLayout};

fn churn(collector: &Collector, mutators: usize, ops: usize) {
    let mut m0 = collector.register_mutator();
    let anchor = m0.alloc(2).expect("room");
    let finished = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..mutators {
            let mut m = collector.register_mutator();
            m.adopt(anchor);
            let finished = &finished;
            s.spawn(move || {
                for op in 0..ops {
                    m.safepoint();
                    match m.alloc(2) {
                        Ok(node) => {
                            let old = m.load(anchor, 0);
                            m.store(node, 0, old);
                            m.store(anchor, 0, Some(node));
                            if let Some(o) = old {
                                m.discard(o);
                            }
                            m.discard(node);
                        }
                        Err(_) => std::thread::yield_now(),
                    }
                    if op % 64 == 0 {
                        m.store(anchor, 0, None); // cut: mass garbage
                    }
                    if op % 16 == 0 {
                        // walk the visible prefix, validating as we go
                        let mut cur = m.load(anchor, 0);
                        let mut n = 0;
                        while let Some(c) = cur {
                            let next = m.load(c, 0);
                            m.discard(c);
                            cur = next;
                            n += 1;
                            if n > 256 {
                                break;
                            }
                        }
                    }
                }
                finished.fetch_add(1, Ordering::Release);
            });
        }
        let finished = &finished;
        s.spawn(move || {
            while finished.load(Ordering::Acquire) < mutators {
                m0.safepoint();
                std::thread::yield_now();
            }
            drop(m0);
        });
    });
}

/// One cell of the allocation matrix. The timed window covers only the
/// allocation bursts — `threads` mutators alloc/store/discard until the
/// heap is nearly full — while reclamation runs *between* bursts
/// (quiescent `collect()` calls, so the slab sweeps eagerly and the
/// segmented heap publishes + lazily sweeps on the next burst's refills).
/// This isolates the two costs the layout changes: the per-allocation
/// path (TLAB bump vs global free-list lock) and the collector-side
/// sweep (`sweep_ns` per cycle), instead of drowning both in
/// emergency-cycle noise. Returns the JSON row for
/// `BENCH_heap_alloc.json` plus the headline numbers.
struct AllocCell {
    row: Json,
    allocs_per_sec: f64,
    mean_sweep_ns: f64,
}

fn alloc_matrix_cell(
    layout: HeapLayout,
    capacity: usize,
    threads: usize,
    target_allocs: usize,
) -> AllocCell {
    let cfg = GcConfig::builder()
        .capacity(capacity)
        .max_fields(2)
        .layout(layout)
        .build();
    let collector = Collector::new(cfg);
    // Leave headroom for per-mutator TLAB reservations so a burst never
    // hits the emergency path inside the timed window.
    let burst_per_thread = capacity / threads - 64;
    let bursts = target_allocs.div_ceil(burst_per_thread * threads).max(2);
    // Reclaims everything between bursts, outside the timed windows: no
    // mutators are registered, so the cycles complete without handshake
    // partners. Two cycles so even garbage floated by the final barrier
    // snapshots is gone.
    let reclaim = || {
        assert!(collector.collect().is_completed());
        assert!(collector.collect().is_completed());
    };

    // Phase A — the pure allocation path: nothing in the loop but
    // `alloc` (objects stay rooted until the mutator unregisters at
    // burst end). This is the number the layouts actually change: TLAB
    // pop vs global free-list lock.
    let mut alloc_timed = std::time::Duration::ZERO;
    let mut allocs = 0u64;
    for _ in 0..bursts {
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for _ in 0..threads {
                let mut m = collector.register_mutator();
                s.spawn(move || {
                    for _ in 0..burst_per_thread {
                        m.safepoint();
                        match m.alloc(2) {
                            Ok(_) => {} // stays rooted; dropped with `m`
                            Err(_) => std::thread::yield_now(),
                        }
                    }
                });
            }
        });
        alloc_timed += t0.elapsed();
        allocs += (burst_per_thread * threads) as u64;
        reclaim();
    }
    let allocs_per_sec = allocs as f64 / alloc_timed.as_secs_f64();

    // Phase B — churn: one barrier-carrying store plus a discard per
    // allocation (the stress access pattern), for the barrier-cost and
    // steady-state columns.
    let barriers_before = collector.stats().barrier_checks();
    let mut churn_timed = std::time::Duration::ZERO;
    let mut churn_allocs = 0u64;
    for _ in 0..bursts {
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for _ in 0..threads {
                let mut m = collector.register_mutator();
                s.spawn(move || {
                    for _ in 0..burst_per_thread {
                        m.safepoint();
                        match m.alloc(2) {
                            Ok(node) => {
                                // Self-link: cyclic garbage — the tracer
                                // reclaims it all the same.
                                m.store(node, 0, Some(node));
                                m.discard(node);
                            }
                            Err(_) => std::thread::yield_now(),
                        }
                    }
                });
            }
        });
        churn_timed += t0.elapsed();
        churn_allocs += (burst_per_thread * threads) as u64;
        reclaim();
    }
    let churn_allocs_per_sec = churn_allocs as f64 / churn_timed.as_secs_f64();

    let st = collector.stats();
    let history = st.history();
    let cycles = history.len().max(1) as f64;
    let mean_sweep_ns = history.iter().map(|c| c.sweep_ns as f64).sum::<f64>() / cycles;
    let barrier_per_alloc =
        (st.barrier_checks() - barriers_before) as f64 / (churn_allocs as f64).max(1.0);
    println!(
        "  {:<9} cap {:>6}: {:>12.0} allocs/s (pure)  {:>12.0} allocs/s (churn)  {:>5.2} barrier-checks/alloc  {:>10.0} sweep ns/cycle  ({} cycles, {} tlab refills, {} lazy-swept)",
        layout.name(),
        capacity,
        allocs_per_sec,
        churn_allocs_per_sec,
        barrier_per_alloc,
        mean_sweep_ns,
        history.len(),
        st.tlab_refills(),
        st.lazy_sweep_segments(),
    );
    let row = Json::obj()
        .set("layout", layout.name())
        .set("capacity", capacity)
        .set("threads", threads)
        .set("bursts", bursts)
        .set("burst_per_thread", burst_per_thread)
        .set("alloc_timed_s", alloc_timed.as_secs_f64())
        .set("churn_timed_s", churn_timed.as_secs_f64())
        .set("allocated", st.allocated())
        .set("allocs_per_sec", allocs_per_sec)
        .set("churn_allocs_per_sec", churn_allocs_per_sec)
        .set("barrier_checks_per_alloc", barrier_per_alloc)
        .set("cycles", history.len())
        .set("mean_sweep_ns_per_cycle", mean_sweep_ns)
        .set("freed", st.freed())
        .set("tlab_refills", st.tlab_refills())
        .set("lazy_sweep_segments", st.lazy_sweep_segments());
    AllocCell {
        row,
        allocs_per_sec,
        mean_sweep_ns,
    }
}

fn main() {
    // ---- Part 1: the faithful collector under stress --------------------
    println!("== stress: 4 mutators x 30k ops, faithful configuration ==");
    let collector = Collector::new(GcConfig::builder().capacity(4096).max_fields(2).build());
    collector.start();
    churn(&collector, 4, 30_000);
    collector.stop();
    let s = collector.stats();
    print!("{}", s.summary());
    println!("  {:<20} {:>12}", "live", collector.live_objects());
    if let Some(last) = s.history().last() {
        println!("last cycle: {last}");
    }
    println!("no use-after-free: the runtime safety oracle stayed quiet\n");

    let record = gc_trace::bench_record(
        "stress",
        &[
            ("mutators", Json::from(4u64)),
            ("ops", Json::from(30_000u64)),
            ("capacity", Json::from(4096u64)),
        ],
        &[
            (
                "gc_stats",
                Json::parse(&s.to_json()).expect("GcStats::to_json is valid JSON"),
            ),
            (
                "last_cycle",
                s.history().last().map_or(Json::Null, |c| {
                    Json::parse(&c.to_json()).expect("CycleStats::to_json is valid JSON")
                }),
            ),
            ("live_objects", Json::from(collector.live_objects())),
        ],
        None,
    );
    match write_bench_record("stress", &record) {
        Ok(path) => println!("bench record -> {}", path.display()),
        Err(e) => eprintln!("warning: could not write bench record: {e}"),
    }

    // ---- Part 2: the heap-layout allocation matrix ----------------------
    println!("\n== heap layouts: alloc throughput and sweep cost, 4 threads ==");
    const THREADS: usize = 4;
    const TARGET_ALLOCS: usize = 400_000;
    const CAPACITIES: [usize; 2] = [4_096, 16_384];
    let layouts = [
        HeapLayout::Slab,
        HeapLayout::Segmented {
            segment_slots: 256,
            tlab_slots: 64,
        },
    ];
    let mut rows = Vec::new();
    let mut tput = [[0.0f64; 2]; 2]; // [layout][capacity]
    let mut sweep = [[0.0f64; 2]; 2];
    for (li, &layout) in layouts.iter().enumerate() {
        for (ci, &cap) in CAPACITIES.iter().enumerate() {
            let cell = alloc_matrix_cell(layout, cap, THREADS, TARGET_ALLOCS);
            tput[li][ci] = cell.allocs_per_sec;
            sweep[li][ci] = cell.mean_sweep_ns;
            rows.push(cell.row);
        }
    }
    let speedup = tput[1][0] / tput[0][0].max(1.0);
    let slab_sweep_growth = sweep[0][1] / sweep[0][0].max(1.0);
    let seg_sweep_growth = sweep[1][1] / sweep[1][0].max(1.0);
    println!(
        "segmented/slab alloc throughput at cap {}: {speedup:.2}x",
        CAPACITIES[0]
    );
    println!(
        "sweep ns/cycle growth, cap {}x: slab {slab_sweep_growth:.2}x vs segmented {seg_sweep_growth:.2}x",
        CAPACITIES[1] / CAPACITIES[0]
    );
    let record = gc_trace::bench_record(
        "heap_alloc",
        &[
            ("threads", Json::from(THREADS)),
            ("target_allocs", Json::from(TARGET_ALLOCS)),
            (
                "capacities",
                Json::Arr(CAPACITIES.iter().map(|&c| Json::from(c)).collect()),
            ),
        ],
        &[
            ("cells", Json::Arr(rows)),
            ("segmented_over_slab_allocs_per_sec", Json::from(speedup)),
            ("slab_sweep_growth", Json::from(slab_sweep_growth)),
            ("segmented_sweep_growth", Json::from(seg_sweep_growth)),
        ],
        None,
    );
    match write_bench_record("heap_alloc", &record) {
        Ok(path) => println!("bench record -> {}", path.display()),
        Err(e) => eprintln!("warning: could not write bench record: {e}"),
    }

    // ---- Part 3: floating garbage is gone within two cycles -------------
    println!("\n== floating garbage: reclaimed within two cycles ==");
    let collector = Collector::new(GcConfig::builder().capacity(64).max_fields(1).build());
    let mut m = collector.register_mutator();
    let a = m.alloc(1).expect("room");
    let b = m.alloc(1).expect("room");
    m.store(a, 0, Some(b));
    m.discard(b);
    collector.start();
    // Wait until a cycle is past its snapshot, then cut b loose: it will
    // float through that cycle.
    while collector.stats().cycles() < 1 {
        m.safepoint();
    }
    m.store(a, 0, None); // b becomes garbage mid-stream
    let freed_before = collector.stats().freed();
    let cut_at = collector.stats().cycles();
    while collector.stats().cycles() < cut_at + 2 {
        m.safepoint();
    }
    collector.stop();
    let freed_after = collector.stats().freed();
    println!(
        "cut at cycle {cut_at}; after two more cycles freed grew {} -> {} (b reclaimed)",
        freed_before, freed_after
    );
    assert!(
        freed_after > freed_before,
        "the garbage must be gone within two cycles"
    );
    assert_eq!(collector.live_objects(), 1);

    // ---- Part 4: ablations trip the oracle on real threads --------------
    for (name, cfg) in [
        (
            "no insertion barrier",
            GcConfig::builder()
                .capacity(512)
                .max_fields(2)
                .insertion_barrier(false)
                .build(),
        ),
        (
            "no deletion barrier",
            GcConfig::builder()
                .capacity(512)
                .max_fields(2)
                .deletion_barrier(false)
                .build(),
        ),
    ] {
        println!("\n== ablation on real threads: {name} ==");
        let mut tripped = false;
        for attempt in 0..10 {
            let caught = AtomicBool::new(false);
            {
                let collector = Collector::new(cfg.clone());
                collector.start();
                let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    churn(&collector, 4, 8_000);
                }));
                if r.is_err() {
                    caught.store(true, Ordering::Release);
                }
                // Threads may have died mid-handshake: tear down hard.
                collector.stop();
                std::mem::forget(collector); // heap may be inconsistent
            }
            if caught.load(Ordering::Acquire) {
                println!("use-after-free caught on attempt {attempt} — as the model predicts");
                tripped = true;
                break;
            }
        }
        if !tripped {
            println!("(no failure observed in 10 attempts — the race is timing-dependent;");
            println!(" the model checker's counterexample remains the definitive witness)");
        }
    }
}
