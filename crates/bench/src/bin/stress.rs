//! **R1 — runtime stress with the safety oracle, plus the two-cycle
//! floating-garbage bound.**
//!
//! Part 1: several mutator threads churn shared structures while the
//! collector runs on-the-fly; validation mode turns any
//! freed-while-reachable object into an immediate panic, so a clean run is
//! the runtime enactment of the safety theorem.
//!
//! Part 2: the paper's §4 remark — "garbage is collected within two cycles
//! of the collector's outer loop" — measured directly: objects made
//! garbage *during* marking float through the current cycle and are
//! reclaimed by the next.
//!
//! Part 3: the barrier ablations on real threads — the stress loop run
//! with a barrier removed trips the use-after-free oracle, reproducing the
//! model checker's counterexamples at runtime scale. (Racy and
//! timing-dependent: the broken run is attempted several times and is
//! expected, not guaranteed, to fail.)

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use gc_bench::write_bench_record;
use gc_trace::Json;
use otf_gc::{Collector, GcConfig};

fn churn(collector: &Collector, mutators: usize, ops: usize) {
    let mut m0 = collector.register_mutator();
    let anchor = m0.alloc(2).expect("room");
    let finished = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..mutators {
            let mut m = collector.register_mutator();
            m.adopt(anchor);
            let finished = &finished;
            s.spawn(move || {
                for op in 0..ops {
                    m.safepoint();
                    match m.alloc(2) {
                        Ok(node) => {
                            let old = m.load(anchor, 0);
                            m.store(node, 0, old);
                            m.store(anchor, 0, Some(node));
                            if let Some(o) = old {
                                m.discard(o);
                            }
                            m.discard(node);
                        }
                        Err(_) => std::thread::yield_now(),
                    }
                    if op % 64 == 0 {
                        m.store(anchor, 0, None); // cut: mass garbage
                    }
                    if op % 16 == 0 {
                        // walk the visible prefix, validating as we go
                        let mut cur = m.load(anchor, 0);
                        let mut n = 0;
                        while let Some(c) = cur {
                            let next = m.load(c, 0);
                            m.discard(c);
                            cur = next;
                            n += 1;
                            if n > 256 {
                                break;
                            }
                        }
                    }
                }
                finished.fetch_add(1, Ordering::Release);
            });
        }
        let finished = &finished;
        s.spawn(move || {
            while finished.load(Ordering::Acquire) < mutators {
                m0.safepoint();
                std::thread::yield_now();
            }
            drop(m0);
        });
    });
}

fn main() {
    // ---- Part 1: the faithful collector under stress --------------------
    println!("== stress: 4 mutators x 30k ops, faithful configuration ==");
    let collector = Collector::new(GcConfig::new(4096, 2));
    collector.start();
    churn(&collector, 4, 30_000);
    collector.stop();
    let s = collector.stats();
    print!("{}", s.summary());
    println!("  {:<20} {:>12}", "live", collector.live_objects());
    if let Some(last) = s.history().last() {
        println!("last cycle: {last}");
    }
    println!("no use-after-free: the runtime safety oracle stayed quiet\n");

    let record = gc_trace::bench_record(
        "stress",
        &[
            ("mutators", Json::from(4u64)),
            ("ops", Json::from(30_000u64)),
            ("capacity", Json::from(4096u64)),
        ],
        &[
            (
                "gc_stats",
                Json::parse(&s.to_json()).expect("GcStats::to_json is valid JSON"),
            ),
            (
                "last_cycle",
                s.history().last().map_or(Json::Null, |c| {
                    Json::parse(&c.to_json()).expect("CycleStats::to_json is valid JSON")
                }),
            ),
            ("live_objects", Json::from(collector.live_objects())),
        ],
        None,
    );
    match write_bench_record("stress", &record) {
        Ok(path) => println!("bench record -> {}", path.display()),
        Err(e) => eprintln!("warning: could not write bench record: {e}"),
    }

    // ---- Part 2: floating garbage is gone within two cycles -------------
    println!("== floating garbage: reclaimed within two cycles ==");
    let collector = Collector::new(GcConfig::new(64, 1));
    let mut m = collector.register_mutator();
    let a = m.alloc(1).expect("room");
    let b = m.alloc(1).expect("room");
    m.store(a, 0, Some(b));
    m.discard(b);
    collector.start();
    // Wait until a cycle is past its snapshot, then cut b loose: it will
    // float through that cycle.
    while collector.stats().cycles() < 1 {
        m.safepoint();
    }
    m.store(a, 0, None); // b becomes garbage mid-stream
    let freed_before = collector.stats().freed();
    let cut_at = collector.stats().cycles();
    while collector.stats().cycles() < cut_at + 2 {
        m.safepoint();
    }
    collector.stop();
    let freed_after = collector.stats().freed();
    println!(
        "cut at cycle {cut_at}; after two more cycles freed grew {} -> {} (b reclaimed)",
        freed_before, freed_after
    );
    assert!(
        freed_after > freed_before,
        "the garbage must be gone within two cycles"
    );
    assert_eq!(collector.live_objects(), 1);

    // ---- Part 3: ablations trip the oracle on real threads --------------
    for (name, cfg) in [
        ("no insertion barrier", {
            let mut c = GcConfig::new(512, 2);
            c.insertion_barrier = false;
            c
        }),
        ("no deletion barrier", {
            let mut c = GcConfig::new(512, 2);
            c.deletion_barrier = false;
            c
        }),
    ] {
        println!("\n== ablation on real threads: {name} ==");
        let mut tripped = false;
        for attempt in 0..10 {
            let caught = AtomicBool::new(false);
            {
                let collector = Collector::new(cfg.clone());
                collector.start();
                let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    churn(&collector, 4, 8_000);
                }));
                if r.is_err() {
                    caught.store(true, Ordering::Release);
                }
                // Threads may have died mid-handshake: tear down hard.
                collector.stop();
                std::mem::forget(collector); // heap may be inconsistent
            }
            if caught.load(Ordering::Acquire) {
                println!("use-after-free caught on attempt {attempt} — as the model predicts");
                tripped = true;
                break;
            }
        }
        if !tripped {
            println!("(no failure observed in 10 attempts — the race is timing-dependent;");
            println!(" the model checker's counterexample remains the definitive witness)");
        }
    }
}
