//! **Figure 1 — grey protection.**
//!
//! The paper's Figure 1 shows a white object `W` referenced by a black
//! object `B` and kept alive ("grey-protected") by a chain of white objects
//! hanging off a grey object `G`; deleting any chain edge without the
//! deletion barrier hides `W` from the collector.
//!
//! Part 1 reproduces the figure statically on the tricolor abstraction.
//! Part 2 reproduces it dynamically: with the deletion barrier the chain
//! configuration verifies; without it the model checker produces a
//! shortest trace in which a reachable object is freed (or an invariant en
//! route to that failure is violated).

use gc_bench::{check_config, print_table, print_trace, Suite};
use gc_model::{InitialHeap, ModelConfig};
use gc_types::{AbstractHeap, Tricolor};

fn main() {
    // ---- Part 1: the figure on the tricolor abstraction ----------------
    println!("== Figure 1, statically ==");
    let mut heap = AbstractHeap::new(5, 2);
    let b = heap.alloc(true).unwrap(); // black
    let g = heap.alloc(true).unwrap(); // grey (marked + on a work-list)
    let c1 = heap.alloc(false).unwrap(); // white chain
    let c2 = heap.alloc(false).unwrap();
    let w = heap.alloc(false).unwrap(); // the contested white object
    heap.set_field(b, 0, Some(w));
    heap.set_field(g, 0, Some(c1));
    heap.set_field(c1, 0, Some(c2));
    heap.set_field(c2, 0, Some(w));

    let tri = Tricolor::new(&heap, true, [g]);
    println!("chain intact:   weak invariant = {}", tri.weak_invariant());
    println!(
        "                grey-protected = {:?}",
        tri.grey_protected()
    );

    let mut cut = heap.clone();
    cut.set_field(c1, 0, None); // delete an X-marked edge, no barrier
    let tri = Tricolor::new(&cut, true, [g]);
    println!("edge deleted:   weak invariant = {}", tri.weak_invariant());

    let mut fixed = heap.clone();
    fixed.set_flag(c2, true); // the deletion barrier greys the target...
    fixed.set_field(c1, 0, None); // ...before the edge goes
    let tri = Tricolor::new(&fixed, true, [g, c2]);
    println!("with barrier:   weak invariant = {}", tri.weak_invariant());

    // ---- Part 2: the figure as a model-checking experiment -------------
    println!("\n== Figure 1, dynamically (model checking) ==");
    let max: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000_000);

    // The chain r0 -> r1 with only the head rooted: r1 is exactly the
    // paper's W, protected only through the heap.
    let mut with_barrier = ModelConfig::small(1, 3);
    with_barrier.initial = InitialHeap::chain(1, 2, 1);
    with_barrier.ops.alloc = false; // keep the instance small

    let mut without = with_barrier.clone();
    without.deletion_barrier = false;

    let reports = vec![
        check_config(
            "chain, deletion barrier ON",
            &with_barrier,
            max,
            Suite::Full,
        ),
        check_config("chain, deletion barrier OFF", &without, max, Suite::Full),
    ];
    print_table(&reports);
    print_trace(&reports[1]);

    assert!(
        reports[1].violated.is_some(),
        "the unbarriered chain must produce the Figure 1 failure"
    );
}
