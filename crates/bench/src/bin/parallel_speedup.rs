//! Parallel-checker comparison: the fig3 configuration (1 mutator, 2 heap
//! slots, full invariant suite, hash-compact) explored by the
//! level-synchronous BFS at 1, 2 and 4 worker threads.
//!
//! The run asserts the tentpole guarantee — identical state counts,
//! transition counts, depths and verdicts at every thread count — and
//! reports the wall-clock ratio against the sequential run. The speedup is
//! only meaningful on a multi-core host (the harness prints the machine's
//! available parallelism so the record is interpretable).
//!
//! Usage: `parallel_speedup [max_states] [thread-list]`, e.g.
//! `parallel_speedup 5000000 1,2,4`.

use gc_bench::{bounded_config, check_config_opts, print_table, CheckReport, Suite};
use gc_model::ModelConfig;
use mc::Strategy;

fn main() {
    let max: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5_000_000);
    let threads: Vec<usize> = std::env::args()
        .nth(2)
        .map(|s| {
            s.split(',')
                .map(|t| t.parse().expect("thread counts are integers"))
                .collect()
        })
        .unwrap_or_else(|| vec![1, 2, 4]);

    let cfg = ModelConfig::small(1, 2);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("parallel frontier exploration, fig3 configuration (1 mutator, 2 slots, full suite)");
    println!("host parallelism: {cores} core(s)\n");

    let reports: Vec<CheckReport> = threads
        .iter()
        .map(|&t| {
            check_config_opts(
                format!("1 mutator, 2 slots, {t} thread(s)"),
                &cfg,
                Suite::Full.properties(&cfg),
                bounded_config(max),
                Strategy::Bfs { threads: t },
            )
        })
        .collect();

    print_table(&reports);

    let base = &reports[0];
    println!();
    for r in &reports {
        assert_eq!(
            r.states, base.states,
            "state counts must be thread-invariant"
        );
        assert_eq!(
            r.transitions, base.transitions,
            "transition counts must be thread-invariant"
        );
        assert_eq!(r.depth, base.depth, "depth must be thread-invariant");
        assert_eq!(r.outcome, base.outcome, "verdicts must be thread-invariant");
        let speedup = base.elapsed.as_secs_f64() / r.elapsed.as_secs_f64();
        println!("{:<44} speedup vs sequential: {speedup:>5.2}x", r.label);
    }
    println!("\nall thread counts agree on states, transitions, depth and verdict.");
}
