//! Parallel-checker comparison: the fig3 configuration (1 mutator, 2 heap
//! slots, full invariant suite, hash-compact) explored by the
//! level-synchronous BFS at 1, 2 and 4 worker threads.
//!
//! The run asserts the tentpole guarantee — identical state counts,
//! transition counts, depths and verdicts at every thread count — and
//! reports the wall-clock ratio against the sequential run. The speedup is
//! only meaningful on a multi-core host (the harness prints the machine's
//! available parallelism so the record is interpretable).
//!
//! Usage: `parallel_speedup [max_states] [thread-list]`, e.g.
//! `parallel_speedup 5000000 1,2,4`.

use gc_bench::{
    bounded_config, check_config_opts, print_table, report_json, write_bench_record, CheckReport,
    Suite,
};
use gc_model::ModelConfig;
use gc_trace::Json;
use mc::Strategy;

/// Upper bound, in nanoseconds, on one runtime-disabled `gc_trace::emit`
/// call. The real cost is one relaxed atomic load (sub-nanosecond on any
/// modern core); the bound is two orders of magnitude looser so it only
/// trips on a genuine fast-path regression, never on a noisy CI host.
const DISABLED_EMIT_BUDGET_NS: f64 = 100.0;

/// Measures the per-site cost of `gc_trace::emit` with tracing
/// runtime-disabled — the state every instrumented hot path runs in unless
/// someone calls `gc_trace::enable()`.
fn disabled_emit_ns_per_site() -> f64 {
    gc_trace::disable();
    const N: u64 = 4_000_000;
    // Warm-up (first touch of the thread-local track registration).
    for i in 0..1_000u64 {
        gc_trace::emit(gc_trace::EventKind::Instant {
            id: 0,
            value: std::hint::black_box(i),
        });
    }
    let t0 = std::time::Instant::now();
    for i in 0..N {
        gc_trace::emit(gc_trace::EventKind::Instant {
            id: 0,
            value: std::hint::black_box(i),
        });
    }
    t0.elapsed().as_nanos() as f64 / N as f64
}

fn main() {
    let max: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5_000_000);
    let threads: Vec<usize> = std::env::args()
        .nth(2)
        .map(|s| {
            s.split(',')
                .map(|t| t.parse().expect("thread counts are integers"))
                .collect()
        })
        .unwrap_or_else(|| vec![1, 2, 4]);

    let cfg = ModelConfig::small(1, 2);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("parallel frontier exploration, fig3 configuration (1 mutator, 2 slots, full suite)");
    println!("host parallelism: {cores} core(s)\n");

    let reports: Vec<CheckReport> = threads
        .iter()
        .map(|&t| {
            check_config_opts(
                format!("1 mutator, 2 slots, {t} thread(s)"),
                &cfg,
                Suite::Full.properties(&cfg),
                bounded_config(max),
                Strategy::Bfs { threads: t },
            )
        })
        .collect();

    print_table(&reports);

    let base = &reports[0];
    println!();
    let mut rows: Vec<Json> = Vec::new();
    for (i, r) in reports.iter().enumerate() {
        assert_eq!(
            r.states, base.states,
            "state counts must be thread-invariant"
        );
        assert_eq!(
            r.transitions, base.transitions,
            "transition counts must be thread-invariant"
        );
        assert_eq!(r.depth, base.depth, "depth must be thread-invariant");
        assert_eq!(r.outcome, base.outcome, "verdicts must be thread-invariant");
        let speedup = base.elapsed.as_secs_f64() / r.elapsed.as_secs_f64();
        println!("{:<44} speedup vs sequential: {speedup:>5.2}x", r.label);
        rows.push(
            report_json(r)
                .set("threads", Json::from(threads[i]))
                .set("speedup", Json::from(speedup)),
        );
    }
    println!("\nall thread counts agree on states, transitions, depth and verdict.");

    // The checker's instrumentation must be free when tracing is off: the
    // runtime-disabled `emit` fast path is a single relaxed load.
    let per_site = disabled_emit_ns_per_site();
    println!("\nruntime-disabled trace emit: {per_site:.2} ns/site (budget {DISABLED_EMIT_BUDGET_NS} ns)");
    assert!(
        per_site < DISABLED_EMIT_BUDGET_NS,
        "runtime-disabled trace emit costs {per_site:.2} ns/site, \
         budget is {DISABLED_EMIT_BUDGET_NS} ns"
    );

    let record = gc_trace::bench_record(
        "parallel_speedup",
        &[
            ("max_states", Json::from(max)),
            (
                "threads",
                Json::Arr(threads.iter().map(|&t| Json::from(t)).collect()),
            ),
            ("host_parallelism", Json::from(cores)),
        ],
        &[
            ("runs", Json::Arr(rows)),
            ("disabled_emit_ns_per_site", Json::from(per_site)),
        ],
        None,
    );
    match write_bench_record("parallel_speedup", &record) {
        Ok(path) => println!("bench record -> {}", path.display()),
        Err(e) => eprintln!("warning: could not write bench record: {e}"),
    }
}
