//! **Static analysis vs exhaustive exploration.**
//!
//! The exhaustive explorer decides each litmus test by enumerating every
//! interleaving and store-buffer commit point; the static analyzer decides
//! the same question from program text alone, in time proportional to the
//! program size. This experiment runs both over the whole named litmus
//! suite, checks they agree test by test, and reports the work each had to
//! do — then shows the same asymmetry on the GC model, where the analyzer
//! rejects fence- and CAS-ablated configurations in microseconds while the
//! checker would need millions of states to find the concrete trace, and
//! demonstrates the `static_precheck` wiring that lets the checker refuse
//! such models before exploring at all.

use std::time::Instant;

use gc_analysis::{analyze_litmus, analyze_model, precheck, tso_relaxes};
use gc_model::invariants::safety_property;
use gc_model::{GcModel, ModelConfig};
use mc::{Checker, CheckerConfig};
use tso_model::litmus;
use tso_model::MemoryModel;

fn main() {
    println!("== litmus suite: static analyzer vs exhaustive explorer ==\n");
    println!(
        "{:<12} {:>8} {:>8}   {:>10} {:>12}   agree",
        "test", "static", "oracle", "static µs", "explored"
    );
    for test in litmus::suite() {
        let t0 = Instant::now();
        let flagged = !analyze_litmus(&test).is_empty();
        let static_us = t0.elapsed().as_micros();
        let relaxed = tso_relaxes(&test);
        let states = test.state_count(MemoryModel::Tso) + test.state_count(MemoryModel::Sc);
        assert_eq!(
            flagged,
            relaxed,
            "analyzer and oracle disagree on `{}`",
            test.name()
        );
        println!(
            "{:<12} {:>8} {:>8}   {:>10} {:>12}   yes",
            test.name(),
            if flagged { "hazard" } else { "clean" },
            if relaxed { "relaxed" } else { "sc" },
            static_us,
            format!("{states} states"),
        );
    }

    println!("\n== GC model: static verdicts per configuration ==\n");
    let configs: Vec<(&str, ModelConfig)> = vec![
        ("faithful", ModelConfig::default()),
        (
            "no handshake fences",
            ModelConfig {
                handshake_fences: false,
                ..ModelConfig::default()
            },
        ),
        (
            "no mark CAS",
            ModelConfig {
                mark_cas: false,
                ..ModelConfig::default()
            },
        ),
        (
            "no deletion barrier",
            ModelConfig {
                deletion_barrier: false,
                ..ModelConfig::default()
            },
        ),
        (
            "no insertion barrier",
            ModelConfig {
                insertion_barrier: false,
                ..ModelConfig::default()
            },
        ),
    ];
    for (name, cfg) in &configs {
        let t0 = Instant::now();
        let diags = analyze_model(cfg);
        let us = t0.elapsed().as_micros();
        println!("{name:<22} {:>3} diagnostic(s) in {us:>5} µs", diags.len());
        for d in &diags {
            println!("    {d}");
        }
    }

    println!("\n== precheck wiring: the checker refuses a flagged model ==\n");
    let mut ablated = ModelConfig::small(1, 2);
    ablated.handshake_fences = false;
    let outcome = Checker::with_config(CheckerConfig {
        static_precheck: Some(precheck(ablated.clone(), Vec::new())),
        ..CheckerConfig::default()
    })
    .property(safety_property(&ablated))
    .run(&GcModel::new(ablated));
    println!("checker verdict: {}", outcome.verdict());
    println!(
        "states explored: {} (the precheck fired before exploration)",
        outcome.stats().states
    );
    assert!(outcome.precheck_diagnostics().is_some());
    assert_eq!(outcome.stats().states, 0);

    println!("\nthe static analyzer and the exhaustive oracle agree on every");
    println!("litmus test, and the precheck stops doomed explorations for free.");
}
