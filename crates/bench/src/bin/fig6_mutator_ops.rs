//! **Figure 6 — the mutator operations.**
//!
//! `Load`, `Store` (with both barriers), `Alloc` (marked `f_A`) and
//! `Discard` are the whole heap-access protocol; the paper assumes type
//! safety but *not* data-race freedom. This driver verifies the full
//! invariant suite for instances restricted to each operation subset, so a
//! failure would localise to the operation that introduced it.

use gc_bench::{check_config, print_table, Suite};
use gc_model::{ModelConfig, MutatorOps};

fn main() {
    let max: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5_000_000);

    let base = ModelConfig::small(1, 2);
    let mk = |label: &str, ops: MutatorOps| {
        let mut cfg = base.clone();
        cfg.ops = ops;
        check_config(label, &cfg, max, Suite::Full)
    };
    let off = MutatorOps {
        load: false,
        store: false,
        alloc: false,
        discard: false,
        mfence: false,
    };

    let reports = vec![
        mk(
            "discard only",
            MutatorOps {
                discard: true,
                ..off
            },
        ),
        mk(
            "alloc + discard",
            MutatorOps {
                alloc: true,
                discard: true,
                ..off
            },
        ),
        mk(
            "load + discard",
            MutatorOps {
                load: true,
                discard: true,
                ..off
            },
        ),
        mk(
            "store + discard",
            MutatorOps {
                store: true,
                discard: true,
                ..off
            },
        ),
        mk("all operations", MutatorOps::default()),
    ];
    print_table(&reports);
    assert!(reports.iter().all(|r| r.violated.is_none()));
    println!("\nevery operation subset preserves every invariant.");
}
