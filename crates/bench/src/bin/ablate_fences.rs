//! **Ablation A3 — the handshake fences are load-bearing on TSO.**
//!
//! §2.4 prescribes: a store fence when the collector initiates a round of
//! handshakes, a load fence when a mutator accepts, a store fence when it
//! completes, and a load fence at the collector afterwards. Removing them
//! lets control-variable writes linger in the collector's store buffer
//! across a "completed" handshake — and the checker finds a genuine safety
//! violation: the un-committed `f_A` flip lets a mutator allocate *white*
//! after the root snapshot, and the sweep frees the still-rooted object.
//!
//! Under sequential consistency the same fence-free configuration
//! verifies, isolating the failure to the relaxed memory model.

use gc_bench::{check_config, print_table, print_trace, Suite};
use gc_model::ModelConfig;
use tso_model::MemoryModel;

fn main() {
    let max: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6_000_000);

    let mut no_fences_tso = ModelConfig::small(1, 2);
    no_fences_tso.handshake_fences = false;

    let mut no_fences_sc = no_fences_tso.clone();
    no_fences_sc.memory_model = MemoryModel::Sc;

    let reports = vec![
        check_config(
            "TSO, no handshake fences",
            &no_fences_tso,
            max,
            Suite::SafetyOnly,
        ),
        check_config(
            "SC,  no handshake fences",
            &no_fences_sc,
            max,
            Suite::SafetyOnly,
        ),
    ];
    print_table(&reports);
    print_trace(&reports[0]);

    assert!(
        reports[0].violated.is_some(),
        "TSO without fences is unsafe"
    );
    assert!(reports[1].verified(), "SC does not need the fences");
    println!("\nfences matter exactly because of the store buffers: the same");
    println!("fence-free protocol is safe under SC and unsafe under TSO.");
}
