//! **State-space reduction** — measures what each reduction technique in
//! `mc` + `gc-model` buys on the flagship configurations, and checks the
//! techniques change *state counts only*: every run of every instance must
//! produce the same verdict as the unreduced baseline.
//!
//! Three techniques (see `DESIGN.md` §2.13 for soundness):
//!
//! * `por` — ample-set partial-order reduction over certified invisible
//!   process-local steps;
//! * `symmetry` — canonicalization under mutator permutation (only honoured
//!   on symmetric configurations);
//! * `sb_canon` — adjacent-duplicate store-buffer coalescing.
//!
//! The final section is the memory-budget acceptance gate: a two-mutator
//! instance with a real (4-slot) heap under allocation + root-discard
//! churn must run to exhaustion (VERIFIED, not bounded) with all
//! reductions on and the disk-spill frontier engaged, so the BFS
//! wave-front never has to be memory-resident.
//!
//! Every run shares one metrics [`Registry`] wired into the checker
//! ([`CheckerConfig::metrics`]): BFS progress gauges (`mc_states_total`,
//! `mc_states_per_sec`, `mc_bfs_level`, `mc_frontier_len`), disk-spill
//! counters (`mc_spill_bytes_written_total`, `mc_spill_bytes_read_total`,
//! `mc_spill_frontier_bytes`) and per-technique
//! `mc_reduction_hits_total{technique=...}` counters. The snapshot lands
//! in `BENCH_reduction.json`'s `metrics` section; `--metrics-addr ADDR`
//! additionally serves it live over HTTP (`/metrics`, `/metrics.json`,
//! `/healthz` keyed to `mc_states_total` progress).
//!
//! Usage: `reduction [max_states] [--ci] [--metrics-addr ADDR]` (default
//! 5 million; `--ci` trims the sweep to pull-request size).

use std::sync::Arc;
use std::time::Duration;

use gc_bench::{check_config_opts, print_table, report_json, Suite};
use gc_model::{InitialHeap, ModelConfig};
use gc_trace::{Json, Liveness, MetricsServer, Registry};
use mc::{CheckerConfig, Reduction, Strategy};

/// The reduction combinations measured per instance, in report order.
const COMBOS: [(&str, Reduction); 5] = [
    (
        "none",
        Reduction {
            por: false,
            symmetry: false,
            sb_canon: false,
        },
    ),
    (
        "por",
        Reduction {
            por: true,
            symmetry: false,
            sb_canon: false,
        },
    ),
    (
        "symmetry",
        Reduction {
            por: false,
            symmetry: true,
            sb_canon: false,
        },
    ),
    (
        "sb_canon",
        Reduction {
            por: false,
            symmetry: false,
            sb_canon: true,
        },
    ),
    (
        "por+symmetry+sb_canon",
        Reduction {
            por: true,
            symmetry: true,
            sb_canon: true,
        },
    ),
];

fn config(max_states: usize, reduction: Reduction, registry: &Arc<Registry>) -> CheckerConfig {
    CheckerConfig {
        max_states,
        hash_compact: true,
        ..CheckerConfig::default()
    }
    .reduction(reduction)
    .metrics(Arc::clone(registry))
}

/// Checks `cfg` under every reduction combination, asserts verdict
/// equality, and prints the table. Returns `(combo label, reduction,
/// report)` per combination, in [`COMBOS`] order.
fn sweep(
    name: &str,
    cfg: &ModelConfig,
    max_states: usize,
    registry: &Arc<Registry>,
) -> Vec<(&'static str, Reduction, gc_bench::CheckReport)> {
    let mut reports = Vec::new();
    for (label, reduction) in COMBOS {
        let report = check_config_opts(
            format!("{name} [{label}]"),
            cfg,
            Suite::Full.properties(cfg),
            config(max_states, reduction, registry),
            Strategy::default(),
        );
        reports.push((label, reduction, report));
    }
    print_table(
        &reports
            .iter()
            .map(|(_, _, r)| r.clone())
            .collect::<Vec<_>>(),
    );

    let baseline = &reports[0].2;
    for (_, _, report) in &reports[1..] {
        assert_eq!(
            report.outcome, baseline.outcome,
            "reductions must not change the verdict ({name}: {} vs {})",
            report.outcome, baseline.outcome
        );
        assert_eq!(
            report.trace, baseline.trace,
            "reductions must not change the counterexample trace ({name})"
        );
    }
    let all = &reports.last().expect("combos nonempty").2;
    if baseline.verified() && all.verified() {
        println!(
            "  → {:.1}x state reduction (all on: {} vs none: {})\n",
            baseline.states as f64 / all.states.max(1) as f64,
            all.states,
            baseline.states
        );
    } else {
        println!();
    }

    reports
}

/// A sweep row as a flat JSON object.
fn row_json(label: &str, reduction: Reduction, report: &gc_bench::CheckReport) -> Json {
    report_json(report)
        .set("combo", label)
        .set("por", reduction.por)
        .set("symmetry", reduction.symmetry)
        .set("sb_canon", reduction.sb_canon)
}

fn main() {
    let mut max: usize = 5_000_000;
    let mut ci = false;
    let mut metrics_addr: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--ci" => {
                ci = true;
                i += 1;
            }
            "--metrics-addr" => {
                metrics_addr = Some(
                    args.get(i + 1)
                        .expect("--metrics-addr needs a value")
                        .clone(),
                );
                i += 2;
            }
            other => {
                max = other.parse().unwrap_or_else(|_| {
                    panic!("unknown argument: {other} (see the module docs for usage)")
                });
                i += 1;
            }
        }
    }

    // One registry for every run: the checker's telemetry accumulates
    // across the sweep, the scrape endpoint (if any) serves it live, and
    // the final snapshot lands in the BENCH record.
    let registry = Arc::new(Registry::new());
    let server = metrics_addr.map(|addr| {
        let live = Liveness::watch(
            Arc::clone(&registry),
            "mc_states_total",
            Duration::from_secs(10),
        );
        let s = MetricsServer::spawn(&addr, Arc::clone(&registry), Some(live))
            .unwrap_or_else(|e| panic!("cannot bind {addr}: {e}"));
        println!("metrics: http://{}/metrics", s.local_addr());
        s
    });

    let mut rows = Vec::new();

    // The flagship symmetric instance: two mutators contending on one
    // shared object, with deep (6-entry) store buffers — the closest
    // bounded approximation of the paper's unbounded x86-TSO FIFOs that
    // still terminates unreduced, and the instance the ≥10x acceptance
    // gate is measured on. The ratio grows with buffer depth because
    // `sb_canon` collapses redundant buffered-duplicate interleavings:
    // the fully-reduced state count is *identical* from `buffer_cap` 2
    // through 6 while the unreduced count grows ~5x.
    // `--ci` trims the sweep for a pull-request-sized runner: shallower
    // flagship buffers (the fully-reduced count is the same either way)
    // and no 1-mutator sweep. The committed EXPERIMENTS.md numbers come
    // from the full run.
    let mut flagship = ModelConfig::small(2, 2);
    flagship.initial = InitialHeap::shared_object(2, 1);
    flagship.ops.alloc = false;
    flagship.buffer_cap = if ci { 3 } else { 6 };
    println!(
        "flagship: 2 mutators, shared object, no alloc, buffer_cap={}",
        flagship.buffer_cap
    );
    let flagship_runs = sweep("2mut shared", &flagship, max, &registry);
    let ratio = flagship_runs[0].2.states as f64
        / flagship_runs
            .last()
            .expect("combos nonempty")
            .2
            .states
            .max(1) as f64;
    rows.extend(
        flagship_runs
            .iter()
            .map(|(label, reduction, report)| row_json(label, *reduction, report)),
    );

    // The smallest faithful instance (1 mutator: por + sb_canon only;
    // symmetry needs ≥ 2 mutators and is a requested-but-inert flag here).
    if !ci {
        println!("smallest faithful instance: 1 mutator, 2 slots, all ops");
        rows.extend(
            sweep("1mut all-ops", &ModelConfig::small(1, 2), max, &registry)
                .iter()
                .map(|(label, reduction, report)| row_json(label, *reduction, report)),
        );
    }

    // The memory-budget gate: a two-mutator instance with a real heap —
    // 4 slots, a shared object, and allocation + root-discard churn
    // against the concurrent marker. With every reduction on and the
    // disk-spill frontier engaged (20k-entry levels stream to disk
    // through the state codec) the search runs to exhaustion with the
    // wave-front never resident in memory, which is the acceptance gate:
    // the run must VERIFY, not merely stay unviolated within a bound.
    // (Enabling shared-object *stores* as well pushes past 4M states
    // even fully reduced — that frontier is the open scale boundary;
    // see EXPERIMENTS.md.)
    println!("2 mutators, 4 slots, alloc+discard churn — all reductions + disk spill");
    let heap_cfg = {
        let mut c = ModelConfig::small(2, 4);
        c.initial = InitialHeap::shared_object(2, 1);
        c.ops.load = false;
        c.ops.store = false;
        c
    };
    let mut spill_config = config(max, Reduction::all(), &registry);
    spill_config.spill_threshold = Some(20_000);
    let heap_report = check_config_opts(
        "2mut 4-slot heap [all+spill]",
        &heap_cfg,
        Suite::Full.properties(&heap_cfg),
        spill_config,
        Strategy::default(),
    );
    print_table(std::slice::from_ref(&heap_report));
    assert!(
        heap_report.verified(),
        "heap-gate instance must complete and verify, got {}",
        heap_report.outcome
    );
    rows.push(
        report_json(&heap_report)
            .set("combo", "por+symmetry+sb_canon")
            .set("por", true)
            .set("symmetry", true)
            .set("sb_canon", true)
            .set("spill_threshold", 20_000u64),
    );

    // The unreduced comparison row for the same instance (skipped in CI:
    // the artifact diff wants the gate, not the control).
    if !ci {
        let mut none_spill = config(max, Reduction::default(), &registry);
        none_spill.spill_threshold = Some(20_000);
        let heap_none = check_config_opts(
            "2mut 4-slot heap [none+spill]",
            &heap_cfg,
            Suite::Full.properties(&heap_cfg),
            none_spill,
            Strategy::default(),
        );
        print_table(std::slice::from_ref(&heap_none));
        assert_eq!(
            heap_none.outcome, heap_report.outcome,
            "reductions must not change the heap-gate verdict"
        );
        rows.push(
            report_json(&heap_none)
                .set("combo", "none")
                .set("por", false)
                .set("symmetry", false)
                .set("sb_canon", false)
                .set("spill_threshold", 20_000u64),
        );
    }

    println!("\nflagship reduction (all on vs none): {ratio:.1}x");

    let record = gc_trace::bench_record(
        "reduction",
        &[("max_states", Json::from(max as u64))],
        &[
            ("runs", Json::from(rows)),
            ("flagship_reduction_x", Json::from(ratio)),
        ],
        Some(&registry),
    );
    match gc_bench::write_bench_record("reduction", &record) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write BENCH_reduction.json: {e}"),
    }
    if let Some(server) = server {
        server.shutdown();
    }
}
