//! A minimal micro-benchmark harness for the `benches/` targets (which run
//! with `harness = false`): calibrated wall-clock timing with a
//! criterion-like `Bencher::iter` surface, no external dependencies.
//!
//! The numbers are means over a calibrated batch (~80ms of work after
//! warm-up), good for the order-of-magnitude comparisons the experiment
//! record needs; they are not a statistical benchmark suite.

use std::cell::RefCell;
use std::hint::black_box;
use std::time::{Duration, Instant};

use gc_trace::Json;

/// Target measurement window per benchmark.
const WINDOW: Duration = Duration::from_millis(80);

/// One calibrated measurement — the machine-readable record behind the
/// row [`bench_function`] prints. Every measurement also lands in a
/// thread-local session; [`write_session_record`] drains the session into
/// a `BENCH_*.json` document so the `benches/` targets leave the same
/// evidence trail as the experiment bins.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// The benchmark row's name.
    pub name: String,
    /// Iterations in the measured batch.
    pub iters: u64,
    /// Wall-clock time for the whole batch.
    pub total: Duration,
}

impl Measurement {
    /// Mean nanoseconds per iteration.
    pub fn ns_per_iter(&self) -> f64 {
        self.total.as_nanos() as f64 / self.iters as f64
    }

    /// The measurement as a flat JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("name", self.name.as_str())
            .set("iters", self.iters)
            .set("total_ns", self.total.as_nanos() as u64)
            .set("ns_per_iter", self.ns_per_iter())
    }
}

thread_local! {
    /// Measurements taken on this thread since the last
    /// [`write_session_record`] — benches are single-threaded drivers, so
    /// thread-local is exactly session-local.
    static SESSION: RefCell<Vec<Measurement>> = const { RefCell::new(Vec::new()) };
}

/// Collects one calibrated measurement inside [`bench_function`].
pub struct Bencher {
    measured: Option<(u64, Duration)>,
}

impl Bencher {
    /// Times `f` over a batch sized so the whole batch takes roughly
    /// [`WINDOW`]; earlier smaller batches double as warm-up.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let mut n: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..n {
                black_box(f());
            }
            let elapsed = t0.elapsed();
            if elapsed >= WINDOW || n >= 1 << 30 {
                self.measured = Some((n, elapsed));
                return;
            }
            // Scale the batch toward the window (at least doubling).
            let scale = if elapsed.is_zero() {
                100
            } else {
                (WINDOW.as_nanos() * 5 / 4 / elapsed.as_nanos().max(1)) as u64
            };
            n = n.saturating_mul(scale.max(2));
        }
    }

    /// Like [`Bencher::iter`] but with a per-iteration `setup` whose cost
    /// is excluded from the measurement.
    pub fn iter_batched<S, R>(&mut self, mut setup: impl FnMut() -> S, mut f: impl FnMut(S) -> R) {
        // Warm-up.
        for _ in 0..16 {
            black_box(f(setup()));
        }
        let mut total = Duration::ZERO;
        let mut n: u64 = 0;
        while total < WINDOW && n < 1 << 24 {
            let input = setup();
            let t0 = Instant::now();
            black_box(f(input));
            total += t0.elapsed();
            n += 1;
        }
        self.measured = Some((n, total));
    }
}

/// Runs one benchmark, prints `name ... ns/iter`, and returns (and
/// session-records) the [`Measurement`].
pub fn bench_function(name: &str, mut f: impl FnMut(&mut Bencher)) -> Measurement {
    let mut b = Bencher { measured: None };
    f(&mut b);
    let (n, elapsed) = b.measured.expect("the bench closure must call iter");
    let per = elapsed.as_nanos() as f64 / n as f64;
    if per >= 1_000_000.0 {
        println!("{name:<48} {:>14.3} ms/iter ({n} iters)", per / 1e6);
    } else if per >= 1_000.0 {
        println!("{name:<48} {:>14.3} µs/iter ({n} iters)", per / 1e3);
    } else {
        println!("{name:<48} {:>14.1} ns/iter ({n} iters)", per);
    }
    let m = Measurement {
        name: name.to_string(),
        iters: n,
        total: elapsed,
    };
    SESSION.with(|s| s.borrow_mut().push(m.clone()));
    m
}

/// Drains every measurement this thread's [`bench_function`] calls have
/// recorded into a `gc-bench/v1` record and writes it to
/// `experiments_output/BENCH_<bench>.json` (via
/// [`crate::write_bench_record`]). Failures are warnings, not errors —
/// the table already printed.
pub fn write_session_record(bench: &str, params: &[(&str, Json)]) {
    let measurements: Vec<Json> = SESSION.with(|s| {
        s.borrow_mut()
            .drain(..)
            .map(|m| m.to_json())
            .collect::<Vec<Json>>()
    });
    let record = gc_trace::bench_record(
        bench,
        params,
        &[("measurements", Json::from(measurements))],
        None,
    );
    match crate::write_bench_record(bench, &record) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write BENCH_{bench}.json: {e}"),
    }
}
