//! A minimal micro-benchmark harness for the `benches/` targets (which run
//! with `harness = false`): calibrated wall-clock timing with a
//! criterion-like `Bencher::iter` surface, no external dependencies.
//!
//! The numbers are means over a calibrated batch (~80ms of work after
//! warm-up), good for the order-of-magnitude comparisons the experiment
//! record needs; they are not a statistical benchmark suite.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target measurement window per benchmark.
const WINDOW: Duration = Duration::from_millis(80);

/// Collects one calibrated measurement inside [`bench_function`].
pub struct Bencher {
    measured: Option<(u64, Duration)>,
}

impl Bencher {
    /// Times `f` over a batch sized so the whole batch takes roughly
    /// [`WINDOW`]; earlier smaller batches double as warm-up.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let mut n: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..n {
                black_box(f());
            }
            let elapsed = t0.elapsed();
            if elapsed >= WINDOW || n >= 1 << 30 {
                self.measured = Some((n, elapsed));
                return;
            }
            // Scale the batch toward the window (at least doubling).
            let scale = if elapsed.is_zero() {
                100
            } else {
                (WINDOW.as_nanos() * 5 / 4 / elapsed.as_nanos().max(1)) as u64
            };
            n = n.saturating_mul(scale.max(2));
        }
    }

    /// Like [`Bencher::iter`] but with a per-iteration `setup` whose cost
    /// is excluded from the measurement.
    pub fn iter_batched<S, R>(&mut self, mut setup: impl FnMut() -> S, mut f: impl FnMut(S) -> R) {
        // Warm-up.
        for _ in 0..16 {
            black_box(f(setup()));
        }
        let mut total = Duration::ZERO;
        let mut n: u64 = 0;
        while total < WINDOW && n < 1 << 24 {
            let input = setup();
            let t0 = Instant::now();
            black_box(f(input));
            total += t0.elapsed();
            n += 1;
        }
        self.measured = Some((n, total));
    }
}

/// Runs one benchmark and prints `name ... ns/iter`.
pub fn bench_function(name: &str, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher { measured: None };
    f(&mut b);
    let (n, elapsed) = b.measured.expect("the bench closure must call iter");
    let per = elapsed.as_nanos() as f64 / n as f64;
    if per >= 1_000_000.0 {
        println!("{name:<48} {:>14.3} ms/iter ({n} iters)", per / 1e6);
    } else if per >= 1_000.0 {
        println!("{name:<48} {:>14.3} µs/iter ({n} iters)", per / 1e3);
    } else {
        println!("{name:<48} {:>14.1} ns/iter ({n} iters)", per);
    }
}
