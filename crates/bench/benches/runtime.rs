//! End-to-end runtime benchmarks: allocation throughput, full-cycle cost
//! as a function of the live set, and handshake latency as a function of
//! the mutator count.

use std::sync::atomic::{AtomicBool, Ordering};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use otf_gc::{Collector, GcConfig, Gc, Mutator};

/// Allocation + discard churn with the collector running concurrently:
/// steady-state allocation throughput including reclamation.
fn bench_alloc_churn(c: &mut Criterion) {
    let mut cfg = GcConfig::new(8192, 1);
    cfg.validate = false;
    let collector = Collector::new(cfg);
    let mut m = collector.register_mutator();
    collector.start();
    c.bench_function("alloc+discard churn (collector running)", |bench| {
        bench.iter(|| loop {
            m.safepoint();
            match m.alloc(1) {
                Ok(g) => {
                    m.discard(g);
                    break;
                }
                Err(_) => std::thread::yield_now(),
            }
        })
    });
    collector.stop();
}

fn build_list(m: &mut Mutator, n: usize) -> Gc {
    let head = m.alloc(1).expect("room");
    let mut tail = head;
    for _ in 1..n {
        let node = m.alloc(1).expect("room"); // rooted by alloc
        m.store(tail, 0, Some(node));
        if tail != head {
            m.discard(tail); // now reachable through the list
        }
        tail = node;
    }
    if tail != head {
        m.discard(tail);
    }
    head
}

/// One full collect() cycle against live sets of different sizes, with a
/// helper thread answering handshakes.
fn bench_cycle_vs_live(c: &mut Criterion) {
    let mut group = c.benchmark_group("gc cycle vs live set");
    group.sample_size(20);
    for &live in &[16usize, 256, 2048] {
        let mut cfg = GcConfig::new(live * 2 + 64, 1);
        cfg.validate = false;
        let collector = Collector::new(cfg);
        let mut m = collector.register_mutator();
        let _head = build_list(&mut m, live);
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| {
                while !stop.load(Ordering::Acquire) {
                    m.safepoint();
                    std::thread::yield_now();
                }
            });
            group.bench_with_input(BenchmarkId::from_parameter(live), &live, |bench, _| {
                bench.iter(|| collector.collect())
            });
            stop.store(true, Ordering::Release);
        });
    }
    group.finish();
}

/// Full-cycle latency (on an empty heap) against the number of registered
/// mutators, all spinning at safepoints: the cost of the six-plus rounds
/// of ragged handshakes.
fn bench_handshake_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("cycle latency vs mutators");
    group.sample_size(20);
    for &n in &[1usize, 2, 4] {
        let mut cfg = GcConfig::new(64, 1);
        cfg.validate = false;
        let collector = Collector::new(cfg);
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            for _ in 0..n {
                let mut m = collector.register_mutator();
                let stop = &stop;
                s.spawn(move || {
                    while !stop.load(Ordering::Acquire) {
                        m.safepoint();
                        std::thread::yield_now();
                    }
                });
            }
            group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
                bench.iter(|| collector.collect())
            });
            stop.store(true, Ordering::Release);
        });
    }
    group.finish();
}

/// The §4 allocation-pool extension vs the global free-list lock.
fn bench_alloc_pooling(c: &mut Criterion) {
    let mut group = c.benchmark_group("alloc: pooled vs locked");
    for (name, pool) in [("locked (pool=0)", 0usize), ("pooled (batch 64)", 64)] {
        let mut cfg = GcConfig::new(1 << 14, 0);
        cfg.validate = false;
        cfg.alloc_pool = pool;
        let collector = Collector::new(cfg);
        let mut m = collector.register_mutator();
        collector.start();
        group.bench_function(name, |bench| {
            bench.iter(|| loop {
                m.safepoint();
                match m.alloc(0) {
                    Ok(g) => {
                        m.discard(g);
                        break;
                    }
                    Err(_) => std::thread::yield_now(),
                }
            })
        });
        collector.stop();
    }
    group.finish();
}

criterion_group!(
    runtime,
    bench_alloc_churn,
    bench_cycle_vs_live,
    bench_handshake_latency,
    bench_alloc_pooling
);
criterion_main!(runtime);
