//! End-to-end runtime benchmarks: allocation throughput, full-cycle cost
//! as a function of the live set, and handshake latency as a function of
//! the mutator count.

use std::sync::atomic::{AtomicBool, Ordering};

use gc_bench::harness::{bench_function, Bencher};
use otf_gc::{Collector, Gc, GcConfig, HeapLayout, Mutator};

/// Allocation + discard churn with the collector running concurrently:
/// steady-state allocation throughput including reclamation.
fn bench_alloc_churn(bench: &mut Bencher) {
    let cfg = GcConfig::builder()
        .capacity(8192)
        .max_fields(1)
        .validate(false)
        .build();
    let collector = Collector::new(cfg);
    let mut m = collector.register_mutator();
    collector.start();
    bench.iter(|| loop {
        m.safepoint();
        match m.alloc(1) {
            Ok(g) => {
                m.discard(g);
                break;
            }
            Err(_) => std::thread::yield_now(),
        }
    });
    collector.stop();
}

fn build_list(m: &mut Mutator, n: usize) -> Gc {
    let head = m.alloc(1).expect("room");
    let mut tail = head;
    for _ in 1..n {
        let node = m.alloc(1).expect("room"); // rooted by alloc
        m.store(tail, 0, Some(node));
        if tail != head {
            m.discard(tail); // now reachable through the list
        }
        tail = node;
    }
    if tail != head {
        m.discard(tail);
    }
    head
}

/// One full collect() cycle against live sets of different sizes, with a
/// helper thread answering handshakes.
fn bench_cycle_vs_live() {
    for &live in &[16usize, 256, 2048] {
        let cfg = GcConfig::builder()
            .capacity(live * 2 + 64)
            .max_fields(1)
            .validate(false)
            .build();
        let collector = Collector::new(cfg);
        let mut m = collector.register_mutator();
        let _head = build_list(&mut m, live);
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| {
                while !stop.load(Ordering::Acquire) {
                    m.safepoint();
                    std::thread::yield_now();
                }
            });
            bench_function(&format!("gc cycle vs live set/{live}"), |bench| {
                bench.iter(|| collector.collect())
            });
            stop.store(true, Ordering::Release);
        });
    }
}

/// Full-cycle latency (on an empty heap) against the number of registered
/// mutators, all spinning at safepoints: the cost of the six-plus rounds
/// of ragged handshakes.
fn bench_handshake_latency() {
    for &n in &[1usize, 2, 4] {
        let cfg = GcConfig::builder()
            .capacity(64)
            .max_fields(1)
            .validate(false)
            .build();
        let collector = Collector::new(cfg);
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            for _ in 0..n {
                let mut m = collector.register_mutator();
                let stop = &stop;
                s.spawn(move || {
                    while !stop.load(Ordering::Acquire) {
                        m.safepoint();
                        std::thread::yield_now();
                    }
                });
            }
            bench_function(&format!("cycle latency vs mutators/{n}"), |bench| {
                bench.iter(|| collector.collect())
            });
            stop.store(true, Ordering::Release);
        });
    }
}

/// The tracer's per-site cost in its three states: runtime-disabled (one
/// relaxed load — the default for every instrumented hot path), enabled
/// (encode + SPSC ring push), and enabled-with-a-full-ring (events drop;
/// the push must stay cheap and never block). Feature-off is not a row:
/// those builds compile the call sites out entirely.
fn bench_trace_emit() {
    gc_trace::disable();
    bench_function("trace emit: runtime-disabled", |bench| {
        bench.iter(|| gc_trace::emit(gc_trace::EventKind::Instant { id: 1, value: 7 }))
    });
    gc_trace::enable();
    bench_function("trace emit: enabled (ring drains lazily)", |bench| {
        bench.iter(|| gc_trace::emit(gc_trace::EventKind::Instant { id: 1, value: 7 }))
    });
    // By now the fixed-capacity ring has long overflowed: same call, but
    // every push is a drop.
    bench_function("trace emit: enabled, ring full (dropping)", |bench| {
        bench.iter(|| gc_trace::emit(gc_trace::EventKind::Instant { id: 1, value: 7 }))
    });
    gc_trace::disable();
    let _ = gc_trace::Tracer::global().drain();
}

/// The §4 allocation-pool extension vs the global free-list lock, plus
/// the segmented layout's TLAB bump path on the same loop.
fn bench_alloc_pooling() {
    let cells: [(&str, usize, HeapLayout); 3] = [
        ("locked (pool=0)", 0, HeapLayout::Slab),
        ("pooled (batch 64)", 64, HeapLayout::Slab),
        (
            "segmented (TLAB 64)",
            0,
            HeapLayout::Segmented {
                segment_slots: 256,
                tlab_slots: 64,
            },
        ),
    ];
    for (name, pool, layout) in cells {
        let cfg = GcConfig::builder()
            .capacity(1 << 14)
            .max_fields(0)
            .validate(false)
            .alloc_pool(pool)
            .layout(layout)
            .build();
        let collector = Collector::new(cfg);
        let mut m = collector.register_mutator();
        collector.start();
        bench_function(&format!("alloc: {name}"), |bench| {
            bench.iter(|| loop {
                m.safepoint();
                match m.alloc(0) {
                    Ok(g) => {
                        m.discard(g);
                        break;
                    }
                    Err(_) => std::thread::yield_now(),
                }
            })
        });
        collector.stop();
    }
}

/// The checker's hot successor-expansion path: a fresh `Vec` per state
/// (`successors`) vs one reused scratch buffer (`successors_into`) over
/// a fixed bag of reachable model states. The delta is what the
/// buffer-reuse path buys the BFS inner loop in allocation churn.
fn bench_successor_expansion() {
    use gc_model::{GcModel, ModelConfig};
    use mc::TransitionSystem;

    let model = GcModel::new(ModelConfig::default());
    // A few BFS levels' worth of states to expand, duplicates and all
    // (the expansion cost is per state, not per distinct state).
    let mut states = model.initial_states();
    let mut frontier = states.clone();
    while states.len() < 512 {
        let mut next = Vec::new();
        for s in &frontier {
            next.extend(model.successors(s).into_iter().map(|(_, t)| t));
        }
        frontier = next;
        states.extend(frontier.iter().cloned());
    }
    states.truncate(512);

    bench_function("expand 512 states: successors (fresh Vec)", |bench| {
        bench.iter(|| {
            let mut n = 0usize;
            for s in &states {
                n += model.successors(s).len();
            }
            n
        })
    });
    bench_function("expand 512 states: successors_into (reused)", |bench| {
        let mut buf = Vec::new();
        bench.iter(|| {
            let mut n = 0usize;
            for s in &states {
                buf.clear();
                model.successors_into(s, &mut buf);
                n += buf.len();
            }
            n
        })
    });
}

fn main() {
    bench_function("alloc+discard churn (collector running)", bench_alloc_churn);
    bench_cycle_vs_live();
    bench_handshake_latency();
    bench_alloc_pooling();
    bench_trace_emit();
    bench_successor_expansion();
    gc_bench::harness::write_session_record("runtime", &[]);
}
