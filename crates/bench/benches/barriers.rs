//! Write-barrier microbenchmarks — the performance claims behind Figure 5:
//! the barrier is two plain loads when the collector is idle or the target
//! is already marked, and pays the CAS only on the first marking of an
//! unmarked object during an active cycle.

use gc_bench::harness::{bench_function, Bencher};
use otf_gc::{Collector, GcConfig, Phase};

/// Bare store: both barriers compiled out (the ablation configuration) —
/// the baseline cost of the field write itself.
fn bench_store_bare(bench: &mut Bencher) {
    let cfg = GcConfig::builder()
        .capacity(1024)
        .max_fields(2)
        .insertion_barrier(false)
        .deletion_barrier(false)
        .validate(false)
        .build();
    let collector = Collector::new(cfg);
    let mut m = collector.register_mutator();
    let a = m.alloc(2).unwrap();
    let b = m.alloc(2).unwrap();
    bench.iter(|| m.store(a, 0, Some(b)))
}

/// Barriers on, collector idle: the flag check matches (`flag == f_M`), so
/// the barrier exits after one load per mark.
fn bench_store_idle(bench: &mut Bencher) {
    let cfg = GcConfig::builder()
        .capacity(1024)
        .max_fields(2)
        .validate(false)
        .build();
    let collector = Collector::new(cfg);
    let mut m = collector.register_mutator();
    let a = m.alloc(2).unwrap();
    let b = m.alloc(2).unwrap();
    bench.iter(|| m.store(a, 0, Some(b)))
}

/// Barriers on, marking active, targets already marked: the common case
/// during a cycle — still no CAS.
fn bench_store_marked(bench: &mut Bencher) {
    let cfg = GcConfig::builder()
        .capacity(1024)
        .max_fields(2)
        .validate(false)
        .build();
    let collector = Collector::new(cfg);
    collector.debug_set_fm(true);
    collector.debug_set_fa(true); // allocate black
    collector.debug_set_phase(Phase::Mark);
    let mut m = collector.register_mutator();
    let a = m.alloc(2).unwrap();
    let b = m.alloc(2).unwrap();
    bench.iter(|| m.store(a, 0, Some(b)))
}

/// Barriers on, marking active, target *unmarked*: the slow path — one CAS
/// per fresh object. Each iteration gets a fresh white object via batched
/// setup so the CAS actually fires.
fn bench_store_unmarked(bench: &mut Bencher) {
    let cfg = GcConfig::builder()
        .capacity(1 << 16)
        .max_fields(2)
        .validate(false)
        .build();
    let collector = Collector::new(cfg);
    collector.debug_set_phase(Phase::Mark);
    collector.debug_set_fm(true); // heap allocates white (f_A = false)
    let mut m = collector.register_mutator();
    let a = m.alloc(2).unwrap();
    // Pre-allocate a pool of white objects to consume.
    let pool: Vec<_> = (0..60_000).map(|_| m.alloc(0).unwrap()).collect();
    let mut idx = 0;
    bench.iter_batched(
        || {
            let t = pool[idx % pool.len()];
            idx += 1;
            t
        },
        |t| m.store(a, 0, Some(t)),
    )
}

/// The same store with validation on: the cost of the use-after-free
/// oracle.
fn bench_store_validated(bench: &mut Bencher) {
    let collector = Collector::new(GcConfig::builder().capacity(1024).max_fields(2).build());
    let mut m = collector.register_mutator();
    let a = m.alloc(2).unwrap();
    let b = m.alloc(2).unwrap();
    bench.iter(|| m.store(a, 0, Some(b)))
}

fn main() {
    bench_function("store/bare (no barriers)", bench_store_bare);
    bench_function("store/idle (barrier fast exit)", bench_store_idle);
    bench_function("store/mark, target marked (fast path)", bench_store_marked);
    bench_function("store/mark, target unmarked (CAS)", bench_store_unmarked);
    bench_function("store/idle + validation oracle", bench_store_validated);
    gc_bench::harness::write_session_record("barriers", &[]);
}
