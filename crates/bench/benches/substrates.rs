//! Substrate benchmarks: the TSO machine, the CIMP interpreter, and the
//! model checker's exploration throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use gc_model::{GcModel, ModelConfig};
use mc::{Checker, TransitionSystem};
use tso_model::{litmus, Machine, MemoryModel, ThreadId};

/// Raw machine operations: buffered write + forwarded read + commit.
fn bench_tso_ops(c: &mut Criterion) {
    c.bench_function("tso write+read+commit", |bench| {
        let mut m: Machine<u32, u32> = Machine::new(2, MemoryModel::Tso);
        m.initialize(0, 0);
        let t = ThreadId::new(0);
        bench.iter(|| {
            m.write(t, 0, 1).unwrap();
            let v = m.read(t, &0).unwrap();
            m.commit(t).unwrap();
            v
        })
    });
}

/// Exhaustive exploration of the SB litmus test (all interleavings).
fn bench_litmus_sb(c: &mut Criterion) {
    let test = litmus::sb();
    c.bench_function("litmus SB outcomes (TSO)", |bench| {
        bench.iter(|| test.outcomes(MemoryModel::Tso))
    });
}

/// One `successors` call on the GC model's initial state: the per-state
/// cost of the CIMP interpreter + rendezvous pairing.
fn bench_model_successors(c: &mut Criterion) {
    let model = GcModel::new(ModelConfig::small(1, 2));
    let init = model.initial_states().remove(0);
    c.bench_function("gc-model successors (initial state)", |bench| {
        bench.iter(|| model.successors(&init))
    });
}

/// Checker throughput: states explored per run on a budget of 20k states
/// (includes hashing, dedup and the full invariant suite).
fn bench_checker_throughput(c: &mut Criterion) {
    let cfg = ModelConfig::small(1, 2);
    c.bench_function("checker: 20k states, full suite", |bench| {
        bench.iter(|| {
            let model = GcModel::new(cfg.clone());
            Checker::new()
                .max_states(20_000)
                .hash_compact(true)
                .property(gc_model::invariants::combined_property(&cfg))
                .run(&model)
                .stats()
                .states
        })
    });
}

criterion_group! {
    name = substrates;
    config = Criterion::default().sample_size(20);
    targets = bench_tso_ops, bench_litmus_sb, bench_model_successors, bench_checker_throughput
}
criterion_main!(substrates);
