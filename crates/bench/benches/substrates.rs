//! Substrate benchmarks: the TSO machine, the CIMP interpreter, and the
//! model checker's exploration throughput.

use gc_bench::harness::{bench_function, Bencher};
use gc_model::{GcModel, ModelConfig};
use mc::{Checker, Strategy, TransitionSystem};
use tso_model::{litmus, Machine, MemoryModel, ThreadId};

/// Raw machine operations: buffered write + forwarded read + commit.
fn bench_tso_ops(bench: &mut Bencher) {
    let mut m: Machine<u32, u32> = Machine::new(2, MemoryModel::Tso);
    m.initialize(0, 0);
    let t = ThreadId::new(0);
    bench.iter(|| {
        m.write(t, 0, 1).unwrap();
        let v = m.read(t, &0).unwrap();
        m.commit(t).unwrap();
        v
    })
}

/// Exhaustive exploration of the SB litmus test (all interleavings).
fn bench_litmus_sb(bench: &mut Bencher) {
    let test = litmus::sb();
    bench.iter(|| test.outcomes(MemoryModel::Tso))
}

/// One `successors` call on the GC model's initial state: the per-state
/// cost of the CIMP interpreter + rendezvous pairing.
fn bench_model_successors(bench: &mut Bencher) {
    let model = GcModel::new(ModelConfig::small(1, 2));
    let init = model.initial_states().remove(0);
    bench.iter(|| model.successors(&init))
}

/// Checker throughput: states explored per run on a budget of 20k states
/// (includes hashing, dedup and the full invariant suite).
fn bench_checker_throughput(threads: usize) -> impl FnMut(&mut Bencher) {
    move |bench: &mut Bencher| {
        let cfg = ModelConfig::small(1, 2);
        bench.iter(|| {
            let model = GcModel::new(cfg.clone());
            Checker::with_config(gc_bench::bounded_config(20_000))
                .strategy(Strategy::Bfs { threads })
                .property(gc_model::invariants::combined_property(&cfg))
                .run(&model)
                .stats()
                .states
        })
    }
}

fn main() {
    bench_function("tso write+read+commit", bench_tso_ops);
    bench_function("litmus SB outcomes (TSO)", bench_litmus_sb);
    bench_function(
        "gc-model successors (initial state)",
        bench_model_successors,
    );
    bench_function(
        "checker: 20k states, full suite, 1 thread",
        bench_checker_throughput(1),
    );
    bench_function(
        "checker: 20k states, full suite, 4 threads",
        bench_checker_throughput(4),
    );
    gc_bench::harness::write_session_record("substrates", &[]);
}
