//! Collector statistics: global counters and per-cycle records.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::chaos::ChaosSite;
use crate::sync::Mutex;

/// A record of one completed collection cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CycleStats {
    /// Objects freed by this cycle's sweep.
    pub freed: usize,
    /// Objects traced (blackened) by the collector's mark loop.
    pub traced: usize,
    /// Grey references received from mutators (roots + barrier marks).
    pub received: usize,
    /// Work-transfer (termination) handshake rounds run.
    pub work_rounds: usize,
    /// Objects still allocated after the sweep.
    pub live_after: usize,
    /// Wall-clock duration of the cycle in nanoseconds.
    pub duration_ns: u64,
    /// Time spent initiating + awaiting soft handshakes (ns) — the cost of
    /// raggedness.
    pub handshake_ns: u64,
    /// Time spent in the collector's mark loop (ns), excluding the
    /// embedded termination handshakes.
    pub mark_ns: u64,
    /// Time spent sweeping (ns).
    pub sweep_ns: u64,
}

impl CycleStats {
    /// The cycle duration.
    pub fn duration(&self) -> Duration {
        Duration::from_nanos(self.duration_ns)
    }
}

/// Global collector counters. All counters are monotonic and updated with
/// relaxed atomics (they are diagnostics, not synchronisation).
#[derive(Debug, Default)]
pub struct GcStats {
    pub(crate) cycles: AtomicU64,
    pub(crate) allocated: AtomicU64,
    pub(crate) freed: AtomicU64,
    pub(crate) barrier_checks: AtomicU64,
    pub(crate) barrier_cas_won: AtomicU64,
    pub(crate) barrier_cas_lost: AtomicU64,
    pub(crate) handshakes: AtomicU64,
    /// Collector worker panics swallowed by [`Collector::stop`]
    /// (see [`GcStats::worker_panics`]).
    ///
    /// [`Collector::stop`]: crate::Collector::stop
    pub(crate) worker_panics: AtomicU64,
    /// Mutators evicted by the handshake watchdog.
    pub(crate) evictions: AtomicU64,
    /// Cycles aborted by the handshake watchdog timeout.
    pub(crate) cycle_timeouts: AtomicU64,
    /// Emergency collection attempts triggered by a full heap.
    pub(crate) emergency_cycles: AtomicU64,
    /// Chaos faults fired, per [`ChaosSite`] (indexed by `repr`).
    pub(crate) chaos_fired: [AtomicU64; ChaosSite::COUNT],
    pub(crate) history: Mutex<Vec<CycleStats>>,
}

impl GcStats {
    /// Completed collection cycles.
    pub fn cycles(&self) -> u64 {
        self.cycles.load(Ordering::Relaxed)
    }

    /// Objects ever allocated.
    pub fn allocated(&self) -> u64 {
        self.allocated.load(Ordering::Relaxed)
    }

    /// Objects ever freed.
    pub fn freed(&self) -> u64 {
        self.freed.load(Ordering::Relaxed)
    }

    /// `mark` invocations by write barriers and root marking (Figure 5
    /// entries — most terminate at the flag fast path).
    pub fn barrier_checks(&self) -> u64 {
        self.barrier_checks.load(Ordering::Relaxed)
    }

    /// Marking CASes won (objects turned grey by this side).
    pub fn barrier_cas_won(&self) -> u64 {
        self.barrier_cas_won.load(Ordering::Relaxed)
    }

    /// Marking CASes lost to a racing marker — the only case where the
    /// paper's design pays for synchronisation twice.
    pub fn barrier_cas_lost(&self) -> u64 {
        self.barrier_cas_lost.load(Ordering::Relaxed)
    }

    /// Soft-handshake rounds initiated.
    pub fn handshakes(&self) -> u64 {
        self.handshakes.load(Ordering::Relaxed)
    }

    /// Collector worker panics swallowed by
    /// [`Collector::stop`](crate::Collector::stop) instead of propagating
    /// into the caller.
    pub fn worker_panics(&self) -> u64 {
        self.worker_panics.load(Ordering::Relaxed)
    }

    /// Mutators evicted by the handshake watchdog: registered mutators that
    /// showed no liveness beat for a whole
    /// [`handshake_timeout`](crate::GcConfig::handshake_timeout) window.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Collection cycles aborted with
    /// [`CycleOutcome::TimedOut`](crate::CycleOutcome::TimedOut).
    pub fn cycle_timeouts(&self) -> u64 {
        self.cycle_timeouts.load(Ordering::Relaxed)
    }

    /// Emergency collection attempts run from
    /// [`Mutator::alloc`](crate::Mutator::alloc) on a full heap.
    pub fn emergency_cycles(&self) -> u64 {
        self.emergency_cycles.load(Ordering::Relaxed)
    }

    /// Chaos faults that actually fired at `site` — the assertion handle
    /// for fault-injection tests.
    pub fn chaos_fired(&self, site: ChaosSite) -> u64 {
        self.chaos_fired[site as usize].load(Ordering::Relaxed)
    }

    /// Chaos faults fired across every site.
    pub fn chaos_fired_total(&self) -> u64 {
        self.chaos_fired
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Per-cycle records, oldest first.
    pub fn history(&self) -> Vec<CycleStats> {
        self.history.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_start_at_zero() {
        let s = GcStats::default();
        assert_eq!(s.cycles(), 0);
        assert_eq!(s.allocated(), 0);
        assert!(s.history().is_empty());
    }

    #[test]
    fn cycle_stats_duration() {
        let c = CycleStats {
            duration_ns: 1_500,
            ..CycleStats::default()
        };
        assert_eq!(c.duration(), Duration::from_nanos(1500));
    }
}
