//! Collector statistics: global counters and per-cycle records.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::sync::Mutex;

/// A record of one completed collection cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CycleStats {
    /// Objects freed by this cycle's sweep.
    pub freed: usize,
    /// Objects traced (blackened) by the collector's mark loop.
    pub traced: usize,
    /// Grey references received from mutators (roots + barrier marks).
    pub received: usize,
    /// Work-transfer (termination) handshake rounds run.
    pub work_rounds: usize,
    /// Objects still allocated after the sweep.
    pub live_after: usize,
    /// Wall-clock duration of the cycle in nanoseconds.
    pub duration_ns: u64,
    /// Time spent initiating + awaiting soft handshakes (ns) — the cost of
    /// raggedness.
    pub handshake_ns: u64,
    /// Time spent in the collector's mark loop (ns), excluding the
    /// embedded termination handshakes.
    pub mark_ns: u64,
    /// Time spent sweeping (ns).
    pub sweep_ns: u64,
}

impl CycleStats {
    /// The cycle duration.
    pub fn duration(&self) -> Duration {
        Duration::from_nanos(self.duration_ns)
    }
}

/// Global collector counters. All counters are monotonic and updated with
/// relaxed atomics (they are diagnostics, not synchronisation).
#[derive(Debug, Default)]
pub struct GcStats {
    pub(crate) cycles: AtomicU64,
    pub(crate) allocated: AtomicU64,
    pub(crate) freed: AtomicU64,
    pub(crate) barrier_checks: AtomicU64,
    pub(crate) barrier_cas_won: AtomicU64,
    pub(crate) barrier_cas_lost: AtomicU64,
    pub(crate) handshakes: AtomicU64,
    pub(crate) history: Mutex<Vec<CycleStats>>,
}

impl GcStats {
    /// Completed collection cycles.
    pub fn cycles(&self) -> u64 {
        self.cycles.load(Ordering::Relaxed)
    }

    /// Objects ever allocated.
    pub fn allocated(&self) -> u64 {
        self.allocated.load(Ordering::Relaxed)
    }

    /// Objects ever freed.
    pub fn freed(&self) -> u64 {
        self.freed.load(Ordering::Relaxed)
    }

    /// `mark` invocations by write barriers and root marking (Figure 5
    /// entries — most terminate at the flag fast path).
    pub fn barrier_checks(&self) -> u64 {
        self.barrier_checks.load(Ordering::Relaxed)
    }

    /// Marking CASes won (objects turned grey by this side).
    pub fn barrier_cas_won(&self) -> u64 {
        self.barrier_cas_won.load(Ordering::Relaxed)
    }

    /// Marking CASes lost to a racing marker — the only case where the
    /// paper's design pays for synchronisation twice.
    pub fn barrier_cas_lost(&self) -> u64 {
        self.barrier_cas_lost.load(Ordering::Relaxed)
    }

    /// Soft-handshake rounds initiated.
    pub fn handshakes(&self) -> u64 {
        self.handshakes.load(Ordering::Relaxed)
    }

    /// Per-cycle records, oldest first.
    pub fn history(&self) -> Vec<CycleStats> {
        self.history.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_start_at_zero() {
        let s = GcStats::default();
        assert_eq!(s.cycles(), 0);
        assert_eq!(s.allocated(), 0);
        assert!(s.history().is_empty());
    }

    #[test]
    fn cycle_stats_duration() {
        let c = CycleStats {
            duration_ns: 1_500,
            ..CycleStats::default()
        };
        assert_eq!(c.duration(), Duration::from_nanos(1500));
    }
}
