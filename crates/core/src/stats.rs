//! Collector statistics: global counters and per-cycle records.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::chaos::ChaosSite;
use crate::sync::Mutex;

/// A record of one completed collection cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CycleStats {
    /// Objects freed by this cycle's sweep.
    pub freed: usize,
    /// Objects traced (blackened) by the collector's mark loop.
    pub traced: usize,
    /// Grey references received from mutators (roots + barrier marks).
    pub received: usize,
    /// Work-transfer (termination) handshake rounds run.
    pub work_rounds: usize,
    /// Objects still allocated after the sweep.
    pub live_after: usize,
    /// Wall-clock duration of the cycle in nanoseconds.
    pub duration_ns: u64,
    /// Time spent initiating + awaiting soft handshakes (ns) — the cost of
    /// raggedness.
    pub handshake_ns: u64,
    /// Time spent in the collector's mark loop (ns), excluding the
    /// embedded termination handshakes *and* any injected chaos delays
    /// (those are accounted to [`CycleStats::chaos_ns`]).
    pub mark_ns: u64,
    /// Time spent sweeping (ns).
    pub sweep_ns: u64,
    /// Time lost to injected chaos delays inside the mark loop (ns) —
    /// [`ChaosSite::MarkDelay`] storms. Zero without chaos.
    pub chaos_ns: u64,
    /// TLAB refills performed by mutators during this cycle (segmented
    /// layout only; always zero on the slab).
    pub tlab_refills: usize,
    /// Segments lazily swept during this cycle — by allocating mutators
    /// and by the collector's start-of-cycle mop-up (segmented layout
    /// only). The reclaim work happens off the collector's critical
    /// path, which is why [`CycleStats::sweep_ns`] stops scaling with
    /// heap capacity; `timing_consistent()` stays honest because
    /// mutator-side sweep time was never part of the cycle's phase
    /// intervals in the first place.
    pub lazy_swept_segments: usize,
    /// Time allocating mutators spent parked in emergency-allocation
    /// backoff while this cycle ran (ns) — the delta of
    /// [`GcStats::backoff_ns`] over the cycle's window. This is
    /// *concurrent mutator-side* time, not a collector phase: it
    /// overlaps the cycle's wall clock (and can exceed it when several
    /// allocators park at once), so [`CycleStats::timing_consistent`]
    /// reports it without folding it into the phase sum. Before this
    /// field existed, emergency-backoff stalls were invisible to cycle
    /// accounting — serve-mode allocation stalls looked free.
    pub backoff_ns: u64,
}

impl CycleStats {
    /// The cycle duration.
    pub fn duration(&self) -> Duration {
        Duration::from_nanos(self.duration_ns)
    }

    /// Whether the phase timings compose: the handshake, mark, sweep and
    /// injected-chaos times are disjoint sub-intervals of the cycle, so
    /// their sum can never exceed the wall-clock duration. Asserted (in
    /// debug builds) at the end of every completed cycle.
    ///
    /// [`CycleStats::backoff_ns`] is deliberately *not* part of the sum:
    /// emergency-backoff parks happen on allocating mutator threads
    /// concurrently with the cycle (several allocators can park at once,
    /// so the total can exceed the cycle's own wall clock). It is
    /// accounted separately — reported per cycle here and globally in
    /// [`GcStats::backoff_ns`] — rather than silently dropped, which is
    /// what keeps serve-mode cycle accounting honest.
    pub fn timing_consistent(&self) -> bool {
        self.handshake_ns + self.mark_ns + self.sweep_ns + self.chaos_ns <= self.duration_ns
    }

    /// The cycle as a flat JSON object (stable keys, integer values).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"freed\":{},\"traced\":{},\"received\":{},\"work_rounds\":{},\
             \"live_after\":{},\"duration_ns\":{},\"handshake_ns\":{},\
             \"mark_ns\":{},\"sweep_ns\":{},\"chaos_ns\":{},\
             \"tlab_refills\":{},\"lazy_swept_segments\":{},\"backoff_ns\":{}}}",
            self.freed,
            self.traced,
            self.received,
            self.work_rounds,
            self.live_after,
            self.duration_ns,
            self.handshake_ns,
            self.mark_ns,
            self.sweep_ns,
            self.chaos_ns,
            self.tlab_refills,
            self.lazy_swept_segments,
            self.backoff_ns
        )
    }
}

impl fmt::Display for CycleStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "freed {:>5}  traced {:>5}  recv {:>5}  rounds {:>2}  live {:>5}  \
             {:>8.2?} (hs {:.2?}, mark {:.2?}, sweep {:.2?})",
            self.freed,
            self.traced,
            self.received,
            self.work_rounds,
            self.live_after,
            Duration::from_nanos(self.duration_ns),
            Duration::from_nanos(self.handshake_ns),
            Duration::from_nanos(self.mark_ns),
            Duration::from_nanos(self.sweep_ns),
        )
    }
}

/// Global collector counters. All counters are monotonic and updated with
/// relaxed atomics (they are diagnostics, not synchronisation).
#[derive(Debug, Default)]
pub struct GcStats {
    pub(crate) cycles: AtomicU64,
    pub(crate) allocated: AtomicU64,
    pub(crate) freed: AtomicU64,
    pub(crate) barrier_checks: AtomicU64,
    pub(crate) barrier_cas_won: AtomicU64,
    pub(crate) barrier_cas_lost: AtomicU64,
    pub(crate) handshakes: AtomicU64,
    /// Collector worker panics swallowed by [`Collector::stop`]
    /// (see [`GcStats::worker_panics`]).
    ///
    /// [`Collector::stop`]: crate::Collector::stop
    pub(crate) worker_panics: AtomicU64,
    /// Mutators evicted by the handshake watchdog.
    pub(crate) evictions: AtomicU64,
    /// Cycles aborted by the handshake watchdog timeout.
    pub(crate) cycle_timeouts: AtomicU64,
    /// Emergency collection attempts triggered by a full heap.
    pub(crate) emergency_cycles: AtomicU64,
    /// TLAB refills performed by mutators (segmented layout).
    pub(crate) tlab_refills: AtomicU64,
    /// Segments lazily swept — by mutators and the collector's mop-up
    /// (segmented layout).
    pub(crate) lazy_sweep_segments: AtomicU64,
    /// Total time allocating mutators spent parked in emergency-allocation
    /// backoff (ns).
    pub(crate) backoff_ns: AtomicU64,
    /// Chaos faults fired, per [`ChaosSite`] (indexed by `repr`).
    pub(crate) chaos_fired: [AtomicU64; ChaosSite::COUNT],
    pub(crate) history: Mutex<Vec<CycleStats>>,
}

impl GcStats {
    /// Completed collection cycles.
    pub fn cycles(&self) -> u64 {
        self.cycles.load(Ordering::Relaxed)
    }

    /// Objects ever allocated.
    pub fn allocated(&self) -> u64 {
        self.allocated.load(Ordering::Relaxed)
    }

    /// Objects ever freed.
    pub fn freed(&self) -> u64 {
        self.freed.load(Ordering::Relaxed)
    }

    /// `mark` invocations by write barriers and root marking (Figure 5
    /// entries — most terminate at the flag fast path).
    pub fn barrier_checks(&self) -> u64 {
        self.barrier_checks.load(Ordering::Relaxed)
    }

    /// Marking CASes won (objects turned grey by this side).
    pub fn barrier_cas_won(&self) -> u64 {
        self.barrier_cas_won.load(Ordering::Relaxed)
    }

    /// Marking CASes lost to a racing marker — the only case where the
    /// paper's design pays for synchronisation twice.
    pub fn barrier_cas_lost(&self) -> u64 {
        self.barrier_cas_lost.load(Ordering::Relaxed)
    }

    /// Soft-handshake rounds initiated.
    pub fn handshakes(&self) -> u64 {
        self.handshakes.load(Ordering::Relaxed)
    }

    /// Collector worker panics swallowed by
    /// [`Collector::stop`](crate::Collector::stop) instead of propagating
    /// into the caller.
    pub fn worker_panics(&self) -> u64 {
        self.worker_panics.load(Ordering::Relaxed)
    }

    /// Mutators evicted by the handshake watchdog: registered mutators that
    /// showed no liveness beat for a whole
    /// [`handshake_timeout`](crate::GcConfig::handshake_timeout) window.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Collection cycles aborted with
    /// [`CycleOutcome::TimedOut`](crate::CycleOutcome::TimedOut).
    pub fn cycle_timeouts(&self) -> u64 {
        self.cycle_timeouts.load(Ordering::Relaxed)
    }

    /// Emergency collection attempts run from
    /// [`Mutator::alloc`](crate::Mutator::alloc) on a full heap.
    pub fn emergency_cycles(&self) -> u64 {
        self.emergency_cycles.load(Ordering::Relaxed)
    }

    /// TLAB refills performed by mutators. Always zero on the slab
    /// layout (where the analogous event is a pool refill).
    pub fn tlab_refills(&self) -> u64 {
        self.tlab_refills.load(Ordering::Relaxed)
    }

    /// Segments lazily swept by allocating mutators and the collector's
    /// start-of-cycle mop-up. Always zero on the slab layout.
    pub fn lazy_sweep_segments(&self) -> u64 {
        self.lazy_sweep_segments.load(Ordering::Relaxed)
    }

    /// Total time allocating mutators have spent parked in
    /// emergency-allocation backoff, in nanoseconds — waiting for an
    /// in-flight cycle they could not join. The allocation-stall signal
    /// the serve harness exports; per-cycle deltas land in
    /// [`CycleStats::backoff_ns`].
    pub fn backoff_ns(&self) -> u64 {
        self.backoff_ns.load(Ordering::Relaxed)
    }

    /// Chaos faults that actually fired at `site` — the assertion handle
    /// for fault-injection tests.
    pub fn chaos_fired(&self, site: ChaosSite) -> u64 {
        self.chaos_fired[site as usize].load(Ordering::Relaxed)
    }

    /// Chaos faults fired across every site.
    pub fn chaos_fired_total(&self) -> u64 {
        self.chaos_fired
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Per-cycle records, oldest first.
    pub fn history(&self) -> Vec<CycleStats> {
        self.history.lock().clone()
    }

    /// Every counter as `(name, value)` rows, in a stable order — the one
    /// source for [`GcStats::summary`] and [`GcStats::to_json`].
    fn rows(&self) -> Vec<(String, u64)> {
        let mut rows = vec![
            ("cycles".to_owned(), self.cycles()),
            ("allocated".to_owned(), self.allocated()),
            ("freed".to_owned(), self.freed()),
            ("barrier_checks".to_owned(), self.barrier_checks()),
            ("barrier_cas_won".to_owned(), self.barrier_cas_won()),
            ("barrier_cas_lost".to_owned(), self.barrier_cas_lost()),
            ("handshakes".to_owned(), self.handshakes()),
            ("worker_panics".to_owned(), self.worker_panics()),
            ("evictions".to_owned(), self.evictions()),
            ("cycle_timeouts".to_owned(), self.cycle_timeouts()),
            ("emergency_cycles".to_owned(), self.emergency_cycles()),
            ("tlab_refills".to_owned(), self.tlab_refills()),
            ("lazy_sweep_segments".to_owned(), self.lazy_sweep_segments()),
            ("backoff_ns".to_owned(), self.backoff_ns()),
        ];
        for site in ChaosSite::ALL {
            let fired = self.chaos_fired(site);
            if fired > 0 {
                rows.push((format!("chaos_{}", site.name()), fired));
            }
        }
        rows
    }

    /// A human-readable counter table — what the bench bins print instead
    /// of each rolling its own ad-hoc dump. Zero chaos counters are
    /// omitted; everything else always appears.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, value) in self.rows() {
            let _ = writeln!(out, "  {name:<20} {value:>12}");
        }
        out
    }

    /// The global counters as a flat JSON object (no per-cycle history).
    pub fn to_json(&self) -> String {
        let fields: Vec<String> = self
            .rows()
            .iter()
            .map(|(name, value)| format!("\"{name}\":{value}"))
            .collect();
        format!("{{{}}}", fields.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_start_at_zero() {
        let s = GcStats::default();
        assert_eq!(s.cycles(), 0);
        assert_eq!(s.allocated(), 0);
        assert!(s.history().is_empty());
    }

    #[test]
    fn cycle_stats_duration() {
        let c = CycleStats {
            duration_ns: 1_500,
            ..CycleStats::default()
        };
        assert_eq!(c.duration(), Duration::from_nanos(1500));
    }

    #[test]
    fn timing_composition_bounds_duration() {
        let good = CycleStats {
            duration_ns: 100,
            handshake_ns: 40,
            mark_ns: 30,
            sweep_ns: 20,
            chaos_ns: 10,
            ..CycleStats::default()
        };
        assert!(good.timing_consistent());
        let bad = CycleStats {
            duration_ns: 100,
            handshake_ns: 60,
            mark_ns: 30,
            sweep_ns: 20,
            chaos_ns: 0,
            ..CycleStats::default()
        };
        assert!(!bad.timing_consistent());
        // Emergency-backoff park time is concurrent mutator-side time:
        // it may exceed the cycle's own wall clock (several allocators
        // parked at once) without breaking the phase composition.
        let parked = CycleStats {
            duration_ns: 100,
            handshake_ns: 40,
            mark_ns: 30,
            sweep_ns: 20,
            chaos_ns: 10,
            backoff_ns: 400,
            ..CycleStats::default()
        };
        assert!(parked.timing_consistent());
    }

    #[test]
    fn cycle_stats_display_and_json() {
        let c = CycleStats {
            freed: 3,
            traced: 9,
            received: 4,
            work_rounds: 2,
            live_after: 7,
            duration_ns: 1_000,
            handshake_ns: 500,
            mark_ns: 200,
            sweep_ns: 100,
            chaos_ns: 50,
            tlab_refills: 6,
            lazy_swept_segments: 2,
            backoff_ns: 25,
        };
        let text = c.to_string();
        assert!(text.contains("freed     3"));
        assert!(text.contains("traced     9"));
        let json = c.to_json();
        assert!(json.contains("\"freed\":3"));
        assert!(json.contains("\"chaos_ns\":50"));
        assert!(json.contains("\"tlab_refills\":6"));
        assert!(json.contains("\"lazy_swept_segments\":2"));
        assert!(json.contains("\"backoff_ns\":25"));
        // Braces balance; keys are quoted: crude but dependency-free shape
        // checks (the real parser lives in gc-trace's integration tests).
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn gc_stats_summary_and_json_list_all_counters() {
        let s = GcStats::default();
        s.cycles.store(5, Ordering::Relaxed);
        s.allocated.store(123, Ordering::Relaxed);
        s.chaos_fired[ChaosSite::CasLost as usize].store(2, Ordering::Relaxed);
        let summary = s.summary();
        assert!(summary.contains("cycles"));
        assert!(summary.contains("chaos_cas_lost"));
        assert!(
            !summary.contains("chaos_silence"),
            "zero chaos counters omitted"
        );
        let json = s.to_json();
        assert!(json.contains("\"cycles\":5"));
        assert!(json.contains("\"allocated\":123"));
        assert!(json.contains("\"chaos_cas_lost\":2"));
        assert!(json.contains("\"backoff_ns\":0"));
    }
}
