//! Intrusive grey work-lists and the wait-free transfer channel.
//!
//! Each object header carries one intrusive `next` link, so an object can
//! be on at most one list — the representation Schism uses, justified by
//! the paper's `valid_W_inv`: work-lists are pairwise disjoint because only
//! the unique mark-CAS winner enlists an object.
//!
//! A [`LocalList`] is thread-private and needs no synchronisation. At a
//! handshake a mutator *transfers* its whole list to the shared
//! [`Staged`] channel in O(1): link the segment's tail to the current
//! staged head with a single CAS retry loop. Only mutators push and only
//! the collector (after the handshake round completes) takes, so the
//! channel is a single-consumer Treiber stack of segments — wait-free in
//! practice (the CAS fails only when another mutator transfers at the same
//! instant).

use std::sync::atomic::{AtomicU64, Ordering};

use crate::handle::Gc;
use crate::heap::Heap;

/// A thread-private grey list threaded through object headers.
#[derive(Debug, Default)]
pub(crate) struct LocalList {
    head: Option<Gc>,
    tail: Option<Gc>,
    len: usize,
}

impl LocalList {
    pub(crate) fn new() -> Self {
        LocalList::default()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.head.is_none()
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Pushes a freshly-marked object. The caller must be the mark winner
    /// (sole owner of the object's link).
    pub(crate) fn push(&mut self, heap: &Heap, g: Gc) {
        heap.set_link(g, self.head);
        self.head = Some(g);
        if self.tail.is_none() {
            self.tail = Some(g);
        }
        self.len += 1;
    }

    /// Pops an object.
    pub(crate) fn pop(&mut self, heap: &Heap) -> Option<Gc> {
        let g = self.head?;
        self.head = heap.link(g);
        if self.head.is_none() {
            self.tail = None;
        }
        self.len -= 1;
        Some(g)
    }

    /// Detaches the whole list as `(head, tail)`, leaving it empty.
    fn take(&mut self) -> Option<(Gc, Gc)> {
        let head = self.head.take()?;
        let tail = self.tail.take().expect("non-empty list has a tail");
        self.len = 0;
        Some((head, tail))
    }
}

/// The shared transfer channel: a lock-free stack of list segments.
#[derive(Debug, Default)]
pub(crate) struct Staged {
    head: AtomicU64,
}

impl Staged {
    pub(crate) fn new() -> Self {
        Staged::default()
    }

    /// Transfers every entry of `list` into the channel (O(1), one CAS
    /// loop). `list` is left empty.
    pub(crate) fn push_all(&self, heap: &Heap, list: &mut LocalList) {
        let Some((head, tail)) = list.take() else {
            return;
        };
        let mut cur = self.head.load(Ordering::Acquire);
        loop {
            heap.set_link(tail, Gc::decode(cur));
            match self.head.compare_exchange_weak(
                cur,
                Gc::encode(Some(head)),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Takes the whole channel contents as a local list (single consumer:
    /// the collector, after a handshake round).
    pub(crate) fn take_all(&self, heap: &Heap) -> LocalList {
        let head = Gc::decode(self.head.swap(0, Ordering::AcqRel));
        let mut list = LocalList::new();
        // Rebuild bookkeeping by walking the links.
        let mut cur = head;
        let mut len = 0;
        let mut tail = None;
        while let Some(g) = cur {
            len += 1;
            tail = Some(g);
            cur = heap.link(g);
        }
        list.head = head;
        list.tail = tail;
        list.len = len;
        list
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap() -> Heap {
        Heap::new(8, 1, true, crate::config::HeapLayout::Slab)
    }

    #[test]
    fn push_pop_is_lifo() {
        let h = heap();
        let a = h.alloc(0, false).unwrap();
        let b = h.alloc(0, false).unwrap();
        let mut l = LocalList::new();
        l.push(&h, a);
        l.push(&h, b);
        assert_eq!(l.len(), 2);
        assert_eq!(l.pop(&h), Some(b));
        assert_eq!(l.pop(&h), Some(a));
        assert_eq!(l.pop(&h), None);
        assert!(l.is_empty());
    }

    #[test]
    fn transfer_moves_whole_segments() {
        let h = heap();
        let staged = Staged::new();
        let mut l1 = LocalList::new();
        let mut l2 = LocalList::new();
        let objs: Vec<Gc> = (0..4).map(|_| h.alloc(0, false).unwrap()).collect();
        l1.push(&h, objs[0]);
        l1.push(&h, objs[1]);
        l2.push(&h, objs[2]);
        l2.push(&h, objs[3]);
        staged.push_all(&h, &mut l1);
        staged.push_all(&h, &mut l2);
        assert!(l1.is_empty() && l2.is_empty());
        let mut got = staged.take_all(&h);
        assert_eq!(got.len(), 4);
        let mut seen = Vec::new();
        while let Some(g) = got.pop(&h) {
            seen.push(g);
        }
        seen.sort();
        let mut want = objs.clone();
        want.sort();
        assert_eq!(seen, want);
        // Channel is now empty.
        assert!(staged.take_all(&h).is_empty());
    }

    #[test]
    fn empty_transfer_is_a_noop() {
        let h = heap();
        let staged = Staged::new();
        let mut l = LocalList::new();
        staged.push_all(&h, &mut l);
        assert!(staged.take_all(&h).is_empty());
    }

    #[test]
    fn concurrent_transfers_preserve_every_entry() {
        use std::sync::Arc;
        let h = Arc::new(Heap::new(64, 0, true, crate::config::HeapLayout::Slab));
        let staged = Arc::new(Staged::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                let staged = Arc::clone(&staged);
                std::thread::spawn(move || {
                    for _ in 0..4 {
                        let mut l = LocalList::new();
                        for _ in 0..4 {
                            l.push(&h, h.alloc(0, false).unwrap());
                        }
                        staged.push_all(&h, &mut l);
                    }
                    t
                })
            })
            .collect();
        for th in handles {
            th.join().unwrap();
        }
        assert_eq!(staged.take_all(&h).len(), 64);
    }
}
