//! Deterministic fault injection: the chaos engine.
//!
//! The paper's argument is that the collector survives *adversarial*
//! schedules on x86-TSO, yet a polite test harness only ever produces the
//! cooperative ones. A [`FaultPlan`] manufactures the adversarial schedules
//! on purpose: it is a seeded, deterministic description of *which*
//! robustness-critical edges misbehave and *how often*, threaded through
//! [`GcConfig`](crate::GcConfig) into every injection site.
//!
//! Each site draws from its own SplitMix64 stream — decision `n` of site
//! `s` under seed `k` is a pure function of `(k, s, n)`, so a plan is
//! reproducible given the same draw sequence (thread interleaving still
//! varies, as it must: the faults perturb real schedules). Every fault that
//! actually fires is counted per-site in [`GcStats`](crate::GcStats), so a
//! test can assert the chaos it asked for really happened.
//!
//! [`FaultPlan::none`] is the default and is zero-cost on the hot paths:
//! every site is guarded by a single branch on a plain `bool` field.
//!
//! The sites, and the paper scenario each one stresses:
//!
//! * [`ChaosSite::HandshakeDelay`] — yield storms in the mutator's
//!   handshake ack path (the raggedness of Fig. 3/4's soft handshakes);
//! * [`ChaosSite::CasLost`] — spurious [`MarkOutcome::Lost`] first
//!   attempts in the Fig. 5 marking CAS (contention on the mark bit);
//! * [`ChaosSite::Silence`] — a mutator ignores handshake requests for
//!   [`FaultPlan::silence_generations`] generations (a stalled thread, the
//!   schedule that wedges a watchdog-less collector);
//! * [`ChaosSite::MutatorPanic`] — a mutator panics between the deletion
//!   and insertion barrier of Fig. 6's `Store` (death mid-protocol);
//! * [`ChaosSite::SlowTransfer`] — artificially slow `Staged` work-list
//!   transfers (a mutator lingering inside the handshake's transfer step);
//! * [`ChaosSite::CollectorPanic`] — the collector worker itself panics at
//!   the start of a chosen cycle (exercises [`Collector::stop`]'s
//!   panic-swallowing join);
//! * [`ChaosSite::MarkDelay`] — yield storms inside the collector's mark
//!   loop (a descheduled collector mid-trace: mutators keep allocating and
//!   greying against a trace that is barely progressing). The time spent
//!   is accounted to [`CycleStats::chaos_ns`](crate::CycleStats::chaos_ns),
//!   *excluded* from `mark_ns`, so timing reports stay honest under chaos;
//! * [`ChaosSite::TlabRefill`] — yield storms on the segmented heap's
//!   TLAB-refill path (a mutator descheduled between exhausting its buffer
//!   and claiming a segment, racing other refills and the collector's
//!   sweep publication);
//! * [`ChaosSite::LazySweep`] — yield storms right after a mutator
//!   lazily swept a segment (stretching the window in which freshly
//!   reclaimed slots, the free-segment stack, and the sweep generation are
//!   observed by other threads);
//! * [`ChaosSite::WorkerPanic`] — an *application* worker thread panics at
//!   a request boundary (the serve harness's site: the worker's
//!   [`Mutator`](crate::Mutator) unwinds through its panicking-drop
//!   salvage path and a supervisor must recover without losing sessions).
//!   The runtime only supplies the deterministic draw
//!   ([`Collector::chaos_fires`](crate::Collector::chaos_fires)); the
//!   panic itself is the harness's job.
//!
//! [`MarkOutcome::Lost`]: crate::heap::MarkOutcome
//! [`Collector::stop`]: crate::Collector::stop

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Probability scale: rates are expressed per [`RATE_SCALE`] draws.
pub const RATE_SCALE: u32 = 10_000;

/// A robustness-critical injection site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum ChaosSite {
    /// Yield storm before a mutator acknowledges a handshake.
    HandshakeDelay = 0,
    /// Spurious lost-then-retried marking CAS.
    CasLost = 1,
    /// Mutator goes silent for N handshake generations.
    Silence = 2,
    /// Mutator panics mid-write-barrier.
    MutatorPanic = 3,
    /// Artificially slow staged work-list transfer.
    SlowTransfer = 4,
    /// Collector worker panics at the start of a cycle.
    CollectorPanic = 5,
    /// Yield storm inside the collector's mark loop.
    MarkDelay = 6,
    /// Yield storm on the segmented heap's TLAB-refill path.
    TlabRefill = 7,
    /// Yield storm after a mutator-driven lazy segment sweep.
    LazySweep = 8,
    /// Application worker panics at a request boundary (drawn by the serve
    /// harness through [`Collector::chaos_fires`](crate::Collector::chaos_fires)).
    WorkerPanic = 9,
}

impl ChaosSite {
    /// Number of injection sites.
    pub const COUNT: usize = 10;

    /// Every site, in `repr` order.
    pub const ALL: [ChaosSite; ChaosSite::COUNT] = [
        ChaosSite::HandshakeDelay,
        ChaosSite::CasLost,
        ChaosSite::Silence,
        ChaosSite::MutatorPanic,
        ChaosSite::SlowTransfer,
        ChaosSite::CollectorPanic,
        ChaosSite::MarkDelay,
        ChaosSite::TlabRefill,
        ChaosSite::LazySweep,
        ChaosSite::WorkerPanic,
    ];

    /// A short stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            ChaosSite::HandshakeDelay => "handshake_delay",
            ChaosSite::CasLost => "cas_lost",
            ChaosSite::Silence => "silence",
            ChaosSite::MutatorPanic => "mutator_panic",
            ChaosSite::SlowTransfer => "slow_transfer",
            ChaosSite::CollectorPanic => "collector_panic",
            ChaosSite::MarkDelay => "mark_delay",
            ChaosSite::TlabRefill => "tlab_refill",
            ChaosSite::LazySweep => "lazy_sweep",
            ChaosSite::WorkerPanic => "worker_panic",
        }
    }
}

/// SplitMix64: the full avalanche of a 64-bit counter. Tiny, statistically
/// fine for fault scheduling, and dependency-free.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A seeded, deterministic fault-injection plan.
///
/// Rates are probabilities per [`RATE_SCALE`] (so `500` ≈ 5%). The plan is
/// pure configuration — the draw counters live with the collector — so it
/// is `Clone + Eq` and rides inside [`GcConfig`](crate::GcConfig).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    enabled: bool,
    seed: u64,
    /// Rate of yield storms in the handshake ack path.
    pub handshake_delay: u32,
    /// Rate of spurious lost-then-retried marking CASes.
    pub cas_lost: u32,
    /// Rate at which a pending handshake request sends the mutator silent.
    pub silence: u32,
    /// How many handshake generations a silenced mutator ignores.
    pub silence_generations: u32,
    /// Rate of injected panics mid-write-barrier.
    pub mutator_panic: u32,
    /// Rate of artificially slow staged transfers.
    pub slow_transfer: u32,
    /// Panic the collector at the start of cycle N (0-based, fires once).
    pub collector_panic_at_cycle: Option<u64>,
    /// Rate of yield storms inside the collector's mark loop (per traced
    /// object).
    pub mark_delay: u32,
    /// Rate of yield storms on the segmented heap's TLAB-refill path.
    pub tlab_refill: u32,
    /// Rate of yield storms after a mutator-driven lazy segment sweep.
    pub lazy_sweep: u32,
    /// Rate of injected worker panics at a request boundary (serve harness).
    pub worker_panic: u32,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// No chaos: every site disabled, zero-cost on the hot paths.
    pub fn none() -> Self {
        FaultPlan {
            enabled: false,
            seed: 0,
            handshake_delay: 0,
            cas_lost: 0,
            silence: 0,
            silence_generations: 3,
            mutator_panic: 0,
            slow_transfer: 0,
            collector_panic_at_cycle: None,
            mark_delay: 0,
            tlab_refill: 0,
            lazy_sweep: 0,
            worker_panic: 0,
        }
    }

    /// An all-zero-rate plan under `seed` with injection *armed*: use the
    /// `with_*` builders to switch individual sites on.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            enabled: true,
            seed,
            ..FaultPlan::none()
        }
    }

    /// A randomized moderate-intensity plan derived entirely from `seed` —
    /// what the torture harness sweeps. Delay, CAS-loss and slow-transfer
    /// rates land in ranges that perturb most cycles; silence and panics
    /// stay rare enough that runs terminate.
    pub fn from_seed(seed: u64) -> Self {
        let r = |salt: u64, lo: u32, hi: u32| {
            lo + (splitmix64(seed ^ salt.wrapping_mul(0xa076_1d64_78bd_642f)) % u64::from(hi - lo))
                as u32
        };
        FaultPlan {
            enabled: true,
            seed,
            handshake_delay: r(1, 50, 800),
            cas_lost: r(2, 50, 800),
            silence: r(3, 0, 160),
            silence_generations: 1 + (r(4, 0, 4)),
            // A write barrier runs thousands of times per torture thread:
            // even single-digit rates kill most threads eventually, which
            // is the point — but keep them alive long enough to matter.
            mutator_panic: r(5, 0, 3),
            slow_transfer: r(6, 50, 500),
            collector_panic_at_cycle: None,
            // Per traced object, so even small rates stretch most marks.
            mark_delay: r(7, 20, 300),
            // Per refill / per swept segment: refills are much rarer than
            // allocations, so these rates land high enough to matter.
            tlab_refill: r(8, 100, 1_500),
            lazy_sweep: r(9, 100, 1_500),
            // Per request: like mutator panics, rare enough that a run's
            // workers spend most of their time alive.
            worker_panic: r(10, 0, 3),
        }
    }

    /// Sets the handshake-delay rate.
    #[must_use]
    pub fn with_handshake_delay(mut self, rate: u32) -> Self {
        self.handshake_delay = rate;
        self
    }

    /// Sets the spurious-CAS-loss rate.
    #[must_use]
    pub fn with_cas_lost(mut self, rate: u32) -> Self {
        self.cas_lost = rate;
        self
    }

    /// Sets the silence rate and generation count.
    #[must_use]
    pub fn with_silence(mut self, rate: u32, generations: u32) -> Self {
        self.silence = rate;
        self.silence_generations = generations;
        self
    }

    /// Sets the mid-barrier panic rate.
    #[must_use]
    pub fn with_mutator_panic(mut self, rate: u32) -> Self {
        self.mutator_panic = rate;
        self
    }

    /// Sets the slow-transfer rate.
    #[must_use]
    pub fn with_slow_transfer(mut self, rate: u32) -> Self {
        self.slow_transfer = rate;
        self
    }

    /// Panic the collector at the start of completed-cycle `n` (once).
    #[must_use]
    pub fn with_collector_panic_at_cycle(mut self, n: u64) -> Self {
        self.collector_panic_at_cycle = Some(n);
        self
    }

    /// Sets the mark-loop delay-storm rate.
    #[must_use]
    pub fn with_mark_delay(mut self, rate: u32) -> Self {
        self.mark_delay = rate;
        self
    }

    /// Sets the TLAB-refill delay-storm rate.
    #[must_use]
    pub fn with_tlab_refill(mut self, rate: u32) -> Self {
        self.tlab_refill = rate;
        self
    }

    /// Sets the post-lazy-sweep delay-storm rate.
    #[must_use]
    pub fn with_lazy_sweep(mut self, rate: u32) -> Self {
        self.lazy_sweep = rate;
        self
    }

    /// Sets the request-boundary worker-panic rate.
    #[must_use]
    pub fn with_worker_panic(mut self, rate: u32) -> Self {
        self.worker_panic = rate;
        self
    }

    /// Whether any injection is armed. The single-branch guard every hot
    /// path checks first.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    fn rate(&self, site: ChaosSite) -> u32 {
        match site {
            ChaosSite::HandshakeDelay => self.handshake_delay,
            ChaosSite::CasLost => self.cas_lost,
            ChaosSite::Silence => self.silence,
            ChaosSite::MutatorPanic => self.mutator_panic,
            ChaosSite::SlowTransfer => self.slow_transfer,
            ChaosSite::CollectorPanic => 0, // cycle-indexed, not rate-drawn
            ChaosSite::MarkDelay => self.mark_delay,
            ChaosSite::TlabRefill => self.tlab_refill,
            ChaosSite::LazySweep => self.lazy_sweep,
            ChaosSite::WorkerPanic => self.worker_panic,
        }
    }

    /// Draws the site's next decision. Decision `n` is the pure function
    /// `splitmix64(seed ⊕ salt(site) ⊕ n) mod RATE_SCALE < rate`.
    #[inline]
    pub(crate) fn fires(&self, site: ChaosSite, state: &ChaosState) -> bool {
        if !self.enabled || state.suppressed.load(Ordering::Relaxed) {
            return false;
        }
        let rate = self.rate(site);
        if rate == 0 {
            return false;
        }
        let n = state.draws[site as usize].fetch_add(1, Ordering::Relaxed);
        let salt = (site as u64 + 1).wrapping_mul(0xd6e8_feb8_6659_fd93);
        (splitmix64(self.seed ^ salt ^ n) % u64::from(RATE_SCALE)) < u64::from(rate)
    }
}

/// Per-collector chaos runtime state: the draw counters behind each site's
/// deterministic decision stream, the once-only latch for the
/// collector-panic site, and the runtime suppression switch
/// ([`Collector::suppress_chaos`](crate::Collector::suppress_chaos)) that
/// lets a harness bound a chaos storm to a window of the run.
#[derive(Debug, Default)]
pub(crate) struct ChaosState {
    draws: [AtomicU64; ChaosSite::COUNT],
    pub(crate) collector_panicked: AtomicBool,
    pub(crate) suppressed: AtomicBool,
}

/// How long an injected delay storm spins, in `yield_now` calls.
pub(crate) const STORM_YIELDS: u32 = 24;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_fires() {
        let plan = FaultPlan::none();
        let state = ChaosState::default();
        assert!(!plan.enabled());
        for site in ChaosSite::ALL {
            for _ in 0..100 {
                assert!(!plan.fires(site, &state));
            }
        }
        // Disabled plans must not even consume draws (zero-cost guard).
        assert_eq!(state.draws[0].load(Ordering::Relaxed), 0);
    }

    #[test]
    fn decision_stream_is_deterministic_per_seed() {
        let plan = FaultPlan::new(42).with_cas_lost(2_500);
        let a = ChaosState::default();
        let b = ChaosState::default();
        let seq_a: Vec<bool> = (0..256)
            .map(|_| plan.fires(ChaosSite::CasLost, &a))
            .collect();
        let seq_b: Vec<bool> = (0..256)
            .map(|_| plan.fires(ChaosSite::CasLost, &b))
            .collect();
        assert_eq!(seq_a, seq_b);
        let fired = seq_a.iter().filter(|&&f| f).count();
        // ~25% of 256 draws; loose band, the stream is fixed by the seed.
        assert!((20..110).contains(&fired), "fired {fired}");
        // A different seed gives a different stream.
        let plan2 = FaultPlan::new(43).with_cas_lost(2_500);
        let c = ChaosState::default();
        let seq_c: Vec<bool> = (0..256)
            .map(|_| plan2.fires(ChaosSite::CasLost, &c))
            .collect();
        assert_ne!(seq_a, seq_c);
    }

    #[test]
    fn sites_draw_independent_streams() {
        let plan = FaultPlan::new(7)
            .with_cas_lost(5_000)
            .with_handshake_delay(5_000);
        let state = ChaosState::default();
        let a: Vec<bool> = (0..64)
            .map(|_| plan.fires(ChaosSite::CasLost, &state))
            .collect();
        let b: Vec<bool> = (0..64)
            .map(|_| plan.fires(ChaosSite::HandshakeDelay, &state))
            .collect();
        assert_ne!(a, b, "equal-rate sites must not share a stream");
    }

    #[test]
    fn from_seed_rates_are_in_band() {
        for seed in 0..64u64 {
            let p = FaultPlan::from_seed(seed);
            assert!(p.enabled());
            assert!(p.handshake_delay < RATE_SCALE);
            assert!(p.cas_lost < RATE_SCALE);
            assert!(p.silence < RATE_SCALE);
            assert!(p.mutator_panic < RATE_SCALE);
            assert!(p.slow_transfer < RATE_SCALE);
            assert!(p.mark_delay < RATE_SCALE);
            assert!(p.tlab_refill < RATE_SCALE);
            assert!(p.lazy_sweep < RATE_SCALE);
            assert!(p.worker_panic < RATE_SCALE);
            assert!((1..=4).contains(&p.silence_generations));
            assert_eq!(FaultPlan::from_seed(seed), p, "derivation is pure");
        }
    }

    #[test]
    fn suppression_silences_fires_without_consuming_draws() {
        let plan = FaultPlan::new(11).with_worker_panic(RATE_SCALE);
        let state = ChaosState::default();
        assert!(plan.fires(ChaosSite::WorkerPanic, &state));
        state.suppressed.store(true, Ordering::Relaxed);
        let before = state.draws[ChaosSite::WorkerPanic as usize].load(Ordering::Relaxed);
        for _ in 0..32 {
            assert!(!plan.fires(ChaosSite::WorkerPanic, &state));
        }
        assert_eq!(
            state.draws[ChaosSite::WorkerPanic as usize].load(Ordering::Relaxed),
            before,
            "suppressed draws must not advance the deterministic stream"
        );
        state.suppressed.store(false, Ordering::Relaxed);
        assert!(plan.fires(ChaosSite::WorkerPanic, &state));
    }
}
