//! Typed structures built on the raw heap protocol — what downstream code
//! looks like on top of the collector.
//!
//! The collector's API is deliberately low-level (Figure 6's `Load`/
//! `Store`/`Alloc`/`Discard`); this module shows the intended idiom by
//! packaging two shapes the examples and stress tests use:
//!
//! * [`GcStack`] — a cons-list used as a stack (push/pop/iterate);
//! * [`GcTree`] — a binary tree builder (the GCBench-style workload).
//!
//! Both follow the rooting discipline strictly: exactly one handle (the
//! head/root) stays in the mutator's roots; interior nodes live only
//! through heap edges, so they are collected as soon as the structure
//! drops them.

use crate::handle::Gc;
use crate::heap::AllocError;
use crate::mutator::Mutator;

/// A stack of nodes threaded through field 0; field 1 is a payload slot
/// usable by the caller (each node is a 2-field object).
///
/// The head handle is kept rooted by the owning [`Mutator`]; everything
/// else is reachable only through the heap. Dropping the `GcStack` value
/// does *not* discard the root — call [`GcStack::clear`] (or discard the
/// head yourself) to release the structure.
#[derive(Debug)]
pub struct GcStack {
    head: Option<Gc>,
}

impl GcStack {
    /// Creates an empty stack.
    pub fn new() -> Self {
        GcStack { head: None }
    }

    /// Whether the stack is empty.
    pub fn is_empty(&self) -> bool {
        self.head.is_none()
    }

    /// The current head node, if any (rooted).
    pub fn head(&self) -> Option<Gc> {
        self.head
    }

    /// Pushes a fresh node carrying `payload` in field 1.
    ///
    /// # Errors
    ///
    /// Propagates [`AllocError`] when the heap is full.
    pub fn push(&mut self, m: &mut Mutator, payload: Option<Gc>) -> Result<Gc, AllocError> {
        let node = m.alloc(2)?;
        if let Some(p) = payload {
            m.store(node, 1, Some(p));
        }
        m.store(node, 0, self.head);
        if let Some(old) = self.head {
            m.discard(old); // now reachable through the new head
        }
        self.head = Some(node);
        Ok(node)
    }

    /// Pops the head node, returning its payload. The popped node becomes
    /// garbage immediately (nothing else references it).
    pub fn pop(&mut self, m: &mut Mutator) -> Option<Option<Gc>> {
        let head = self.head?;
        let next = m.load(head, 0);
        let payload = m.load(head, 1);
        m.discard(head);
        self.head = next; // `load` rooted it already
        Some(payload)
    }

    /// Walks the stack top-down, returning the number of nodes; validates
    /// every access on the way (a cheap integrity scan).
    pub fn len(&self, m: &mut Mutator) -> usize {
        let mut n = 0;
        let mut cur = self.head;
        while let Some(c) = cur {
            n += 1;
            let next = m.load(c, 0); // roots the cursor's successor
            if Some(c) != self.head {
                m.discard(c); // unroot the transient cursor
            }
            cur = next;
        }
        n
    }

    /// Drops the whole stack: the head is discarded and every node becomes
    /// garbage for the next cycle(s).
    pub fn clear(&mut self, m: &mut Mutator) {
        if let Some(h) = self.head.take() {
            m.discard(h);
        }
    }
}

impl Default for GcStack {
    fn default() -> Self {
        Self::new()
    }
}

/// A binary-tree builder over 2-field nodes (left = field 0, right =
/// field 1) — the classic GC benchmark shape: build a complete tree of
/// depth `d`, drop it, repeat.
#[derive(Debug)]
pub struct GcTree {
    root: Option<Gc>,
}

impl GcTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        GcTree { root: None }
    }

    /// The rooted tree root, if any.
    pub fn root(&self) -> Option<Gc> {
        self.root
    }

    /// Builds a complete binary tree of the given depth bottom-up,
    /// replacing any previous tree (which becomes garbage).
    ///
    /// # Errors
    ///
    /// Propagates [`AllocError`]; a partially built tree is discarded
    /// cleanly.
    pub fn build(&mut self, m: &mut Mutator, depth: usize) -> Result<(), AllocError> {
        self.clear(m);
        self.root = Some(Self::build_node(m, depth)?);
        Ok(())
    }

    fn build_node(m: &mut Mutator, depth: usize) -> Result<Gc, AllocError> {
        let node = m.alloc(2)?;
        if depth > 0 {
            match Self::build_node(m, depth - 1) {
                Ok(left) => {
                    m.store(node, 0, Some(left));
                    m.discard(left);
                }
                Err(e) => {
                    m.discard(node);
                    return Err(e);
                }
            }
            match Self::build_node(m, depth - 1) {
                Ok(right) => {
                    m.store(node, 1, Some(right));
                    m.discard(right);
                }
                Err(e) => {
                    m.discard(node);
                    return Err(e);
                }
            }
        }
        Ok(node)
    }

    /// Counts the tree's nodes by depth-first walk, validating every access.
    pub fn count(&self, m: &mut Mutator) -> usize {
        fn walk(m: &mut Mutator, node: Gc) -> usize {
            let mut n = 1;
            for f in 0..2 {
                if let Some(child) = m.load(node, f) {
                    n += walk(m, child);
                    m.discard(child);
                }
            }
            n
        }
        match self.root {
            Some(r) => walk(m, r),
            None => 0,
        }
    }

    /// Drops the tree; all nodes become garbage.
    pub fn clear(&mut self, m: &mut Mutator) {
        if let Some(r) = self.root.take() {
            m.discard(r);
        }
    }
}

impl Default for GcTree {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Collector, GcConfig};
    use std::sync::atomic::{AtomicBool, Ordering};

    fn run_cycle(c: &Collector, m: &mut Mutator) {
        let done = AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| {
                c.collect();
                done.store(true, Ordering::Release);
            });
            while !done.load(Ordering::Acquire) {
                m.safepoint();
                std::thread::yield_now();
            }
        });
    }

    #[test]
    fn stack_push_pop_round_trip() {
        let c = Collector::new(GcConfig::new(64, 2));
        let mut m = c.register_mutator();
        let mut st = GcStack::new();
        assert!(st.is_empty());
        let payload = m.alloc(2).unwrap();
        st.push(&mut m, Some(payload)).unwrap();
        st.push(&mut m, None).unwrap();
        assert_eq!(st.len(&mut m), 2);
        assert_eq!(st.pop(&mut m), Some(None));
        assert_eq!(st.pop(&mut m), Some(Some(payload)));
        assert_eq!(st.pop(&mut m), None);
    }

    #[test]
    fn stack_interior_nodes_survive_collection() {
        let c = Collector::new(GcConfig::new(64, 2));
        let mut m = c.register_mutator();
        let mut st = GcStack::new();
        for _ in 0..10 {
            st.push(&mut m, None).unwrap();
        }
        run_cycle(&c, &mut m);
        assert_eq!(st.len(&mut m), 10);
        assert_eq!(c.live_objects(), 10);
    }

    #[test]
    fn cleared_stack_is_collected() {
        let c = Collector::new(GcConfig::new(64, 2));
        let mut m = c.register_mutator();
        let mut st = GcStack::new();
        for _ in 0..10 {
            st.push(&mut m, None).unwrap();
        }
        st.clear(&mut m);
        run_cycle(&c, &mut m);
        run_cycle(&c, &mut m);
        assert_eq!(c.live_objects(), 0);
    }

    #[test]
    fn tree_builds_counts_and_collects() {
        let c = Collector::new(GcConfig::new(256, 2));
        let mut m = c.register_mutator();
        let mut t = GcTree::new();
        t.build(&mut m, 5).unwrap();
        assert_eq!(t.count(&mut m), 63);
        run_cycle(&c, &mut m);
        assert_eq!(c.live_objects(), 63);
        // Rebuild a smaller tree: the old one is garbage.
        t.build(&mut m, 3).unwrap();
        run_cycle(&c, &mut m);
        run_cycle(&c, &mut m);
        assert_eq!(c.live_objects(), 15);
        t.clear(&mut m);
    }

    #[test]
    fn tree_build_failure_cleans_up() {
        let c = Collector::new(GcConfig::new(10, 2));
        let mut m = c.register_mutator();
        let mut t = GcTree::new();
        assert!(t.build(&mut m, 5).is_err(), "63 nodes into 10 slots");
        assert!(t.root().is_none());
        // Everything transiently allocated is unrooted again.
        run_cycle(&c, &mut m);
        run_cycle(&c, &mut m);
        assert_eq!(c.live_objects(), 0);
    }
}
