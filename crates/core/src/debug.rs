//! White-box hooks for benchmarks and targeted tests.
//!
//! These setters bypass the collector's own cycle to place the control
//! variables in a chosen state, so that benchmarks can measure an
//! individual barrier path (Figure 5's fast path vs its CAS slow path) in
//! isolation. They are **not** part of the supported API: calling them
//! while a collection cycle runs voids the safety guarantee.

use std::sync::atomic::Ordering;

use crate::collector::Collector;
use crate::heap::Phase;

impl Collector {
    /// Sets the collector phase directly (benchmarks/tests only).
    #[doc(hidden)]
    pub fn debug_set_phase(&self, phase: Phase) {
        self.shared_for_debug()
            .phase
            .store(phase as u8, Ordering::Relaxed);
    }

    /// Sets the mark sense `f_M` directly (benchmarks/tests only).
    #[doc(hidden)]
    pub fn debug_set_fm(&self, fm: bool) {
        self.shared_for_debug().fm.store(fm, Ordering::Relaxed);
    }

    /// Sets the allocation sense `f_A` directly (benchmarks/tests only).
    #[doc(hidden)]
    pub fn debug_set_fa(&self, fa: bool) {
        self.shared_for_debug().fa.store(fa, Ordering::Relaxed);
    }

    /// Exhaustive consistency check of collector and heap state — the
    /// oracle the torture harness runs between cycles. Blocks until no
    /// collection cycle is in flight, then verifies:
    ///
    /// * the phase is `Idle` (a quiesced collector left no half-open
    ///   handshake state behind);
    /// * every registered mutator is active (eviction and deregistration
    ///   leave no zombies in the registry);
    /// * the heap's free-state structures are sound
    ///   ([`Heap::debug_verify`](crate::heap::Heap::debug_verify)): on
    ///   the slab, the free list holds unique, in-bounds, unallocated
    ///   slots and live + free never exceeds capacity; on the segmented
    ///   layout, the bitmaps are mutually consistent (`busy ⊇ live`,
    ///   live bits agree with headers, no bits beyond capacity) and the
    ///   free-segment stack is in-bounds and acyclic with honest
    ///   on-stack flags.
    #[doc(hidden)]
    pub fn debug_verify_integrity(&self) -> Result<(), String> {
        let sh = self.shared_for_debug();
        // Holding the cycle lock guarantees no cycle is mid-flight.
        let _quiesced = sh.cycle_lock.lock();
        let phase = Phase::from_u8(sh.phase.load(Ordering::Relaxed));
        if phase != Phase::Idle {
            return Err(format!("no cycle in flight but phase is {phase:?}"));
        }
        for m in sh.registry.lock().iter() {
            if !m.active.load(Ordering::Acquire) {
                return Err(format!("registered mutator {} is inactive", m.id));
            }
        }
        sh.heap.debug_verify()
    }
}

#[cfg(test)]
mod tests {
    use crate::{Collector, GcConfig, Phase};

    #[test]
    fn debug_hooks_flip_control_state() {
        let c = Collector::new(GcConfig::new(4, 1));
        assert_eq!(c.phase(), Phase::Idle);
        c.debug_set_phase(Phase::Mark);
        assert_eq!(c.phase(), Phase::Mark);
        c.debug_set_fm(true);
        c.debug_set_fa(true);
        let mut m = c.register_mutator();
        // Allocation uses the forced f_A: the object is born "marked".
        let a = m.alloc(1).unwrap();
        let b = m.alloc(1).unwrap();
        m.store(a, 0, Some(b)); // fast path: b already marked
        assert_eq!(c.stats().barrier_cas_won(), 0);
    }

    #[test]
    fn integrity_check_passes_on_a_quiesced_collector() {
        let c = Collector::new(GcConfig::new(8, 2));
        let mut m = c.register_mutator();
        let a = m.alloc(2).unwrap();
        let b = m.alloc(2).unwrap();
        m.store(a, 0, Some(b));
        c.debug_verify_integrity()
            .expect("fresh heap is consistent");
        m.discard(a);
        m.discard(b);
        drop(m);
        assert!(c.collect().is_completed());
        c.debug_verify_integrity()
            .expect("post-cycle heap is consistent");
    }
}
