//! White-box hooks for benchmarks and targeted tests.
//!
//! These setters bypass the collector's own cycle to place the control
//! variables in a chosen state, so that benchmarks can measure an
//! individual barrier path (Figure 5's fast path vs its CAS slow path) in
//! isolation. They are **not** part of the supported API: calling them
//! while a collection cycle runs voids the safety guarantee.

use std::sync::atomic::Ordering;

use crate::collector::Collector;
use crate::heap::Phase;

impl Collector {
    /// Sets the collector phase directly (benchmarks/tests only).
    #[doc(hidden)]
    pub fn debug_set_phase(&self, phase: Phase) {
        self.shared_for_debug()
            .phase
            .store(phase as u8, Ordering::Relaxed);
    }

    /// Sets the mark sense `f_M` directly (benchmarks/tests only).
    #[doc(hidden)]
    pub fn debug_set_fm(&self, fm: bool) {
        self.shared_for_debug().fm.store(fm, Ordering::Relaxed);
    }

    /// Sets the allocation sense `f_A` directly (benchmarks/tests only).
    #[doc(hidden)]
    pub fn debug_set_fa(&self, fa: bool) {
        self.shared_for_debug().fa.store(fa, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use crate::{Collector, GcConfig, Phase};

    #[test]
    fn debug_hooks_flip_control_state() {
        let c = Collector::new(GcConfig::new(4, 1));
        assert_eq!(c.phase(), Phase::Idle);
        c.debug_set_phase(Phase::Mark);
        assert_eq!(c.phase(), Phase::Mark);
        c.debug_set_fm(true);
        c.debug_set_fa(true);
        let mut m = c.register_mutator();
        // Allocation uses the forced f_A: the object is born "marked".
        let a = m.alloc(1).unwrap();
        let b = m.alloc(1).unwrap();
        m.store(a, 0, Some(b)); // fast path: b already marked
        assert_eq!(c.stats().barrier_cas_won(), 0);
    }
}
