//! Runtime collector configuration.
//!
//! The supported way to build a configuration is the builder:
//!
//! ```
//! use otf_gc::{GcConfig, HeapLayout};
//! use std::time::Duration;
//!
//! let cfg = GcConfig::builder()
//!     .capacity(4096)
//!     .max_fields(2)
//!     .layout(HeapLayout::Segmented {
//!         segment_slots: 256,
//!         tlab_slots: 32,
//!     })
//!     .handshake_timeout(Duration::from_millis(50))
//!     .emergency_retries(2)
//!     .build();
//! assert_eq!(cfg.capacity, 4096);
//! ```
//!
//! The struct's fields remain `pub` so existing code keeps compiling, but
//! **direct field mutation is deprecated in favour of the builder**: the
//! builder validates cross-field invariants (segment geometry, handle index
//! space) at [`GcConfigBuilder::build`], which ad-hoc mutation silently
//! skips. [`GcConfig::new`] and the `with_*` helpers remain as shorthands
//! and route through the same validation.

use std::error::Error;
use std::fmt;
use std::time::Duration;

use crate::chaos::FaultPlan;

/// How the heap arranges its object slots.
///
/// Both layouts expose the identical allocation/marking interface to the
/// collector — the Figs. 2/5/6 barriers, mark-CAS and handshake protocol
/// are layout-independent — so they are runnable and comparable in one
/// binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HeapLayout {
    /// The verified model's layout: one flat slot array with a single
    /// mutex-protected free list, eagerly swept by the collector.
    #[default]
    Slab,
    /// The scalable layout: the slot array is partitioned into fixed-size
    /// segments. Mutators bump-allocate from private thread-local
    /// allocation buffers (TLABs) harvested from segments claimed off a
    /// lock-free free stack; mark state lives in per-segment side bitmaps
    /// (word-parallel, still sense-relative per Lamport's trick); and the
    /// sweep is *lazy* — the collector only publishes the cycle's garbage
    /// verdict, and allocating mutators reclaim segments on demand.
    Segmented {
        /// Slots per segment. Must divide the heap capacity.
        segment_slots: usize,
        /// Slots a mutator harvests per TLAB refill (1..=`segment_slots`).
        tlab_slots: usize,
    },
}

impl HeapLayout {
    /// A segmented layout with geometry picked from the capacity: segments
    /// of 256 slots (or the whole heap when smaller) and 32-slot TLABs.
    pub fn segmented_default(capacity: usize) -> Self {
        let segment_slots = if capacity >= 256 {
            // Largest power-of-two divisor of `capacity` up to 256.
            let mut s = 256;
            while s > 1 && !capacity.is_multiple_of(s) {
                s /= 2;
            }
            s
        } else {
            capacity
        };
        HeapLayout::Segmented {
            segment_slots,
            tlab_slots: segment_slots.clamp(1, 32),
        }
    }

    /// A short stable name for reports and bench records.
    pub fn name(&self) -> &'static str {
        match self {
            HeapLayout::Slab => "slab",
            HeapLayout::Segmented { .. } => "segmented",
        }
    }
}

/// A configuration rejected by [`GcConfigBuilder::try_build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// The heap capacity is zero or exceeds the handle index space.
    Capacity(usize),
    /// The per-object field bound exceeds the header's 8-bit field count.
    MaxFields(usize),
    /// Segmented-layout geometry is inconsistent with the capacity.
    SegmentGeometry {
        /// The offending capacity.
        capacity: usize,
        /// The offending slots-per-segment.
        segment_slots: usize,
        /// The offending TLAB size.
        tlab_slots: usize,
    },
    /// Occupancy-pacing watermarks are out of range or inverted.
    Pacing {
        /// The offending high watermark (per-mille).
        high: u32,
        /// The offending low watermark (per-mille).
        low: u32,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Capacity(c) => {
                write!(f, "heap capacity {c} must be positive and < 2^32 - 1")
            }
            ConfigError::MaxFields(n) => write!(f, "max_fields {n} exceeds the bound of 255"),
            ConfigError::SegmentGeometry {
                capacity,
                segment_slots,
                tlab_slots,
            } => write!(
                f,
                "segmented geometry invalid: capacity {capacity} must be a positive \
                 multiple of segment_slots {segment_slots}, and tlab_slots {tlab_slots} \
                 must be in 1..=segment_slots"
            ),
            ConfigError::Pacing { high, low } => write!(
                f,
                "pacing watermarks invalid: high {high}‰ must be in 1..=1000 \
                 and low {low}‰ must be strictly below high"
            ),
        }
    }
}

impl Error for ConfigError {}

/// Configuration for a [`Collector`](crate::Collector).
///
/// Build one with [`GcConfig::builder`] (preferred) or [`GcConfig::new`].
/// The ablation switches mirror the model's (`gc-model::ModelConfig`) so
/// that the stress tests can reproduce on real threads exactly the failures
/// the model checker exhibits as traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GcConfig {
    /// Number of object slots in the heap.
    pub capacity: usize,
    /// Maximum reference fields per object (per-object counts are chosen at
    /// allocation, up to this bound).
    pub max_fields: usize,
    /// The heap layout (see [`HeapLayout`]).
    pub layout: HeapLayout,
    /// Validate every heap access against the slot epoch (use-after-free
    /// detection — the runtime oracle for the safety property). Costs two
    /// relaxed loads per access; on for all tests.
    pub validate: bool,
    /// **Ablation** — `false` removes the deletion barrier from
    /// [`Mutator::store`](crate::Mutator::store).
    pub deletion_barrier: bool,
    /// **Ablation** — `false` removes the insertion barrier.
    pub insertion_barrier: bool,
    /// **Ablation** — `false` replaces the marking CAS by an
    /// unsynchronised read-modify-write (racing markers may both "win").
    pub mark_cas: bool,
    /// **Ablation** — `false` removes the handshake fences.
    pub handshake_fences: bool,
    /// Per-mutator allocation pool size for the [`HeapLayout::Slab`] layout
    /// (the §4 extension): each mutator reserves this many slots from the
    /// global free list at a time and allocates from them without
    /// synchronisation. `0` disables pooling (every allocation takes the
    /// free-list lock, as in the verified model). Ignored by
    /// [`HeapLayout::Segmented`], whose TLABs subsume it.
    pub alloc_pool: usize,
    /// Handshake watchdog: how long a soft-handshake round may wait for
    /// stragglers before the watchdog acts (evicting beat-less mutators
    /// and/or aborting the cycle with
    /// [`CycleOutcome::TimedOut`](crate::CycleOutcome::TimedOut)). `None`
    /// (the default) waits forever, as the verified model assumes every
    /// mutator eventually reaches a safe point.
    pub handshake_timeout: Option<Duration>,
    /// When the watchdog fires, evict mutators whose liveness beat never
    /// moved during the whole timeout window — the signature of a thread
    /// that died (or was leaked) without deregistering. Mutators that are
    /// beating but not acknowledging are never evicted (they may still hold
    /// live roots); they time the cycle out instead. Only meaningful with
    /// [`handshake_timeout`](GcConfig::handshake_timeout) set.
    pub evict_dead: bool,
    /// Graceful degradation: how many emergency collection cycles
    /// [`Mutator::alloc`](crate::Mutator::alloc) attempts (with backoff)
    /// when the heap is full before surfacing
    /// [`AllocError::Exhausted`](crate::AllocError::Exhausted). `0`
    /// restores the legacy behaviour of returning
    /// [`AllocError::HeapFull`](crate::AllocError::HeapFull) immediately.
    /// Set via [`GcConfigBuilder::emergency_retries`].
    pub alloc_retries: usize,
    /// Cap on the exponential backoff sleep while an emergency allocation
    /// waits on an in-flight cycle (see
    /// [`GcConfigBuilder::emergency_backoff`]).
    pub emergency_backoff: Duration,
    /// Adaptive pacing: heap-occupancy high watermark in per-mille
    /// (`850` = 85%). When set, the background collector thread started
    /// by [`Collector::start`](crate::Collector::start) runs cycles only
    /// while occupancy is at or above this watermark (with hysteresis
    /// down to [`pacing_low`](GcConfig::pacing_low)), idling between
    /// polls otherwise. `None` (the default) keeps the legacy behaviour:
    /// back-to-back cycles whenever the collector is started. Set via
    /// [`GcConfigBuilder::occupancy_pacing`].
    pub pacing_high: Option<u32>,
    /// Adaptive pacing: hysteresis floor in per-mille. Once triggered,
    /// the collector keeps cycling until occupancy drops below this (or
    /// progress stalls, at which point the bounded pacing backoff takes
    /// over). Only meaningful with [`pacing_high`](GcConfig::pacing_high).
    pub pacing_low: u32,
    /// Cap on the exponential backoff between consecutive paced cycles
    /// that fail to move occupancy below the high watermark — the live
    /// set simply doesn't fit below it, and re-running cycles
    /// back-to-back would degenerate into a stop-the-mutators storm.
    pub pacing_backoff: Duration,
    /// How often the paced collector polls occupancy while below the
    /// trigger watermark.
    pub pacing_poll: Duration,
    /// Deterministic fault injection (see [`FaultPlan`]). The default
    /// [`FaultPlan::none`] is zero-cost on the hot paths.
    pub chaos: FaultPlan,
}

impl GcConfig {
    /// A builder seeded with the defaults of [`GcConfig::new(1024, 2)`]:
    /// everything faithful, validation on, slab layout.
    ///
    /// [`GcConfig::new(1024, 2)`]: GcConfig::new
    pub fn builder() -> GcConfigBuilder {
        GcConfigBuilder {
            cfg: GcConfig::unchecked(1024, 2),
        }
    }

    /// A configuration with the given heap capacity and per-object field
    /// bound, everything faithful, validation on, slab layout.
    ///
    /// # Panics
    ///
    /// Panics on an invalid capacity or field bound — the same validation
    /// as [`GcConfigBuilder::build`].
    pub fn new(capacity: usize, max_fields: usize) -> Self {
        GcConfig::unchecked(capacity, max_fields)
            .validated()
            .unwrap_or_else(|e| panic!("{e}"))
    }

    fn unchecked(capacity: usize, max_fields: usize) -> Self {
        GcConfig {
            capacity,
            max_fields,
            layout: HeapLayout::Slab,
            validate: true,
            deletion_barrier: true,
            insertion_barrier: true,
            mark_cas: true,
            handshake_fences: true,
            alloc_pool: 0,
            handshake_timeout: None,
            evict_dead: true,
            alloc_retries: 2,
            emergency_backoff: Duration::from_millis(1),
            pacing_high: None,
            pacing_low: 500,
            pacing_backoff: Duration::from_millis(5),
            pacing_poll: Duration::from_micros(200),
            chaos: FaultPlan::none(),
        }
    }

    /// Checks the cross-field invariants the builder enforces.
    fn validated(self) -> Result<Self, ConfigError> {
        if self.capacity == 0 || self.capacity >= u32::MAX as usize {
            return Err(ConfigError::Capacity(self.capacity));
        }
        if self.max_fields > 255 {
            return Err(ConfigError::MaxFields(self.max_fields));
        }
        if let HeapLayout::Segmented {
            segment_slots,
            tlab_slots,
        } = self.layout
        {
            let geometry_ok = segment_slots > 0
                && self.capacity.is_multiple_of(segment_slots)
                && tlab_slots >= 1
                && tlab_slots <= segment_slots;
            if !geometry_ok {
                return Err(ConfigError::SegmentGeometry {
                    capacity: self.capacity,
                    segment_slots,
                    tlab_slots,
                });
            }
        }
        if let Some(high) = self.pacing_high {
            if !(1..=1000).contains(&high) || self.pacing_low >= high {
                return Err(ConfigError::Pacing {
                    high,
                    low: self.pacing_low,
                });
            }
        }
        Ok(self)
    }

    /// Enables the §4 allocation-pool extension with the given batch size
    /// (slab layout only).
    #[must_use]
    pub fn with_alloc_pool(mut self, slots: usize) -> Self {
        self.alloc_pool = slots;
        self
    }

    /// Arms the handshake watchdog with the given timeout.
    #[must_use]
    pub fn with_handshake_timeout(mut self, timeout: Duration) -> Self {
        self.handshake_timeout = Some(timeout);
        self
    }

    /// Sets the emergency-collection retry budget for a full heap.
    #[must_use]
    pub fn with_alloc_retries(mut self, retries: usize) -> Self {
        self.alloc_retries = retries;
        self
    }

    /// Installs a fault-injection plan.
    #[must_use]
    pub fn with_chaos(mut self, plan: FaultPlan) -> Self {
        self.chaos = plan;
        self
    }

    /// Selects the heap layout, validating its geometry against the
    /// capacity.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent segment geometry (same validation as
    /// [`GcConfigBuilder::build`]).
    #[must_use]
    pub fn with_layout(mut self, layout: HeapLayout) -> Self {
        self.layout = layout;
        self.validated().unwrap_or_else(|e| panic!("{e}"))
    }
}

/// Builder for [`GcConfig`]: typed setters, cross-field validation at
/// [`build`](GcConfigBuilder::build).
#[derive(Debug, Clone)]
pub struct GcConfigBuilder {
    cfg: GcConfig,
}

impl GcConfigBuilder {
    /// Sets the heap capacity in slots.
    #[must_use]
    pub fn capacity(mut self, capacity: usize) -> Self {
        self.cfg.capacity = capacity;
        self
    }

    /// Sets the per-object reference-field bound.
    #[must_use]
    pub fn max_fields(mut self, max_fields: usize) -> Self {
        self.cfg.max_fields = max_fields;
        self
    }

    /// Selects the heap layout.
    #[must_use]
    pub fn layout(mut self, layout: HeapLayout) -> Self {
        self.cfg.layout = layout;
        self
    }

    /// Switches the use-after-free validation oracle on or off.
    #[must_use]
    pub fn validate(mut self, on: bool) -> Self {
        self.cfg.validate = on;
        self
    }

    /// **Ablation** — removes the deletion barrier when `false`.
    #[must_use]
    pub fn deletion_barrier(mut self, on: bool) -> Self {
        self.cfg.deletion_barrier = on;
        self
    }

    /// **Ablation** — removes the insertion barrier when `false`.
    #[must_use]
    pub fn insertion_barrier(mut self, on: bool) -> Self {
        self.cfg.insertion_barrier = on;
        self
    }

    /// **Ablation** — replaces the marking CAS by an unsynchronised
    /// read-modify-write when `false`.
    #[must_use]
    pub fn mark_cas(mut self, on: bool) -> Self {
        self.cfg.mark_cas = on;
        self
    }

    /// **Ablation** — removes the handshake fences when `false`.
    #[must_use]
    pub fn handshake_fences(mut self, on: bool) -> Self {
        self.cfg.handshake_fences = on;
        self
    }

    /// Sets the slab layout's per-mutator allocation pool size.
    #[must_use]
    pub fn alloc_pool(mut self, slots: usize) -> Self {
        self.cfg.alloc_pool = slots;
        self
    }

    /// Arms the handshake watchdog with the given timeout.
    #[must_use]
    pub fn handshake_timeout(mut self, timeout: Duration) -> Self {
        self.cfg.handshake_timeout = Some(timeout);
        self
    }

    /// Disarms the handshake watchdog (the default).
    #[must_use]
    pub fn no_handshake_timeout(mut self) -> Self {
        self.cfg.handshake_timeout = None;
        self
    }

    /// Whether the armed watchdog may evict beat-less mutators.
    #[must_use]
    pub fn evict_dead(mut self, on: bool) -> Self {
        self.cfg.evict_dead = on;
        self
    }

    /// Sets the emergency-collection retry budget
    /// ([`GcConfig::alloc_retries`]) for a full heap. `0` makes
    /// [`Mutator::alloc`](crate::Mutator::alloc) fail fast with
    /// [`AllocError::HeapFull`](crate::AllocError::HeapFull).
    #[must_use]
    pub fn emergency_retries(mut self, retries: usize) -> Self {
        self.cfg.alloc_retries = retries;
        self
    }

    /// Caps the exponential backoff sleep used while an emergency
    /// allocation helps an in-flight cycle along. Shorter caps retry
    /// allocation sooner at the cost of more wakeups.
    #[must_use]
    pub fn emergency_backoff(mut self, cap: Duration) -> Self {
        self.cfg.emergency_backoff = cap;
        self
    }

    /// Enables occupancy-triggered pacing of the background collector:
    /// cycles start when heap occupancy reaches `high` per-mille and keep
    /// running until it drops below `low` per-mille (hysteresis). Requires
    /// `1 <= high <= 1000` and `low < high`, checked at
    /// [`build`](GcConfigBuilder::build).
    #[must_use]
    pub fn occupancy_pacing(mut self, high: u32, low: u32) -> Self {
        self.cfg.pacing_high = Some(high);
        self.cfg.pacing_low = low;
        self
    }

    /// Restores the legacy unpaced background collector: back-to-back
    /// cycles whenever it is started (the default).
    #[must_use]
    pub fn no_occupancy_pacing(mut self) -> Self {
        self.cfg.pacing_high = None;
        self
    }

    /// Caps the exponential backoff between consecutive paced cycles that
    /// fail to bring occupancy below the high watermark.
    #[must_use]
    pub fn pacing_backoff(mut self, cap: Duration) -> Self {
        self.cfg.pacing_backoff = cap;
        self
    }

    /// Sets the occupancy poll interval for the paced collector while it
    /// idles below the trigger watermark.
    #[must_use]
    pub fn pacing_poll(mut self, interval: Duration) -> Self {
        self.cfg.pacing_poll = interval;
        self
    }

    /// Installs a fault-injection plan.
    #[must_use]
    pub fn chaos(mut self, plan: FaultPlan) -> Self {
        self.cfg.chaos = plan;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] when the capacity, field bound, or segment geometry
    /// is inconsistent.
    pub fn try_build(self) -> Result<GcConfig, ConfigError> {
        self.cfg.validated()
    }

    /// Validates and returns the configuration.
    ///
    /// # Panics
    ///
    /// Panics with the [`ConfigError`] message on an invalid configuration;
    /// use [`try_build`](GcConfigBuilder::try_build) to handle it instead.
    pub fn build(self) -> GcConfig {
        self.try_build().unwrap_or_else(|e| panic!("{e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_faithful() {
        let c = GcConfig::new(16, 2);
        assert!(c.validate && c.deletion_barrier && c.insertion_barrier);
        assert!(c.mark_cas && c.handshake_fences);
        assert_eq!(c.layout, HeapLayout::Slab);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = GcConfig::new(0, 1);
    }

    #[test]
    fn builder_round_trips_every_field() {
        let plan = FaultPlan::new(3).with_cas_lost(100);
        let c = GcConfig::builder()
            .capacity(512)
            .max_fields(3)
            .layout(HeapLayout::Segmented {
                segment_slots: 64,
                tlab_slots: 8,
            })
            .validate(false)
            .deletion_barrier(false)
            .insertion_barrier(false)
            .mark_cas(false)
            .handshake_fences(false)
            .alloc_pool(7)
            .handshake_timeout(Duration::from_millis(9))
            .evict_dead(false)
            .emergency_retries(5)
            .emergency_backoff(Duration::from_micros(200))
            .occupancy_pacing(900, 600)
            .pacing_backoff(Duration::from_millis(7))
            .pacing_poll(Duration::from_micros(50))
            .chaos(plan.clone())
            .build();
        assert_eq!(c.capacity, 512);
        assert_eq!(c.max_fields, 3);
        assert_eq!(
            c.layout,
            HeapLayout::Segmented {
                segment_slots: 64,
                tlab_slots: 8
            }
        );
        assert!(!c.validate && !c.deletion_barrier && !c.insertion_barrier);
        assert!(!c.mark_cas && !c.handshake_fences && !c.evict_dead);
        assert_eq!(c.alloc_pool, 7);
        assert_eq!(c.handshake_timeout, Some(Duration::from_millis(9)));
        assert_eq!(c.alloc_retries, 5);
        assert_eq!(c.emergency_backoff, Duration::from_micros(200));
        assert_eq!(c.pacing_high, Some(900));
        assert_eq!(c.pacing_low, 600);
        assert_eq!(c.pacing_backoff, Duration::from_millis(7));
        assert_eq!(c.pacing_poll, Duration::from_micros(50));
        assert_eq!(c.chaos, plan);
        let c = GcConfig::builder()
            .occupancy_pacing(900, 600)
            .no_occupancy_pacing()
            .build();
        assert_eq!(c.pacing_high, None);
    }

    #[test]
    fn builder_rejects_bad_pacing_watermarks() {
        // high out of range
        assert!(matches!(
            GcConfig::builder().occupancy_pacing(1001, 500).try_build(),
            Err(ConfigError::Pacing {
                high: 1001,
                low: 500
            })
        ));
        assert!(GcConfig::builder()
            .occupancy_pacing(0, 0)
            .try_build()
            .is_err());
        // low not strictly below high
        assert!(GcConfig::builder()
            .occupancy_pacing(800, 800)
            .try_build()
            .is_err());
        assert!(GcConfig::builder()
            .occupancy_pacing(800, 900)
            .try_build()
            .is_err());
        // valid edge: low 0 means "drain as far as possible"
        assert!(GcConfig::builder()
            .occupancy_pacing(1000, 0)
            .try_build()
            .is_ok());
    }

    #[test]
    fn builder_rejects_bad_segment_geometry() {
        // segment_slots does not divide capacity
        let err = GcConfig::builder()
            .capacity(100)
            .layout(HeapLayout::Segmented {
                segment_slots: 64,
                tlab_slots: 8,
            })
            .try_build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::SegmentGeometry { .. }));
        // tlab_slots exceeds segment_slots
        assert!(GcConfig::builder()
            .capacity(128)
            .layout(HeapLayout::Segmented {
                segment_slots: 64,
                tlab_slots: 65,
            })
            .try_build()
            .is_err());
        // zero-slot segments
        assert!(GcConfig::builder()
            .capacity(128)
            .layout(HeapLayout::Segmented {
                segment_slots: 0,
                tlab_slots: 1,
            })
            .try_build()
            .is_err());
    }

    #[test]
    fn builder_rejects_bad_scalars() {
        assert!(matches!(
            GcConfig::builder().capacity(0).try_build(),
            Err(ConfigError::Capacity(0))
        ));
        assert!(matches!(
            GcConfig::builder().max_fields(256).try_build(),
            Err(ConfigError::MaxFields(256))
        ));
    }

    #[test]
    fn segmented_default_geometry_is_valid() {
        for capacity in [8usize, 100, 256, 4096, 100_000] {
            let layout = HeapLayout::segmented_default(capacity);
            let cfg = GcConfig::builder()
                .capacity(capacity)
                .layout(layout)
                .try_build();
            assert!(cfg.is_ok(), "capacity {capacity}: {cfg:?}");
        }
        assert_eq!(HeapLayout::segmented_default(4096).name(), "segmented");
        assert_eq!(HeapLayout::Slab.name(), "slab");
    }
}
