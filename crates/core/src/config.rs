//! Runtime collector configuration.

use std::time::Duration;

use crate::chaos::FaultPlan;

/// Configuration for a [`Collector`](crate::Collector).
///
/// The ablation switches mirror the model's
/// (`gc-model::ModelConfig`) so that the stress tests can reproduce on real
/// threads exactly the failures the model checker exhibits as traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GcConfig {
    /// Number of object slots in the heap.
    pub capacity: usize,
    /// Maximum reference fields per object (per-object counts are chosen at
    /// allocation, up to this bound).
    pub max_fields: usize,
    /// Validate every heap access against the slot epoch (use-after-free
    /// detection — the runtime oracle for the safety property). Costs two
    /// relaxed loads per access; on for all tests.
    pub validate: bool,
    /// **Ablation** — `false` removes the deletion barrier from
    /// [`Mutator::store`](crate::Mutator::store).
    pub deletion_barrier: bool,
    /// **Ablation** — `false` removes the insertion barrier.
    pub insertion_barrier: bool,
    /// **Ablation** — `false` replaces the marking CAS by an
    /// unsynchronised read-modify-write (racing markers may both "win").
    pub mark_cas: bool,
    /// **Ablation** — `false` removes the handshake fences.
    pub handshake_fences: bool,
    /// Per-mutator allocation pool size (the §4 extension): each mutator
    /// reserves this many slots from the global free list at a time and
    /// allocates from them without synchronisation. `0` disables pooling
    /// (every allocation takes the free-list lock, as in the verified
    /// model).
    pub alloc_pool: usize,
    /// Handshake watchdog: how long a soft-handshake round may wait for
    /// stragglers before the watchdog acts (evicting beat-less mutators
    /// and/or aborting the cycle with
    /// [`CycleOutcome::TimedOut`](crate::CycleOutcome::TimedOut)). `None`
    /// (the default) waits forever, as the verified model assumes every
    /// mutator eventually reaches a safe point.
    pub handshake_timeout: Option<Duration>,
    /// When the watchdog fires, evict mutators whose liveness beat never
    /// moved during the whole timeout window — the signature of a thread
    /// that died (or was leaked) without deregistering. Mutators that are
    /// beating but not acknowledging are never evicted (they may still hold
    /// live roots); they time the cycle out instead. Only meaningful with
    /// [`handshake_timeout`](GcConfig::handshake_timeout) set.
    pub evict_dead: bool,
    /// Graceful degradation: how many emergency collection cycles
    /// [`Mutator::alloc`](crate::Mutator::alloc) attempts (with backoff)
    /// when the heap is full before surfacing
    /// [`AllocError::Exhausted`](crate::AllocError::Exhausted). `0`
    /// restores the legacy behaviour of returning
    /// [`AllocError::HeapFull`](crate::AllocError::HeapFull) immediately.
    pub alloc_retries: usize,
    /// Deterministic fault injection (see [`FaultPlan`]). The default
    /// [`FaultPlan::none`] is zero-cost on the hot paths.
    pub chaos: FaultPlan,
}

impl GcConfig {
    /// A configuration with the given heap capacity and per-object field
    /// bound, everything faithful, validation on.
    pub fn new(capacity: usize, max_fields: usize) -> Self {
        assert!(capacity > 0, "heap capacity must be positive");
        assert!(
            capacity < u32::MAX as usize,
            "heap capacity exceeds the handle index space"
        );
        assert!(max_fields <= 255, "at most 255 fields per object");
        GcConfig {
            capacity,
            max_fields,
            validate: true,
            deletion_barrier: true,
            insertion_barrier: true,
            mark_cas: true,
            handshake_fences: true,
            alloc_pool: 0,
            handshake_timeout: None,
            evict_dead: true,
            alloc_retries: 2,
            chaos: FaultPlan::none(),
        }
    }

    /// Enables the §4 allocation-pool extension with the given batch size.
    #[must_use]
    pub fn with_alloc_pool(mut self, slots: usize) -> Self {
        self.alloc_pool = slots;
        self
    }

    /// Arms the handshake watchdog with the given timeout.
    #[must_use]
    pub fn with_handshake_timeout(mut self, timeout: Duration) -> Self {
        self.handshake_timeout = Some(timeout);
        self
    }

    /// Sets the emergency-collection retry budget for a full heap.
    #[must_use]
    pub fn with_alloc_retries(mut self, retries: usize) -> Self {
        self.alloc_retries = retries;
        self
    }

    /// Installs a fault-injection plan.
    #[must_use]
    pub fn with_chaos(mut self, plan: FaultPlan) -> Self {
        self.chaos = plan;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_faithful() {
        let c = GcConfig::new(16, 2);
        assert!(c.validate && c.deletion_barrier && c.insertion_barrier);
        assert!(c.mark_cas && c.handshake_fences);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = GcConfig::new(0, 1);
    }
}
