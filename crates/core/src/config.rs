//! Runtime collector configuration.

/// Configuration for a [`Collector`](crate::Collector).
///
/// The ablation switches mirror the model's
/// (`gc-model::ModelConfig`) so that the stress tests can reproduce on real
/// threads exactly the failures the model checker exhibits as traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GcConfig {
    /// Number of object slots in the heap.
    pub capacity: usize,
    /// Maximum reference fields per object (per-object counts are chosen at
    /// allocation, up to this bound).
    pub max_fields: usize,
    /// Validate every heap access against the slot epoch (use-after-free
    /// detection — the runtime oracle for the safety property). Costs two
    /// relaxed loads per access; on for all tests.
    pub validate: bool,
    /// **Ablation** — `false` removes the deletion barrier from
    /// [`Mutator::store`](crate::Mutator::store).
    pub deletion_barrier: bool,
    /// **Ablation** — `false` removes the insertion barrier.
    pub insertion_barrier: bool,
    /// **Ablation** — `false` replaces the marking CAS by an
    /// unsynchronised read-modify-write (racing markers may both "win").
    pub mark_cas: bool,
    /// **Ablation** — `false` removes the handshake fences.
    pub handshake_fences: bool,
    /// Per-mutator allocation pool size (the §4 extension): each mutator
    /// reserves this many slots from the global free list at a time and
    /// allocates from them without synchronisation. `0` disables pooling
    /// (every allocation takes the free-list lock, as in the verified
    /// model).
    pub alloc_pool: usize,
}

impl GcConfig {
    /// A configuration with the given heap capacity and per-object field
    /// bound, everything faithful, validation on.
    pub fn new(capacity: usize, max_fields: usize) -> Self {
        assert!(capacity > 0, "heap capacity must be positive");
        assert!(
            capacity < u32::MAX as usize,
            "heap capacity exceeds the handle index space"
        );
        assert!(max_fields <= 255, "at most 255 fields per object");
        GcConfig {
            capacity,
            max_fields,
            validate: true,
            deletion_barrier: true,
            insertion_barrier: true,
            mark_cas: true,
            handshake_fences: true,
            alloc_pool: 0,
        }
    }

    /// Enables the §4 allocation-pool extension with the given batch size.
    #[must_use]
    pub fn with_alloc_pool(mut self, slots: usize) -> Self {
        self.alloc_pool = slots;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_faithful() {
        let c = GcConfig::new(16, 2);
        assert!(c.validate && c.deletion_barrier && c.insertion_barrier);
        assert!(c.mark_cas && c.handshake_fences);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = GcConfig::new(0, 1);
    }
}
