//! The collector: Figure 2's cycle on real threads.

use std::sync::atomic::{fence, AtomicBool, AtomicU32, AtomicU8, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crate::sync::Mutex;

use crate::config::GcConfig;
use crate::handle::Gc;
use crate::heap::{Heap, MarkOutcome, Phase};
use crate::mutator::Mutator;
use crate::stats::{CycleStats, GcStats};
use crate::worklist::{LocalList, Staged};

/// Soft-handshake types, encoded into the low bits of the request word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub(crate) enum HsTy {
    /// Acknowledge a control-state change.
    Noop = 1,
    /// Mark own roots, then transfer the private work-list.
    GetRoots = 2,
    /// Transfer the private work-list (termination polling).
    GetWork = 3,
}

/// Per-mutator handshake mailbox.
pub(crate) struct MutatorShared {
    /// The pending request word: `(generation << 2) | type`, 0 = none.
    pub(crate) request: AtomicU32,
    /// The last request word this mutator acknowledged.
    pub(crate) ack: AtomicU32,
    /// Cleared when the mutator deregisters; an inactive mutator counts as
    /// having acknowledged everything.
    pub(crate) active: AtomicBool,
}

/// Everything shared between the collector and the mutators.
pub(crate) struct Shared {
    pub(crate) cfg: GcConfig,
    pub(crate) heap: Heap,
    /// The collector phase, read racily by barriers (by design, §2.4).
    pub(crate) phase: AtomicU8,
    /// The mark sense `f_M`.
    pub(crate) fm: AtomicBool,
    /// The allocation sense `f_A`.
    pub(crate) fa: AtomicBool,
    /// The staged work-list channel mutators transfer into.
    pub(crate) staged: Staged,
    /// Registered mutators.
    pub(crate) registry: Mutex<Vec<Arc<MutatorShared>>>,
    /// Handshake generation counter.
    pub(crate) gen: AtomicU32,
    pub(crate) stats: GcStats,
}

impl Shared {
    /// The `mark` operation of Figure 5, shared by the collector's mark
    /// loop, root marking, and the write barriers.
    ///
    /// Fast path: a relaxed flag load and a relaxed phase load. Slow path:
    /// one `compare_exchange`; the unique winner pushes the object onto
    /// `wl`.
    pub(crate) fn mark(&self, g: Gc, wl: &mut LocalList) {
        self.stats.barrier_checks.fetch_add(1, Ordering::Relaxed);
        let fm = self.fm.load(Ordering::Relaxed);
        if self.heap.flag_equals(g, fm) {
            return; // already marked in this sense: the common case
        }
        if self.phase.load(Ordering::Relaxed) == Phase::Idle as u8 {
            return; // no collection in progress: barriers are inert
        }
        match self.heap.try_mark(g, fm, self.cfg.mark_cas) {
            MarkOutcome::Won => {
                self.stats.barrier_cas_won.fetch_add(1, Ordering::Relaxed);
                wl.push(&self.heap, g);
            }
            MarkOutcome::Lost => {
                self.stats.barrier_cas_lost.fetch_add(1, Ordering::Relaxed);
            }
            MarkOutcome::AlreadyMarked => {}
        }
    }
}

/// The on-the-fly mark-sweep collector.
///
/// Create one with [`Collector::new`], register mutator threads with
/// [`Collector::register_mutator`], and either run cycles continuously on a
/// background thread ([`Collector::start`]/[`Collector::stop`]) or drive
/// single cycles with [`Collector::collect`] from a thread whose registered
/// mutators are answering handshakes.
pub struct Collector {
    shared: Arc<Shared>,
    /// Serialises collection cycles.
    cycle_lock: Mutex<()>,
    worker: Mutex<Option<JoinHandle<()>>>,
    stop: Arc<AtomicBool>,
}

impl std::fmt::Debug for Collector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Collector")
            .field("capacity", &self.shared.heap.capacity())
            .field("phase", &self.phase())
            .field("cycles", &self.shared.stats.cycles())
            .finish()
    }
}

impl Collector {
    /// Creates a collector with the given configuration. The heap starts
    /// empty and the collector idle.
    pub fn new(cfg: GcConfig) -> Self {
        let heap = Heap::new(cfg.capacity, cfg.max_fields, cfg.validate);
        Collector {
            shared: Arc::new(Shared {
                cfg,
                heap,
                phase: AtomicU8::new(Phase::Idle as u8),
                fm: AtomicBool::new(false),
                fa: AtomicBool::new(false),
                staged: Staged::new(),
                registry: Mutex::new(Vec::new()),
                gen: AtomicU32::new(0),
                stats: GcStats::default(),
            }),
            cycle_lock: Mutex::new(()),
            worker: Mutex::new(None),
            stop: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Registers a new mutator thread and returns its handle. The handle
    /// answers handshakes at [`Mutator::safepoint`] and deregisters itself
    /// on drop.
    pub fn register_mutator(&self) -> Mutator {
        let me = Arc::new(MutatorShared {
            request: AtomicU32::new(0),
            ack: AtomicU32::new(0),
            active: AtomicBool::new(true),
        });
        self.shared.registry.lock().push(Arc::clone(&me));
        Mutator::new(Arc::clone(&self.shared), me)
    }

    /// The current collector phase.
    pub fn phase(&self) -> Phase {
        Phase::from_u8(self.shared.phase.load(Ordering::Relaxed))
    }

    /// Collector statistics.
    pub fn stats(&self) -> &GcStats {
        &self.shared.stats
    }

    /// Number of currently allocated objects (O(capacity)).
    pub fn live_objects(&self) -> usize {
        self.shared.heap.live()
    }

    /// One round of soft handshakes: flag every registered mutator and wait
    /// until each has acknowledged (or deregistered). Returns `false` if the
    /// wait was abandoned because [`Collector::stop`] was requested — the
    /// cycle then aborts (safely: marking is idempotent and the sweep only
    /// ever runs after a *completed* trace).
    fn handshake_timed(&self, ty: HsTy, acc: &mut u64) -> bool {
        let t0 = Instant::now();
        let ok = self.handshake(ty);
        *acc += t0.elapsed().as_nanos() as u64;
        ok
    }

    fn handshake(&self, ty: HsTy) -> bool {
        let sh = &self.shared;
        sh.stats.handshakes.fetch_add(1, Ordering::Relaxed);
        if sh.cfg.handshake_fences {
            // The collector's store fence: its control-variable writes are
            // globally visible before any mutator sees the request.
            fence(Ordering::SeqCst);
        }
        let gen = sh.gen.fetch_add(1, Ordering::Relaxed) + 1;
        let word = (gen << 2) | ty as u32;
        let mutators: Vec<Arc<MutatorShared>> = sh.registry.lock().clone();
        for m in &mutators {
            m.request.store(word, Ordering::Release);
        }
        for m in &mutators {
            while m.active.load(Ordering::Acquire) && m.ack.load(Ordering::Acquire) != word {
                if self.stop.load(Ordering::Acquire) {
                    return false;
                }
                std::thread::yield_now();
            }
        }
        if sh.cfg.handshake_fences {
            // The collector's load fence after the round completes.
            fence(Ordering::SeqCst);
        }
        true
    }

    /// Runs one complete mark-sweep cycle (Figure 2) on the calling thread.
    ///
    /// Every registered mutator must be answering handshakes (calling
    /// [`Mutator::safepoint`]) from its own thread, otherwise this blocks.
    /// Concurrent calls are serialised.
    pub fn collect(&self) -> CycleStats {
        let _guard = self.cycle_lock.lock();
        let sh = &self.shared;
        let t0 = Instant::now();
        let mut cycle = CycleStats::default();

        // Abort path for a stop request arriving mid-cycle: put the phase
        // back to Idle (nothing has been freed; marks are idempotent) and
        // report the partial cycle.
        macro_rules! hs_or_abort {
            ($ty:expr) => {
                if !self.handshake_timed($ty, &mut cycle.handshake_ns) {
                    sh.phase.store(Phase::Idle as u8, Ordering::Relaxed);
                    return cycle;
                }
            };
        }

        // Lines 3–4: everyone agrees the collector is idle; the heap is
        // black in the current sense.
        hs_or_abort!(HsTy::Noop);

        // Line 5: flip the mark sense — the heap becomes white.
        let fm = !sh.fm.load(Ordering::Relaxed);
        sh.fm.store(fm, Ordering::Relaxed);
        hs_or_abort!(HsTy::Noop);

        // Line 8: leave idle; write barriers arm as mutators observe it.
        sh.phase.store(Phase::Init as u8, Ordering::Relaxed);
        hs_or_abort!(HsTy::Noop);

        // Lines 11–12: start marking; newly allocated objects are black.
        sh.phase.store(Phase::Mark as u8, Ordering::Relaxed);
        sh.fa.store(fm, Ordering::Relaxed);
        hs_or_abort!(HsTy::Noop);

        // Lines 15–20: each mutator marks and transfers its roots.
        hs_or_abort!(HsTy::GetRoots);
        let mut w = sh.staged.take_all(&sh.heap);
        cycle.received += w.len();

        // Lines 25–34: trace until no grey work remains anywhere.
        loop {
            let t_mark = Instant::now();
            while let Some(src) = w.pop(&sh.heap) {
                let n = sh.heap.nfields(src);
                for f in 0..n {
                    if let Some(child) = sh.heap.load_field(src, f) {
                        sh.mark(child, &mut w);
                    }
                }
                cycle.traced += 1;
            }
            cycle.mark_ns += t_mark.elapsed().as_nanos() as u64;
            hs_or_abort!(HsTy::GetWork);
            cycle.work_rounds += 1;
            w = sh.staged.take_all(&sh.heap);
            cycle.received += w.len();
            if w.is_empty() {
                break;
            }
        }

        // Lines 37–45: sweep the heap, freeing unmarked objects.
        sh.phase.store(Phase::Sweep as u8, Ordering::Relaxed);
        let t_sweep = Instant::now();
        for idx in 0..sh.heap.capacity() as u32 {
            let (alloc, flag, _) = sh.heap.slot_status(idx);
            if alloc && flag != fm {
                sh.heap.free_slot(idx);
                cycle.freed += 1;
            }
        }
        cycle.sweep_ns = t_sweep.elapsed().as_nanos() as u64;
        sh.phase.store(Phase::Idle as u8, Ordering::Relaxed);

        cycle.live_after = sh.heap.live();
        cycle.duration_ns = t0.elapsed().as_nanos() as u64;
        sh.stats.cycles.fetch_add(1, Ordering::Relaxed);
        sh.stats
            .freed
            .fetch_add(cycle.freed as u64, Ordering::Relaxed);
        sh.stats.history.lock().push(cycle);
        cycle
    }

    /// Spawns a background thread running collection cycles continuously
    /// until [`Collector::stop`].
    ///
    /// # Panics
    ///
    /// Panics if already started.
    pub fn start(&self) {
        let mut worker = self.worker.lock();
        assert!(worker.is_none(), "collector already started");
        self.stop.store(false, Ordering::Release);
        let shared = Arc::clone(&self.shared);
        let stop = Arc::clone(&self.stop);
        let collector = CollectorRef { shared, stop };
        *worker = Some(
            std::thread::Builder::new()
                .name("otf-gc".into())
                .spawn(move || collector.run())
                .expect("spawn collector thread"),
        );
    }

    /// Internal access for the white-box debug hooks.
    pub(crate) fn shared_for_debug(&self) -> &Shared {
        &self.shared
    }

    /// Stops the background collector thread (if running) after its current
    /// cycle.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.worker.lock().take() {
            handle.join().expect("collector thread panicked");
        }
    }
}

impl Drop for Collector {
    fn drop(&mut self) {
        self.stop();
    }
}

/// The background worker's view of the collector (a `Collector` cannot be
/// cloned into the thread, so the worker re-implements the cycle via the
/// shared state).
struct CollectorRef {
    shared: Arc<Shared>,
    stop: Arc<AtomicBool>,
}

impl CollectorRef {
    fn run(&self) {
        // Reuse the public cycle implementation through a shell collector
        // that shares the same internals.
        let shell = Collector {
            shared: Arc::clone(&self.shared),
            cycle_lock: Mutex::new(()),
            worker: Mutex::new(None),
            stop: Arc::clone(&self.stop),
        };
        while !self.stop.load(Ordering::Acquire) {
            shell.collect();
            std::thread::yield_now();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GcConfig;

    #[test]
    fn empty_heap_cycle_runs_with_no_mutators() {
        let c = Collector::new(GcConfig::new(8, 2));
        let stats = c.collect();
        assert_eq!(stats.freed, 0);
        assert_eq!(stats.traced, 0);
        assert_eq!(c.stats().cycles(), 1);
        assert_eq!(c.phase(), Phase::Idle);
    }

    #[test]
    fn unreachable_objects_are_collected() {
        let c = Collector::new(GcConfig::new(8, 2));
        let mut m = c.register_mutator();
        let a = m.alloc(1).unwrap();
        let b = m.alloc(1).unwrap();
        m.store(a, 0, Some(b));
        m.discard(b);
        m.discard(a); // everything garbage now

        // Drive the cycle from another thread while this one answers
        // handshakes.
        let done = AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| {
                c.collect();
                done.store(true, Ordering::Release);
            });
            while !done.load(Ordering::Acquire) {
                m.safepoint();
                std::thread::yield_now();
            }
        });
        assert_eq!(c.live_objects(), 0);
        assert_eq!(c.stats().freed(), 2);
    }

    #[test]
    fn reachable_objects_survive() {
        let c = Collector::new(GcConfig::new(8, 2));
        let mut m = c.register_mutator();
        let a = m.alloc(1).unwrap();
        let b = m.alloc(1).unwrap();
        m.store(a, 0, Some(b));
        m.discard(b); // b lives only through a.0

        let done = AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| {
                c.collect();
                done.store(true, Ordering::Release);
            });
            while !done.load(Ordering::Acquire) {
                m.safepoint();
                std::thread::yield_now();
            }
        });
        assert_eq!(c.live_objects(), 2);
        // b is still loadable through a.
        let b2 = m.load(a, 0).expect("b survived");
        assert_eq!(b2, b);
    }

    #[test]
    fn start_stop_background_collector() {
        let c = Collector::new(GcConfig::new(8, 1));
        let mut m = c.register_mutator();
        c.start();
        let a = m.alloc(1).unwrap();
        while c.stats().cycles() < 3 {
            m.safepoint();
            std::thread::yield_now();
        }
        c.stop();
        // The rooted object survived every cycle.
        let _ = m.load(a, 0);
    }
}
