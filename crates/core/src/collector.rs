//! The collector: Figure 2's cycle on real threads, plus the handshake
//! watchdog that keeps it live under adversarial schedules.

use std::sync::atomic::{fence, AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crate::sync::{Backoff, Mutex};

use crate::chaos::{ChaosSite, ChaosState, STORM_YIELDS};
use crate::config::GcConfig;
use crate::handle::Gc;
use crate::heap::{Heap, MarkOutcome, Phase};
use crate::mutator::Mutator;
use crate::stats::{CycleStats, GcStats};
use crate::worklist::{LocalList, Staged};

/// Identifier of a registered mutator, assigned at
/// [`Collector::register_mutator`] and reported by
/// [`CycleOutcome::TimedOut`].
pub type MutId = u32;

/// Samples the segmented heap's gauge series onto the calling thread's
/// trace track: one `segment-<n>-occupancy` counter per segment plus the
/// free-segment-stack depth. No-op on the slab layout (the single global
/// occupancy counter covers it), in trace-less builds, and while tracing
/// is runtime-disabled — the bitmap pass must not run when nobody is
/// listening, so instrumented-but-quiet runs keep their timing.
fn emit_segment_gauges(heap: &Heap) {
    #[cfg(not(feature = "trace"))]
    {
        let _ = heap;
    }
    #[cfg(feature = "trace")]
    if !gc_trace::enabled() {
        return;
    }
    #[cfg(feature = "trace")]
    if let Some(g) = heap.segment_gauges() {
        for (i, &busy) in g.busy.iter().enumerate() {
            trace_event!(SegmentOccupancy {
                segment: i as u32,
                busy,
                slots: g.segment_slots,
            });
        }
        trace_event!(FreeSegments {
            free: g.free_depth,
            total: g.busy.len() as u32,
        });
    }
}

/// Soft-handshake types, encoded into the low bits of the request word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub(crate) enum HsTy {
    /// Acknowledge a control-state change.
    Noop = 1,
    /// Mark own roots, then transfer the private work-list.
    GetRoots = 2,
    /// Transfer the private work-list (termination polling).
    GetWork = 3,
}

/// Per-mutator handshake mailbox.
pub(crate) struct MutatorShared {
    /// The mutator's registration id.
    pub(crate) id: MutId,
    /// The pending request word: `(generation << 2) | type`, 0 = none.
    pub(crate) request: AtomicU32,
    /// The last request word this mutator acknowledged.
    pub(crate) ack: AtomicU32,
    /// Cleared when the mutator deregisters; an inactive mutator counts as
    /// having acknowledged everything.
    pub(crate) active: AtomicBool,
    /// Liveness beat: bumped on every [`Mutator::safepoint`] call. A beat
    /// that never moves across a whole watchdog window is the signature of
    /// a thread that died (or leaked its handle) without deregistering.
    pub(crate) beat: AtomicU64,
    /// Mirror of the mutator's root-set size. Eviction is only sound for a
    /// mutator that provably holds no roots (its private root set cannot be
    /// scanned, so evicting a rooted mutator silently drops its roots from
    /// the reachability snapshot); this mirror plus the commit/rollback
    /// protocol of [`Shared::try_evict`] makes that proof race-free.
    pub(crate) root_count: AtomicUsize,
    /// Whether the mutator holds untransferred grey work. Greys are
    /// already-black parents whose children have not been traced: losing
    /// them to an eviction would let the sweep free reachable children.
    pub(crate) has_grey: AtomicBool,
    /// Set when an eviction *commits*: the handle is revoked, and any later
    /// root-creating operation through it fail-stops.
    pub(crate) evicted: AtomicBool,
}

/// How one soft-handshake round ended.
enum HsOutcome {
    /// Every registered mutator acknowledged (or deregistered, or was
    /// evicted as dead).
    Done,
    /// [`Collector::stop`] was requested mid-round.
    Stopped,
    /// The watchdog expired with these mutators still alive but silent.
    TimedOut(Vec<MutId>),
}

/// Everything shared between the collector and the mutators.
pub(crate) struct Shared {
    pub(crate) cfg: GcConfig,
    pub(crate) heap: Heap,
    /// The collector phase, read racily by barriers (by design, §2.4).
    pub(crate) phase: AtomicU8,
    /// The mark sense `f_M`.
    pub(crate) fm: AtomicBool,
    /// The allocation sense `f_A`.
    pub(crate) fa: AtomicBool,
    /// The staged work-list channel mutators transfer into.
    pub(crate) staged: Staged,
    /// Registered mutators.
    pub(crate) registry: Mutex<Vec<Arc<MutatorShared>>>,
    /// Next mutator registration id.
    pub(crate) next_mut_id: AtomicU32,
    /// Handshake generation counter.
    pub(crate) gen: AtomicU32,
    /// Serialises collection cycles (the collector worker, explicit
    /// [`Collector::collect`] calls, and mutator-driven emergency cycles).
    pub(crate) cycle_lock: Mutex<()>,
    /// Stop request for the background worker and in-flight cycles.
    pub(crate) stop: AtomicBool,
    /// Set by every aborted cycle: the heap may be two-toned (stale marks
    /// from the partial cycle). The next cycle repaints it black in the
    /// current sense before flipping — see
    /// [`Heap::normalize_marks`](crate::heap::Heap::normalize_marks).
    pub(crate) marks_dirty: AtomicBool,
    /// Draw counters for the deterministic fault-injection streams.
    pub(crate) chaos: ChaosState,
    pub(crate) stats: GcStats,
}

impl Shared {
    /// Draws the next chaos decision for `site`, counting fires in the
    /// stats. The `enabled` check is a single branch on a plain bool, so
    /// with [`FaultPlan::none`](crate::FaultPlan::none) this is free.
    #[inline]
    pub(crate) fn chaos_fires(&self, site: ChaosSite) -> bool {
        if !self.cfg.chaos.enabled() {
            return false;
        }
        if self.cfg.chaos.fires(site, &self.chaos) {
            self.stats.chaos_fired[site as usize].fetch_add(1, Ordering::Relaxed);
            trace_event!(ChaosFired { site: site as u8 });
            true
        } else {
            false
        }
    }

    /// The `mark` operation of Figure 5, shared by the collector's mark
    /// loop, root marking, and the write barriers.
    ///
    /// Fast path: a relaxed flag load and a relaxed phase load. Slow path:
    /// one `compare_exchange`; the unique winner pushes the object onto
    /// `wl`.
    pub(crate) fn mark(&self, g: Gc, wl: &mut LocalList) {
        self.stats.barrier_checks.fetch_add(1, Ordering::Relaxed);
        let fm = self.fm.load(Ordering::Relaxed);
        if self.heap.flag_equals(g, fm) {
            return; // already marked in this sense: the common case
        }
        if self.phase.load(Ordering::Relaxed) == Phase::Idle as u8 {
            return; // no collection in progress: barriers are inert
        }
        if self.chaos_fires(ChaosSite::CasLost) {
            // Injected contention: the first CAS attempt spuriously reports
            // `Lost` — as if a racing marker had won — and the barrier
            // retries. The retry below keeps marking sound.
            self.stats.barrier_cas_lost.fetch_add(1, Ordering::Relaxed);
        }
        match self.heap.try_mark(g, fm, self.cfg.mark_cas) {
            MarkOutcome::Won => {
                self.stats.barrier_cas_won.fetch_add(1, Ordering::Relaxed);
                trace_event!(MarkCas { won: true });
                wl.push(&self.heap, g);
            }
            MarkOutcome::Lost => {
                self.stats.barrier_cas_lost.fetch_add(1, Ordering::Relaxed);
                trace_event!(MarkCas { won: false });
            }
            MarkOutcome::AlreadyMarked => {}
        }
    }

    /// One round of soft handshakes: flag every registered mutator and wait
    /// — with bounded exponential backoff — until each has acknowledged,
    /// deregistered, or been evicted by the watchdog.
    ///
    /// `self_serve` is invoked on every wait iteration so that a cycle
    /// driven *from a mutator thread* (the emergency-collection path) can
    /// answer its own handshake instead of deadlocking on it.
    fn handshake(&self, ty: HsTy, self_serve: &mut dyn FnMut()) -> HsOutcome {
        self.stats.handshakes.fetch_add(1, Ordering::Relaxed);
        if self.cfg.handshake_fences {
            // The collector's store fence: its control-variable writes are
            // globally visible before any mutator sees the request.
            fence(Ordering::SeqCst);
        }
        let gen = self.gen.fetch_add(1, Ordering::Relaxed) + 1;
        trace_event!(HandshakeBegin {
            generation: gen,
            ty: ty as u8
        });
        let word = (gen << 2) | ty as u32;
        let mutators: Vec<Arc<MutatorShared>> = self.registry.lock().clone();
        // Beat snapshots taken at post time: the watchdog's evidence base.
        let beats: Vec<u64> = mutators
            .iter()
            .map(|m| m.beat.load(Ordering::Acquire))
            .collect();
        for m in &mutators {
            m.request.store(word, Ordering::Release);
        }

        let mut deadline = self.cfg.handshake_timeout.map(|t| Instant::now() + t);
        let mut backoff = Backoff::new();
        loop {
            let pending = mutators
                .iter()
                .any(|m| m.active.load(Ordering::Acquire) && m.ack.load(Ordering::Acquire) != word);
            if !pending {
                break;
            }
            if self.stop.load(Ordering::Acquire) {
                trace_event!(HandshakeEnd {
                    generation: gen,
                    ty: ty as u8,
                    outcome: 1
                });
                return HsOutcome::Stopped;
            }
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    // Watchdog: separate the provably-dead (no beat for the
                    // whole window) from the stalled-but-alive.
                    let mut stalled = Vec::new();
                    let mut evicted = false;
                    for (m, &beat0) in mutators.iter().zip(&beats) {
                        if !m.active.load(Ordering::Acquire)
                            || m.ack.load(Ordering::Acquire) == word
                        {
                            continue;
                        }
                        if self.cfg.evict_dead
                            && m.beat.load(Ordering::Acquire) == beat0
                            && self.try_evict(m)
                        {
                            evicted = true;
                        } else {
                            stalled.push(m.id);
                        }
                    }
                    if !stalled.is_empty() {
                        trace_event!(HandshakeEnd {
                            generation: gen,
                            ty: ty as u8,
                            outcome: 2
                        });
                        return HsOutcome::TimedOut(stalled);
                    }
                    if evicted {
                        // The blockers are gone; give the survivors (if
                        // any raced in) a fresh window.
                        deadline = self.cfg.handshake_timeout.map(|t| Instant::now() + t);
                        backoff.reset();
                        continue;
                    }
                }
            }
            self_serve();
            backoff.wait();
        }
        if self.cfg.handshake_fences {
            // The collector's load fence after the round completes.
            fence(Ordering::SeqCst);
        }
        trace_event!(HandshakeEnd {
            generation: gen,
            ty: ty as u8,
            outcome: 0
        });
        HsOutcome::Done
    }

    /// Common abort tail: restore the Idle invariants a completed cycle
    /// would have re-established (`f_A == f_M`, phase idle, staged channel
    /// empty) and mark the heap dirty for the next cycle's repaint.
    fn abort_cycle(&self) {
        self.fa
            .store(self.fm.load(Ordering::Relaxed), Ordering::Relaxed);
        self.phase.store(Phase::Idle as u8, Ordering::Relaxed);
        trace_event!(PhaseEnter {
            phase: Phase::Idle as u8
        });
        let _ = self.staged.take_all(&self.heap);
        self.marks_dirty.store(true, Ordering::Release);
    }

    /// Tries to evict a mutator whose thread is presumed dead (no beat for
    /// a whole watchdog window), returning whether the eviction committed.
    ///
    /// A beat-less mutator might still just be stalled — descheduled past
    /// the window — and eviction abandons its *private* state, so it is
    /// only sound when that state is provably empty: no roots (they would
    /// silently leave the reachability snapshot) and no untransferred greys
    /// (their children would never be traced). The tentative-deactivate /
    /// check / commit-or-rollback dance pairs with the mutator's
    /// root-creation guard (`Mutator::root`): under the total order of the
    /// `SeqCst` accesses, a racing root creation either lands its count
    /// before our check — aborting the eviction — or observes our
    /// deactivation and fail-stops before the root exists. A mutator we
    /// cannot evict is reported as stalled ([`CycleOutcome::TimedOut`])
    /// instead.
    fn try_evict(&self, m: &Arc<MutatorShared>) -> bool {
        m.active.store(false, Ordering::SeqCst); // tentative
        if m.root_count.load(Ordering::SeqCst) != 0 || m.has_grey.load(Ordering::SeqCst) {
            // Can't prove its private state empty: roll back. (The
            // transient deactivation is invisible to the handshake's
            // pending check — cycles are serialised and we run inside one.)
            m.active.store(true, Ordering::SeqCst);
            return false;
        }
        m.evicted.store(true, Ordering::SeqCst); // commit: handle revoked
        self.registry.lock().retain(|x| !Arc::ptr_eq(x, m));
        self.stats.evictions.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Runs one complete mark-sweep cycle (Figure 2) on the calling thread,
    /// serialised against every other cycle driver. `self_serve` lets a
    /// mutator-driven cycle answer its own handshakes.
    pub(crate) fn run_cycle(&self, self_serve: &mut dyn FnMut()) -> CycleOutcome {
        let _guard = self.cycle_lock.lock();
        self.run_cycle_locked(self_serve)
    }

    /// Like [`Shared::run_cycle`] but gives up immediately when another
    /// cycle is in flight (the emergency-allocation path helps that cycle
    /// along instead of queueing behind it while it waits for us).
    pub(crate) fn try_run_cycle(&self, self_serve: &mut dyn FnMut()) -> Option<CycleOutcome> {
        let _guard = self.cycle_lock.try_lock()?;
        Some(self.run_cycle_locked(self_serve))
    }

    fn run_cycle_locked(&self, self_serve: &mut dyn FnMut()) -> CycleOutcome {
        let sh = self;
        let t0 = Instant::now();
        let mut cycle = CycleStats::default();
        let cycle_idx = sh.stats.cycles();
        trace_event!(CycleBegin { cycle: cycle_idx });

        // Chaos: the collector itself can be scheduled to die at the start
        // of a chosen cycle (exercising the panic-swallowing join).
        if sh.cfg.chaos.enabled() {
            if let Some(n) = sh.cfg.chaos.collector_panic_at_cycle {
                if sh.stats.cycles() >= n
                    && !sh.chaos.collector_panicked.swap(true, Ordering::Relaxed)
                {
                    sh.stats.chaos_fired[ChaosSite::CollectorPanic as usize]
                        .fetch_add(1, Ordering::Relaxed);
                    panic!("chaos: injected collector panic at cycle {n}");
                }
            }
        }

        // Abort path for a stop request or watchdog expiry mid-cycle.
        // Nothing has been freed, but the partial cycle may have left the
        // heap two-toned (objects marked or allocated black in the flipped
        // sense among objects still carrying the old one) — and stale
        // *black* marks would truncate a later trace above still-white
        // children. So: restore the phase and `f_A`, drop any staged grey
        // segments (they will be re-discovered from the roots next cycle —
        // holding them across an abort would let a later sweep free objects
        // still linked into the channel), and flag the heap dirty so the
        // next cycle repaints it before flipping.
        macro_rules! hs_or_abort {
            ($ty:expr) => {
                let hs_t0 = Instant::now();
                let r = sh.handshake($ty, self_serve);
                cycle.handshake_ns += hs_t0.elapsed().as_nanos() as u64;
                match r {
                    HsOutcome::Done => {}
                    HsOutcome::Stopped => {
                        sh.abort_cycle();
                        trace_event!(CycleEnd {
                            cycle: cycle_idx,
                            freed: 0,
                            traced: cycle.traced as u32
                        });
                        return CycleOutcome::Stopped(cycle);
                    }
                    HsOutcome::TimedOut(stalled) => {
                        sh.abort_cycle();
                        sh.stats.cycle_timeouts.fetch_add(1, Ordering::Relaxed);
                        trace_event!(CycleEnd {
                            cycle: cycle_idx,
                            freed: 0,
                            traced: cycle.traced as u32
                        });
                        return CycleOutcome::TimedOut {
                            stalled,
                            partial: cycle,
                        };
                    }
                }
            };
        }

        // Lines 3–4: everyone agrees the collector is idle; the heap is
        // black in the current sense.
        hs_or_abort!(HsTy::Noop);

        // Per-cycle TLAB/lazy-sweep/backoff activity is reported as deltas
        // of the global counters between here and cycle end.
        let tlab_refills_before = sh.stats.tlab_refills.load(Ordering::Relaxed);
        let lazy_swept_before = sh.stats.lazy_sweep_segments.load(Ordering::Relaxed);
        let backoff_before = sh.stats.backoff_ns.load(Ordering::Relaxed);

        // Segmented layout: mop up every segment still carrying the
        // previous cycle's garbage verdict. This MUST precede both the
        // repaint below and the sense flip — senses alternate, so a
        // segment left two verdicts behind would read its old garbage as
        // "marked" in the newest sense and resurrect it. With the mop-up,
        // at most one verdict is ever outstanding. (The objects freed
        // here were already counted by the cycle that condemned them.)
        let (mopped, _already_counted) = sh.heap.complete_pending_sweeps();
        if mopped > 0 {
            sh.stats
                .lazy_sweep_segments
                .fetch_add(mopped as u64, Ordering::Relaxed);
        }

        // Recover from a previous abort: every mutator has now synchronised
        // past the handshake above (so no allocation with a stale `f_A` can
        // race us, and barriers are inert at Idle) — repaint the heap
        // uniformly black in the current sense before the flip makes it
        // white. Skipped entirely on the clean path.
        if sh.marks_dirty.swap(false, Ordering::AcqRel) {
            sh.heap.normalize_marks(sh.fm.load(Ordering::Relaxed));
        }

        // Line 5: flip the mark sense — the heap becomes white.
        let fm = !sh.fm.load(Ordering::Relaxed);
        sh.fm.store(fm, Ordering::Relaxed);
        hs_or_abort!(HsTy::Noop);

        // Line 8: leave idle; write barriers arm as mutators observe it.
        sh.phase.store(Phase::Init as u8, Ordering::Relaxed);
        trace_event!(PhaseEnter {
            phase: Phase::Init as u8
        });
        hs_or_abort!(HsTy::Noop);

        // Lines 11–12: start marking; newly allocated objects are black.
        sh.phase.store(Phase::Mark as u8, Ordering::Relaxed);
        trace_event!(PhaseEnter {
            phase: Phase::Mark as u8
        });
        sh.fa.store(fm, Ordering::Relaxed);
        hs_or_abort!(HsTy::Noop);

        // Lines 15–20: each mutator marks and transfers its roots.
        hs_or_abort!(HsTy::GetRoots);
        let mut w = sh.staged.take_all(&sh.heap);
        cycle.received += w.len();

        // Lines 25–34: trace until no grey work remains anywhere.
        loop {
            let t_mark = Instant::now();
            let mut round_chaos_ns = 0u64;
            while let Some(src) = w.pop(&sh.heap) {
                if sh.chaos_fires(ChaosSite::MarkDelay) {
                    // Injected descheduling mid-trace. The storm's cost is
                    // accounted to `chaos_ns` and excluded from `mark_ns` so
                    // timing reports stay honest under chaos.
                    let t_chaos = Instant::now();
                    for _ in 0..STORM_YIELDS {
                        std::thread::yield_now();
                    }
                    round_chaos_ns += t_chaos.elapsed().as_nanos() as u64;
                }
                let n = sh.heap.nfields(src);
                for f in 0..n {
                    if let Some(child) = sh.heap.load_field(src, f) {
                        sh.mark(child, &mut w);
                    }
                }
                cycle.traced += 1;
            }
            cycle.chaos_ns += round_chaos_ns;
            cycle.mark_ns += (t_mark.elapsed().as_nanos() as u64).saturating_sub(round_chaos_ns);
            hs_or_abort!(HsTy::GetWork);
            cycle.work_rounds += 1;
            w = sh.staged.take_all(&sh.heap);
            cycle.received += w.len();
            if w.is_empty() {
                break;
            }
        }

        // Lines 37–45: sweep the heap, freeing unmarked objects.
        sh.phase.store(Phase::Sweep as u8, Ordering::Relaxed);
        trace_event!(PhaseEnter {
            phase: Phase::Sweep as u8
        });
        let t_sweep = Instant::now();
        if sh.heap.is_segmented() {
            // Lazy sweep: publish this cycle's garbage verdict in one
            // O(capacity / 64) popcount pass; allocating mutators (and
            // next cycle's mop-up) reclaim the condemned slots on
            // demand, so this no longer scales with heap capacity.
            cycle.freed = sh.heap.publish_sweep(fm);
        } else {
            for idx in 0..sh.heap.capacity() as u32 {
                let (alloc, flag, _) = sh.heap.slot_status(idx);
                if alloc && flag != fm {
                    sh.heap.free_slot(idx);
                    cycle.freed += 1;
                }
            }
        }
        cycle.sweep_ns = t_sweep.elapsed().as_nanos() as u64;
        sh.phase.store(Phase::Idle as u8, Ordering::Relaxed);
        trace_event!(PhaseEnter {
            phase: Phase::Idle as u8
        });

        cycle.tlab_refills =
            (sh.stats.tlab_refills.load(Ordering::Relaxed) - tlab_refills_before) as usize;
        cycle.lazy_swept_segments =
            (sh.stats.lazy_sweep_segments.load(Ordering::Relaxed) - lazy_swept_before) as usize;
        cycle.backoff_ns = sh.stats.backoff_ns.load(Ordering::Relaxed) - backoff_before;
        cycle.live_after = sh.heap.live();
        cycle.duration_ns = t0.elapsed().as_nanos() as u64;
        debug_assert!(
            cycle.timing_consistent(),
            "phase timings exceed cycle duration: {cycle:?}"
        );
        sh.stats.cycles.fetch_add(1, Ordering::Relaxed);
        sh.stats
            .freed
            .fetch_add(cycle.freed as u64, Ordering::Relaxed);
        sh.stats.history.lock().push(cycle);
        trace_event!(CycleEnd {
            cycle: cycle_idx,
            freed: cycle.freed as u32,
            traced: cycle.traced as u32
        });
        emit_segment_gauges(&sh.heap);
        CycleOutcome::Completed(cycle)
    }
}

/// How a collection cycle ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CycleOutcome {
    /// The full mark-sweep cycle ran to completion.
    Completed(CycleStats),
    /// [`Collector::stop`] arrived mid-cycle; the cycle aborted safely
    /// (marks are idempotent and nothing was freed).
    Stopped(CycleStats),
    /// The handshake watchdog
    /// ([`GcConfig::handshake_timeout`](crate::GcConfig::handshake_timeout))
    /// expired with live-but-silent mutators; the cycle aborted safely
    /// instead of hanging.
    TimedOut {
        /// Registration ids of the mutators that never acknowledged.
        stalled: Vec<MutId>,
        /// Statistics for the partial cycle.
        partial: CycleStats,
    },
}

impl CycleOutcome {
    /// The cycle statistics, whatever the outcome.
    pub fn stats(&self) -> &CycleStats {
        match self {
            CycleOutcome::Completed(s) | CycleOutcome::Stopped(s) => s,
            CycleOutcome::TimedOut { partial, .. } => partial,
        }
    }

    /// Whether the cycle ran to completion (traced and swept).
    pub fn is_completed(&self) -> bool {
        matches!(self, CycleOutcome::Completed(_))
    }

    /// Whether the watchdog aborted the cycle.
    pub fn is_timed_out(&self) -> bool {
        matches!(self, CycleOutcome::TimedOut { .. })
    }

    /// Consumes the outcome, returning the cycle statistics.
    pub fn into_stats(self) -> CycleStats {
        match self {
            CycleOutcome::Completed(s) | CycleOutcome::Stopped(s) => s,
            CycleOutcome::TimedOut { partial, .. } => partial,
        }
    }
}

/// The on-the-fly mark-sweep collector.
///
/// Create one with [`Collector::new`], register mutator threads with
/// [`Collector::register_mutator`], and either run cycles continuously on a
/// background thread ([`Collector::start`]/[`Collector::stop`]) or drive
/// single cycles with [`Collector::collect`] from a thread whose registered
/// mutators are answering handshakes.
pub struct Collector {
    shared: Arc<Shared>,
    worker: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for Collector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Collector")
            .field("capacity", &self.shared.heap.capacity())
            .field("phase", &self.phase())
            .field("cycles", &self.shared.stats.cycles())
            .finish()
    }
}

impl Collector {
    /// Creates a collector with the given configuration. The heap starts
    /// empty and the collector idle.
    pub fn new(cfg: GcConfig) -> Self {
        let heap = Heap::new(cfg.capacity, cfg.max_fields, cfg.validate, cfg.layout);
        Collector {
            shared: Arc::new(Shared {
                cfg,
                heap,
                phase: AtomicU8::new(Phase::Idle as u8),
                fm: AtomicBool::new(false),
                fa: AtomicBool::new(false),
                staged: Staged::new(),
                registry: Mutex::new(Vec::new()),
                next_mut_id: AtomicU32::new(0),
                gen: AtomicU32::new(0),
                cycle_lock: Mutex::new(()),
                stop: AtomicBool::new(false),
                marks_dirty: AtomicBool::new(false),
                chaos: ChaosState::default(),
                stats: GcStats::default(),
            }),
            worker: Mutex::new(None),
        }
    }

    /// Registers a new mutator thread and returns its handle. The handle
    /// answers handshakes at [`Mutator::safepoint`] and deregisters itself
    /// on drop.
    pub fn register_mutator(&self) -> Mutator {
        let id = self.shared.next_mut_id.fetch_add(1, Ordering::Relaxed);
        let me = Arc::new(MutatorShared {
            id,
            request: AtomicU32::new(0),
            ack: AtomicU32::new(0),
            active: AtomicBool::new(true),
            beat: AtomicU64::new(0),
            root_count: AtomicUsize::new(0),
            has_grey: AtomicBool::new(false),
            evicted: AtomicBool::new(false),
        });
        self.shared.registry.lock().push(Arc::clone(&me));
        Mutator::new(Arc::clone(&self.shared), me)
    }

    /// The current collector phase.
    pub fn phase(&self) -> Phase {
        Phase::from_u8(self.shared.phase.load(Ordering::Relaxed))
    }

    /// Collector statistics.
    pub fn stats(&self) -> &GcStats {
        &self.shared.stats
    }

    /// Number of currently allocated objects (O(capacity)).
    pub fn live_objects(&self) -> usize {
        self.shared.heap.live()
    }

    /// Runs one complete mark-sweep cycle (Figure 2) on the calling thread.
    ///
    /// Every registered mutator must be answering handshakes (calling
    /// [`Mutator::safepoint`]) from its own thread; without a
    /// [`handshake_timeout`](crate::GcConfig::handshake_timeout) this
    /// blocks until they do, with one it returns
    /// [`CycleOutcome::TimedOut`] instead of hanging. Concurrent calls are
    /// serialised.
    pub fn collect(&self) -> CycleOutcome {
        self.shared.run_cycle(&mut || {})
    }

    /// Spawns a background thread running collection cycles until
    /// [`Collector::stop`].
    ///
    /// Without [`GcConfig::pacing_high`](crate::GcConfig::pacing_high) the
    /// worker runs cycles back-to-back (the legacy behaviour). With it, the
    /// worker *paces* itself off the occupancy signal: it idles (polling
    /// every [`pacing_poll`](crate::GcConfig::pacing_poll)) while occupancy
    /// is below the high watermark, then cycles until occupancy drops below
    /// the low watermark — and when consecutive cycles fail to get back
    /// under the high watermark (the live set simply doesn't fit), it backs
    /// off exponentially up to
    /// [`pacing_backoff`](crate::GcConfig::pacing_backoff) instead of
    /// hammering the mutators with back-to-back handshake storms.
    ///
    /// # Panics
    ///
    /// Panics if already started.
    pub fn start(&self) {
        let mut worker = self.worker.lock();
        assert!(worker.is_none(), "collector already started");
        self.shared.stop.store(false, Ordering::Release);
        let shared = Arc::clone(&self.shared);
        *worker = Some(
            std::thread::Builder::new()
                .name("otf-gc".into())
                .spawn(move || match shared.cfg.pacing_high {
                    None => {
                        while !shared.stop.load(Ordering::Acquire) {
                            let _ = shared.run_cycle(&mut || {});
                            std::thread::yield_now();
                        }
                    }
                    Some(high_pm) => {
                        let high = high_pm as f64 / 1000.0;
                        let low = shared.cfg.pacing_low as f64 / 1000.0;
                        let poll = shared.cfg.pacing_poll;
                        let mut backoff = Backoff::with_max_sleep(shared.cfg.pacing_backoff);
                        while !shared.stop.load(Ordering::Acquire) {
                            let occ = shared.heap.occupancy();
                            trace_event!(Counter {
                                id: 0,
                                value: (occ * 1000.0) as u64
                            });
                            emit_segment_gauges(&shared.heap);
                            if occ < high {
                                backoff.reset();
                                std::thread::sleep(poll);
                                continue;
                            }
                            // Triggered: cycle down to the hysteresis floor.
                            while !shared.stop.load(Ordering::Acquire) {
                                let _ = shared.run_cycle(&mut || {});
                                let now = shared.heap.occupancy();
                                trace_event!(Counter {
                                    id: 0,
                                    value: (now * 1000.0) as u64
                                });
                                if now < low {
                                    backoff.reset();
                                    break;
                                }
                                if now >= high {
                                    // Non-productive cycle: the survivors
                                    // alone keep us over the watermark.
                                    // Bounded exponential backoff before
                                    // trying again.
                                    backoff.wait();
                                } else {
                                    backoff.reset();
                                }
                            }
                        }
                    }
                })
                .expect("spawn collector thread"),
        );
    }

    /// Fraction of the heap currently unavailable for allocation, in
    /// `0.0..=1.0`. This is the signal the paced background collector and
    /// any admission-control layer (e.g. `gc-serve`'s shed-by-occupancy
    /// policy) key off. On the slab layout this is O(1); on the segmented
    /// layout it is a popcount pass over the side bitmaps, where condemned
    /// slots whose sweep verdict is published but not yet lazily reclaimed
    /// count as *available* (they are one TLAB refill away from allocable,
    /// and counting them occupied would leave the signal stuck high right
    /// after every cycle).
    pub fn heap_occupancy(&self) -> f64 {
        self.shared.heap.occupancy()
    }

    /// Draws the next decision of `site`'s deterministic chaos stream,
    /// counting fires in [`GcStats::chaos_fired`](crate::GcStats). This is
    /// the hook for harness-level fault sites — e.g.
    /// [`ChaosSite::WorkerPanic`] is drawn per request by an application
    /// harness, not by the collector — so their draws share the plan's
    /// seeded streams and show up in the same chaos accounting. Free (a
    /// single branch) when no [`FaultPlan`](crate::FaultPlan) is installed.
    pub fn chaos_fires(&self, site: ChaosSite) -> bool {
        self.shared.chaos_fires(site)
    }

    /// Gates every chaos stream off (`true`) or back on (`false`) without
    /// consuming draws, so a harness can bound a fault storm to a window
    /// and then measure recovery — e.g. post-storm tail latency — against
    /// the *same* deterministic streams it would have seen uninterrupted.
    pub fn suppress_chaos(&self, on: bool) {
        self.shared.chaos.suppressed.store(on, Ordering::Release);
    }

    /// Internal access for the white-box debug hooks.
    pub(crate) fn shared_for_debug(&self) -> &Shared {
        &self.shared
    }

    /// Stops the background collector thread (if running) after its current
    /// cycle. A worker that died of a panic is swallowed here and recorded
    /// in [`GcStats::worker_panics`] — stopping a crashed collector never
    /// takes the caller down with it.
    pub fn stop(&self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(handle) = self.worker.lock().take() {
            if handle.join().is_err() {
                self.shared
                    .stats
                    .worker_panics
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

impl Drop for Collector {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::FaultPlan;
    use crate::config::GcConfig;
    use std::time::Duration;

    #[test]
    fn empty_heap_cycle_runs_with_no_mutators() {
        let c = Collector::new(GcConfig::new(8, 2));
        let out = c.collect();
        assert!(out.is_completed());
        assert_eq!(out.stats().freed, 0);
        assert_eq!(out.stats().traced, 0);
        assert_eq!(c.stats().cycles(), 1);
        assert_eq!(c.phase(), Phase::Idle);
    }

    #[test]
    fn unreachable_objects_are_collected() {
        let c = Collector::new(GcConfig::new(8, 2));
        let mut m = c.register_mutator();
        let a = m.alloc(1).unwrap();
        let b = m.alloc(1).unwrap();
        m.store(a, 0, Some(b));
        m.discard(b);
        m.discard(a); // everything garbage now

        // Drive the cycle from another thread while this one answers
        // handshakes.
        let done = AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| {
                c.collect();
                done.store(true, Ordering::Release);
            });
            while !done.load(Ordering::Acquire) {
                m.safepoint();
                std::thread::yield_now();
            }
        });
        assert_eq!(c.live_objects(), 0);
        assert_eq!(c.stats().freed(), 2);
    }

    #[test]
    fn reachable_objects_survive() {
        let c = Collector::new(GcConfig::new(8, 2));
        let mut m = c.register_mutator();
        let a = m.alloc(1).unwrap();
        let b = m.alloc(1).unwrap();
        m.store(a, 0, Some(b));
        m.discard(b); // b lives only through a.0

        let done = AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| {
                c.collect();
                done.store(true, Ordering::Release);
            });
            while !done.load(Ordering::Acquire) {
                m.safepoint();
                std::thread::yield_now();
            }
        });
        assert_eq!(c.live_objects(), 2);
        // b is still loadable through a.
        let b2 = m.load(a, 0).expect("b survived");
        assert_eq!(b2, b);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn segmented_cycle_emits_per_segment_gauges() {
        use crate::config::HeapLayout;
        let cfg = GcConfig::builder()
            .capacity(16)
            .max_fields(1)
            .layout(HeapLayout::Segmented {
                segment_slots: 8,
                tlab_slots: 2,
            })
            .build();
        let c = Collector::new(cfg);
        let mut m = c.register_mutator();
        let a = m.alloc(1).unwrap();
        let g = m.alloc(1).unwrap();
        m.discard(g);
        gc_trace::enable();
        let done = AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| {
                c.collect();
                done.store(true, Ordering::Release);
            });
            while !done.load(Ordering::Acquire) {
                m.safepoint();
                std::thread::yield_now();
            }
        });
        gc_trace::disable();
        let events: Vec<gc_trace::EventKind> = gc_trace::Tracer::global()
            .drain()
            .into_iter()
            .flat_map(|d| d.events)
            .map(|e| e.kind)
            .collect();
        // One occupancy sample per segment (2 segments of 8 slots), plus
        // the free-stack depth, all from the cycle-end sample.
        let seg_samples: Vec<(u32, u32)> = events
            .iter()
            .filter_map(|k| match *k {
                gc_trace::EventKind::SegmentOccupancy { segment, slots, .. } => {
                    Some((segment, slots))
                }
                _ => None,
            })
            .collect();
        assert!(
            seg_samples.contains(&(0, 8)) && seg_samples.contains(&(1, 8)),
            "expected both segments sampled, got {seg_samples:?}"
        );
        assert!(
            events
                .iter()
                .any(|k| matches!(k, gc_trace::EventKind::FreeSegments { total: 2, .. })),
            "expected a free-segment-stack sample"
        );
        let _ = m.load(a, 0);
    }

    #[test]
    fn start_stop_background_collector() {
        let c = Collector::new(GcConfig::new(8, 1));
        let mut m = c.register_mutator();
        c.start();
        let a = m.alloc(1).unwrap();
        while c.stats().cycles() < 3 {
            m.safepoint();
            std::thread::yield_now();
        }
        c.stop();
        // The rooted object survived every cycle.
        let _ = m.load(a, 0);
    }

    #[test]
    fn paced_collector_idles_until_watermark() {
        let cfg = GcConfig::builder()
            .capacity(8)
            .max_fields(1)
            .occupancy_pacing(500, 250)
            .pacing_poll(Duration::from_micros(50))
            .build();
        let c = Collector::new(cfg);
        let mut m = c.register_mutator();
        c.start();
        // Empty heap: the paced worker polls but never cycles.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(c.stats().cycles(), 0, "paced collector cycled while idle");
        // Fill past the 50% watermark with garbage; the pacer must trigger
        // and drain back below the hysteresis floor.
        for _ in 0..6 {
            let g = m.alloc(1).unwrap();
            m.discard(g);
        }
        while c.stats().cycles() == 0 {
            m.safepoint();
            std::thread::yield_now();
        }
        c.stop();
        assert!(c.heap_occupancy() < 0.5, "trigger drained the garbage");
    }

    #[test]
    fn stop_swallows_worker_panic() {
        let cfg =
            GcConfig::new(8, 1).with_chaos(FaultPlan::new(1).with_collector_panic_at_cycle(0));
        let c = Collector::new(cfg);
        c.start();
        // The worker dies at the start of its first cycle; wait for it.
        while c.stats().chaos_fired(ChaosSite::CollectorPanic) == 0 {
            std::thread::yield_now();
        }
        c.stop(); // must NOT propagate the panic
        assert_eq!(c.stats().worker_panics(), 1);
        // The panic latch is once-only: the caller can still collect.
        let out = c.collect();
        assert!(out.is_completed());
    }

    #[test]
    fn watchdog_times_out_on_a_stalled_live_mutator() {
        let cfg = GcConfig::new(8, 1).with_handshake_timeout(Duration::from_millis(25));
        let c = Collector::new(cfg);
        let m = c.register_mutator();
        let id = m.id();
        // Keep the mutator's beat moving (alive) without ever acking.
        let stop_beating = AtomicBool::new(false);
        let started = AtomicBool::new(false);
        let out = std::thread::scope(|s| {
            s.spawn(|| {
                while !stop_beating.load(Ordering::Acquire) {
                    m.beat_for_test();
                    started.store(true, Ordering::Release);
                    std::thread::yield_now();
                }
            });
            // Wait for the first beat, or the watchdog's first window could
            // see the not-yet-scheduled beater as dead and evict it.
            while !started.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
            let out = c.collect();
            stop_beating.store(true, Ordering::Release);
            out
        });
        match out {
            CycleOutcome::TimedOut { stalled, .. } => assert_eq!(stalled, vec![id]),
            other => panic!("expected TimedOut, got {other:?}"),
        }
        assert_eq!(c.phase(), Phase::Idle, "abort restores Idle");
        assert_eq!(c.stats().cycle_timeouts(), 1);
        assert_eq!(
            c.stats().evictions(),
            0,
            "a beating mutator is never evicted"
        );
        let sh = c.shared_for_debug();
        assert!(
            sh.marks_dirty.load(Ordering::Relaxed),
            "abort flags the heap for repaint"
        );
        assert_eq!(
            sh.fa.load(Ordering::Relaxed),
            sh.fm.load(Ordering::Relaxed),
            "abort restores f_A == f_M"
        );
    }

    #[test]
    fn abort_after_sense_flip_does_not_strand_reachable_children() {
        // Regression: a cycle aborted after flipping f_M leaves the heap
        // two-toned. Without the dirty-repaint, the next cycle's flip turns
        // the stale old-sense marks into "already marked", the trace
        // truncates at them, and their newer black-allocated children are
        // swept while reachable. Construct that post-abort state by hand.
        let c = Collector::new(GcConfig::new(8, 1));
        let mut m = c.register_mutator();
        let p = m.alloc(1).unwrap(); // flag = false (old sense)
        {
            let sh = c.shared_for_debug();
            // Simulate an abort that got past Mark: senses flipped...
            sh.fm.store(true, Ordering::Relaxed);
            sh.fa.store(true, Ordering::Relaxed);
        }
        // ...a child allocated black in the new sense and linked under the
        // old-sense parent...
        let child = m.alloc(1).unwrap(); // flag = true (new sense)
        m.store(p, 0, Some(child));
        m.discard(child); // reachable only through p.0
                          // ...and the abort tail's bookkeeping.
        c.shared_for_debug()
            .marks_dirty
            .store(true, Ordering::Release);

        let done = AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| {
                assert!(c.collect().is_completed());
                done.store(true, Ordering::Release);
            });
            while !done.load(Ordering::Acquire) {
                m.safepoint();
                std::thread::yield_now();
            }
        });
        assert_eq!(c.live_objects(), 2, "the child survived the sweep");
        assert_eq!(m.load(p, 0), Some(child));
    }

    #[test]
    fn watchdog_evicts_a_beatless_mutator_and_completes() {
        let cfg = GcConfig::new(8, 1).with_handshake_timeout(Duration::from_millis(25));
        let c = Collector::new(cfg);
        let m = c.register_mutator();
        // Leak the handle: the mutator never beats, never acks, never
        // deregisters — the signature of a dead thread.
        std::mem::forget(m);
        let out = c.collect();
        assert!(out.is_completed(), "eviction unblocks the cycle: {out:?}");
        assert_eq!(c.stats().evictions(), 1);
        assert!(c.shared_for_debug().registry.lock().is_empty());
        // Later cycles need no watchdog at all.
        assert!(c.collect().is_completed());
        assert_eq!(c.stats().evictions(), 1);
    }

    #[test]
    fn watchdog_never_evicts_a_beatless_mutator_holding_roots() {
        // A beat-less mutator might be dead — or merely descheduled past
        // the window. Its private root set cannot be scanned, so evicting
        // it while it holds roots would silently drop them from the
        // reachability snapshot: the watchdog must report it stalled
        // instead.
        let cfg = GcConfig::new(8, 1).with_handshake_timeout(Duration::from_millis(25));
        let c = Collector::new(cfg);
        let mut m = c.register_mutator();
        let _a = m.alloc(1).unwrap();
        let id = m.id();
        std::mem::forget(m);
        let out = c.collect();
        match out {
            CycleOutcome::TimedOut { stalled, .. } => assert_eq!(stalled, vec![id]),
            other => panic!("expected TimedOut for a rooted zombie, got {other:?}"),
        }
        assert_eq!(c.stats().evictions(), 0);
        assert_eq!(c.live_objects(), 1, "the zombie's root was respected");
    }

    #[test]
    #[should_panic(expected = "evicted by the handshake watchdog")]
    fn evicted_handle_is_revoked() {
        // Eviction commits against a root-less, beat-less mutator. If the
        // "dead" thread then wakes up, the first root-creating operation
        // through the revoked handle must fail stop — the collector no
        // longer scans it, so letting the root land would be unsound.
        let cfg = GcConfig::new(8, 1).with_handshake_timeout(Duration::from_millis(25));
        let c = Collector::new(cfg);
        let mut m = c.register_mutator();
        let done = AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| {
                assert!(c.collect().is_completed(), "eviction unblocks the cycle");
                done.store(true, Ordering::Release);
            });
            // Play dead: no beats, no acks, until evicted.
            while !done.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
        });
        assert_eq!(c.stats().evictions(), 1);
        let _ = m.alloc(1); // revoked: panics
    }

    #[test]
    fn timed_out_cycle_drops_staged_segments_safely() {
        // A cycle that aborts with grey work in the staged channel must not
        // leave dangling links for a later sweep to trip over.
        let cfg = GcConfig::new(8, 1).with_handshake_timeout(Duration::from_millis(20));
        let c = Collector::new(cfg);
        let mut m = c.register_mutator();
        let a = m.alloc(1).unwrap();
        m.discard(a);
        // Stall: never answer, but beat from this thread so we time out
        // rather than get evicted.
        let done = AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| {
                let out = c.collect();
                assert!(out.is_timed_out());
                done.store(true, Ordering::Release);
            });
            while !done.load(Ordering::Acquire) {
                m.beat_for_test();
                std::thread::yield_now();
            }
        });
        // Now cooperate: the very next completed cycle reclaims `a` without
        // tripping the use-after-free oracle on a stale staged link (the
        // abort repainted nothing here — the timeout hit before the flip —
        // but the dirty path runs either way).
        drop(m);
        assert!(c.collect().is_completed());
        assert_eq!(c.live_objects(), 0);
    }
}
