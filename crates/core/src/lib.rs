//! `otf-gc`: an executable on-the-fly, concurrent mark-sweep garbage
//! collector kernel.
//!
//! This crate is the runtime counterpart of the model verified in *Relaxing
//! Safely: Verified On-the-Fly Garbage Collection for x86-TSO* (PLDI 2015)
//! — the collector design at the heart of the Schism real-time collector:
//!
//! * **on-the-fly**: the collector never stops the world; it coordinates
//!   with mutator threads through *soft handshakes* that each mutator
//!   answers individually at its own GC-safe points
//!   ([`Mutator::safepoint`]);
//! * **snapshot-based**: a *deletion barrier* (Yuasa-style) in
//!   [`Mutator::store`] keeps everything reachable at the snapshot alive,
//!   giving bounded marking work per cycle;
//! * an *insertion barrier* (Dijkstra-style) in the same write barrier
//!   keeps the on-the-fly root snapshot sound;
//! * **epoch-flipped marks**: the interpretation of the per-object mark bit
//!   flips each cycle (`f_M`), so retained objects never need their marks
//!   reset; new objects are allocated with the sense `f_A`;
//! * **CAS-avoiding marking** (the paper's Figure 5): the write barrier
//!   issues an atomic compare-and-swap only when the object is not yet
//!   marked *and* a collection is active — the common case is two plain
//!   loads;
//! * **disjoint intrusive work-lists**: the unique mark-CAS winner owns the
//!   object's intrusive work-list link, so grey lists need no further
//!   synchronisation and transfer wait-free at handshakes.
//!
//! The control variables (`phase`, `f_M`, `f_A`) are read racily by design,
//! exactly as in the paper; fences are issued only at handshake boundaries
//! and inside the marking CAS. (In Rust the racy accesses are relaxed
//! atomics — the sanctioned way to express an intentional race.)
//!
//! With validation enabled (the default), every heap access is checked
//! against a per-slot allocation epoch: a freed-while-reachable object —
//! the failure the paper's safety theorem excludes — trips an assertion
//! immediately. The ablation switches in [`GcConfig`] let the stress tests
//! reproduce the model checker's counterexamples on real threads.
//!
//! The runtime is also built to *degrade*, not hang or corrupt, under
//! hostile schedules: a handshake watchdog
//! ([`GcConfig::with_handshake_timeout`]) aborts cycles stalled on silent
//! mutators (and soundly evicts provably-dead, root-less ones), a full
//! heap triggers emergency collection from the allocating thread before
//! reporting a structured [`AllocError::Exhausted`], and a deterministic
//! fault-injection engine ([`FaultPlan`], module [`chaos`]) drives all of
//! it in tests and the `torture` harness.
//!
//! The heap itself comes in two interchangeable layouts behind one
//! allocation API ([`HeapLayout`], chosen with [`GcConfig::builder`]):
//! the verified model's slot **slab** with a global free list, and a
//! **segmented** heap — per-mutator TLABs refilled from a lock-free
//! segment stack, per-segment side mark bitmaps, and a lazy sweep that
//! takes segment reclamation off the collector's critical path. The
//! barriers, marking CAS, and handshake protocol are identical in both.
//!
//! # Quickstart
//!
//! ```
//! use otf_gc::{Collector, GcConfig};
//!
//! // `GcConfig::builder()` is the supported way to configure the
//! // runtime; see `HeapLayout` for the segmented heap.
//! let collector = Collector::new(GcConfig::builder().capacity(1024).max_fields(2).build());
//! let mut m = collector.register_mutator();
//!
//! // Build a two-element list a -> b; b stays live only through a.
//! let a = m.alloc(2)?;
//! let b = m.alloc(2)?;
//! m.store(a, 0, Some(b));
//! m.discard(b);
//!
//! // Run the collector concurrently; this thread answers handshakes.
//! collector.start();
//! while collector.stats().cycles() < 2 {
//!     m.safepoint();
//! }
//! collector.stop();
//!
//! assert_eq!(collector.live_objects(), 2); // a and b both survive
//! let b_again = m.load(a, 0).expect("b is still there");
//! # let _ = b_again;
//! # Ok::<(), otf_gc::AllocError>(())
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

/// Emits a [`gc_trace::EventKind`] variant on the calling thread's trace
/// track. With the `trace` feature off the expansion is empty — the
/// argument tokens are never even type-checked — so instrumented hot paths
/// carry zero cost in trace-less builds.
#[cfg(feature = "trace")]
macro_rules! trace_event {
    ($variant:ident $($rest:tt)*) => {
        gc_trace::emit(gc_trace::EventKind::$variant $($rest)*)
    };
}

#[cfg(not(feature = "trace"))]
macro_rules! trace_event {
    // Discard the (side-effect-free) field expressions so variables that
    // exist only to feed the tracer don't warn in trace-less builds.
    ($variant:ident { $($field:ident : $value:expr),* $(,)? }) => {
        { $(let _ = &$value;)* }
    };
    ($variant:ident { $($field:ident),* $(,)? }) => {
        { $(let _ = &$field;)* }
    };
    ($variant:ident) => {};
}

pub mod chaos;
pub mod collections;
mod collector;
mod config;
mod debug;
mod handle;
mod heap;
mod mutator;
mod stats;
mod sync;
mod worklist;

pub use chaos::{ChaosSite, FaultPlan};
pub use collections::{GcStack, GcTree};
pub use collector::{Collector, CycleOutcome, MutId};
pub use config::{ConfigError, GcConfig, GcConfigBuilder, HeapLayout};
pub use handle::Gc;
pub use heap::{AllocError, Phase};
pub use mutator::Mutator;
pub use stats::{CycleStats, GcStats};
