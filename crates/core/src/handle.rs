//! Garbage-collected object handles.

use std::fmt;

/// A handle to a heap object: a slot index paired with the slot's
/// allocation *epoch*.
///
/// The epoch is bumped every time a slot is freed, so a stale handle — one
/// that survived the collection of its object — can never be confused with
/// a handle to the slot's next tenant. With validation enabled (the
/// default; see [`GcConfig::validate`](crate::GcConfig)), every heap access
/// through a stale handle panics immediately: this is the runtime oracle
/// for the paper's safety property, and it is what the barrier-ablation
/// stress tests trip.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Gc(u64);

impl Gc {
    pub(crate) fn new(index: u32, epoch: u32) -> Self {
        Gc((u64::from(epoch) << 32) | u64::from(index))
    }

    /// The slot index within the heap.
    pub fn index(self) -> u32 {
        self.0 as u32
    }

    /// The allocation epoch this handle was issued under.
    pub fn epoch(self) -> u32 {
        (self.0 >> 32) as u32
    }

    /// Encodes an optional handle as a non-zero word for storage in an
    /// atomic field (`0` is `NULL`).
    pub(crate) fn encode(v: Option<Gc>) -> u64 {
        match v {
            None => 0,
            Some(g) => g.0.wrapping_add(1),
        }
    }

    /// Decodes a field word back to an optional handle.
    pub(crate) fn decode(word: u64) -> Option<Gc> {
        if word == 0 {
            None
        } else {
            Some(Gc(word.wrapping_sub(1)))
        }
    }
}

impl fmt::Debug for Gc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gc({}@e{})", self.index(), self.epoch())
    }
}

impl fmt::Display for Gc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj{}", self.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let g = Gc::new(7, 42);
        assert_eq!(g.index(), 7);
        assert_eq!(g.epoch(), 42);
        assert_eq!(Gc::decode(Gc::encode(Some(g))), Some(g));
        assert_eq!(Gc::decode(Gc::encode(None)), None);
    }

    #[test]
    fn zero_handle_is_distinct_from_null() {
        let g = Gc::new(0, 0);
        assert_ne!(Gc::encode(Some(g)), 0);
        assert_eq!(Gc::decode(Gc::encode(Some(g))), Some(g));
    }
}
