//! The object heap: a slot array with atomic headers and reference
//! fields, behind one of two interchangeable layouts.
//!
//! Every slot carries a packed header word (allocated bit, field count,
//! epoch) manipulated with atomic operations, an intrusive work-list
//! link, and a fixed-size array of atomic reference fields. The mark
//! flag's *interpretation* (marked vs unmarked) is relative to the
//! collector's current sense `f_M`, which flips each cycle — retained
//! objects never need their flag reset (Lamport's trick, §2 of the
//! paper).
//!
//! Two layouts implement the same interface (selected by
//! [`HeapLayout`]):
//!
//! * **Slab** — the verified model's shape: the mark flag lives in the
//!   header word, a single mutex-protected free list hands out slots,
//!   and the collector sweeps the whole slot array eagerly.
//! * **Segmented** — the slot array is partitioned into fixed-size
//!   segments. Mark state moves into per-segment side bitmaps (still
//!   sense-relative; the marking CAS becomes a CAS on a bitmap word
//!   with the identical unique-winner contract). Mutators refill
//!   private TLABs by claiming free bits from their current segment or
//!   popping whole segments off a lock-free Treiber stack. The sweep is
//!   *lazy*: the collector only publishes a generation-stamped garbage
//!   verdict ([`Heap::publish_sweep`]); allocating mutators (and the
//!   collector's start-of-cycle mop-up) reclaim segments on demand, so
//!   collector cycle time stops scaling with heap capacity.
//!
//! The lazy-sweep protocol relies on one invariant: **at most one
//! verdict is ever outstanding**. Senses alternate, so a segment
//! lagging two generations behind would see its old garbage as "marked"
//! in the latest sense and resurrect it. The collector enforces this by
//! mopping up all pending segments ([`Heap::complete_pending_sweeps`])
//! at the start of every cycle, before the sense flips.

use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};

use crate::sync::Mutex;

use crate::config::HeapLayout;
use crate::handle::Gc;

/// Sentinel for "no current segment" in a mutator's TLAB state.
pub(crate) const NO_SEG: u32 = u32::MAX;

/// The collector's control phase, shared racily with the mutators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[repr(u8)]
pub enum Phase {
    /// Between cycles; write barriers are inert.
    #[default]
    Idle = 0,
    /// Heap whitened; barriers being enabled.
    Init = 1,
    /// Tracing.
    Mark = 2,
    /// Reclaiming unmarked objects.
    Sweep = 3,
}

impl Phase {
    pub(crate) fn from_u8(v: u8) -> Phase {
        match v {
            0 => Phase::Idle,
            1 => Phase::Init,
            2 => Phase::Mark,
            3 => Phase::Sweep,
            other => unreachable!("invalid phase byte {other}"),
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Phase::Idle => "Idle",
            Phase::Init => "Init",
            Phase::Mark => "Mark",
            Phase::Sweep => "Sweep",
        };
        write!(f, "{s}")
    }
}

/// Allocation failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// No free slot: the heap is full. Let the collector finish a cycle
    /// (keep calling [`Mutator::safepoint`](crate::Mutator::safepoint)) and
    /// retry.
    HeapFull,
    /// The requested field count exceeds the heap's per-object bound.
    TooManyFields {
        /// Requested field count.
        requested: usize,
        /// The heap's bound.
        max: usize,
    },
    /// Graceful degradation's terminal verdict: the heap stayed full even
    /// after [`Mutator::alloc`](crate::Mutator::alloc) ran its emergency
    /// collection budget — the live set genuinely does not fit.
    Exhausted {
        /// Objects still live after the final emergency cycle.
        live: usize,
        /// Heap capacity in slots.
        capacity: usize,
        /// Emergency collection cycles attempted before giving up.
        cycles_tried: usize,
    },
}

impl AllocError {
    /// Whether retrying the allocation (after helping a collection cycle
    /// along) can succeed.
    ///
    /// `true` only for [`AllocError::HeapFull`]: the heap is full *right
    /// now*, but a cycle may reclaim garbage.
    /// [`AllocError::Exhausted`] is the terminal verdict of that very
    /// retry loop — the emergency budget was already spent and the live
    /// set genuinely does not fit — and
    /// [`AllocError::TooManyFields`] is a caller bug; retrying either
    /// unchanged cannot succeed.
    pub fn is_retryable(&self) -> bool {
        matches!(self, AllocError::HeapFull)
    }
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::HeapFull => write!(f, "heap full"),
            AllocError::TooManyFields { requested, max } => {
                write!(f, "object with {requested} fields exceeds bound {max}")
            }
            AllocError::Exhausted {
                live,
                capacity,
                cycles_tried,
            } => write!(
                f,
                "heap exhausted: {live}/{capacity} slots live after {cycles_tried} emergency collection cycle(s)"
            ),
        }
    }
}

impl Error for AllocError {}

/// Result of a marking attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MarkOutcome {
    /// Already marked in the current sense: nothing to do (the fast path).
    AlreadyMarked,
    /// This thread won the race and marked the object: it now owns the
    /// object's work-list link.
    Won,
    /// Another thread won the race (or the header changed underneath us).
    Lost,
}

// Header layout: bit 0 = mark flag, bit 1 = allocated,
// bits 2..10 = field count, bits 10..42 = epoch.
const FLAG_BIT: u64 = 1;
const ALLOC_BIT: u64 = 1 << 1;
const NFIELDS_SHIFT: u32 = 2;
const NFIELDS_MASK: u64 = 0xff << NFIELDS_SHIFT;
const EPOCH_SHIFT: u32 = 10;
const EPOCH_MASK: u64 = 0xffff_ffff << EPOCH_SHIFT;

fn pack(flag: bool, alloc: bool, nfields: usize, epoch: u32) -> u64 {
    u64::from(flag)
        | (u64::from(alloc) << 1)
        | ((nfields as u64) << NFIELDS_SHIFT)
        | (u64::from(epoch) << EPOCH_SHIFT)
}

fn hdr_flag(h: u64) -> bool {
    h & FLAG_BIT != 0
}

fn hdr_alloc(h: u64) -> bool {
    h & ALLOC_BIT != 0
}

fn hdr_nfields(h: u64) -> usize {
    ((h & NFIELDS_MASK) >> NFIELDS_SHIFT) as usize
}

fn hdr_epoch(h: u64) -> u32 {
    ((h & EPOCH_MASK) >> EPOCH_SHIFT) as u32
}

struct Slot {
    header: AtomicU64,
    /// Intrusive work-list link (encoded `Option<Gc>`); owned by the
    /// current mark-CAS winner, or by the sweep when the object is free.
    next: AtomicU64,
    fields: Box<[AtomicU64]>,
}

/// One fixed-size segment's side state. The slot data itself lives in
/// the shared `Heap::slots` array; a segment owns the bitmaps for its
/// contiguous slot range.
struct Segment {
    /// Sense-relative mark bits (the segmented home of the header's old
    /// `FLAG_BIT`). Authoritative for marking; the header flag is unused.
    marks: Box<[AtomicU64]>,
    /// Header-allocated bits: set last when publishing an object, with
    /// `Release`, so any reader that observes a live bit also observes
    /// the object's mark bit and initialised fields.
    live: Box<[AtomicU64]>,
    /// Reserved-or-live bits (`busy ⊇ live`): a TLAB claims free slots
    /// by CASing their busy bits on; reserved-but-unpublished slots are
    /// invisible to marking and sweeping.
    busy: Box<[AtomicU64]>,
    /// Last sweep generation applied to this segment. `swept_gen ==
    /// sweep_gen` means no verdict is pending here.
    swept_gen: AtomicU64,
    /// Treiber-stack link: successor segment index + 1, 0 = end.
    next_free: AtomicU32,
    /// Guard against double-pushing onto the free stack.
    on_stack: AtomicBool,
}

/// The segmented layout's shared state.
struct SegSpace {
    segment_slots: usize,
    segments: Box<[Segment]>,
    /// Treiber free-segment stack head: `tag << 32 | (index + 1)`, with
    /// index + 1 == 0 meaning empty. The tag increments on every
    /// successful CAS to defeat ABA.
    free_head: AtomicU64,
    /// Generation of the latest published garbage verdict.
    sweep_gen: AtomicU64,
    /// The sense (`f_M`) of that verdict: garbage is `live` with
    /// mark-bit != `sweep_sense`. Stored before `sweep_gen` is bumped.
    sweep_sense: AtomicBool,
}

impl SegSpace {
    /// Bitmap words per segment.
    fn words(&self) -> usize {
        self.segment_slots.div_ceil(64)
    }

    /// The valid-bit mask for bitmap word `w` of a segment.
    fn word_mask(&self, w: usize) -> u64 {
        let n = (self.segment_slots - w * 64).min(64);
        if n == 64 {
            u64::MAX
        } else {
            (1u64 << n) - 1
        }
    }

    /// Maps a global slot index to `(segment, word, bit mask)`.
    fn locate(&self, idx: u32) -> (usize, usize, u64) {
        let i = idx as usize;
        let local = i % self.segment_slots;
        (i / self.segment_slots, local / 64, 1u64 << (local % 64))
    }
}

enum LayoutData {
    Slab { free: Mutex<Vec<u32>> },
    Segmented(SegSpace),
}

/// Pushes segment `s` onto the lock-free free-segment stack (no-op if
/// it is already there). Lock-free Treiber push with an ABA tag in the
/// head word's upper half.
fn push_free_segment(sp: &SegSpace, s: usize) {
    let seg = &sp.segments[s];
    if seg.on_stack.swap(true, Ordering::AcqRel) {
        return; // already on the stack
    }
    loop {
        let head = sp.free_head.load(Ordering::Acquire);
        seg.next_free.store(head as u32, Ordering::Release);
        let tagged = ((head >> 32).wrapping_add(1) << 32) | (s as u64 + 1);
        if sp
            .free_head
            .compare_exchange_weak(head, tagged, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            return;
        }
    }
}

/// Pops a segment off the free-segment stack, or `None` when empty.
fn pop_free_segment(sp: &SegSpace) -> Option<usize> {
    loop {
        let head = sp.free_head.load(Ordering::Acquire);
        let idx1 = head as u32;
        if idx1 == 0 {
            return None;
        }
        let s = (idx1 - 1) as usize;
        let next = sp.segments[s].next_free.load(Ordering::Acquire);
        let tagged = ((head >> 32).wrapping_add(1) << 32) | u64::from(next);
        if sp
            .free_head
            .compare_exchange_weak(head, tagged, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            sp.segments[s].on_stack.store(false, Ordering::Release);
            return Some(s);
        }
    }
}

/// A segmented-layout gauge snapshot (see [`Heap::segment_gauges`]).
#[derive(Debug)]
pub(crate) struct SegmentGauges {
    /// Unavailable slots per segment, indexed by segment.
    pub(crate) busy: Vec<u32>,
    /// Segments currently on the free-segment stack.
    pub(crate) free_depth: u32,
    /// Slots per segment (every segment's full-scale value).
    pub(crate) segment_slots: u32,
}

/// What a TLAB refill did, for tracing and stats.
#[derive(Debug, Default)]
pub(crate) struct RefillInfo {
    /// Segment newly claimed as the mutator's current segment.
    pub(crate) claimed_segment: Option<u32>,
    /// Segments lazily swept along the way, with objects freed in each.
    pub(crate) swept: Vec<(u32, u32)>,
}

/// The shared object heap.
pub(crate) struct Heap {
    slots: Box<[Slot]>,
    layout: LayoutData,
    max_fields: usize,
    validate: bool,
}

impl Heap {
    pub(crate) fn new(
        capacity: usize,
        max_fields: usize,
        validate: bool,
        layout: HeapLayout,
    ) -> Self {
        let slots = (0..capacity)
            .map(|_| Slot {
                header: AtomicU64::new(pack(false, false, 0, 0)),
                next: AtomicU64::new(0),
                fields: (0..max_fields).map(|_| AtomicU64::new(0)).collect(),
            })
            .collect();
        let layout = match layout {
            HeapLayout::Slab => LayoutData::Slab {
                // Lowest-index-first allocation, matching the model.
                free: Mutex::new((0..capacity as u32).rev().collect()),
            },
            HeapLayout::Segmented { segment_slots, .. } => {
                debug_assert!(segment_slots > 0 && capacity.is_multiple_of(segment_slots));
                let nsegs = capacity / segment_slots;
                let words = segment_slots.div_ceil(64);
                let segments: Box<[Segment]> = (0..nsegs)
                    .map(|_| Segment {
                        marks: (0..words).map(|_| AtomicU64::new(0)).collect(),
                        live: (0..words).map(|_| AtomicU64::new(0)).collect(),
                        busy: (0..words).map(|_| AtomicU64::new(0)).collect(),
                        swept_gen: AtomicU64::new(0),
                        next_free: AtomicU32::new(0),
                        on_stack: AtomicBool::new(false),
                    })
                    .collect();
                let sp = SegSpace {
                    segment_slots,
                    segments,
                    free_head: AtomicU64::new(0),
                    sweep_gen: AtomicU64::new(0),
                    sweep_sense: AtomicBool::new(false),
                };
                // Seed the free stack with every (empty) segment,
                // highest-index first so pops hand out low segments
                // first, matching the slab's lowest-index-first order.
                let space = LayoutData::Segmented(sp);
                if let LayoutData::Segmented(ref sp) = space {
                    for s in (0..nsegs).rev() {
                        push_free_segment(sp, s);
                    }
                }
                space
            }
        };
        Heap {
            slots,
            layout,
            max_fields,
            validate,
        }
    }

    /// Whether this heap uses the segmented layout.
    pub(crate) fn is_segmented(&self) -> bool {
        matches!(self.layout, LayoutData::Segmented(_))
    }

    fn segspace(&self) -> &SegSpace {
        match &self.layout {
            LayoutData::Segmented(sp) => sp,
            LayoutData::Slab { .. } => unreachable!("segmented-only path on a slab heap"),
        }
    }

    pub(crate) fn capacity(&self) -> usize {
        self.slots.len()
    }

    fn slot(&self, g: Gc) -> &Slot {
        &self.slots[g.index() as usize]
    }

    /// Panics if `g` no longer refers to a live object — the
    /// use-after-free oracle.
    ///
    /// # Panics
    ///
    /// Panics when validation is enabled and the slot is unallocated or
    /// from a different epoch.
    pub(crate) fn check(&self, g: Gc) {
        if !self.validate {
            return;
        }
        let h = self.slot(g).header.load(Ordering::Acquire);
        assert!(
            hdr_alloc(h) && hdr_epoch(h) == g.epoch(),
            "use after free: {g:?} accessed, slot epoch is {} (allocated: {})",
            hdr_epoch(h),
            hdr_alloc(h),
        );
    }

    /// Allocates an object with `nfields` fields and mark flag `fa`.
    ///
    /// On the segmented layout this is the slow path (a one-slot TLAB
    /// refill per call); mutators hold a real TLAB instead.
    pub(crate) fn alloc(&self, nfields: usize, fa: bool) -> Result<Gc, AllocError> {
        if nfields > self.max_fields {
            return Err(AllocError::TooManyFields {
                requested: nfields,
                max: self.max_fields,
            });
        }
        let free = match &self.layout {
            LayoutData::Slab { free } => free,
            LayoutData::Segmented(_) => {
                let mut cur = NO_SEG;
                let (got, _) = self.refill_tlab(&mut cur, 1);
                let idx = *got.first().ok_or(AllocError::HeapFull)?;
                return self.alloc_from(idx, nfields, fa);
            }
        };
        let idx = free.lock().pop().ok_or(AllocError::HeapFull)?;
        let slot = &self.slots[idx as usize];
        let epoch = hdr_epoch(slot.header.load(Ordering::Acquire));
        for f in slot.fields.iter() {
            f.store(0, Ordering::Release);
        }
        slot.next.store(0, Ordering::Release);
        // Publishing the header last: the fields are NULL-initialised
        // before the object can be observed allocated.
        slot.header
            .store(pack(fa, true, nfields, epoch), Ordering::Release);
        Ok(Gc::new(idx, epoch))
    }

    /// Reserves up to `n` free slots for a thread-local allocation pool
    /// (the §4 extension: "mutators gather pools of unallocated references
    /// from which to perform fine-grained allocation without
    /// synchronizing"). Reserved slots stay unallocated (the sweep skips
    /// them) until [`alloc_from`](Heap::alloc_from) publishes an object.
    /// Slab layout only; the segmented layout's TLABs subsume pooling
    /// (an empty grab here keeps misconfigured callers on the direct
    /// path).
    pub(crate) fn grab_pool(&self, n: usize) -> Vec<u32> {
        let LayoutData::Slab { free } = &self.layout else {
            return Vec::new();
        };
        let mut free = free.lock();
        let take = n.min(free.len());
        let at = free.len() - take;
        free.split_off(at)
    }

    /// Returns unused pooled slots to the global free list (mutator
    /// deregistration). Slab layout only; segmented mutators call
    /// [`release_reserved`](Heap::release_reserved).
    pub(crate) fn return_pool(&self, pool: Vec<u32>) {
        let LayoutData::Slab { free } = &self.layout else {
            debug_assert!(pool.is_empty(), "segmented TLAB returned as a pool");
            return;
        };
        free.lock().extend(pool);
    }

    /// Allocates an object in a pre-reserved slot — no lock, no fence: the
    /// fields are initialised before the header store publishes the object,
    /// which is exactly the TSO argument of §4 ("publishing the new
    /// reference to other mutators can occur only after the prior
    /// initializing stores have been flushed" — FIFO buffers preserve the
    /// order).
    pub(crate) fn alloc_from(&self, idx: u32, nfields: usize, fa: bool) -> Result<Gc, AllocError> {
        if nfields > self.max_fields {
            return Err(AllocError::TooManyFields {
                requested: nfields,
                max: self.max_fields,
            });
        }
        let slot = &self.slots[idx as usize];
        let h = slot.header.load(Ordering::Acquire);
        debug_assert!(!hdr_alloc(h), "pooled slot must be free");
        let epoch = hdr_epoch(h);
        for f in slot.fields.iter() {
            f.store(0, Ordering::Release);
        }
        slot.next.store(0, Ordering::Release);
        match &self.layout {
            LayoutData::Slab { .. } => {
                slot.header
                    .store(pack(fa, true, nfields, epoch), Ordering::Release);
            }
            LayoutData::Segmented(sp) => {
                // Publish order: mark bit first, then header, then the
                // live bit with `Release`. A sweeper only considers
                // slots whose live bit it observes (`Acquire`), so it
                // can never see a freshly allocated object without its
                // allocation-colour mark bit — the segmented analogue
                // of the slab's "header store last" TSO argument.
                let (s, w, bit) = sp.locate(idx);
                let seg = &sp.segments[s];
                debug_assert!(
                    seg.busy[w].load(Ordering::Acquire) & bit != 0,
                    "publishing an unreserved slot"
                );
                if fa {
                    seg.marks[w].fetch_or(bit, Ordering::SeqCst);
                } else {
                    seg.marks[w].fetch_and(!bit, Ordering::SeqCst);
                }
                slot.header
                    .store(pack(false, true, nfields, epoch), Ordering::Release);
                seg.live[w].fetch_or(bit, Ordering::Release);
            }
        }
        Ok(Gc::new(idx, epoch))
    }

    /// Frees the slot at `idx`, bumping its epoch so stale handles are
    /// detectable. Caller (the sweep) guarantees the object is unmarked and
    /// unreachable.
    pub(crate) fn free_slot(&self, idx: u32) {
        let slot = &self.slots[idx as usize];
        let h = slot.header.load(Ordering::Acquire);
        debug_assert!(hdr_alloc(h), "double free of slot {idx}");
        let epoch = hdr_epoch(h).wrapping_add(1);
        slot.header
            .store(pack(false, false, 0, epoch), Ordering::Release);
        match &self.layout {
            LayoutData::Slab { free } => free.lock().push(idx),
            LayoutData::Segmented(sp) => {
                // Clear live before busy: a harvester claims a slot only
                // once its busy bit drops, by which point the freed
                // header store above is visible through the release
                // sequence on the busy word.
                let (s, w, bit) = sp.locate(idx);
                sp.segments[s].live[w].fetch_and(!bit, Ordering::AcqRel);
                sp.segments[s].busy[w].fetch_and(!bit, Ordering::Release);
                push_free_segment(sp, s);
            }
        }
    }

    /// Number of fields of the object at `g`.
    pub(crate) fn nfields(&self, g: Gc) -> usize {
        self.check(g);
        hdr_nfields(self.slot(g).header.load(Ordering::Acquire))
    }

    /// Whether the object's flag equals `sense` (Figure 5 line 3's
    /// unsynchronised load).
    pub(crate) fn flag_equals(&self, g: Gc, sense: bool) -> bool {
        self.check(g);
        match &self.layout {
            LayoutData::Slab { .. } => {
                hdr_flag(self.slot(g).header.load(Ordering::Relaxed)) == sense
            }
            LayoutData::Segmented(sp) => {
                let (s, w, bit) = sp.locate(g.index());
                (sp.segments[s].marks[w].load(Ordering::Relaxed) & bit != 0) == sense
            }
        }
    }

    /// The marking CAS (Figure 5 lines 5–11): try to take the flag from
    /// `!fm` to `fm` atomically. With `cas = false` (ablation) the update
    /// is an unsynchronised read-then-write and always claims victory.
    pub(crate) fn try_mark(&self, g: Gc, fm: bool, cas: bool) -> MarkOutcome {
        self.check(g);
        let slot = self.slot(g);
        let h = slot.header.load(Ordering::Acquire);
        if !hdr_alloc(h) || hdr_epoch(h) != g.epoch() {
            return MarkOutcome::Lost; // freed under us (unsafe ablations only)
        }
        match &self.layout {
            LayoutData::Slab { .. } => {
                if hdr_flag(h) == fm {
                    return MarkOutcome::AlreadyMarked;
                }
                let marked = (h & !FLAG_BIT) | u64::from(fm);
                if cas {
                    match slot.header.compare_exchange(
                        h,
                        marked,
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                    ) {
                        Ok(_) => MarkOutcome::Won,
                        Err(_) => MarkOutcome::Lost, // some other thread marked it
                    }
                } else {
                    // Ablation: racy read-modify-write; concurrent markers can
                    // both observe unmarked and both claim the win.
                    slot.header.store(marked, Ordering::Relaxed);
                    MarkOutcome::Won
                }
            }
            LayoutData::Segmented(sp) => {
                // Same CAS contract on a bitmap word: exactly one thread
                // transitions the bit, and only bit-level (not word-level)
                // interference decides the race — a CAS that fails because
                // a *different* bit changed just retries.
                let (s, w, bit) = sp.locate(g.index());
                let word = &sp.segments[s].marks[w];
                let mut cur = word.load(Ordering::SeqCst);
                if (cur & bit != 0) == fm {
                    return MarkOutcome::AlreadyMarked;
                }
                if !cas {
                    // Ablation: racy read-modify-write, as above.
                    let marked = if fm { cur | bit } else { cur & !bit };
                    word.store(marked, Ordering::Relaxed);
                    return MarkOutcome::Won;
                }
                loop {
                    let marked = if fm { cur | bit } else { cur & !bit };
                    match word.compare_exchange(cur, marked, Ordering::SeqCst, Ordering::SeqCst) {
                        Ok(_) => return MarkOutcome::Won,
                        Err(actual) => {
                            if (actual & bit != 0) == fm {
                                return MarkOutcome::Lost; // some other thread marked it
                            }
                            cur = actual; // neighbouring bit changed; retry
                        }
                    }
                }
            }
        }
    }

    /// Loads a reference field.
    pub(crate) fn load_field(&self, g: Gc, field: usize) -> Option<Gc> {
        self.check(g);
        assert!(field < self.nfields(g), "field {field} out of bounds");
        Gc::decode(self.slot(g).fields[field].load(Ordering::Acquire))
    }

    /// Stores a reference field (the bare store of Figure 6 line 11; the
    /// caller has already run the barriers).
    pub(crate) fn store_field(&self, g: Gc, field: usize, value: Option<Gc>) {
        self.check(g);
        assert!(field < self.nfields(g), "field {field} out of bounds");
        self.slot(g).fields[field].store(Gc::encode(value), Ordering::Release);
    }

    /// The intrusive work-list link of `g`.
    pub(crate) fn link(&self, g: Gc) -> Option<Gc> {
        Gc::decode(self.slot(g).next.load(Ordering::Acquire))
    }

    /// Sets the intrusive work-list link of `g`. Only the mark-CAS winner
    /// (or the single-threaded sweep) may call this.
    pub(crate) fn set_link(&self, g: Gc, next: Option<Gc>) {
        self.slot(g).next.store(Gc::encode(next), Ordering::Release);
    }

    /// Abort recovery: force every allocated slot's flag to `fm` (all
    /// black in the current sense), returning how many were repainted.
    ///
    /// An aborted cycle leaves the heap two-toned — stale marks in a sense
    /// a *later* flip will mistake for "already marked", truncating the
    /// trace above still-white children. The collector calls this under
    /// handshake cover (every mutator synchronised, phase idle, `f_A ==
    /// f_M`) so the only concurrent header writers are allocations, which
    /// paint the same colour.
    pub(crate) fn normalize_marks(&self, fm: bool) -> usize {
        match &self.layout {
            LayoutData::Slab { .. } => {
                let mut repainted = 0;
                for slot in self.slots.iter() {
                    let h = slot.header.load(Ordering::Acquire);
                    if hdr_alloc(h) && hdr_flag(h) != fm {
                        slot.header
                            .store((h & !FLAG_BIT) | u64::from(fm), Ordering::Release);
                        repainted += 1;
                    }
                }
                repainted
            }
            LayoutData::Segmented(sp) => {
                // Word-parallel repaint. The atomic fetch ops (rather
                // than load-then-store) matter: a concurrent allocation
                // CASes its own mark bit between our load and store,
                // and a blind store would erase it — turning a live
                // object "already marked" at the next flip and
                // truncating the trace above it. fetch_or/fetch_and
                // only touch the bits in `live_w`, and any slot
                // published after we load `live` set its own mark bit
                // to the same colour (`f_A == f_M` under handshake
                // cover).
                let mut repainted = 0usize;
                for seg in sp.segments.iter() {
                    for w in 0..sp.words() {
                        let live_w = seg.live[w].load(Ordering::Acquire);
                        if live_w == 0 {
                            continue;
                        }
                        let old = if fm {
                            seg.marks[w].fetch_or(live_w, Ordering::SeqCst)
                        } else {
                            seg.marks[w].fetch_and(!live_w, Ordering::SeqCst)
                        };
                        let changed = if fm { live_w & !old } else { live_w & old };
                        repainted += changed.count_ones() as usize;
                    }
                }
                repainted
            }
        }
    }

    /// Sweep support: the header view of slot `idx` as
    /// `(allocated, flag, epoch)`.
    pub(crate) fn slot_status(&self, idx: u32) -> (bool, bool, u32) {
        let h = self.slots[idx as usize].header.load(Ordering::Acquire);
        let flag = match &self.layout {
            LayoutData::Slab { .. } => hdr_flag(h),
            LayoutData::Segmented(sp) => {
                let (s, w, bit) = sp.locate(idx);
                sp.segments[s].marks[w].load(Ordering::Acquire) & bit != 0
            }
        };
        (hdr_alloc(h), flag, hdr_epoch(h))
    }

    /// Number of live objects — O(capacity) on the slab,
    /// O(capacity / 64) on the segmented layout.
    ///
    /// On the segmented layout this is the *logical* live count: objects
    /// condemned by the published verdict but not yet lazily swept are
    /// excluded, so the number agrees with the slab's eager sweep at the
    /// same point in the cycle.
    pub(crate) fn live(&self) -> usize {
        match &self.layout {
            LayoutData::Slab { .. } => (0..self.capacity() as u32)
                .filter(|&i| self.slot_status(i).0)
                .count(),
            LayoutData::Segmented(sp) => {
                let gen = sp.sweep_gen.load(Ordering::Acquire);
                let sense = sp.sweep_sense.load(Ordering::Acquire);
                let mut n = 0usize;
                for seg in sp.segments.iter() {
                    let pending = seg.swept_gen.load(Ordering::Acquire) != gen;
                    for w in 0..sp.words() {
                        let live_w = seg.live[w].load(Ordering::Acquire);
                        let counted = if pending {
                            let marks_w = seg.marks[w].load(Ordering::Acquire);
                            live_w & if sense { marks_w } else { !marks_w }
                        } else {
                            live_w
                        };
                        n += counted.count_ones() as usize;
                    }
                }
                n
            }
        }
    }

    /// Fraction of the heap's slots unavailable for allocation, in
    /// `[0.0, 1.0]` — the admission-control and pacing signal.
    ///
    /// "Unavailable" means not claimable by an allocator right now or
    /// after applying the already-published sweep verdict: live objects
    /// and pool/TLAB-reserved slots count; condemned-but-not-yet-lazily-
    /// swept garbage does *not* (it is one `refill_tlab` away from being
    /// claimable, and counting it would make the pacer chase occupancy
    /// that a cycle already resolved). Slab: O(1) from the free-list
    /// length. Segmented: one O(capacity / 64) popcount pass.
    pub(crate) fn occupancy(&self) -> f64 {
        let cap = self.capacity();
        if cap == 0 {
            return 1.0;
        }
        let available = match &self.layout {
            LayoutData::Slab { free } => free.lock().len(),
            LayoutData::Segmented(sp) => {
                let gen = sp.sweep_gen.load(Ordering::Acquire);
                let sense = sp.sweep_sense.load(Ordering::Acquire);
                let mut n = 0usize;
                for seg in sp.segments.iter() {
                    let pending = seg.swept_gen.load(Ordering::Acquire) != gen;
                    for w in 0..sp.words() {
                        let busy_w = seg.busy[w].load(Ordering::Acquire);
                        let mut avail = !busy_w & sp.word_mask(w);
                        if pending {
                            // Condemned by the published verdict: counts
                            // as available even though still busy.
                            let live_w = seg.live[w].load(Ordering::Acquire);
                            let marks_w = seg.marks[w].load(Ordering::Acquire);
                            avail |= live_w & if sense { !marks_w } else { marks_w };
                        }
                        n += avail.count_ones() as usize;
                    }
                }
                n
            }
        };
        1.0 - available as f64 / cap as f64
    }

    /// A gauge snapshot of the segmented layout for tracing: per-segment
    /// unavailable-slot counts (the same availability rule as
    /// [`occupancy`](Heap::occupancy), so a condemned-but-unswept slot
    /// reads as free) plus the free-segment-stack depth. `None` on the
    /// slab layout, whose single occupancy counter already tells the
    /// whole story. Racy by design — each word is read atomically but
    /// the snapshot is not a consistent cut, which is fine for a gauge.
    pub(crate) fn segment_gauges(&self) -> Option<SegmentGauges> {
        let LayoutData::Segmented(sp) = &self.layout else {
            return None;
        };
        let gen = sp.sweep_gen.load(Ordering::Acquire);
        let sense = sp.sweep_sense.load(Ordering::Acquire);
        let mut busy = Vec::with_capacity(sp.segments.len());
        let mut free_depth = 0u32;
        for seg in sp.segments.iter() {
            if seg.on_stack.load(Ordering::Acquire) {
                free_depth += 1;
            }
            let pending = seg.swept_gen.load(Ordering::Acquire) != gen;
            let mut n = 0u32;
            for w in 0..sp.words() {
                let busy_w = seg.busy[w].load(Ordering::Acquire);
                let mut unavailable = busy_w & sp.word_mask(w);
                if pending {
                    let live_w = seg.live[w].load(Ordering::Acquire);
                    let marks_w = seg.marks[w].load(Ordering::Acquire);
                    unavailable &= !(live_w & if sense { !marks_w } else { marks_w });
                }
                n += unavailable.count_ones();
            }
            busy.push(n);
        }
        Some(SegmentGauges {
            busy,
            free_depth,
            segment_slots: sp.segment_slots as u32,
        })
    }

    /// A snapshot of the global free list (integrity checking only — races
    /// with concurrent allocation, so callers must quiesce first). Empty
    /// on the segmented layout, whose free state lives in the bitmaps
    /// (see [`debug_verify`](Heap::debug_verify)).
    pub(crate) fn free_snapshot(&self) -> Vec<u32> {
        match &self.layout {
            LayoutData::Slab { free } => free.lock().clone(),
            LayoutData::Segmented(_) => Vec::new(),
        }
    }
}

/// Segmented-layout operations: TLAB refill, lazy sweep, verdict
/// publication. All panic (via `segspace`) on a slab heap except
/// `complete_pending_sweeps` and `release_reserved`, which no-op.
impl Heap {
    /// Refills a mutator's TLAB with up to `want` reserved slots,
    /// updating `cur_seg` (the mutator's current segment, `NO_SEG` for
    /// none). In order: harvest free bits from the current segment, pop
    /// the lock-free free-segment stack, then fall back to a full
    /// segment scan — lazily sweeping any pending segment encountered.
    /// An empty result means the heap is genuinely out of unreserved
    /// slots ([`AllocError::HeapFull`]).
    pub(crate) fn refill_tlab(&self, cur_seg: &mut u32, want: usize) -> (Vec<u32>, RefillInfo) {
        let sp = self.segspace();
        let mut info = RefillInfo::default();
        let mut got = Vec::with_capacity(want);
        if *cur_seg != NO_SEG {
            let s = *cur_seg as usize;
            if let Some(freed) = self.lazy_sweep_segment(s) {
                info.swept.push((s as u32, freed));
            }
            self.harvest(s, want, &mut got);
            if got.len() >= want {
                return (got, info);
            }
        }
        while got.len() < want {
            let Some(s) = pop_free_segment(sp) else {
                break;
            };
            if let Some(freed) = self.lazy_sweep_segment(s) {
                info.swept.push((s as u32, freed));
            }
            let before = got.len();
            self.harvest(s, want, &mut got);
            if got.len() > before {
                *cur_seg = s as u32;
                info.claimed_segment = Some(s as u32);
            }
            // A popped segment that yielded nothing (or was drained
            // completely just now) stays off the stack until a sweep or
            // release gives it free space again.
        }
        if got.len() >= want {
            return (got, info);
        }
        // Completeness backstop: scan every segment, sweeping pending
        // verdicts as we go. Only after this comes up dry is the heap
        // truly full.
        let nsegs = sp.segments.len();
        let start = if *cur_seg == NO_SEG {
            0
        } else {
            (*cur_seg as usize + 1) % nsegs
        };
        for off in 0..nsegs {
            if got.len() >= want {
                break;
            }
            let s = (start + off) % nsegs;
            if let Some(freed) = self.lazy_sweep_segment(s) {
                info.swept.push((s as u32, freed));
            }
            let before = got.len();
            self.harvest(s, want, &mut got);
            if got.len() > before {
                *cur_seg = s as u32;
                info.claimed_segment = Some(s as u32);
            }
        }
        if got.is_empty() {
            *cur_seg = NO_SEG;
        }
        (got, info)
    }

    /// Claims up to `want - out.len()` free slots from segment `s` by
    /// CASing their busy bits on, appending the claimed indices to
    /// `out`.
    fn harvest(&self, s: usize, want: usize, out: &mut Vec<u32>) {
        let sp = self.segspace();
        let seg = &sp.segments[s];
        for w in 0..sp.words() {
            let valid = sp.word_mask(w);
            'word: loop {
                let need = want - out.len();
                if need == 0 {
                    return;
                }
                let busy = seg.busy[w].load(Ordering::Acquire);
                let avail = !busy & valid;
                if avail == 0 {
                    break 'word;
                }
                // Take the lowest `need` available bits.
                let mut claim = 0u64;
                let mut rest = avail;
                for _ in 0..need {
                    if rest == 0 {
                        break;
                    }
                    let lowest = rest & rest.wrapping_neg();
                    claim |= lowest;
                    rest &= !lowest;
                }
                if seg.busy[w]
                    .compare_exchange(busy, busy | claim, Ordering::AcqRel, Ordering::Acquire)
                    .is_err()
                {
                    continue 'word; // another claimant touched the word
                }
                let base = (s * sp.segment_slots + w * 64) as u32;
                while claim != 0 {
                    out.push(base + claim.trailing_zeros());
                    claim &= claim - 1;
                }
            }
        }
    }

    /// Returns reserved-but-unused TLAB slots (mutator deregistration),
    /// re-advertising their segments on the free stack.
    pub(crate) fn release_reserved(&self, slots: &[u32]) {
        let LayoutData::Segmented(sp) = &self.layout else {
            debug_assert!(slots.is_empty(), "slab pool released as a TLAB");
            return;
        };
        let mut touched = Vec::new();
        for &idx in slots {
            let (s, w, bit) = sp.locate(idx);
            debug_assert_eq!(
                sp.segments[s].live[w].load(Ordering::Acquire) & bit,
                0,
                "releasing a published slot"
            );
            sp.segments[s].busy[w].fetch_and(!bit, Ordering::Release);
            if touched.last() != Some(&s) {
                touched.push(s);
            }
        }
        touched.dedup();
        for s in touched {
            push_free_segment(sp, s);
        }
    }

    /// Applies the published garbage verdict to segment `s` if it is
    /// still pending, freeing condemned slots. Returns `None` when
    /// nothing was pending (or another thread claimed the sweep), else
    /// the number of objects freed by *this* call.
    ///
    /// The generation CAS makes the sweeper unique per (segment,
    /// generation); the handshake structure guarantees the sweep
    /// finishes before the next verdict is published (a mutator inside
    /// a refill cannot acknowledge handshakes, and the collector
    /// publishes only after several of them).
    fn lazy_sweep_segment(&self, s: usize) -> Option<u32> {
        let sp = self.segspace();
        let seg = &sp.segments[s];
        let gen = sp.sweep_gen.load(Ordering::Acquire);
        let prev = seg.swept_gen.load(Ordering::Acquire);
        if prev == gen
            || seg
                .swept_gen
                .compare_exchange(prev, gen, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
        {
            return None;
        }
        let sense = sp.sweep_sense.load(Ordering::Acquire);
        let mut freed = 0u32;
        for w in 0..sp.words() {
            // Live first, then marks: the allocation path sets the mark
            // bit before the live bit, so any slot whose live bit we
            // observe has its mark bit in place.
            let live_w = seg.live[w].load(Ordering::Acquire);
            let marks_w = seg.marks[w].load(Ordering::Acquire);
            let garbage = live_w & if sense { !marks_w } else { marks_w };
            if garbage == 0 {
                continue;
            }
            let base = s * sp.segment_slots + w * 64;
            let mut g = garbage;
            while g != 0 {
                let b = g.trailing_zeros() as usize;
                g &= g - 1;
                let slot = &self.slots[base + b];
                let h = slot.header.load(Ordering::Acquire);
                debug_assert!(hdr_alloc(h), "sweeping an unallocated slot");
                slot.header.store(
                    pack(false, false, 0, hdr_epoch(h).wrapping_add(1)),
                    Ordering::Release,
                );
                freed += 1;
            }
            seg.live[w].fetch_and(!garbage, Ordering::AcqRel);
            seg.busy[w].fetch_and(!garbage, Ordering::Release);
        }
        Some(freed)
    }

    /// Whether segment `s` currently has unreserved slots.
    fn segment_has_free(&self, s: usize) -> bool {
        let sp = self.segspace();
        let seg = &sp.segments[s];
        (0..sp.words()).any(|w| !seg.busy[w].load(Ordering::Acquire) & sp.word_mask(w) != 0)
    }

    /// Collector mop-up, run at the start of every cycle before the
    /// sense flips: applies the outstanding verdict to every pending
    /// segment and re-advertises segments with free space. This is what
    /// upholds the at-most-one-outstanding-verdict invariant the whole
    /// lazy-sweep scheme rests on. Returns `(segments swept, objects
    /// freed)`. No-op on the slab layout.
    pub(crate) fn complete_pending_sweeps(&self) -> (usize, usize) {
        let LayoutData::Segmented(sp) = &self.layout else {
            return (0, 0);
        };
        let mut segs = 0usize;
        let mut freed = 0usize;
        for s in 0..sp.segments.len() {
            if let Some(f) = self.lazy_sweep_segment(s) {
                segs += 1;
                freed += f as usize;
            }
            if self.segment_has_free(s) {
                push_free_segment(sp, s);
            }
        }
        (segs, freed)
    }

    /// Publishes this cycle's garbage verdict (end of the Mark phase,
    /// `f_M == fm`): objects whose mark bit differs from `fm` are
    /// condemned. O(capacity / 64) — one popcount pass — instead of the
    /// slab's O(capacity) free-slot loop; the actual freeing happens
    /// lazily. Returns the exact number of condemned objects (exact
    /// because the mop-up guaranteed no older verdict was pending, and
    /// concurrent allocations are born marked in the current sense).
    pub(crate) fn publish_sweep(&self, fm: bool) -> usize {
        let sp = self.segspace();
        let gen = sp.sweep_gen.load(Ordering::Acquire);
        let mut condemned = 0usize;
        let mut advertise = Vec::new();
        for (s, seg) in sp.segments.iter().enumerate() {
            debug_assert_eq!(
                seg.swept_gen.load(Ordering::Acquire),
                gen,
                "publishing over a pending verdict (mop-up missed segment {s})"
            );
            let mut has_space = false;
            for w in 0..sp.words() {
                let live_w = seg.live[w].load(Ordering::Acquire);
                let marks_w = seg.marks[w].load(Ordering::Acquire);
                let garbage = live_w & if fm { !marks_w } else { marks_w };
                condemned += garbage.count_ones() as usize;
                if garbage != 0 || !seg.busy[w].load(Ordering::Acquire) & sp.word_mask(w) != 0 {
                    has_space = true;
                }
            }
            if has_space {
                advertise.push(s);
            }
        }
        // Sense before generation: a reader that acquires the new
        // generation is guaranteed to read the matching sense.
        sp.sweep_sense.store(fm, Ordering::Release);
        sp.sweep_gen.fetch_add(1, Ordering::Release);
        // Advertise after the bump so poppers apply the fresh verdict.
        for s in advertise {
            push_free_segment(sp, s);
        }
        condemned
    }

    /// Structural integrity check (both layouts). The caller must have
    /// quiesced the heap (collector idle, mutators at safepoints).
    pub(crate) fn debug_verify(&self) -> Result<(), String> {
        match &self.layout {
            LayoutData::Slab { .. } => {
                let free = self.free_snapshot();
                let mut seen = std::collections::HashSet::new();
                for &idx in &free {
                    if idx as usize >= self.capacity() {
                        return Err(format!("free-list entry {idx} out of bounds"));
                    }
                    if !seen.insert(idx) {
                        return Err(format!("free-list entry {idx} duplicated"));
                    }
                    if self.slot_status(idx).0 {
                        return Err(format!("free-list entry {idx} is allocated"));
                    }
                }
                if self.live() + free.len() > self.capacity() {
                    return Err("live + free exceeds capacity".into());
                }
                Ok(())
            }
            LayoutData::Segmented(sp) => {
                for (s, seg) in sp.segments.iter().enumerate() {
                    for w in 0..sp.words() {
                        let valid = sp.word_mask(w);
                        let live_w = seg.live[w].load(Ordering::Acquire);
                        let busy_w = seg.busy[w].load(Ordering::Acquire);
                        let marks_w = seg.marks[w].load(Ordering::Acquire);
                        if live_w & !valid != 0 || busy_w & !valid != 0 || marks_w & !valid != 0 {
                            return Err(format!("segment {s} word {w}: bits beyond capacity"));
                        }
                        if live_w & !busy_w != 0 {
                            return Err(format!("segment {s} word {w}: live bit without busy bit"));
                        }
                        let base = s * sp.segment_slots + w * 64;
                        for b in 0..64usize {
                            let bit = 1u64 << b;
                            if bit & valid == 0 {
                                break;
                            }
                            let alloc = self.slot_status((base + b) as u32).0;
                            if alloc != (live_w & bit != 0) {
                                return Err(format!(
                                    "slot {}: header allocated={} but live bit={}",
                                    base + b,
                                    alloc,
                                    live_w & bit != 0
                                ));
                            }
                        }
                    }
                }
                // Walk the free stack: in-bounds, acyclic, flags agree.
                let nsegs = sp.segments.len();
                let mut visited = vec![false; nsegs];
                let mut cursor = sp.free_head.load(Ordering::Acquire) as u32;
                let mut steps = 0usize;
                while cursor != 0 {
                    let s = (cursor - 1) as usize;
                    if s >= nsegs {
                        return Err(format!("free-stack entry {s} out of bounds"));
                    }
                    if visited[s] {
                        return Err(format!("free-stack cycle through segment {s}"));
                    }
                    visited[s] = true;
                    if !sp.segments[s].on_stack.load(Ordering::Acquire) {
                        return Err(format!("segment {s} on the stack without its flag"));
                    }
                    cursor = sp.segments[s].next_free.load(Ordering::Acquire);
                    steps += 1;
                    if steps > nsegs {
                        return Err("free-stack longer than the segment count".into());
                    }
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap() -> Heap {
        Heap::new(4, 2, true, HeapLayout::Slab)
    }

    #[test]
    fn alloc_initialises_and_frees_bump_epoch() {
        let h = heap();
        let a = h.alloc(2, false).unwrap();
        assert_eq!(a.index(), 0);
        assert_eq!(h.nfields(a), 2);
        assert_eq!(h.load_field(a, 0), None);
        h.free_slot(a.index());
        let b = h.alloc(1, true).unwrap();
        // The slot is reused under a new epoch.
        assert_eq!(b.index(), 0);
        assert_eq!(b.epoch(), a.epoch() + 1);
    }

    #[test]
    #[should_panic(expected = "use after free")]
    fn stale_handle_trips_validation() {
        let h = heap();
        let a = h.alloc(1, false).unwrap();
        h.free_slot(a.index());
        let _ = h.load_field(a, 0);
    }

    #[test]
    fn heap_full_reports_error() {
        let h = heap();
        for _ in 0..4 {
            h.alloc(0, false).unwrap();
        }
        assert_eq!(h.alloc(0, false), Err(AllocError::HeapFull));
    }

    #[test]
    fn field_bound_is_enforced() {
        let h = heap();
        assert!(matches!(
            h.alloc(3, false),
            Err(AllocError::TooManyFields {
                requested: 3,
                max: 2
            })
        ));
    }

    #[test]
    fn mark_cas_has_unique_winner() {
        let h = heap();
        let a = h.alloc(0, false).unwrap(); // flag = false
        assert_eq!(h.try_mark(a, true, true), MarkOutcome::Won);
        assert_eq!(h.try_mark(a, true, true), MarkOutcome::AlreadyMarked);
        assert!(h.flag_equals(a, true));
        // Flipping the sense makes it "unmarked" again without a write.
        assert!(!h.flag_equals(a, false));
        assert_eq!(h.try_mark(a, false, true), MarkOutcome::Won);
    }

    #[test]
    fn fields_store_and_load_handles() {
        let h = heap();
        let a = h.alloc(2, false).unwrap();
        let b = h.alloc(1, false).unwrap();
        h.store_field(a, 0, Some(b));
        h.store_field(a, 1, Some(a));
        assert_eq!(h.load_field(a, 0), Some(b));
        assert_eq!(h.load_field(a, 1), Some(a));
        h.store_field(a, 0, None);
        assert_eq!(h.load_field(a, 0), None);
    }

    #[test]
    fn pools_reserve_and_allocate_without_the_global_lock() {
        let h = heap();
        let pool = h.grab_pool(3);
        assert_eq!(pool.len(), 3);
        // The global free list now has 1 slot; direct alloc still works.
        let direct = h.alloc(0, false).unwrap();
        assert!(h.alloc(0, false).is_err(), "rest of the heap is pooled");
        // Pool allocations publish objects at the reserved slots.
        let g = h.alloc_from(pool[0], 1, true).unwrap();
        assert!(h.flag_equals(g, true));
        assert_eq!(h.nfields(g), 1);
        assert_ne!(g.index(), direct.index());
        // Returning the rest re-enables direct allocation.
        h.return_pool(pool[1..].to_vec());
        assert!(h.alloc(0, false).is_ok());
    }

    #[test]
    fn pool_grab_is_bounded_by_free_space() {
        let h = heap();
        let _a = h.alloc(0, false).unwrap();
        let pool = h.grab_pool(10);
        assert_eq!(pool.len(), 3);
        assert!(h.grab_pool(1).is_empty());
    }

    #[test]
    fn live_counts_allocated_slots() {
        let h = heap();
        assert_eq!(h.live(), 0);
        let a = h.alloc(0, false).unwrap();
        let _b = h.alloc(0, false).unwrap();
        assert_eq!(h.live(), 2);
        h.free_slot(a.index());
        assert_eq!(h.live(), 1);
    }

    // ---- segmented layout ----

    fn seg_heap(capacity: usize, segment_slots: usize) -> Heap {
        Heap::new(
            capacity,
            2,
            true,
            HeapLayout::Segmented {
                segment_slots,
                tlab_slots: segment_slots.min(4),
            },
        )
    }

    #[test]
    fn segmented_alloc_mark_and_free_round_trip() {
        let h = seg_heap(16, 8);
        let a = h.alloc(2, false).unwrap();
        assert_eq!(h.nfields(a), 2);
        assert_eq!(h.load_field(a, 0), None);
        assert!(h.flag_equals(a, false));
        assert_eq!(h.try_mark(a, true, true), MarkOutcome::Won);
        assert_eq!(h.try_mark(a, true, true), MarkOutcome::AlreadyMarked);
        assert!(h.flag_equals(a, true));
        // Sense flip makes it unmarked again without a write.
        assert_eq!(h.try_mark(a, false, true), MarkOutcome::Won);
        h.free_slot(a.index());
        let b = h.alloc(1, true).unwrap();
        assert_eq!(b.index(), a.index());
        assert_eq!(b.epoch(), a.epoch() + 1);
        assert!(h.flag_equals(b, true));
        h.debug_verify().unwrap();
    }

    #[test]
    #[should_panic(expected = "use after free")]
    fn segmented_stale_handle_trips_validation() {
        let h = seg_heap(16, 8);
        let a = h.alloc(1, false).unwrap();
        h.free_slot(a.index());
        let _ = h.load_field(a, 0);
    }

    #[test]
    fn refill_claims_segments_and_reserves_slots() {
        let h = seg_heap(16, 8);
        let mut cur = NO_SEG;
        let (got, info) = h.refill_tlab(&mut cur, 4);
        assert_eq!(got.len(), 4);
        assert_eq!(cur, 0, "low segments hand out first");
        assert_eq!(info.claimed_segment, Some(0));
        // Reserved slots publish without touching shared state again.
        let g = h.alloc_from(got[0], 1, true).unwrap();
        assert!(h.flag_equals(g, true));
        // A second mutator refilling gets disjoint slots.
        let mut cur2 = NO_SEG;
        let (got2, _) = h.refill_tlab(&mut cur2, 16);
        assert_eq!(got2.len(), 12, "4 reserved slots are unavailable");
        assert!(got.iter().all(|i| !got2.contains(i)));
        // Releasing unused reservations makes them claimable again.
        h.release_reserved(&got[1..]);
        h.release_reserved(&got2);
        let mut cur3 = NO_SEG;
        let (got3, _) = h.refill_tlab(&mut cur3, 16);
        assert_eq!(got3.len(), 15, "all but the published slot");
        h.release_reserved(&got3);
        h.debug_verify().unwrap();
    }

    #[test]
    fn lazy_sweep_reclaims_published_garbage_on_demand() {
        let h = seg_heap(16, 8);
        // Fill the heap; mark only even-indexed objects in sense `true`.
        let objs: Vec<Gc> = (0..16).map(|_| h.alloc(0, false).unwrap()).collect();
        for g in objs.iter().step_by(2) {
            assert_eq!(h.try_mark(*g, true, true), MarkOutcome::Won);
        }
        assert_eq!(h.alloc(0, false), Err(AllocError::HeapFull));
        // Publish the verdict: 8 unmarked objects condemned, none freed
        // yet (live() is already the logical count).
        assert_eq!(h.publish_sweep(true), 8);
        assert_eq!(h.live(), 8);
        // An allocating mutator reclaims lazily.
        let mut cur = NO_SEG;
        let (got, info) = h.refill_tlab(&mut cur, 8);
        assert_eq!(got.len(), 8);
        let swept_total: u32 = info.swept.iter().map(|&(_, f)| f).sum();
        assert!(swept_total >= 4, "refill swept at least one segment");
        // The condemned objects' epochs were bumped.
        let (alloc, _, epoch) = h.slot_status(objs[1].index());
        assert!(!alloc || epoch == objs[1].epoch()); // freed or untouched
        h.release_reserved(&got);
        h.complete_pending_sweeps();
        assert_eq!(h.live(), 8);
        h.debug_verify().unwrap();
    }

    #[test]
    fn mop_up_applies_the_outstanding_verdict_everywhere() {
        let h = seg_heap(16, 8);
        let objs: Vec<Gc> = (0..16).map(|_| h.alloc(0, false).unwrap()).collect();
        assert_eq!(h.publish_sweep(true), 16, "nothing marked: all condemned");
        let (segs, freed) = h.complete_pending_sweeps();
        assert_eq!((segs, freed), (2, 16));
        assert_eq!(h.live(), 0);
        // Second mop-up is a no-op.
        assert_eq!(h.complete_pending_sweeps(), (0, 0));
        // All slots allocate again, with bumped epochs.
        let fresh: Vec<Gc> = (0..16).map(|_| h.alloc(0, false).unwrap()).collect();
        assert!(fresh.iter().any(|f| objs
            .iter()
            .any(|o| { o.index() == f.index() && f.epoch() == o.epoch() + 1 })));
        h.debug_verify().unwrap();
    }

    #[test]
    fn free_stack_recycles_emptied_segments() {
        let h = seg_heap(16, 4); // 4 segments
        let mut cur = NO_SEG;
        // Drain the free stack completely.
        let (got, _) = h.refill_tlab(&mut cur, 16);
        assert_eq!(got.len(), 16);
        let mut cur2 = NO_SEG;
        let (none, _) = h.refill_tlab(&mut cur2, 1);
        assert!(none.is_empty(), "heap fully reserved");
        // Releasing re-advertises segments on the stack.
        h.release_reserved(&got);
        let mut cur3 = NO_SEG;
        let (again, info) = h.refill_tlab(&mut cur3, 4);
        assert_eq!(again.len(), 4);
        assert!(info.claimed_segment.is_some());
        h.release_reserved(&again);
        h.debug_verify().unwrap();
    }

    #[test]
    fn alternating_senses_never_resurrect_garbage() {
        let h = seg_heap(8, 8);
        // Cycle 1 (sense true): one survivor, one garbage.
        let keep = h.alloc(0, false).unwrap();
        let drop_ = h.alloc(0, false).unwrap();
        assert_eq!(h.try_mark(keep, true, true), MarkOutcome::Won);
        assert_eq!(h.publish_sweep(true), 1);
        // Mop-up before the next cycle (the collector's invariant).
        assert_eq!(h.complete_pending_sweeps(), (1, 1));
        let (alloc, _, _) = h.slot_status(drop_.index());
        assert!(!alloc, "garbage freed");
        // Cycle 2 (sense false): the survivor is unmarked again; mark it.
        assert!(h.flag_equals(keep, true));
        assert_eq!(h.try_mark(keep, false, true), MarkOutcome::Won);
        assert_eq!(h.publish_sweep(false), 0);
        assert_eq!(h.complete_pending_sweeps().1, 0);
        assert_eq!(h.live(), 1);
        h.debug_verify().unwrap();
    }

    #[test]
    fn occupancy_tracks_allocation_both_layouts() {
        let h = heap(); // slab, capacity 4
        assert_eq!(h.occupancy(), 0.0);
        let a = h.alloc(0, false).unwrap();
        let _b = h.alloc(0, false).unwrap();
        assert!((h.occupancy() - 0.5).abs() < 1e-9);
        h.free_slot(a.index());
        assert!((h.occupancy() - 0.25).abs() < 1e-9);
        // Pool-reserved slots count as occupied: they are unavailable.
        let pool = h.grab_pool(2);
        assert!((h.occupancy() - 0.75).abs() < 1e-9);
        h.return_pool(pool);

        let s = seg_heap(16, 8);
        assert_eq!(s.occupancy(), 0.0);
        let objs: Vec<Gc> = (0..8).map(|_| s.alloc(0, false).unwrap()).collect();
        assert!((s.occupancy() - 0.5).abs() < 1e-9);
        // A published verdict condemning everything drops occupancy to 0
        // even before any lazy sweep runs: the slots are reclaimable.
        let _ = objs;
        assert_eq!(s.publish_sweep(true), 8);
        assert_eq!(s.occupancy(), 0.0);
        s.complete_pending_sweeps();
        assert_eq!(s.occupancy(), 0.0);
    }

    #[test]
    fn alloc_error_retryability() {
        assert!(AllocError::HeapFull.is_retryable());
        assert!(!AllocError::TooManyFields {
            requested: 3,
            max: 2
        }
        .is_retryable());
        assert!(!AllocError::Exhausted {
            live: 4,
            capacity: 4,
            cycles_tried: 2
        }
        .is_retryable());
    }
}
