//! The object heap: a slab of slots with atomic headers and reference
//! fields.
//!
//! Every slot carries a packed header word (mark flag, allocated bit,
//! field count, epoch) manipulated with atomic operations, an intrusive
//! work-list link, and a fixed-size array of atomic reference fields. The
//! mark flag's *interpretation* (marked vs unmarked) is relative to the
//! collector's current sense `f_M`, which flips each cycle — retained
//! objects never need their flag reset (Lamport's trick, §2 of the paper).

use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::sync::Mutex;

use crate::handle::Gc;

/// The collector's control phase, shared racily with the mutators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[repr(u8)]
pub enum Phase {
    /// Between cycles; write barriers are inert.
    #[default]
    Idle = 0,
    /// Heap whitened; barriers being enabled.
    Init = 1,
    /// Tracing.
    Mark = 2,
    /// Reclaiming unmarked objects.
    Sweep = 3,
}

impl Phase {
    pub(crate) fn from_u8(v: u8) -> Phase {
        match v {
            0 => Phase::Idle,
            1 => Phase::Init,
            2 => Phase::Mark,
            3 => Phase::Sweep,
            other => unreachable!("invalid phase byte {other}"),
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Phase::Idle => "Idle",
            Phase::Init => "Init",
            Phase::Mark => "Mark",
            Phase::Sweep => "Sweep",
        };
        write!(f, "{s}")
    }
}

/// Allocation failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// No free slot: the heap is full. Let the collector finish a cycle
    /// (keep calling [`Mutator::safepoint`](crate::Mutator::safepoint)) and
    /// retry.
    HeapFull,
    /// The requested field count exceeds the heap's per-object bound.
    TooManyFields {
        /// Requested field count.
        requested: usize,
        /// The heap's bound.
        max: usize,
    },
    /// Graceful degradation's terminal verdict: the heap stayed full even
    /// after [`Mutator::alloc`](crate::Mutator::alloc) ran its emergency
    /// collection budget — the live set genuinely does not fit.
    Exhausted {
        /// Objects still live after the final emergency cycle.
        live: usize,
        /// Heap capacity in slots.
        capacity: usize,
        /// Emergency collection cycles attempted before giving up.
        cycles_tried: usize,
    },
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::HeapFull => write!(f, "heap full"),
            AllocError::TooManyFields { requested, max } => {
                write!(f, "object with {requested} fields exceeds bound {max}")
            }
            AllocError::Exhausted {
                live,
                capacity,
                cycles_tried,
            } => write!(
                f,
                "heap exhausted: {live}/{capacity} slots live after {cycles_tried} emergency collection cycle(s)"
            ),
        }
    }
}

impl Error for AllocError {}

/// Result of a marking attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MarkOutcome {
    /// Already marked in the current sense: nothing to do (the fast path).
    AlreadyMarked,
    /// This thread won the race and marked the object: it now owns the
    /// object's work-list link.
    Won,
    /// Another thread won the race (or the header changed underneath us).
    Lost,
}

// Header layout: bit 0 = mark flag, bit 1 = allocated,
// bits 2..10 = field count, bits 10..42 = epoch.
const FLAG_BIT: u64 = 1;
const ALLOC_BIT: u64 = 1 << 1;
const NFIELDS_SHIFT: u32 = 2;
const NFIELDS_MASK: u64 = 0xff << NFIELDS_SHIFT;
const EPOCH_SHIFT: u32 = 10;
const EPOCH_MASK: u64 = 0xffff_ffff << EPOCH_SHIFT;

fn pack(flag: bool, alloc: bool, nfields: usize, epoch: u32) -> u64 {
    u64::from(flag)
        | (u64::from(alloc) << 1)
        | ((nfields as u64) << NFIELDS_SHIFT)
        | (u64::from(epoch) << EPOCH_SHIFT)
}

fn hdr_flag(h: u64) -> bool {
    h & FLAG_BIT != 0
}

fn hdr_alloc(h: u64) -> bool {
    h & ALLOC_BIT != 0
}

fn hdr_nfields(h: u64) -> usize {
    ((h & NFIELDS_MASK) >> NFIELDS_SHIFT) as usize
}

fn hdr_epoch(h: u64) -> u32 {
    ((h & EPOCH_MASK) >> EPOCH_SHIFT) as u32
}

struct Slot {
    header: AtomicU64,
    /// Intrusive work-list link (encoded `Option<Gc>`); owned by the
    /// current mark-CAS winner, or by the sweep when the object is free.
    next: AtomicU64,
    fields: Box<[AtomicU64]>,
}

/// The shared object heap.
pub(crate) struct Heap {
    slots: Box<[Slot]>,
    free: Mutex<Vec<u32>>,
    max_fields: usize,
    validate: bool,
}

impl Heap {
    pub(crate) fn new(capacity: usize, max_fields: usize, validate: bool) -> Self {
        let slots = (0..capacity)
            .map(|_| Slot {
                header: AtomicU64::new(pack(false, false, 0, 0)),
                next: AtomicU64::new(0),
                fields: (0..max_fields).map(|_| AtomicU64::new(0)).collect(),
            })
            .collect();
        // Lowest-index-first allocation, matching the model.
        let free = (0..capacity as u32).rev().collect();
        Heap {
            slots,
            free: Mutex::new(free),
            max_fields,
            validate,
        }
    }

    pub(crate) fn capacity(&self) -> usize {
        self.slots.len()
    }

    fn slot(&self, g: Gc) -> &Slot {
        &self.slots[g.index() as usize]
    }

    /// Panics if `g` no longer refers to a live object — the
    /// use-after-free oracle.
    ///
    /// # Panics
    ///
    /// Panics when validation is enabled and the slot is unallocated or
    /// from a different epoch.
    pub(crate) fn check(&self, g: Gc) {
        if !self.validate {
            return;
        }
        let h = self.slot(g).header.load(Ordering::Acquire);
        assert!(
            hdr_alloc(h) && hdr_epoch(h) == g.epoch(),
            "use after free: {g:?} accessed, slot epoch is {} (allocated: {})",
            hdr_epoch(h),
            hdr_alloc(h),
        );
    }

    /// Allocates an object with `nfields` fields and mark flag `fa`.
    pub(crate) fn alloc(&self, nfields: usize, fa: bool) -> Result<Gc, AllocError> {
        if nfields > self.max_fields {
            return Err(AllocError::TooManyFields {
                requested: nfields,
                max: self.max_fields,
            });
        }
        let idx = self.free.lock().pop().ok_or(AllocError::HeapFull)?;
        let slot = &self.slots[idx as usize];
        let epoch = hdr_epoch(slot.header.load(Ordering::Acquire));
        for f in slot.fields.iter() {
            f.store(0, Ordering::Release);
        }
        slot.next.store(0, Ordering::Release);
        // Publishing the header last: the fields are NULL-initialised
        // before the object can be observed allocated.
        slot.header
            .store(pack(fa, true, nfields, epoch), Ordering::Release);
        Ok(Gc::new(idx, epoch))
    }

    /// Reserves up to `n` free slots for a thread-local allocation pool
    /// (the §4 extension: "mutators gather pools of unallocated references
    /// from which to perform fine-grained allocation without
    /// synchronizing"). Reserved slots stay unallocated (the sweep skips
    /// them) until [`alloc_from`](Heap::alloc_from) publishes an object.
    pub(crate) fn grab_pool(&self, n: usize) -> Vec<u32> {
        let mut free = self.free.lock();
        let take = n.min(free.len());
        let at = free.len() - take;
        free.split_off(at)
    }

    /// Returns unused pooled slots to the global free list (mutator
    /// deregistration).
    pub(crate) fn return_pool(&self, pool: Vec<u32>) {
        self.free.lock().extend(pool);
    }

    /// Allocates an object in a pre-reserved slot — no lock, no fence: the
    /// fields are initialised before the header store publishes the object,
    /// which is exactly the TSO argument of §4 ("publishing the new
    /// reference to other mutators can occur only after the prior
    /// initializing stores have been flushed" — FIFO buffers preserve the
    /// order).
    pub(crate) fn alloc_from(&self, idx: u32, nfields: usize, fa: bool) -> Result<Gc, AllocError> {
        if nfields > self.max_fields {
            return Err(AllocError::TooManyFields {
                requested: nfields,
                max: self.max_fields,
            });
        }
        let slot = &self.slots[idx as usize];
        let h = slot.header.load(Ordering::Acquire);
        debug_assert!(!hdr_alloc(h), "pooled slot must be free");
        let epoch = hdr_epoch(h);
        for f in slot.fields.iter() {
            f.store(0, Ordering::Release);
        }
        slot.next.store(0, Ordering::Release);
        slot.header
            .store(pack(fa, true, nfields, epoch), Ordering::Release);
        Ok(Gc::new(idx, epoch))
    }

    /// Frees the slot at `idx`, bumping its epoch so stale handles are
    /// detectable. Caller (the sweep) guarantees the object is unmarked and
    /// unreachable.
    pub(crate) fn free_slot(&self, idx: u32) {
        let slot = &self.slots[idx as usize];
        let h = slot.header.load(Ordering::Acquire);
        debug_assert!(hdr_alloc(h), "double free of slot {idx}");
        let epoch = hdr_epoch(h).wrapping_add(1);
        slot.header
            .store(pack(false, false, 0, epoch), Ordering::Release);
        self.free.lock().push(idx);
    }

    /// Number of fields of the object at `g`.
    pub(crate) fn nfields(&self, g: Gc) -> usize {
        self.check(g);
        hdr_nfields(self.slot(g).header.load(Ordering::Acquire))
    }

    /// Whether the object's flag equals `sense` (Figure 5 line 3's
    /// unsynchronised load).
    pub(crate) fn flag_equals(&self, g: Gc, sense: bool) -> bool {
        self.check(g);
        hdr_flag(self.slot(g).header.load(Ordering::Relaxed)) == sense
    }

    /// The marking CAS (Figure 5 lines 5–11): try to take the flag from
    /// `!fm` to `fm` atomically. With `cas = false` (ablation) the update
    /// is an unsynchronised read-then-write and always claims victory.
    pub(crate) fn try_mark(&self, g: Gc, fm: bool, cas: bool) -> MarkOutcome {
        self.check(g);
        let slot = self.slot(g);
        let h = slot.header.load(Ordering::Acquire);
        if !hdr_alloc(h) || hdr_epoch(h) != g.epoch() {
            return MarkOutcome::Lost; // freed under us (unsafe ablations only)
        }
        if hdr_flag(h) == fm {
            return MarkOutcome::AlreadyMarked;
        }
        let marked = (h & !FLAG_BIT) | u64::from(fm);
        if cas {
            match slot
                .header
                .compare_exchange(h, marked, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => MarkOutcome::Won,
                Err(_) => MarkOutcome::Lost, // some other thread marked it
            }
        } else {
            // Ablation: racy read-modify-write; concurrent markers can both
            // observe unmarked and both claim the win.
            slot.header.store(marked, Ordering::Relaxed);
            MarkOutcome::Won
        }
    }

    /// Loads a reference field.
    pub(crate) fn load_field(&self, g: Gc, field: usize) -> Option<Gc> {
        self.check(g);
        assert!(field < self.nfields(g), "field {field} out of bounds");
        Gc::decode(self.slot(g).fields[field].load(Ordering::Acquire))
    }

    /// Stores a reference field (the bare store of Figure 6 line 11; the
    /// caller has already run the barriers).
    pub(crate) fn store_field(&self, g: Gc, field: usize, value: Option<Gc>) {
        self.check(g);
        assert!(field < self.nfields(g), "field {field} out of bounds");
        self.slot(g).fields[field].store(Gc::encode(value), Ordering::Release);
    }

    /// The intrusive work-list link of `g`.
    pub(crate) fn link(&self, g: Gc) -> Option<Gc> {
        Gc::decode(self.slot(g).next.load(Ordering::Acquire))
    }

    /// Sets the intrusive work-list link of `g`. Only the mark-CAS winner
    /// (or the single-threaded sweep) may call this.
    pub(crate) fn set_link(&self, g: Gc, next: Option<Gc>) {
        self.slot(g).next.store(Gc::encode(next), Ordering::Release);
    }

    /// Abort recovery: force every allocated slot's flag to `fm` (all
    /// black in the current sense), returning how many were repainted.
    ///
    /// An aborted cycle leaves the heap two-toned — stale marks in a sense
    /// a *later* flip will mistake for "already marked", truncating the
    /// trace above still-white children. The collector calls this under
    /// handshake cover (every mutator synchronised, phase idle, `f_A ==
    /// f_M`) so the only concurrent header writers are allocations, which
    /// paint the same colour.
    pub(crate) fn normalize_marks(&self, fm: bool) -> usize {
        let mut repainted = 0;
        for slot in self.slots.iter() {
            let h = slot.header.load(Ordering::Acquire);
            if hdr_alloc(h) && hdr_flag(h) != fm {
                slot.header
                    .store((h & !FLAG_BIT) | u64::from(fm), Ordering::Release);
                repainted += 1;
            }
        }
        repainted
    }

    /// Sweep support: the header view of slot `idx` as
    /// `(allocated, flag, epoch)`.
    pub(crate) fn slot_status(&self, idx: u32) -> (bool, bool, u32) {
        let h = self.slots[idx as usize].header.load(Ordering::Acquire);
        (hdr_alloc(h), hdr_flag(h), hdr_epoch(h))
    }

    /// Number of live (allocated) objects — O(capacity).
    pub(crate) fn live(&self) -> usize {
        (0..self.capacity() as u32)
            .filter(|&i| self.slot_status(i).0)
            .count()
    }

    /// A snapshot of the global free list (integrity checking only — races
    /// with concurrent allocation, so callers must quiesce first).
    pub(crate) fn free_snapshot(&self) -> Vec<u32> {
        self.free.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap() -> Heap {
        Heap::new(4, 2, true)
    }

    #[test]
    fn alloc_initialises_and_frees_bump_epoch() {
        let h = heap();
        let a = h.alloc(2, false).unwrap();
        assert_eq!(a.index(), 0);
        assert_eq!(h.nfields(a), 2);
        assert_eq!(h.load_field(a, 0), None);
        h.free_slot(a.index());
        let b = h.alloc(1, true).unwrap();
        // The slot is reused under a new epoch.
        assert_eq!(b.index(), 0);
        assert_eq!(b.epoch(), a.epoch() + 1);
    }

    #[test]
    #[should_panic(expected = "use after free")]
    fn stale_handle_trips_validation() {
        let h = heap();
        let a = h.alloc(1, false).unwrap();
        h.free_slot(a.index());
        let _ = h.load_field(a, 0);
    }

    #[test]
    fn heap_full_reports_error() {
        let h = heap();
        for _ in 0..4 {
            h.alloc(0, false).unwrap();
        }
        assert_eq!(h.alloc(0, false), Err(AllocError::HeapFull));
    }

    #[test]
    fn field_bound_is_enforced() {
        let h = heap();
        assert!(matches!(
            h.alloc(3, false),
            Err(AllocError::TooManyFields {
                requested: 3,
                max: 2
            })
        ));
    }

    #[test]
    fn mark_cas_has_unique_winner() {
        let h = heap();
        let a = h.alloc(0, false).unwrap(); // flag = false
        assert_eq!(h.try_mark(a, true, true), MarkOutcome::Won);
        assert_eq!(h.try_mark(a, true, true), MarkOutcome::AlreadyMarked);
        assert!(h.flag_equals(a, true));
        // Flipping the sense makes it "unmarked" again without a write.
        assert!(!h.flag_equals(a, false));
        assert_eq!(h.try_mark(a, false, true), MarkOutcome::Won);
    }

    #[test]
    fn fields_store_and_load_handles() {
        let h = heap();
        let a = h.alloc(2, false).unwrap();
        let b = h.alloc(1, false).unwrap();
        h.store_field(a, 0, Some(b));
        h.store_field(a, 1, Some(a));
        assert_eq!(h.load_field(a, 0), Some(b));
        assert_eq!(h.load_field(a, 1), Some(a));
        h.store_field(a, 0, None);
        assert_eq!(h.load_field(a, 0), None);
    }

    #[test]
    fn pools_reserve_and_allocate_without_the_global_lock() {
        let h = heap();
        let pool = h.grab_pool(3);
        assert_eq!(pool.len(), 3);
        // The global free list now has 1 slot; direct alloc still works.
        let direct = h.alloc(0, false).unwrap();
        assert!(h.alloc(0, false).is_err(), "rest of the heap is pooled");
        // Pool allocations publish objects at the reserved slots.
        let g = h.alloc_from(pool[0], 1, true).unwrap();
        assert!(h.flag_equals(g, true));
        assert_eq!(h.nfields(g), 1);
        assert_ne!(g.index(), direct.index());
        // Returning the rest re-enables direct allocation.
        h.return_pool(pool[1..].to_vec());
        assert!(h.alloc(0, false).is_ok());
    }

    #[test]
    fn pool_grab_is_bounded_by_free_space() {
        let h = heap();
        let _a = h.alloc(0, false).unwrap();
        let pool = h.grab_pool(10);
        assert_eq!(pool.len(), 3);
        assert!(h.grab_pool(1).is_empty());
    }

    #[test]
    fn live_counts_allocated_slots() {
        let h = heap();
        assert_eq!(h.live(), 0);
        let a = h.alloc(0, false).unwrap();
        let _b = h.alloc(0, false).unwrap();
        assert_eq!(h.live(), 2);
        h.free_slot(a.index());
        assert_eq!(h.live(), 1);
    }
}
