//! A minimal mutex with `parking_lot`-style ergonomics (`lock()` returns
//! the guard directly) built on `std::sync::Mutex`, so the crate carries no
//! external dependencies. Lock poisoning is ignored: the collector's
//! critical sections only move plain data, so a panicking holder leaves the
//! protected value consistent, and the use-after-free oracle tests rely on
//! surviving caught panics.

use std::sync::MutexGuard;

/// A mutual-exclusion lock whose `lock` never fails.
#[derive(Debug, Default)]
pub(crate) struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub(crate) fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, ignoring poisoning.
    pub(crate) fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}
