//! A minimal mutex with `parking_lot`-style ergonomics (`lock()` returns
//! the guard directly) built on `std::sync::Mutex`, so the crate carries no
//! external dependencies. Lock poisoning is ignored: the collector's
//! critical sections only move plain data, so a panicking holder leaves the
//! protected value consistent, and the use-after-free oracle tests rely on
//! surviving caught panics.

use std::sync::{MutexGuard, TryLockError};
use std::time::Duration;

/// A mutual-exclusion lock whose `lock` never fails.
#[derive(Debug, Default)]
pub(crate) struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub(crate) fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, ignoring poisoning.
    pub(crate) fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires the lock without blocking, ignoring poisoning. `None` means
    /// another thread holds it.
    pub(crate) fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }
}

/// Bounded exponential backoff for wait loops: a handful of `yield_now`
/// rounds first (the uncontended handshake resolves within these), then
/// sleeps doubling from 10µs up to a 1ms cap — so a watchdog-supervised
/// wait burns neither a core nor its deadline granularity.
#[derive(Debug)]
pub(crate) struct Backoff {
    step: u32,
    max_sleep_us: u64,
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff {
            step: 0,
            max_sleep_us: MAX_SLEEP_US,
        }
    }
}

/// `yield_now` rounds before the backoff starts sleeping.
const SPIN_STEPS: u32 = 6;
/// First sleep duration, doubling per step.
const BASE_SLEEP_US: u64 = 10;
/// Default sleep cap.
const MAX_SLEEP_US: u64 = 1_000;

impl Backoff {
    pub(crate) fn new() -> Self {
        Backoff::default()
    }

    /// A backoff whose sleep is capped at `cap` instead of the default
    /// 1ms (the emergency-allocation path takes this from
    /// [`GcConfig::emergency_backoff`](crate::GcConfig::emergency_backoff)).
    pub(crate) fn with_max_sleep(cap: Duration) -> Self {
        Backoff {
            step: 0,
            max_sleep_us: (cap.as_micros() as u64).max(1),
        }
    }

    /// Waits one step and escalates.
    pub(crate) fn wait(&mut self) {
        if self.step < SPIN_STEPS {
            std::thread::yield_now();
        } else {
            let exp = (self.step - SPIN_STEPS).min(32);
            let us = BASE_SLEEP_US
                .saturating_mul(1u64 << exp.min(20))
                .min(self.max_sleep_us);
            std::thread::sleep(Duration::from_micros(us));
        }
        self.step = self.step.saturating_add(1);
    }

    /// Back to the spin phase (progress was observed).
    pub(crate) fn reset(&mut self) {
        self.step = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(*m.try_lock().expect("free"), 1);
    }

    #[test]
    fn backoff_escalates_and_resets() {
        let mut b = Backoff::new();
        for _ in 0..(SPIN_STEPS + 3) {
            b.wait();
        }
        assert!(b.step > SPIN_STEPS);
        b.reset();
        assert_eq!(b.step, 0);
    }

    #[test]
    fn backoff_sleep_respects_the_configured_cap() {
        // The emergency-allocation and pacing paths rely on the cap to
        // bound each individual park — verify the cap is honoured even
        // deep into the escalation, and that sub-µs caps clamp to 1µs
        // rather than 0 (a zero cap would spin hot).
        let mut b = Backoff::with_max_sleep(Duration::from_micros(50));
        assert_eq!(b.max_sleep_us, 50);
        for _ in 0..40 {
            b.wait(); // escalate far past the point the cap binds
        }
        let exp = (b.step - 1 - SPIN_STEPS).min(32);
        let us = BASE_SLEEP_US
            .saturating_mul(1u64 << exp.min(20))
            .min(b.max_sleep_us);
        assert_eq!(us, 50, "the last sleep was clamped to the cap");
        assert_eq!(
            Backoff::with_max_sleep(Duration::from_nanos(10)).max_sleep_us,
            1
        );
    }
}
