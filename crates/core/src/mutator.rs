//! Mutator handles: the heap access protocol of Figure 6 plus the mutator
//! side of the soft handshakes.

use std::collections::HashSet;
use std::sync::atomic::{fence, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::chaos::{ChaosSite, STORM_YIELDS};
use crate::collector::{MutId, MutatorShared, Shared};
use crate::config::HeapLayout;
use crate::handle::Gc;
use crate::heap::{AllocError, NO_SEG};
use crate::sync::Backoff;
use crate::worklist::LocalList;

/// A mutator thread's handle to the collected heap.
///
/// The handle maintains the mutator's *root set* — the references the
/// program currently holds (the model's `roots_m`). Every operation follows
/// Figure 6 of the paper:
///
/// * [`load`](Mutator::load) reads a field of a rooted object and roots the
///   result (no read barrier: roots may legitimately hold white
///   references);
/// * [`store`](Mutator::store) writes a rooted reference into a field of a
///   rooted object, running the **deletion barrier** (grey the overwritten
///   target) and the **insertion barrier** (grey the stored target) first;
/// * [`alloc`](Mutator::alloc) creates an object with the current
///   allocation color `f_A` and roots it;
/// * [`discard`](Mutator::discard) drops a root.
///
/// The mutator must call [`safepoint`](Mutator::safepoint) regularly (the
/// equivalent of the compiler-inserted GC-safe points at backward branches
/// and call returns); collection cycles stall until every registered
/// mutator has answered the pending handshake. Dropping the handle
/// deregisters the mutator, first answering any outstanding handshake.
pub struct Mutator {
    shared: Arc<Shared>,
    me: Arc<MutatorShared>,
    roots: HashSet<Gc>,
    wl: LocalList,
    last_acked: u32,
    /// Last request word seen by [`Mutator::safepoint`] — distinguishes a
    /// freshly posted handshake (one chaos draw) from re-polling the same
    /// pending one.
    last_seen: u32,
    /// Chaos: stay silent (beat but never acknowledge) until the handshake
    /// generation reaches this value. `0` = not silenced.
    silent_until_gen: u32,
    /// Reserved free slots: the §4 allocation pool on the slab layout,
    /// or the TLAB on the segmented layout.
    pool: Vec<u32>,
    /// Segmented layout: the segment this mutator's TLAB last harvested
    /// from ([`NO_SEG`] before the first refill). Unused on the slab.
    cur_seg: u32,
}

impl std::fmt::Debug for Mutator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutator")
            .field("roots", &self.roots.len())
            .field("greys", &self.wl.len())
            .finish()
    }
}

impl Mutator {
    pub(crate) fn new(shared: Arc<Shared>, me: Arc<MutatorShared>) -> Self {
        Mutator {
            shared,
            me,
            roots: HashSet::new(),
            wl: LocalList::new(),
            last_acked: 0,
            last_seen: 0,
            silent_until_gen: 0,
            pool: Vec::new(),
            cur_seg: NO_SEG,
        }
    }

    /// This mutator's registration id, as reported by
    /// [`CycleOutcome::TimedOut`](crate::CycleOutcome::TimedOut).
    pub fn id(&self) -> MutId {
        self.me.id
    }

    /// Roots `g`, mirroring the root-set size into the shared mailbox.
    ///
    /// The mirror is the watchdog's eviction guard: eviction is only sound
    /// for a mutator that provably holds no roots, and the `SeqCst` pairing
    /// with `Shared::try_evict` makes the proof race-free — either the
    /// eviction attempt sees our count and rolls back, or we see its
    /// tentative deactivation here and wait for the verdict, fail-stopping
    /// if it committed (a revoked handle must never create a root the
    /// collector will not scan).
    ///
    /// # Panics
    ///
    /// Panics if this mutator was evicted by the handshake watchdog.
    fn root(&mut self, g: Gc) {
        if !self.roots.insert(g) {
            return;
        }
        self.me.root_count.fetch_add(1, Ordering::SeqCst);
        if !self.me.active.load(Ordering::SeqCst) {
            // An eviction attempt is in flight: spin for its verdict
            // (`try_evict` resolves in a handful of instructions).
            loop {
                if self.me.evicted.load(Ordering::SeqCst) {
                    self.roots.remove(&g);
                    self.me.root_count.fetch_sub(1, Ordering::SeqCst);
                    panic!(
                        "mutator {} was evicted by the handshake watchdog; its handle is revoked",
                        self.me.id
                    );
                }
                if self.me.active.load(Ordering::SeqCst) {
                    break; // rolled back: the root stands
                }
                std::hint::spin_loop();
            }
        }
    }

    /// Removes `g` from the roots, keeping the shared mirror in sync.
    fn unroot(&mut self, g: Gc) {
        if self.roots.remove(&g) {
            self.me.root_count.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// The current root set.
    pub fn roots(&self) -> impl Iterator<Item = Gc> + '_ {
        self.roots.iter().copied()
    }

    /// Whether `r` is currently rooted.
    pub fn is_rooted(&self, r: Gc) -> bool {
        self.roots.contains(&r)
    }

    /// The number of reference fields of the (rooted) object `r`.
    ///
    /// # Panics
    ///
    /// Panics — with validation on — if `r` is stale.
    pub fn field_count(&self, r: Gc) -> usize {
        self.shared.heap.nfields(r)
    }

    /// Allocates an object with `fields` reference fields (all `NULL`),
    /// marked with the current allocation color `f_A`, and roots it
    /// (Figure 6, `Alloc`).
    ///
    /// # Failure state machine
    ///
    /// Every call moves through the same three states, regardless of
    /// heap layout:
    ///
    /// 1. **Fast path** — allocate from the thread-local reserve (the
    ///    TLAB on [`HeapLayout::Segmented`], the §4 pool on
    ///    [`HeapLayout::Slab`] when
    ///    [`alloc_pool`](crate::GcConfig::alloc_pool) is set), refilling
    ///    from shared state when dry. Success returns here.
    /// 2. **Emergency collection** — the refill found the heap full.
    ///    Up to [`alloc_retries`](crate::GcConfig::alloc_retries)
    ///    collection cycles are driven from this thread (answering our
    ///    own handshakes; if a cycle is already in flight, helping it
    ///    along under exponential backoff capped by
    ///    [`emergency_backoff`](crate::GcConfig::emergency_backoff)),
    ///    retrying the allocation after each. Configure both knobs via
    ///    [`GcConfigBuilder::emergency_retries`] and
    ///    [`GcConfigBuilder::emergency_backoff`](crate::GcConfigBuilder::emergency_backoff).
    /// 3. **Terminal verdict** — the budget is spent and the heap is
    ///    still full: [`AllocError::Exhausted`] reports how much really
    ///    is live. With a budget of `0`, state 2 is skipped and the
    ///    refill failure surfaces directly as [`AllocError::HeapFull`].
    ///
    /// Use [`AllocError::is_retryable`] to tell the two apart
    /// mechanically: `HeapFull` can succeed later (after a cycle);
    /// `Exhausted` and [`AllocError::TooManyFields`] cannot.
    ///
    /// # Errors
    ///
    /// [`AllocError::Exhausted`], [`AllocError::HeapFull`], or
    /// [`AllocError::TooManyFields`], per the state machine above.
    ///
    /// [`GcConfigBuilder::emergency_retries`]: crate::GcConfigBuilder::emergency_retries
    pub fn alloc(&mut self, fields: usize) -> Result<Gc, AllocError> {
        match self.try_alloc(fields) {
            Err(AllocError::HeapFull) if self.shared.cfg.alloc_retries > 0 => {
                self.alloc_emergency(fields, None)
            }
            other => other,
        }
    }

    /// Like [`Mutator::alloc`], but bounds the emergency-collection wait by
    /// a deadline: when the heap is still full at `deadline`, the call
    /// returns [`AllocError::HeapFull`] — *retryable*, because a later call
    /// may find memory a cycle has since reclaimed — instead of parking
    /// until the retry budget resolves. This is the allocation primitive
    /// for request-serving code where a stalled allocation must become a
    /// request timeout, never an unbounded stall (e.g. another mutator
    /// holding the cycle lock while silenced by chaos would otherwise stall
    /// this thread indefinitely: its `cycles_tried` budget only advances
    /// when cycles actually complete).
    ///
    /// The overshoot past `deadline` is bounded by one park of at most
    /// [`emergency_backoff`](crate::GcConfig::emergency_backoff).
    ///
    /// # Errors
    ///
    /// As [`Mutator::alloc`], plus [`AllocError::HeapFull`] on deadline
    /// expiry. [`AllocError::Exhausted`] still wins when the retry budget
    /// resolves first *and* no other thread allocated while it was spent —
    /// a heap that survived full collections at its configured budget with
    /// the whole system wedged is exhausted, however much time remains.
    /// When peers did allocate, the heap is churning and this thread is
    /// merely losing the race for freed slots, so the budget resets and
    /// the deadline stays the bound (starvation must not masquerade as
    /// exhaustion).
    pub fn try_alloc_with_deadline(
        &mut self,
        fields: usize,
        deadline: Instant,
    ) -> Result<Gc, AllocError> {
        match self.try_alloc(fields) {
            Err(AllocError::HeapFull) if self.shared.cfg.alloc_retries > 0 => {
                self.alloc_emergency(fields, Some(deadline))
            }
            other => other,
        }
    }

    /// One allocation attempt from the thread-local reserve (TLAB or §4
    /// pool), refilling when dry.
    fn try_alloc(&mut self, fields: usize) -> Result<Gc, AllocError> {
        let fa = self.shared.fa.load(Ordering::Relaxed);
        let g = if self.shared.heap.is_segmented() {
            if self.pool.is_empty() {
                self.refill_tlab();
            }
            match self.pool.pop() {
                Some(idx) => self.shared.heap.alloc_from(idx, fields, fa)?,
                None => return Err(AllocError::HeapFull), // refill came up dry
            }
        } else if self.shared.cfg.alloc_pool > 0 {
            // §4 extension: allocate from the thread-local pool, refilling
            // in batches; only the refill touches the shared free list.
            if self.pool.is_empty() {
                self.pool = self.shared.heap.grab_pool(self.shared.cfg.alloc_pool);
                trace_event!(PoolRefill {
                    got: self.pool.len() as u32
                });
            }
            match self.pool.pop() {
                Some(idx) => self.shared.heap.alloc_from(idx, fields, fa)?,
                None => self.shared.heap.alloc(fields, fa)?, // pool dry: fall back
            }
        } else {
            self.shared.heap.alloc(fields, fa)?
        };
        self.shared.stats.allocated.fetch_add(1, Ordering::Relaxed);
        trace_event!(AllocColor {
            slot: g.index(),
            color: fa
        });
        self.root(g);
        Ok(g)
    }

    /// Refills the TLAB from the segmented heap (lazily sweeping pending
    /// segments along the way), recording stats and trace events.
    fn refill_tlab(&mut self) {
        let HeapLayout::Segmented { tlab_slots, .. } = self.shared.cfg.layout else {
            unreachable!("TLAB refill on a slab heap");
        };
        if self.shared.chaos_fires(ChaosSite::TlabRefill) {
            // Yield storm with the TLAB dry: stretch the window in which
            // other mutators race us for the same segments' free bits.
            for _ in 0..STORM_YIELDS {
                std::thread::yield_now();
            }
        }
        let (mut got, info) = self.shared.heap.refill_tlab(&mut self.cur_seg, tlab_slots);
        self.shared
            .stats
            .tlab_refills
            .fetch_add(1, Ordering::Relaxed);
        trace_event!(TlabRefill {
            got: got.len() as u32
        });
        if let Some(segment) = info.claimed_segment {
            trace_event!(SegmentClaimed { segment });
        }
        for &(segment, freed) in &info.swept {
            self.shared
                .stats
                .lazy_sweep_segments
                .fetch_add(1, Ordering::Relaxed);
            trace_event!(LazySweepSegment { segment, freed });
            if self.shared.chaos_fires(ChaosSite::LazySweep) {
                // Yield storm right after reclaiming a segment: the freed
                // slots are visible to every allocator while we are slow
                // to use them ourselves.
                for _ in 0..STORM_YIELDS {
                    std::thread::yield_now();
                }
            }
        }
        // `pop` takes from the back; reverse so allocation order is
        // lowest-index-first, matching the slab free list.
        got.reverse();
        self.pool = got;
    }

    /// The graceful-degradation path for a full heap: drive emergency
    /// collection cycles from this thread until an allocation succeeds or
    /// the retry budget is spent, then report a structured
    /// [`AllocError::Exhausted`].
    ///
    /// Deadlock-freedom: if another thread's cycle is already in flight it
    /// is almost certainly waiting for *our* handshake acknowledgement, so
    /// blocking on the cycle lock would deadlock. Instead we `try_lock`
    /// (via [`Shared::try_run_cycle`]) and, when beaten to it, help the
    /// in-flight cycle by answering handshakes under backoff. Time parked
    /// in that backoff is accounted to
    /// [`GcStats::backoff_ns`](crate::GcStats::backoff_ns).
    ///
    /// With a `deadline`, expiry short-circuits the loop with the
    /// retryable [`AllocError::HeapFull`] (see
    /// [`Mutator::try_alloc_with_deadline`]).
    fn alloc_emergency(
        &mut self,
        fields: usize,
        deadline: Option<Instant>,
    ) -> Result<Gc, AllocError> {
        let retries = self.shared.cfg.alloc_retries;
        let mut cycles_tried = 0usize;
        // Cycles completed by anyone count against the budget: a full heap
        // that survives a whole collection is genuinely exhausted.
        let mut observed = self.shared.stats.cycles();
        let mut allocated_seen = self.shared.stats.allocated.load(Ordering::Relaxed);
        let mut backoff = Backoff::with_max_sleep(self.shared.cfg.emergency_backoff);
        loop {
            match self.try_alloc(fields) {
                Err(AllocError::HeapFull) => {}
                other => return other,
            }
            let now = self.shared.stats.cycles();
            if now != observed {
                // One failed attempt validates at most one completed cycle:
                // a paced collector cycling back-to-back between our
                // attempts must not burn the budget faster than we can
                // actually race for the slots those cycles freed.
                cycles_tried += 1;
                observed = now;
            }
            if cycles_tried >= retries {
                let progressed = self.shared.stats.allocated.load(Ordering::Relaxed);
                if deadline.is_some() && progressed != allocated_seen {
                    // Someone allocated while we spent the budget: the heap
                    // is churning, not exhausted — we are losing the race
                    // for freed slots. With a deadline bounding the total
                    // wait, starvation resets the budget; a spurious fatal
                    // verdict on a transiently brim-full heap would report
                    // a healthy service as broken.
                    allocated_seen = progressed;
                    cycles_tried = 0;
                } else {
                    return Err(AllocError::Exhausted {
                        live: self.shared.heap.live(),
                        capacity: self.shared.heap.capacity(),
                        cycles_tried,
                    });
                }
            }
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    return Err(AllocError::HeapFull);
                }
            }
            let shared = Arc::clone(&self.shared);
            match shared.try_run_cycle(&mut || self.safepoint()) {
                Some(_outcome) => {
                    // Counts even when aborted (Stopped/TimedOut): the
                    // budget bounds wall-clock work, and an uncooperative
                    // peer will abort every retry identically.
                    self.shared
                        .stats
                        .emergency_cycles
                        .fetch_add(1, Ordering::Relaxed);
                    cycles_tried += 1;
                    observed = self.shared.stats.cycles();
                    backoff.reset();
                }
                None => {
                    // A cycle is in flight, likely waiting on us: help,
                    // then park. The park is concurrent with the cycle's
                    // own wall clock, so it is accounted separately
                    // (`backoff_ns`) rather than into any phase timing.
                    self.safepoint();
                    let t_park = Instant::now();
                    backoff.wait();
                    self.shared
                        .stats
                        .backoff_ns
                        .fetch_add(t_park.elapsed().as_nanos() as u64, Ordering::Relaxed);
                }
            }
        }
    }

    /// Loads `src.field` and roots the result (Figure 6, `Load`).
    ///
    /// # Panics
    ///
    /// Panics if `src` is not rooted (the heap access protocol requires
    /// it), if the field is out of bounds, or — with validation on — if
    /// `src` was freed (a use-after-free, which the collector's safety
    /// guarantee excludes for rooted objects).
    pub fn load(&mut self, src: Gc, field: usize) -> Option<Gc> {
        assert!(self.roots.contains(&src), "load source must be rooted");
        let v = self.shared.heap.load_field(src, field);
        if let Some(r) = v {
            self.root(r);
        }
        v
    }

    /// Stores `dst` into `src.field`, running the deletion and insertion
    /// barriers first (Figure 6, `Store`).
    ///
    /// # Panics
    ///
    /// Panics if `src` (or `dst`, when present) is not rooted, if the field
    /// is out of bounds, or — with validation on — on a use-after-free.
    pub fn store(&mut self, src: Gc, field: usize, dst: Option<Gc>) {
        assert!(self.roots.contains(&src), "store target must be rooted");
        if let Some(d) = dst {
            assert!(self.roots.contains(&d), "stored reference must be rooted");
        }
        // Deletion barrier: grey the reference being overwritten. The load
        // is part of the barrier; the deleted reference is *not* added to
        // the roots (paper's note on Figure 6).
        let deleted = self.shared.heap.load_field(src, field);
        if self.shared.cfg.deletion_barrier {
            if let Some(d) = deleted {
                trace_event!(BarrierHit { deletion: true });
                self.shared.mark(d, &mut self.wl);
            }
        }
        if self.shared.chaos_fires(ChaosSite::MutatorPanic) {
            // Injected death between the two barriers — the worst moment:
            // the deletion barrier ran, the store never will. Recovery is
            // the panicking branch of `Drop`.
            panic!("chaos: injected mutator panic mid-barrier");
        }
        // Insertion barrier: grey the reference being stored.
        if self.shared.cfg.insertion_barrier {
            if let Some(d) = dst {
                trace_event!(BarrierHit { deletion: false });
                self.shared.mark(d, &mut self.wl);
            }
        }
        if !self.wl.is_empty() {
            // Mirror for the watchdog: untransferred grey work makes this
            // mutator unevictable (see `Shared::try_evict`). Cleared by the
            // next transfer.
            self.me.has_grey.store(true, Ordering::SeqCst);
        }
        self.shared.heap.store_field(src, field, dst);
    }

    /// Drops `r` from the roots (Figure 6, `Discard`). The object remains
    /// valid while reachable through other roots or heap paths.
    pub fn discard(&mut self, r: Gc) {
        self.unroot(r);
    }

    /// Adopts a handle received from another mutator into the roots.
    ///
    /// The sender must keep the object reachable (rooted, or stored in a
    /// reachable object) until this call returns; otherwise the object may
    /// be collected in transit. This is the hand-rolled equivalent of
    /// passing references through the heap, which the paper's model leaves
    /// to future work on process spawning.
    pub fn adopt(&mut self, r: Gc) {
        self.shared.heap.check(r);
        self.root(r);
    }

    /// Hands the unused thread-local reserve back to the heap on
    /// deregistration — busy bits for a segmented TLAB, free-list slots
    /// for a slab pool — so capacity never leaks with the thread.
    fn return_reserve(&mut self) {
        let reserve = std::mem::take(&mut self.pool);
        self.cur_seg = NO_SEG;
        if self.shared.heap.is_segmented() {
            self.shared.heap.release_reserved(&reserve);
        } else {
            self.shared.heap.return_pool(reserve);
        }
    }

    /// Transfers the private grey list to the collector's staging channel.
    fn transfer(&mut self) {
        if !self.wl.is_empty() && self.shared.chaos_fires(ChaosSite::SlowTransfer) {
            // Injected slow transfer: stretch the window in which the
            // collector polls for termination while grey work is still in
            // flight (more GetWork rounds, never a lost grey).
            for _ in 0..STORM_YIELDS {
                std::thread::yield_now();
            }
        }
        self.shared.staged.push_all(&self.shared.heap, &mut self.wl);
        self.me.has_grey.store(false, Ordering::SeqCst);
    }

    /// A GC-safe point: answer a pending soft handshake, if any.
    ///
    /// Handshake work by type: a noop acknowledges a control-state change;
    /// a get-roots round marks every current root and transfers the private
    /// grey list; a get-work round just transfers. Fences bracket the work
    /// per §2.4 (unless ablated).
    pub fn safepoint(&mut self) {
        // Liveness beat: evidence for the handshake watchdog that this
        // thread is alive, even when it has nothing to acknowledge. Kept
        // out of the heap-access fast paths on purpose.
        self.me.beat.fetch_add(1, Ordering::Release);
        let req = self.me.request.load(Ordering::Acquire);
        if req == 0 || req == self.last_acked {
            return;
        }
        if self.shared.cfg.chaos.enabled() && !self.chaos_admits_answer(req) {
            return; // injected silence: beating, not acknowledging
        }
        self.answer(req);
    }

    /// Performs the handshake work for request word `req` and acknowledges
    /// it — the chaos-free core of [`Mutator::safepoint`], also used by
    /// `Drop` (a deregistering mutator answers unconditionally: silence is
    /// a fault of running threads, not an excuse to wedge a clean exit).
    fn answer(&mut self, req: u32) {
        let fences = self.shared.cfg.handshake_fences;
        if fences {
            fence(Ordering::SeqCst); // accepting load fence
        }
        match req & 3 {
            2 => {
                // GetRoots: mark and transfer the roots.
                let roots: Vec<Gc> = self.roots.iter().copied().collect();
                for r in roots {
                    self.shared.mark(r, &mut self.wl);
                }
                self.transfer();
            }
            3 => self.transfer(), // GetWork
            _ => {}               // Noop
        }
        if fences {
            fence(Ordering::SeqCst); // completing store fence
        }
        self.me.ack.store(req, Ordering::Release);
        self.last_acked = req;
    }

    /// Chaos gate in front of the handshake answer. Returns `false` while
    /// this mutator is injected-silent for the pending generation; may also
    /// burn a yield storm (injected scheduling delay) before admitting.
    ///
    /// A silenced mutator keeps beating, so the watchdog never mistakes it
    /// for dead: silence is survived via [`CycleOutcome::TimedOut`] aborts
    /// (each aborted cycle advances the generation), never via eviction.
    /// Without a [`handshake_timeout`](crate::GcConfig::handshake_timeout)
    /// a silenced mutator stalls collection for as long as the silence
    /// lasts — plans with a silence rate need the watchdog armed.
    ///
    /// [`CycleOutcome::TimedOut`]: crate::CycleOutcome::TimedOut
    fn chaos_admits_answer(&mut self, req: u32) -> bool {
        let gen = req >> 2;
        if req != self.last_seen {
            // One chaos draw per freshly observed request, however many
            // times the safepoint polls it afterwards.
            self.last_seen = req;
            if self.silent_until_gen == 0 && self.shared.chaos_fires(ChaosSite::Silence) {
                self.silent_until_gen = gen + self.shared.cfg.chaos.silence_generations;
            }
        }
        if self.silent_until_gen != 0 {
            if gen < self.silent_until_gen {
                return false;
            }
            self.silent_until_gen = 0;
        }
        if self.shared.chaos_fires(ChaosSite::HandshakeDelay) {
            // Yield storm on the acknowledgement path: the straggler the
            // collector's backoff loop is designed around.
            for _ in 0..STORM_YIELDS {
                std::thread::yield_now();
            }
        }
        true
    }

    /// Test hook: bump the liveness beat without reaching a safe point.
    #[cfg(test)]
    pub(crate) fn beat_for_test(&self) {
        self.me.beat.fetch_add(1, Ordering::Release);
    }
}

impl Drop for Mutator {
    fn drop(&mut self) {
        if std::thread::panicking() {
            // Unwinding — possibly from an *injected* death the rest of the
            // system is expected to survive. Salvage what soundness needs:
            // the grey list (greys are black parents with untraced
            // children; abandoning them would let the sweep free reachable
            // objects) and the pooled slots (or they leak capacity). But
            // never re-panic — that aborts the process — so the salvage is
            // fenced off, and no handshake is answered: our roots die with
            // the thread, which is exactly what the collector will assume.
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.transfer();
                self.return_reserve();
            }));
            self.me.active.store(false, Ordering::Release);
            let mut reg = self.shared.registry.lock();
            reg.retain(|m| !Arc::ptr_eq(m, &self.me));
            return;
        }
        // Leave cleanly: answer any outstanding handshake (bypassing any
        // injected silence — see `answer`), hand over any remaining grey
        // work, then deactivate so the collector stops waiting for us.
        loop {
            let pending = self.me.request.load(Ordering::Acquire);
            if pending == self.last_acked || pending == 0 {
                break;
            }
            self.answer(pending);
        }
        self.transfer();
        self.return_reserve();
        if self.shared.cfg.handshake_fences {
            fence(Ordering::SeqCst);
        }
        self.me.active.store(false, Ordering::Release);
        let mut reg = self.shared.registry.lock();
        reg.retain(|m| !Arc::ptr_eq(m, &self.me));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::Collector;
    use crate::config::GcConfig;

    fn collector() -> Collector {
        Collector::new(GcConfig::new(16, 2))
    }

    #[test]
    fn alloc_roots_the_object() {
        let c = collector();
        let mut m = c.register_mutator();
        let a = m.alloc(2).unwrap();
        assert!(m.is_rooted(a));
        assert_eq!(m.roots().count(), 1);
    }

    #[test]
    fn load_roots_the_result() {
        let c = collector();
        let mut m = c.register_mutator();
        let a = m.alloc(1).unwrap();
        let b = m.alloc(1).unwrap();
        m.store(a, 0, Some(b));
        m.discard(b);
        assert!(!m.is_rooted(b));
        let b2 = m.load(a, 0).unwrap();
        assert_eq!(b2, b);
        assert!(m.is_rooted(b));
    }

    #[test]
    #[should_panic(expected = "must be rooted")]
    fn store_requires_rooted_source() {
        let c = collector();
        let mut m = c.register_mutator();
        let a = m.alloc(1).unwrap();
        let b = m.alloc(1).unwrap();
        m.discard(a);
        m.store(a, 0, Some(b));
    }

    #[test]
    fn barriers_grey_targets_during_marking() {
        let c = collector();
        let mut m = c.register_mutator();
        let a = m.alloc(1).unwrap();
        let b = m.alloc(1).unwrap();
        // Force an active marking phase so the barrier fires: flip f_M so
        // everything is "unmarked", and set phase = Mark.
        // (White-box: exercising the barrier without a full cycle.)
        m.shared.fm.store(true, Ordering::Relaxed);
        m.shared
            .phase
            .store(crate::Phase::Mark as u8, Ordering::Relaxed);
        m.store(a, 0, Some(b)); // insertion barrier must grey b
        assert!(m.shared.heap.flag_equals(b, true));
        assert_eq!(m.wl.len(), 1);
        assert_eq!(c.stats().barrier_cas_won(), 1);
    }

    #[test]
    fn barriers_idle_are_inert() {
        let c = collector();
        let mut m = c.register_mutator();
        let a = m.alloc(1).unwrap();
        let b = m.alloc(1).unwrap();
        m.shared.fm.store(true, Ordering::Relaxed); // all white, but Idle
        m.store(a, 0, Some(b));
        assert!(!m.shared.heap.flag_equals(b, true));
        assert_eq!(m.wl.len(), 0);
    }

    #[test]
    fn deletion_barrier_greys_overwritten_target() {
        let c = collector();
        let mut m = c.register_mutator();
        let a = m.alloc(1).unwrap();
        let b = m.alloc(1).unwrap();
        m.store(a, 0, Some(b));
        m.shared.fm.store(true, Ordering::Relaxed);
        m.shared
            .phase
            .store(crate::Phase::Mark as u8, Ordering::Relaxed);
        m.store(a, 0, None); // deletes b: deletion barrier greys it
        assert!(m.shared.heap.flag_equals(b, true));
        let _ = c;
    }

    #[test]
    fn pooled_allocation_round_trips() {
        let c = Collector::new(GcConfig::new(16, 1).with_alloc_pool(4));
        let mut m = c.register_mutator();
        let objs: Vec<_> = (0..10).map(|_| m.alloc(1).unwrap()).collect();
        assert_eq!(c.live_objects(), 10);
        for (i, &a) in objs.iter().enumerate().skip(1) {
            m.store(objs[i - 1], 0, Some(a));
        }
        // Pool leftovers return on drop; nothing leaks.
        drop(m);
        c.collect();
        assert_eq!(c.live_objects(), 0);
        let mut m2 = c.register_mutator();
        for _ in 0..16 {
            m2.alloc(0).unwrap();
        }
        assert!(m2.alloc(0).is_err(), "all 16 slots accounted for");
    }

    #[test]
    fn drop_mid_handshake_transfers_staged_work() {
        let c = collector();
        let mut m = c.register_mutator();
        let a = m.alloc(1).unwrap();
        let b = m.alloc(1).unwrap();
        // Arm an active marking phase (white-box, as in the barrier tests)
        // so the store greys `b` into the private list.
        m.shared.fm.store(true, Ordering::Relaxed);
        m.shared
            .phase
            .store(crate::Phase::Mark as u8, Ordering::Relaxed);
        m.store(a, 0, Some(b));
        assert_eq!(m.wl.len(), 1);
        // Post a GetWork request by hand — the collector's side of the
        // handshake — and drop the mutator before it ever polls a
        // safepoint: the deregistration race of a thread exiting with a
        // handshake in its mailbox.
        let word = (1 << 2) | 3;
        m.me.request.store(word, Ordering::Release);
        let me = Arc::clone(&m.me);
        let shared = Arc::clone(&m.shared);
        drop(m);
        // The drop acknowledged the pending round and handed the grey list
        // over rather than losing it.
        assert_eq!(me.ack.load(Ordering::Acquire), word);
        assert!(!me.active.load(Ordering::Acquire));
        assert!(shared.registry.lock().is_empty());
        let staged = shared.staged.take_all(&shared.heap);
        assert_eq!(staged.len(), 1);
        shared
            .phase
            .store(crate::Phase::Idle as u8, Ordering::Relaxed);
    }

    #[test]
    fn emergency_collection_recovers_garbage_single_threaded() {
        let c = Collector::new(GcConfig::new(4, 1));
        let mut m = c.register_mutator();
        for _ in 0..4 {
            let g = m.alloc(1).unwrap();
            m.discard(g);
        }
        // Heap full of garbage: the next alloc must drive an emergency
        // cycle from this very thread (answering its own handshakes) and
        // then succeed.
        let g = m.alloc(1).expect("emergency collection reclaims garbage");
        assert!(m.is_rooted(g));
        assert!(c.stats().emergency_cycles() >= 1);
        assert!(c.stats().cycles() >= 1);
    }

    #[test]
    fn exhausted_heap_reports_structured_error() {
        let c = Collector::new(GcConfig::new(4, 1).with_alloc_retries(2));
        let mut m = c.register_mutator();
        let _keep: Vec<_> = (0..4).map(|_| m.alloc(1).unwrap()).collect();
        match m.alloc(1) {
            Err(AllocError::Exhausted {
                live,
                capacity,
                cycles_tried,
            }) => {
                assert_eq!(live, 4);
                assert_eq!(capacity, 4);
                assert_eq!(cycles_tried, 2);
            }
            other => panic!("expected Exhausted, got {other:?}"),
        }
        assert_eq!(c.stats().emergency_cycles(), 2);
    }

    #[test]
    fn alloc_error_retryable_truth_table() {
        // `HeapFull` is the only transient verdict: a later cycle can
        // reclaim garbage. `Exhausted` (the heap survived full collections)
        // and `TooManyFields` (a caller bug) never heal by retrying.
        assert!(AllocError::HeapFull.is_retryable());
        assert!(!AllocError::Exhausted {
            live: 4,
            capacity: 4,
            cycles_tried: 2
        }
        .is_retryable());
        assert!(!AllocError::TooManyFields {
            requested: 9,
            max: 2
        }
        .is_retryable());
    }

    #[test]
    fn deadline_alloc_succeeds_when_a_cycle_reclaims_garbage() {
        let c = Collector::new(GcConfig::new(4, 1));
        let mut m = c.register_mutator();
        for _ in 0..4 {
            let g = m.alloc(1).unwrap();
            m.discard(g);
        }
        let deadline = Instant::now() + std::time::Duration::from_secs(5);
        let g = m
            .try_alloc_with_deadline(1, deadline)
            .expect("emergency cycle within the deadline");
        assert!(m.is_rooted(g));
    }

    #[test]
    fn deadline_alloc_times_out_retryable_instead_of_stalling() {
        // Hold the cycle lock for the whole test: no emergency cycle can
        // ever run, which is exactly the unbounded-stall scenario the
        // deadline bounds. Without the deadline, `alloc` would park here
        // forever (the retry budget only advances on completed cycles).
        let c = Collector::new(GcConfig::new(4, 1).with_alloc_retries(100));
        let mut m = c.register_mutator();
        let _keep: Vec<_> = (0..4).map(|_| m.alloc(1).unwrap()).collect();
        let shared = Arc::clone(&m.shared);
        let guard = shared.cycle_lock.lock();
        let t0 = Instant::now();
        let deadline = t0 + std::time::Duration::from_millis(20);
        let err = m.try_alloc_with_deadline(1, deadline).unwrap_err();
        assert!(matches!(err, AllocError::HeapFull));
        assert!(err.is_retryable(), "a deadline miss is worth retrying");
        // Bounded overshoot: one park of at most `emergency_backoff` (1ms
        // default) past the deadline, plus scheduling noise.
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(2),
            "the deadline bounded the stall"
        );
        // The parked waits were accounted honestly.
        assert!(c.stats().backoff_ns() > 0, "park time recorded");
        drop(guard);
    }

    #[test]
    fn alloc_retries_zero_fails_fast() {
        let c = Collector::new(GcConfig::new(2, 1).with_alloc_retries(0));
        let mut m = c.register_mutator();
        m.alloc(0).unwrap();
        m.alloc(0).unwrap();
        assert!(matches!(m.alloc(0), Err(AllocError::HeapFull)));
        assert_eq!(c.stats().cycles(), 0, "legacy path runs no cycles");
    }

    #[test]
    fn drop_deregisters() {
        let c = collector();
        let m = c.register_mutator();
        assert_eq!(c.stats().cycles(), 0);
        drop(m);
        // A cycle with no registered mutators completes immediately.
        c.collect();
        assert_eq!(c.stats().cycles(), 1);
    }
}
