//! Mutator handles: the heap access protocol of Figure 6 plus the mutator
//! side of the soft handshakes.

use std::collections::HashSet;
use std::sync::atomic::{fence, Ordering};
use std::sync::Arc;

use crate::collector::{MutatorShared, Shared};
use crate::handle::Gc;
use crate::heap::AllocError;
use crate::worklist::LocalList;

/// A mutator thread's handle to the collected heap.
///
/// The handle maintains the mutator's *root set* — the references the
/// program currently holds (the model's `roots_m`). Every operation follows
/// Figure 6 of the paper:
///
/// * [`load`](Mutator::load) reads a field of a rooted object and roots the
///   result (no read barrier: roots may legitimately hold white
///   references);
/// * [`store`](Mutator::store) writes a rooted reference into a field of a
///   rooted object, running the **deletion barrier** (grey the overwritten
///   target) and the **insertion barrier** (grey the stored target) first;
/// * [`alloc`](Mutator::alloc) creates an object with the current
///   allocation color `f_A` and roots it;
/// * [`discard`](Mutator::discard) drops a root.
///
/// The mutator must call [`safepoint`](Mutator::safepoint) regularly (the
/// equivalent of the compiler-inserted GC-safe points at backward branches
/// and call returns); collection cycles stall until every registered
/// mutator has answered the pending handshake. Dropping the handle
/// deregisters the mutator, first answering any outstanding handshake.
pub struct Mutator {
    shared: Arc<Shared>,
    me: Arc<MutatorShared>,
    roots: HashSet<Gc>,
    wl: LocalList,
    last_acked: u32,
    /// Reserved free slots (the §4 allocation-pool extension).
    pool: Vec<u32>,
}

impl std::fmt::Debug for Mutator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutator")
            .field("roots", &self.roots.len())
            .field("greys", &self.wl.len())
            .finish()
    }
}

impl Mutator {
    pub(crate) fn new(shared: Arc<Shared>, me: Arc<MutatorShared>) -> Self {
        Mutator {
            shared,
            me,
            roots: HashSet::new(),
            wl: LocalList::new(),
            last_acked: 0,
            pool: Vec::new(),
        }
    }

    /// The current root set.
    pub fn roots(&self) -> impl Iterator<Item = Gc> + '_ {
        self.roots.iter().copied()
    }

    /// Whether `r` is currently rooted.
    pub fn is_rooted(&self, r: Gc) -> bool {
        self.roots.contains(&r)
    }

    /// The number of reference fields of the (rooted) object `r`.
    ///
    /// # Panics
    ///
    /// Panics — with validation on — if `r` is stale.
    pub fn field_count(&self, r: Gc) -> usize {
        self.shared.heap.nfields(r)
    }

    /// Allocates an object with `fields` reference fields (all `NULL`),
    /// marked with the current allocation color `f_A`, and roots it
    /// (Figure 6, `Alloc`).
    ///
    /// # Errors
    ///
    /// [`AllocError::HeapFull`] when no slot is free — keep answering
    /// handshakes and retry after a collection; [`AllocError::TooManyFields`]
    /// if `fields` exceeds the heap's bound.
    pub fn alloc(&mut self, fields: usize) -> Result<Gc, AllocError> {
        let fa = self.shared.fa.load(Ordering::Relaxed);
        let g = if self.shared.cfg.alloc_pool > 0 {
            // §4 extension: allocate from the thread-local pool, refilling
            // in batches; only the refill touches the shared free list.
            if self.pool.is_empty() {
                self.pool = self.shared.heap.grab_pool(self.shared.cfg.alloc_pool);
            }
            match self.pool.pop() {
                Some(idx) => self.shared.heap.alloc_from(idx, fields, fa)?,
                None => self.shared.heap.alloc(fields, fa)?, // pool dry: fall back
            }
        } else {
            self.shared.heap.alloc(fields, fa)?
        };
        self.shared.stats.allocated.fetch_add(1, Ordering::Relaxed);
        self.roots.insert(g);
        Ok(g)
    }

    /// Loads `src.field` and roots the result (Figure 6, `Load`).
    ///
    /// # Panics
    ///
    /// Panics if `src` is not rooted (the heap access protocol requires
    /// it), if the field is out of bounds, or — with validation on — if
    /// `src` was freed (a use-after-free, which the collector's safety
    /// guarantee excludes for rooted objects).
    pub fn load(&mut self, src: Gc, field: usize) -> Option<Gc> {
        assert!(self.roots.contains(&src), "load source must be rooted");
        let v = self.shared.heap.load_field(src, field);
        if let Some(r) = v {
            self.roots.insert(r);
        }
        v
    }

    /// Stores `dst` into `src.field`, running the deletion and insertion
    /// barriers first (Figure 6, `Store`).
    ///
    /// # Panics
    ///
    /// Panics if `src` (or `dst`, when present) is not rooted, if the field
    /// is out of bounds, or — with validation on — on a use-after-free.
    pub fn store(&mut self, src: Gc, field: usize, dst: Option<Gc>) {
        assert!(self.roots.contains(&src), "store target must be rooted");
        if let Some(d) = dst {
            assert!(self.roots.contains(&d), "stored reference must be rooted");
        }
        // Deletion barrier: grey the reference being overwritten. The load
        // is part of the barrier; the deleted reference is *not* added to
        // the roots (paper's note on Figure 6).
        let deleted = self.shared.heap.load_field(src, field);
        if self.shared.cfg.deletion_barrier {
            if let Some(d) = deleted {
                self.shared.mark(d, &mut self.wl);
            }
        }
        // Insertion barrier: grey the reference being stored.
        if self.shared.cfg.insertion_barrier {
            if let Some(d) = dst {
                self.shared.mark(d, &mut self.wl);
            }
        }
        self.shared.heap.store_field(src, field, dst);
    }

    /// Drops `r` from the roots (Figure 6, `Discard`). The object remains
    /// valid while reachable through other roots or heap paths.
    pub fn discard(&mut self, r: Gc) {
        self.roots.remove(&r);
    }

    /// Adopts a handle received from another mutator into the roots.
    ///
    /// The sender must keep the object reachable (rooted, or stored in a
    /// reachable object) until this call returns; otherwise the object may
    /// be collected in transit. This is the hand-rolled equivalent of
    /// passing references through the heap, which the paper's model leaves
    /// to future work on process spawning.
    pub fn adopt(&mut self, r: Gc) {
        self.shared.heap.check(r);
        self.roots.insert(r);
    }

    /// Transfers the private grey list to the collector's staging channel.
    fn transfer(&mut self) {
        self.shared.staged.push_all(&self.shared.heap, &mut self.wl);
    }

    /// A GC-safe point: answer a pending soft handshake, if any.
    ///
    /// Handshake work by type: a noop acknowledges a control-state change;
    /// a get-roots round marks every current root and transfers the private
    /// grey list; a get-work round just transfers. Fences bracket the work
    /// per §2.4 (unless ablated).
    pub fn safepoint(&mut self) {
        let req = self.me.request.load(Ordering::Acquire);
        if req == 0 || req == self.last_acked {
            return;
        }
        let fences = self.shared.cfg.handshake_fences;
        if fences {
            fence(Ordering::SeqCst); // accepting load fence
        }
        match req & 3 {
            2 => {
                // GetRoots: mark and transfer the roots.
                let roots: Vec<Gc> = self.roots.iter().copied().collect();
                for r in roots {
                    self.shared.mark(r, &mut self.wl);
                }
                self.transfer();
            }
            3 => self.transfer(), // GetWork
            _ => {}               // Noop
        }
        if fences {
            fence(Ordering::SeqCst); // completing store fence
        }
        self.me.ack.store(req, Ordering::Release);
        self.last_acked = req;
    }
}

impl Drop for Mutator {
    fn drop(&mut self) {
        if std::thread::panicking() {
            // Unwinding (e.g. the validation oracle fired): do not run
            // handshake work that could panic again and abort the process.
            // Deactivating is enough for the collector to stop waiting;
            // grey work is abandoned, which only matters to a run that has
            // already failed.
            self.me.active.store(false, Ordering::Release);
            let mut reg = self.shared.registry.lock();
            reg.retain(|m| !Arc::ptr_eq(m, &self.me));
            return;
        }
        // Leave cleanly: answer any outstanding handshake, hand over any
        // remaining grey work, then deactivate so the collector stops
        // waiting for us.
        loop {
            self.safepoint();
            let pending = self.me.request.load(Ordering::Acquire);
            if pending == self.last_acked || pending == 0 {
                break;
            }
            std::thread::yield_now();
        }
        self.transfer();
        self.shared.heap.return_pool(std::mem::take(&mut self.pool));
        if self.shared.cfg.handshake_fences {
            fence(Ordering::SeqCst);
        }
        self.me.active.store(false, Ordering::Release);
        let mut reg = self.shared.registry.lock();
        reg.retain(|m| !Arc::ptr_eq(m, &self.me));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::Collector;
    use crate::config::GcConfig;

    fn collector() -> Collector {
        Collector::new(GcConfig::new(16, 2))
    }

    #[test]
    fn alloc_roots_the_object() {
        let c = collector();
        let mut m = c.register_mutator();
        let a = m.alloc(2).unwrap();
        assert!(m.is_rooted(a));
        assert_eq!(m.roots().count(), 1);
    }

    #[test]
    fn load_roots_the_result() {
        let c = collector();
        let mut m = c.register_mutator();
        let a = m.alloc(1).unwrap();
        let b = m.alloc(1).unwrap();
        m.store(a, 0, Some(b));
        m.discard(b);
        assert!(!m.is_rooted(b));
        let b2 = m.load(a, 0).unwrap();
        assert_eq!(b2, b);
        assert!(m.is_rooted(b));
    }

    #[test]
    #[should_panic(expected = "must be rooted")]
    fn store_requires_rooted_source() {
        let c = collector();
        let mut m = c.register_mutator();
        let a = m.alloc(1).unwrap();
        let b = m.alloc(1).unwrap();
        m.discard(a);
        m.store(a, 0, Some(b));
    }

    #[test]
    fn barriers_grey_targets_during_marking() {
        let c = collector();
        let mut m = c.register_mutator();
        let a = m.alloc(1).unwrap();
        let b = m.alloc(1).unwrap();
        // Force an active marking phase so the barrier fires: flip f_M so
        // everything is "unmarked", and set phase = Mark.
        // (White-box: exercising the barrier without a full cycle.)
        m.shared.fm.store(true, Ordering::Relaxed);
        m.shared
            .phase
            .store(crate::Phase::Mark as u8, Ordering::Relaxed);
        m.store(a, 0, Some(b)); // insertion barrier must grey b
        assert!(m.shared.heap.flag_equals(b, true));
        assert_eq!(m.wl.len(), 1);
        assert_eq!(c.stats().barrier_cas_won(), 1);
    }

    #[test]
    fn barriers_idle_are_inert() {
        let c = collector();
        let mut m = c.register_mutator();
        let a = m.alloc(1).unwrap();
        let b = m.alloc(1).unwrap();
        m.shared.fm.store(true, Ordering::Relaxed); // all white, but Idle
        m.store(a, 0, Some(b));
        assert!(!m.shared.heap.flag_equals(b, true));
        assert_eq!(m.wl.len(), 0);
    }

    #[test]
    fn deletion_barrier_greys_overwritten_target() {
        let c = collector();
        let mut m = c.register_mutator();
        let a = m.alloc(1).unwrap();
        let b = m.alloc(1).unwrap();
        m.store(a, 0, Some(b));
        m.shared.fm.store(true, Ordering::Relaxed);
        m.shared
            .phase
            .store(crate::Phase::Mark as u8, Ordering::Relaxed);
        m.store(a, 0, None); // deletes b: deletion barrier greys it
        assert!(m.shared.heap.flag_equals(b, true));
        let _ = c;
    }

    #[test]
    fn pooled_allocation_round_trips() {
        let c = Collector::new(GcConfig::new(16, 1).with_alloc_pool(4));
        let mut m = c.register_mutator();
        let objs: Vec<_> = (0..10).map(|_| m.alloc(1).unwrap()).collect();
        assert_eq!(c.live_objects(), 10);
        for (i, &a) in objs.iter().enumerate().skip(1) {
            m.store(objs[i - 1], 0, Some(a));
        }
        // Pool leftovers return on drop; nothing leaks.
        drop(m);
        c.collect();
        assert_eq!(c.live_objects(), 0);
        let mut m2 = c.register_mutator();
        for _ in 0..16 {
            m2.alloc(0).unwrap();
        }
        assert!(m2.alloc(0).is_err(), "all 16 slots accounted for");
    }

    #[test]
    fn drop_deregisters() {
        let c = collector();
        let m = c.register_mutator();
        assert_eq!(c.stats().cycles(), 0);
        drop(m);
        // A cycle with no registered mutators completes immediately.
        c.collect();
        assert_eq!(c.stats().cycles(), 1);
    }
}
