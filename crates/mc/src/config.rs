//! Checker configuration: bounds, dedup mode and exploration strategy.

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use crate::outcome::PrecheckDiagnostic;

/// A static pre-pass run by [`Checker::run`](crate::Checker::run) before
/// any state exploration. Returning a non-empty diagnostic list aborts the
/// run with [`Outcome::PrecheckFailed`](crate::Outcome::PrecheckFailed).
///
/// The closure takes no arguments: it captures whatever artefact it
/// analyses (typically the CIMP programs the transition system was built
/// from), keeping `mc` free of any dependency on the analyzer crate.
pub type Precheck = Arc<dyn Fn() -> Vec<PrecheckDiagnostic> + Send + Sync>;

/// Which state-space reductions the checker applies between the transition
/// system and the BFS engine. All default to off; each is independently
/// toggleable so equivalence and per-technique savings stay measurable.
///
/// The reductions are *requests*: a transition system opts in by
/// implementing the corresponding [`TransitionSystem`](crate::TransitionSystem)
/// hooks ([`ample_successors_into`](crate::TransitionSystem::ample_successors_into),
/// [`canonicalize`](crate::TransitionSystem::canonicalize)). The default
/// hook implementations ignore every flag, so enabling reductions on a
/// system that has not opted in is a no-op, never an unsoundness.
///
/// ```
/// use mc::Reduction;
///
/// assert!(!Reduction::default().any());
/// assert!(Reduction::all().any());
/// assert_eq!(Reduction { por: true, ..Reduction::default() }.label(), "por");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Reduction {
    /// Partial-order reduction: expand only an *ample* subset of enabled
    /// steps when the system can prove the subset sound (independent,
    /// invisible to all properties, cycle-safe).
    pub por: bool,
    /// Symmetry reduction: store the canonical representative of each
    /// state's orbit under a symmetry group (e.g. mutator-identity
    /// permutation), so symmetric states dedup to one.
    pub symmetry: bool,
    /// Store-buffer canonicalization: normalize pending-write buffers
    /// (coalescing adjacent duplicate writes) so observationally
    /// equivalent buffers hash identically.
    pub sb_canon: bool,
}

impl Reduction {
    /// Every reduction enabled.
    pub fn all() -> Self {
        Reduction {
            por: true,
            symmetry: true,
            sb_canon: true,
        }
    }

    /// True when at least one reduction is enabled.
    pub fn any(&self) -> bool {
        self.por || self.symmetry || self.sb_canon
    }

    /// A compact `+`-joined label of the enabled reductions (`"none"` when
    /// all are off), for benches and reports.
    pub fn label(&self) -> String {
        let mut parts = Vec::new();
        if self.por {
            parts.push("por");
        }
        if self.symmetry {
            parts.push("symmetry");
        }
        if self.sb_canon {
            parts.push("sb_canon");
        }
        if parts.is_empty() {
            "none".to_string()
        } else {
            parts.join("+")
        }
    }
}

/// Bounds and dedup mode for a [`Checker`](crate::Checker) run.
///
/// Construct with struct-update syntax over [`Default`]:
///
/// ```
/// use mc::CheckerConfig;
///
/// let cfg = CheckerConfig {
///     max_states: 1_000_000,
///     hash_compact: true,
///     ..CheckerConfig::default()
/// };
/// assert_eq!(cfg.max_depth, usize::MAX);
/// ```
#[derive(Clone)]
pub struct CheckerConfig {
    /// Cap on the number of distinct states to visit. Hitting it yields
    /// [`Outcome::BoundReached`](crate::Outcome::BoundReached).
    pub max_states: usize,
    /// Cap on the BFS depth (levels beyond it are not expanded).
    pub max_depth: usize,
    /// Cap on wall-clock time, checked while exploring.
    pub time_limit: Option<Duration>,
    /// Treat states without successors as errors (useful for systems that
    /// are supposed to run forever, like the collector model).
    pub forbid_deadlock: bool,
    /// Deduplicate on a 128-bit state fingerprint instead of the full
    /// state, storing ~40 bytes per visited state instead of the state
    /// itself — the classical hash-compact technique. Two distinct states
    /// colliding on all 128 bits would be silently merged; for the state
    /// counts this checker handles (≪ 2⁴⁰) the probability is below 2⁻⁴⁰,
    /// and the mode is reserved for large sweeps whose results are
    /// reported as hash-compacted.
    pub hash_compact: bool,
    /// An optional static pre-pass (see [`Precheck`]). When set, it runs
    /// before exploration and any diagnostic it reports short-circuits the
    /// run into [`Outcome::PrecheckFailed`](crate::Outcome::PrecheckFailed).
    pub static_precheck: Option<Precheck>,
    /// Which state-space reductions to request from the transition system
    /// (see [`Reduction`]). Defaults to none.
    pub reduction: Reduction,
    /// Spill BFS frontier levels larger than this many states to
    /// length-prefixed temporary files instead of holding them in memory,
    /// so level queues stop being memory-bound. Requires the transition
    /// system to implement
    /// [`encode_state`](crate::TransitionSystem::encode_state) /
    /// [`decode_state`](crate::TransitionSystem::decode_state); systems
    /// without a codec keep frontiers in memory regardless. `None`
    /// (default) never spills.
    pub spill_threshold: Option<usize>,
    /// A metrics registry the BFS publishes live telemetry into:
    /// states/sec, frontier length, spill bytes and per-reduction-technique
    /// hit counters (see `telemetry` module docs). Sharing the registry
    /// with a `gc_trace::MetricsServer` makes a long check scrapable in
    /// flight. `None` (default) publishes nothing; telemetry never affects
    /// verdicts or state counts either way.
    #[cfg(feature = "trace")]
    pub metrics: Option<Arc<gc_trace::Registry>>,
}

impl CheckerConfig {
    /// Returns `self` with the given reductions enabled — the builder form
    /// used by callers that start from [`Default`].
    #[must_use]
    pub fn reduction(mut self, reduction: Reduction) -> Self {
        self.reduction = reduction;
        self
    }

    /// Returns `self` publishing live telemetry into `registry` (see the
    /// [`metrics`](CheckerConfig::metrics) field).
    #[cfg(feature = "trace")]
    #[must_use]
    pub fn metrics(mut self, registry: Arc<gc_trace::Registry>) -> Self {
        self.metrics = Some(registry);
        self
    }
}

impl fmt::Debug for CheckerConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_struct("CheckerConfig");
        d.field("max_states", &self.max_states)
            .field("max_depth", &self.max_depth)
            .field("time_limit", &self.time_limit)
            .field("forbid_deadlock", &self.forbid_deadlock)
            .field("hash_compact", &self.hash_compact)
            .field(
                "static_precheck",
                &self.static_precheck.as_ref().map(|_| "<fn>"),
            )
            .field("reduction", &self.reduction)
            .field("spill_threshold", &self.spill_threshold);
        #[cfg(feature = "trace")]
        d.field("metrics", &self.metrics.as_ref().map(|_| "<registry>"));
        d.finish()
    }
}

impl PartialEq for CheckerConfig {
    /// Prechecks are opaque closures: two configs compare equal only when
    /// they share the *same* precheck (pointer identity) or both lack one.
    fn eq(&self, other: &Self) -> bool {
        let precheck_eq = match (&self.static_precheck, &other.static_precheck) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        };
        #[cfg(feature = "trace")]
        let metrics_eq = match (&self.metrics, &other.metrics) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        };
        #[cfg(not(feature = "trace"))]
        let metrics_eq = true;
        self.max_states == other.max_states
            && self.max_depth == other.max_depth
            && self.time_limit == other.time_limit
            && self.forbid_deadlock == other.forbid_deadlock
            && self.hash_compact == other.hash_compact
            && self.reduction == other.reduction
            && self.spill_threshold == other.spill_threshold
            && precheck_eq
            && metrics_eq
    }
}

impl Eq for CheckerConfig {}

impl Default for CheckerConfig {
    /// No properties of its own, a generous state bound (64 million), no
    /// depth/time bounds, deadlock allowed, exact dedup, no precheck.
    fn default() -> Self {
        CheckerConfig {
            max_states: 64_000_000,
            max_depth: usize::MAX,
            time_limit: None,
            forbid_deadlock: false,
            hash_compact: false,
            static_precheck: None,
            reduction: Reduction::default(),
            spill_threshold: None,
            #[cfg(feature = "trace")]
            metrics: None,
        }
    }
}

/// How a [`Checker`](crate::Checker) explores the transition system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Exhaustive level-synchronous breadth-first search.
    ///
    /// `threads` is the number of worker threads expanding each frontier;
    /// `0` means "use the machine's available parallelism". Every thread
    /// count produces identical state counts, verdicts and (for
    /// violations) a shortest counterexample: successors are claimed
    /// through a sharded seen-set and ties are resolved by the
    /// deterministic discovery order of the equivalent sequential search.
    Bfs {
        /// Worker threads per frontier (`0` = available parallelism).
        threads: usize,
    },
    /// A seeded uniformly-random walk of at most `steps` transitions.
    ///
    /// Checks every property along the way. A completed walk yields
    /// [`Outcome::BoundReached`](crate::Outcome::BoundReached) with
    /// [`Bound::Steps`](crate::Bound::Steps) — a walk is inherently
    /// bounded, never a verification. A stuck walk (state without
    /// successors) yields [`Outcome::Deadlock`](crate::Outcome::Deadlock)
    /// regardless of `forbid_deadlock`; a violation yields a real but
    /// non-minimal counterexample trace.
    RandomWalk {
        /// Maximum number of transitions to take.
        steps: usize,
        /// Seed for the walk's SplitMix64 stream; equal seeds reproduce
        /// the walk exactly.
        seed: u64,
    },
}

impl Default for Strategy {
    /// Sequential breadth-first search.
    fn default() -> Self {
        Strategy::Bfs { threads: 1 }
    }
}

impl Strategy {
    /// Resolves `Bfs { threads: 0 }` to the machine's available
    /// parallelism; other values pass through (minimum 1).
    pub(crate) fn effective_threads(threads: usize) -> usize {
        if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        }
    }
}
