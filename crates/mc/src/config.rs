//! Checker configuration: bounds, dedup mode and exploration strategy.

use std::time::Duration;

/// Bounds and dedup mode for a [`Checker`](crate::Checker) run.
///
/// Construct with struct-update syntax over [`Default`]:
///
/// ```
/// use mc::CheckerConfig;
///
/// let cfg = CheckerConfig {
///     max_states: 1_000_000,
///     hash_compact: true,
///     ..CheckerConfig::default()
/// };
/// assert_eq!(cfg.max_depth, usize::MAX);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckerConfig {
    /// Cap on the number of distinct states to visit. Hitting it yields
    /// [`Outcome::BoundReached`](crate::Outcome::BoundReached).
    pub max_states: usize,
    /// Cap on the BFS depth (levels beyond it are not expanded).
    pub max_depth: usize,
    /// Cap on wall-clock time, checked while exploring.
    pub time_limit: Option<Duration>,
    /// Treat states without successors as errors (useful for systems that
    /// are supposed to run forever, like the collector model).
    pub forbid_deadlock: bool,
    /// Deduplicate on a 128-bit state fingerprint instead of the full
    /// state, storing ~40 bytes per visited state instead of the state
    /// itself — the classical hash-compact technique. Two distinct states
    /// colliding on all 128 bits would be silently merged; for the state
    /// counts this checker handles (≪ 2⁴⁰) the probability is below 2⁻⁴⁰,
    /// and the mode is reserved for large sweeps whose results are
    /// reported as hash-compacted.
    pub hash_compact: bool,
}

impl Default for CheckerConfig {
    /// No properties of its own, a generous state bound (64 million), no
    /// depth/time bounds, deadlock allowed, exact dedup.
    fn default() -> Self {
        CheckerConfig {
            max_states: 64_000_000,
            max_depth: usize::MAX,
            time_limit: None,
            forbid_deadlock: false,
            hash_compact: false,
        }
    }
}

/// How a [`Checker`](crate::Checker) explores the transition system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Exhaustive level-synchronous breadth-first search.
    ///
    /// `threads` is the number of worker threads expanding each frontier;
    /// `0` means "use the machine's available parallelism". Every thread
    /// count produces identical state counts, verdicts and (for
    /// violations) a shortest counterexample: successors are claimed
    /// through a sharded seen-set and ties are resolved by the
    /// deterministic discovery order of the equivalent sequential search.
    Bfs {
        /// Worker threads per frontier (`0` = available parallelism).
        threads: usize,
    },
    /// A seeded uniformly-random walk of at most `steps` transitions.
    ///
    /// Checks every property along the way. A completed walk yields
    /// [`Outcome::BoundReached`](crate::Outcome::BoundReached) with
    /// [`Bound::Steps`](crate::Bound::Steps) — a walk is inherently
    /// bounded, never a verification. A stuck walk (state without
    /// successors) yields [`Outcome::Deadlock`](crate::Outcome::Deadlock)
    /// regardless of `forbid_deadlock`; a violation yields a real but
    /// non-minimal counterexample trace.
    RandomWalk {
        /// Maximum number of transitions to take.
        steps: usize,
        /// Seed for the walk's SplitMix64 stream; equal seeds reproduce
        /// the walk exactly.
        seed: u64,
    },
}

impl Default for Strategy {
    /// Sequential breadth-first search.
    fn default() -> Self {
        Strategy::Bfs { threads: 1 }
    }
}

impl Strategy {
    /// Resolves `Bfs { threads: 0 }` to the machine's available
    /// parallelism; other values pass through (minimum 1).
    pub(crate) fn effective_threads(threads: usize) -> usize {
        if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        }
    }
}
