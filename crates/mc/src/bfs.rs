//! The level-synchronous (parallel) breadth-first exploration engine.
//!
//! One algorithm serves every thread count: the BFS proceeds level by
//! level; each level's frontier is partitioned across workers in fixed
//! blocks handed out by an atomic cursor, duplicate detection goes through
//! a seen-set sharded over `NSHARDS` independently-locked shards (states
//! routed by hash), and each newly discovered successor is recorded with
//! its *discovery order* `(frontier position, successor ordinal)` — the
//! position at which the equivalent sequential search would first reach
//! it. When two parents race for the same successor the smaller order
//! wins, so after the level is drained in sorted order the assigned state
//! ids, parent links, verdicts and counterexample traces are identical for
//! 1, 2 or N worker threads — and identical to a plain sequential BFS.
//!
//! Properties are evaluated in parallel, once per discovered state, at
//! claim time; a violation is reported at the state's deterministic drain
//! position, so the reported counterexample is a shortest one and the
//! reported state count matches the sequential checker's exactly.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasher, Hash};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::config::CheckerConfig;
use crate::hash::FxBuild;
use crate::outcome::{Bound, Outcome, Stats, Trace};
use crate::property::{first_violation, Property};
use crate::TransitionSystem;

const SHARD_BITS: u32 = 6;
/// Number of seen-set shards (a power of two; states routed by hash).
const NSHARDS: usize = 1 << SHARD_BITS;
/// Frontier positions claimed per dispenser grab.
const BLOCK: usize = 32;

/// How duplicate detection stores states: exact (the state itself is the
/// key) or hash-compact (a 128-bit fingerprint is the key).
trait Mode<TS: TransitionSystem>: Sync {
    /// What the seen-set stores.
    type Key: Eq + Hash + Send + Clone;
    /// A cheap, `Copy` digest computed once per successor and reused for
    /// routing and lookups.
    type Probe: Copy + Send;

    fn probe(&self, s: &TS::State) -> Self::Probe;
    fn route(p: Self::Probe) -> u64;
    fn seen_contains(seen: &HashSet<Self::Key, FxBuild>, p: Self::Probe, s: &TS::State) -> bool;
    fn pending_mut<'a>(
        map: &'a mut HashMap<Self::Key, Pending<TS>, FxBuild>,
        p: Self::Probe,
        s: &TS::State,
    ) -> Option<&'a mut Pending<TS>>;
    fn key(p: Self::Probe, s: &TS::State) -> Self::Key;
}

/// Exact dedup: the seen-set owns every visited state.
struct Exact;

impl<TS: TransitionSystem> Mode<TS> for Exact {
    type Key = TS::State;
    type Probe = u64;

    fn probe(&self, s: &TS::State) -> u64 {
        FxBuild::default().hash_one(s)
    }

    fn route(p: u64) -> u64 {
        p
    }

    fn seen_contains(seen: &HashSet<TS::State, FxBuild>, _p: u64, s: &TS::State) -> bool {
        seen.contains(s)
    }

    fn pending_mut<'a>(
        map: &'a mut HashMap<TS::State, Pending<TS>, FxBuild>,
        _p: u64,
        s: &TS::State,
    ) -> Option<&'a mut Pending<TS>> {
        map.get_mut(s)
    }

    fn key(_p: u64, s: &TS::State) -> TS::State {
        s.clone()
    }
}

/// Hash-compact dedup: the seen-set stores 128-bit fingerprints drawn from
/// two independently-seeded hashers.
struct Compact {
    h1: std::collections::hash_map::RandomState,
    h2: std::collections::hash_map::RandomState,
}

impl<TS: TransitionSystem> Mode<TS> for Compact {
    type Key = u128;
    type Probe = u128;

    fn probe(&self, s: &TS::State) -> u128 {
        (u128::from(self.h1.hash_one(s)) << 64) | u128::from(self.h2.hash_one(s))
    }

    fn route(p: u128) -> u64 {
        p as u64
    }

    fn seen_contains(seen: &HashSet<u128, FxBuild>, p: u128, _s: &TS::State) -> bool {
        seen.contains(&p)
    }

    fn pending_mut<'a>(
        map: &'a mut HashMap<u128, Pending<TS>, FxBuild>,
        p: u128,
        _s: &TS::State,
    ) -> Option<&'a mut Pending<TS>> {
        map.get_mut(&p)
    }

    fn key(p: u128, _s: &TS::State) -> u128 {
        p
    }
}

/// A successor discovered during the current level, keyed in its shard by
/// the dedup key and ordered by first sequential discovery.
struct Pending<TS: TransitionSystem> {
    /// `(frontier position) << 32 | successor ordinal` — the deterministic
    /// discovery order used to resolve claim races and to drain the level.
    order: u64,
    parent: u32,
    action: TS::Action,
    state: TS::State,
}

struct Shard<K, TS: TransitionSystem> {
    seen: HashSet<K, FxBuild>,
    pending: HashMap<K, Pending<TS>, FxBuild>,
}

impl<K, TS: TransitionSystem> Default for Shard<K, TS> {
    fn default() -> Self {
        Shard {
            seen: HashSet::default(),
            pending: HashMap::default(),
        }
    }
}

/// Per-worker results for one level.
#[derive(Default)]
struct WorkerOut {
    transitions: usize,
    /// Smallest frontier position whose state has no successors.
    deadlock: Option<u32>,
    /// Smallest frontier position with successors at a depth-bounded level.
    cutoff: Option<u32>,
}

fn min_pos(slot: &mut Option<u32>, pos: u32) {
    *slot = Some(slot.map_or(pos, |p| p.min(pos)));
}

fn pack(pos: usize, ord: usize) -> u64 {
    debug_assert!(pos <= u32::MAX as usize && ord <= u32::MAX as usize);
    ((pos as u64) << 32) | ord as u64
}

fn rebuild_trace<TS: TransitionSystem>(
    parents: &[Option<(u32, TS::Action)>],
    mut at: u32,
    state: TS::State,
) -> Trace<TS> {
    let mut actions = Vec::new();
    while let Some((p, a)) = &parents[at as usize] {
        actions.push(a.clone());
        at = *p;
    }
    actions.reverse();
    Trace { actions, state }
}

pub(crate) fn run<TS>(
    config: &CheckerConfig,
    properties: &[Property<TS::State>],
    ts: &TS,
    threads: usize,
) -> Outcome<TS>
where
    TS: TransitionSystem,
{
    if config.hash_compact {
        let mode = Compact {
            h1: std::collections::hash_map::RandomState::new(),
            h2: std::collections::hash_map::RandomState::new(),
        };
        level_bfs(config, properties, ts, threads, &mode)
    } else {
        level_bfs(config, properties, ts, threads, &Exact)
    }
}

/// Expands one worker's share of the frontier, claiming successors into
/// the sharded pending tables.
#[allow(clippy::too_many_arguments)]
fn expand_blocks<TS, M>(
    mode: &M,
    ts: &TS,
    properties: &[Property<TS::State>],
    frontier: &[(u32, TS::State)],
    cursor: &AtomicUsize,
    shards: &[Mutex<Shard<M::Key, TS>>],
    violations: &Mutex<Vec<(M::Key, &'static str)>>,
    expanding: bool,
    forbid_deadlock: bool,
    deadline: Option<Instant>,
    stop: &AtomicBool,
) -> WorkerOut
where
    TS: TransitionSystem,
    M: Mode<TS>,
{
    let mut out = WorkerOut::default();
    'grab: loop {
        let start = cursor.fetch_add(BLOCK, Ordering::Relaxed);
        if start >= frontier.len() {
            break;
        }
        let end = (start + BLOCK).min(frontier.len());
        for (pos, (parent_id, state)) in frontier.iter().enumerate().take(end).skip(start) {
            if stop.load(Ordering::Relaxed) {
                break 'grab;
            }
            if let Some(deadline) = deadline {
                if Instant::now() >= deadline {
                    stop.store(true, Ordering::Relaxed);
                    break 'grab;
                }
            }
            let succs = ts.successors(state);
            if succs.is_empty() {
                if forbid_deadlock {
                    min_pos(&mut out.deadlock, pos as u32);
                }
                continue;
            }
            if !expanding {
                // At the depth bound states are not expanded (and, matching
                // the sequential checker, their outgoing edges not counted);
                // the first such state triggers `Bound::Depth` at drain.
                min_pos(&mut out.cutoff, pos as u32);
                continue;
            }
            for (ord, (action, succ)) in succs.into_iter().enumerate() {
                out.transitions += 1;
                let probe = mode.probe(&succ);
                let shard = &shards[(M::route(probe) >> (64 - SHARD_BITS)) as usize];
                let order = pack(pos, ord);
                {
                    let mut guard = shard.lock().expect("shard lock");
                    if M::seen_contains(&guard.seen, probe, &succ) {
                        continue;
                    }
                    if let Some(p) = M::pending_mut(&mut guard.pending, probe, &succ) {
                        if order < p.order {
                            p.order = order;
                            p.parent = *parent_id;
                            p.action = action;
                        }
                        continue;
                    }
                }
                // First discovery (so far) of this state: evaluate the
                // properties outside the shard lock, then claim.
                let violation = first_violation(properties, &succ);
                let key = M::key(probe, &succ);
                let claimed = {
                    let mut guard = shard.lock().expect("shard lock");
                    if let Some(p) = M::pending_mut(&mut guard.pending, probe, &succ) {
                        // Another worker claimed it while we were checking
                        // properties; keep the smaller discovery order.
                        if order < p.order {
                            p.order = order;
                            p.parent = *parent_id;
                            p.action = action;
                        }
                        false
                    } else {
                        guard.pending.insert(
                            key.clone(),
                            Pending {
                                order,
                                parent: *parent_id,
                                action,
                                state: succ,
                            },
                        );
                        true
                    }
                };
                if claimed {
                    if let Some(name) = violation {
                        violations
                            .lock()
                            .expect("violations lock")
                            .push((key, name));
                    }
                }
            }
        }
    }
    out
}

fn level_bfs<TS, M>(
    config: &CheckerConfig,
    properties: &[Property<TS::State>],
    ts: &TS,
    threads: usize,
    mode: &M,
) -> Outcome<TS>
where
    TS: TransitionSystem,
    M: Mode<TS>,
{
    let start = Instant::now();
    let deadline = config.time_limit.map(|limit| start + limit);

    let mut shards: Vec<Mutex<Shard<M::Key, TS>>> =
        (0..NSHARDS).map(|_| Mutex::new(Shard::default())).collect();
    // Parent links for trace reconstruction, indexed by state id.
    let mut parents: Vec<Option<(u32, TS::Action)>> = Vec::new();
    let mut states_count: usize = 0;
    let mut transitions: usize = 0;

    // Seed level 0 with the deduplicated initial states.
    let mut frontier: Vec<(u32, TS::State)> = Vec::new();
    for init in ts.initial_states() {
        let probe = mode.probe(&init);
        let shard = shards[(M::route(probe) >> (64 - SHARD_BITS)) as usize]
            .get_mut()
            .expect("shard lock");
        if M::seen_contains(&shard.seen, probe, &init) {
            continue;
        }
        shard.seen.insert(M::key(probe, &init));
        let id = states_count as u32;
        parents.push(None);
        states_count += 1;
        frontier.push((id, init));
    }

    // Check properties on initial states.
    for (id, state) in &frontier {
        if let Some(property) = first_violation(properties, state) {
            return Outcome::Violated {
                property,
                trace: rebuild_trace(&parents, *id, state.clone()),
                stats: Stats {
                    states: states_count,
                    transitions,
                    depth: 0,
                },
            };
        }
    }

    let mut level: usize = 0;
    let mut deepest: usize = 0;
    loop {
        if frontier.is_empty() {
            return Outcome::Verified(Stats {
                states: states_count,
                transitions,
                depth: deepest,
            });
        }
        deepest = level;
        let expanding = level < config.max_depth;
        #[cfg(feature = "trace")]
        gc_trace::emit(gc_trace::EventKind::LevelBegin {
            level: level as u32,
            frontier: frontier.len() as u64,
        });

        // -- Parallel phase: expand the frontier -------------------------
        let cursor = AtomicUsize::new(0);
        let stop = AtomicBool::new(false);
        let violations: Mutex<Vec<(M::Key, &'static str)>> = Mutex::new(Vec::new());
        let workers = threads.min(frontier.len().div_ceil(BLOCK)).max(1);
        let outs: Vec<WorkerOut> = if workers == 1 {
            vec![expand_blocks(
                mode,
                ts,
                properties,
                &frontier,
                &cursor,
                &shards,
                &violations,
                expanding,
                config.forbid_deadlock,
                deadline,
                &stop,
            )]
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(|| {
                            expand_blocks(
                                mode,
                                ts,
                                properties,
                                &frontier,
                                &cursor,
                                &shards,
                                &violations,
                                expanding,
                                config.forbid_deadlock,
                                deadline,
                                &stop,
                            )
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker panicked"))
                    .collect()
            })
        };

        let mut deadlock: Option<u32> = None;
        let mut cutoff: Option<u32> = None;
        for out in &outs {
            transitions += out.transitions;
            if let Some(p) = out.deadlock {
                min_pos(&mut deadlock, p);
            }
            if let Some(p) = out.cutoff {
                min_pos(&mut cutoff, p);
            }
        }
        if stop.load(Ordering::Relaxed) {
            return Outcome::BoundReached {
                bound: Bound::Time(config.time_limit.expect("stop implies time limit")),
                stats: Stats {
                    states: states_count,
                    transitions,
                    depth: level,
                },
            };
        }

        // -- Deterministic drain: assign ids in sequential discovery order
        let viol_map: HashMap<M::Key, &'static str, FxBuild> = {
            let list = violations.into_inner().expect("violations lock");
            let mut map: HashMap<M::Key, &'static str, FxBuild> = HashMap::default();
            for (k, name) in list {
                map.entry(k).or_insert(name);
            }
            map
        };
        let mut entries: Vec<(usize, M::Key, Pending<TS>)> = Vec::new();
        for (idx, shard) in shards.iter_mut().enumerate() {
            let shard = shard.get_mut().expect("shard lock");
            entries.extend(shard.pending.drain().map(|(k, p)| (idx, k, p)));
        }
        entries.sort_unstable_by_key(|(_, _, p)| p.order);

        let mut next: Vec<(u32, TS::State)> = Vec::with_capacity(entries.len());
        for (shard_idx, key, pending) in entries {
            // Sequential semantics: a deadlocked state is reported when the
            // scan reaches its frontier position — after the insertions of
            // every earlier position, before those of later ones.
            if let Some(dpos) = deadlock {
                if dpos < (pending.order >> 32) as u32 {
                    let (id, state) = &frontier[dpos as usize];
                    return Outcome::Deadlock {
                        trace: rebuild_trace(&parents, *id, state.clone()),
                        stats: Stats {
                            states: states_count,
                            transitions,
                            depth: level,
                        },
                    };
                }
            }
            if states_count >= config.max_states {
                return Outcome::BoundReached {
                    bound: Bound::States(config.max_states),
                    stats: Stats {
                        states: states_count,
                        transitions,
                        depth: level,
                    },
                };
            }
            let id = states_count as u32;
            parents.push(Some((pending.parent, pending.action)));
            states_count += 1;
            if let Some(&property) = viol_map.get(&key) {
                return Outcome::Violated {
                    property,
                    trace: rebuild_trace(&parents, id, pending.state),
                    stats: Stats {
                        states: states_count,
                        transitions,
                        depth: level + 1,
                    },
                };
            }
            shards[shard_idx]
                .get_mut()
                .expect("shard lock")
                .seen
                .insert(key);
            next.push((id, pending.state));
        }

        // Deadlock / depth-bound events past the last insertion.
        match (deadlock, cutoff) {
            (Some(dpos), cpos) if cpos.is_none_or(|c| dpos < c) => {
                let (id, state) = &frontier[dpos as usize];
                return Outcome::Deadlock {
                    trace: rebuild_trace(&parents, *id, state.clone()),
                    stats: Stats {
                        states: states_count,
                        transitions,
                        depth: level,
                    },
                };
            }
            (_, Some(_)) => {
                return Outcome::BoundReached {
                    bound: Bound::Depth(config.max_depth),
                    stats: Stats {
                        states: states_count,
                        transitions,
                        depth: level,
                    },
                };
            }
            _ => {}
        }

        // Level completed without a verdict: report its shape. Tracing is
        // observation only — it never influences exploration order, so the
        // deterministic-drain guarantee is untouched.
        #[cfg(feature = "trace")]
        {
            gc_trace::emit(gc_trace::EventKind::LevelEnd {
                level: level as u32,
                discovered: next.len() as u64,
                states_total: states_count as u64,
            });
            let mut occ_max = 0u64;
            let mut occ_total = 0u64;
            for shard in shards.iter_mut() {
                let n = shard.get_mut().expect("shard lock").seen.len() as u64;
                occ_max = occ_max.max(n);
                occ_total += n;
            }
            gc_trace::emit(gc_trace::EventKind::ShardOccupancy {
                max: occ_max,
                total: occ_total,
            });
        }

        frontier = next;
        level += 1;
    }
}
